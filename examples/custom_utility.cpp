/// Extensibility example: registering custom utility features.
///
/// §3.1 of the paper: "users may customize the utility features,
/// including adding new ones, for personalized analysis."  This example
/// adds two domain-specific features — a skewness measure and a
/// data-sufficiency prior — next to the built-in eight, then shows that a
/// simulated user whose taste depends on a *custom* feature is learned
/// just as well.

#include <cmath>
#include <cstdio>

#include "core/experiment.h"
#include "data/generator.h"
#include "data/predicate.h"

int main() {
  using namespace vs;

  data::DiabetesOptions options;
  options.num_rows = 20000;
  auto table = data::GenerateDiabetes(options);
  if (!table.ok()) return 1;
  auto query = data::SelectRows(
      *table, data::Compare("diag_group", data::CompareOp::kEq,
                            data::Value("Diabetes")));

  // Start from the paper's eight features and append two custom ones.
  auto registry = core::UtilityFeatureRegistry::Default();

  // Feature 8: skew of the target distribution — how concentrated the
  // view's mass is (max bin mass; 1/b = flat, 1 = single spike).
  auto status = registry.Register(
      "SKEW", [](const core::ViewMaterialization& view) {
        double max_mass = 0.0;
        for (size_t b = 0; b < view.target_dist.size(); ++b) {
          max_mass = std::max(max_mass, view.target_dist[b]);
        }
        return vs::Result<double>(max_mass);
      });
  if (!status.ok()) return 1;

  // Feature 9: data sufficiency — penalizes views whose target has few
  // supporting rows (log-scaled row count).
  status = registry.Register(
      "SUPPORT", [](const core::ViewMaterialization& view) {
        return vs::Result<double>(
            std::log1p(static_cast<double>(view.target.rows_seen)));
      });
  if (!status.ok()) return 1;

  auto views = core::EnumerateViews(*table, {});
  auto matrix =
      core::FeatureMatrix::Build(&*table, *views, *query, &registry, {});
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("feature set: ");
  for (const auto& name : registry.names()) std::printf("%s ", name.c_str());
  std::printf("(%zu total)\n", registry.size());

  // A user whose ideal utility mixes a built-in deviation with the custom
  // skew feature: u* = 0.5*EMD + 0.5*SKEW.
  auto ideal = core::IdealUtilityFunction::FromComponents(
      "0.5*EMD + 0.5*SKEW", registry.size(),
      {{static_cast<int>(core::UtilityFeature::kEMD), 0.5},
       {static_cast<int>(*registry.IndexOf("SKEW")), 0.5}});
  if (!ideal.ok()) return 1;

  core::ExperimentConfig config;
  config.k = 5;
  config.max_labels = 80;
  auto r = core::RunSimulatedSession(*matrix, nullptr, *ideal, config);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("\nideal utility: %s\n", ideal->name().c_str());
  std::printf("labels to converge: %d (final precision %.2f)\n",
              r->labels_to_target, r->final_precision);
  std::printf("\nprecision trajectory:\n");
  for (const auto& step : r->trajectory) {
    std::printf("  after %2d labels: %.2f\n", step.labels, step.precision);
  }
  return 0;
}
