/// Quickstart: the whole ViewSeeker pipeline in ~60 lines.
///
///  1. generate a dataset (stand-in for loading your own CSV)
///  2. pick the analyst's query subset D_Q
///  3. enumerate the view space and build the feature matrix
///  4. run an interactive session (simulated user here)
///  5. print the recommended views
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/experiment.h"
#include "core/ideal_utility.h"
#include "core/seeker.h"
#include "core/simulated_user.h"
#include "data/generator.h"
#include "data/predicate.h"

int main() {
  using namespace vs;

  // 1. A 20k-row clinical-shaped dataset (7 dimensions, 8 measures).
  data::DiabetesOptions data_options;
  data_options.num_rows = 20000;
  auto table = data::GenerateDiabetes(data_options);
  if (!table.ok()) {
    std::fprintf(stderr, "generate: %s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. The analyst's query: elderly female patients.
  auto query = data::SelectRows(
      *table, data::And({data::Compare("gender", data::CompareOp::kEq,
                                       data::Value("Female")),
                         data::Compare("age_group", data::CompareOp::kEq,
                                       data::Value("[70+)"))}));
  std::printf("query subset: %zu of %zu rows\n", query->size(),
              table->num_rows());

  // 3. View space (7 x 8 x 5 = 280 views) and utility features.
  auto views = core::EnumerateViews(*table, {});
  auto registry = core::UtilityFeatureRegistry::Default();
  auto matrix = core::FeatureMatrix::Build(&*table, *views, *query,
                                           &registry, {});
  if (!matrix.ok()) {
    std::fprintf(stderr, "build: %s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("view space: %zu views x %zu utility features\n",
              matrix->num_views(), matrix->num_features());

  // 4. Interactive session.  Here a simulated user whose (unknown to the
  //    seeker) ideal utility function is 0.3*EMD + 0.3*KL + 0.4*MAX_DIFF;
  //    in a real deployment the labels come from a person (see
  //    interactive_cli.cpp).
  core::IdealUtilityFunction ideal = core::Table2Presets()[6];
  core::ExperimentConfig config;
  config.k = 5;
  config.max_labels = 60;
  auto session = core::RunSimulatedSession(*matrix, nullptr, ideal, config);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("\nhidden ideal utility: %s\n", ideal.name().c_str());
  std::printf("labels used: %d, final top-5 precision: %.2f\n",
              session->labels_to_target, session->final_precision);

  // 5. The learned recommendation: rerun a seeker to convergence and show
  //    its top views.
  core::ViewSeekerOptions seeker_options;
  seeker_options.k = 5;
  auto seeker = core::ViewSeeker::Make(&*matrix, seeker_options);
  auto user = core::SimulatedUser::Make(&matrix->normalized(), ideal);
  for (int i = 0; i < session->labels_to_target; ++i) {
    auto q = seeker->NextQueries();
    if (!q.ok()) break;
    auto st = seeker->SubmitLabel((*q)[0], *user->Label((*q)[0]));
    if (!st.ok()) break;
  }
  auto topk = seeker->RecommendTopK();
  std::printf("\nrecommended views:\n");
  for (size_t v : *topk) {
    std::printf("  %s\n", matrix->views()[v].Id().c_str());
  }
  return 0;
}
