/// The actual interactive tool: ViewSeeker driving a terminal session with
/// a *human* in the loop.
///
///   interactive_cli [--csv=<path>] [--demo]
///
/// Each iteration renders the proposed view as a pair of ASCII
/// histograms (target vs reference) and asks for a 0..1 interestingness
/// score; `t` shows the current top-5, `q` quits and prints the learned
/// utility estimator.  --demo answers automatically (for CI and for
/// trying the flow without typing).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/seeker.h"
#include "core/simulated_user.h"
#include "core/view_data.h"
#include "data/csv.h"
#include "data/generator.h"
#include "data/predicate.h"
#include "ml/model_io.h"

namespace {

using namespace vs;

void RenderView(const data::Table& table, const core::ViewSpec& spec,
                const data::SelectionVector& query) {
  data::GroupByExecutor executor(&table);
  auto mat = core::MaterializeView(executor, spec, query);
  if (!mat.ok()) {
    std::printf("  (failed to render: %s)\n",
                mat.status().ToString().c_str());
    return;
  }
  std::printf("\n  view: %s\n", spec.Id().c_str());
  std::printf("  %-20s %-28s %s\n", "bin", "target (your query)",
              "reference (all data)");
  for (size_t b = 0; b < mat->target_dist.size(); ++b) {
    std::string target_bar(
        static_cast<size_t>(mat->target_dist[b] * 24), '#');
    std::string ref_bar(
        static_cast<size_t>(mat->reference_dist[b] * 24), '-');
    std::printf("  %-20s %-28s %s\n",
                mat->target.bin_labels[b].substr(0, 20).c_str(),
                target_bar.c_str(), ref_bar.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv=", 6) == 0) csv_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--demo") == 0) demo = true;
  }

  // Load the user's CSV, or fall back to the bundled clinical dataset.
  data::Table table;
  if (!csv_path.empty()) {
    auto loaded = data::ReadCsvFile(csv_path, {});
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    table = std::move(*loaded);
    std::printf("loaded %zu rows from %s\n", table.num_rows(),
                csv_path.c_str());
  } else {
    data::DiabetesOptions options;
    options.num_rows = 20000;
    table = *data::GenerateDiabetes(options);
    std::printf("no --csv given; using the bundled 20k-row clinical "
                "dataset\n");
  }

  // Query subset: for the demo, a fixed cohort; with a custom CSV, the
  // first dimension's first label.
  data::PredicatePtr filter;
  if (csv_path.empty()) {
    filter = data::Compare("age_group", data::CompareOp::kEq,
                           data::Value("[70+)"));
  } else {
    const auto dims =
        table.schema().FieldsWithRole(data::FieldRole::kDimension);
    if (dims.empty()) {
      std::fprintf(stderr, "CSV has no string (dimension) columns\n");
      return 1;
    }
    const auto* cat = dynamic_cast<const data::CategoricalColumn*>(
        table.column(dims[0]).get());
    filter = data::Compare(table.schema().field(dims[0]).name,
                           data::CompareOp::kEq,
                           data::Value(cat->label(0)));
  }
  auto query = data::SelectRows(table, filter);
  if (!query.ok() || query->empty()) {
    std::fprintf(stderr, "query subset is empty\n");
    return 1;
  }
  std::printf("query: %s -> %zu rows\n", filter->ToString().c_str(),
              query->size());

  auto views = core::EnumerateViews(table, {});
  if (!views.ok()) {
    std::fprintf(stderr, "%s\n", views.status().ToString().c_str());
    return 1;
  }
  auto registry = core::UtilityFeatureRegistry::Default();
  auto matrix =
      core::FeatureMatrix::Build(&table, *views, *query, &registry, {});
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu candidate views\n", matrix->num_views());

  core::ViewSeekerOptions options;
  options.k = 5;
  auto seeker = core::ViewSeeker::Make(&*matrix, options);
  if (!seeker.ok()) return 1;

  // Demo oracle (only used with --demo).
  auto demo_user = core::SimulatedUser::Make(&matrix->normalized(),
                                             core::Table2Presets()[6]);

  std::printf("\nScore each view 0 (boring) .. 1 (fascinating).  Commands: "
              "t = show top-5, q = quit.\n");
  int iterations = 0;
  while (seeker->num_unlabeled() > 0) {
    auto queries = seeker->NextQueries();
    if (!queries.ok()) break;
    const size_t view = (*queries)[0];
    RenderView(table, matrix->views()[view], *query);

    double label = -1.0;
    if (demo) {
      label = demo_user.ok() ? *demo_user->Label(view) : 0.5;
      std::printf("  score> %.2f (demo)\n", label);
      if (++iterations >= 12) {
        std::printf("  (demo: stopping after 12 labels)\n");
        auto st = seeker->SubmitLabel(view, label);
        if (!st.ok()) break;
        break;
      }
    } else {
      while (true) {
        std::printf("  score> ");
        std::string line;
        if (!std::getline(std::cin, line)) {
          label = -1.0;
          break;
        }
        if (line == "q") {
          label = -1.0;
          break;
        }
        if (line == "t") {
          auto topk = seeker->RecommendTopK();
          if (topk.ok()) {
            std::printf("  current top-5:\n");
            for (size_t v : *topk) {
              std::printf("    %s\n", matrix->views()[v].Id().c_str());
            }
          } else {
            std::printf("  (no labels yet)\n");
          }
          continue;
        }
        std::istringstream iss(line);
        if (iss >> label && label >= 0.0 && label <= 1.0) break;
        std::printf("  please enter a number in [0, 1], or t/q\n");
      }
      if (label < 0.0) break;
    }
    auto st = seeker->SubmitLabel(view, label);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      break;
    }
  }

  auto topk = seeker->RecommendTopK();
  if (topk.ok()) {
    std::printf("\nfinal top-5 recommendation (%zu labels):\n",
                seeker->num_labeled());
    for (size_t v : *topk) {
      RenderView(table, matrix->views()[v], *query);
    }
    auto serialized =
        ml::SerializeLinear(seeker->utility_estimator().model());
    if (serialized.ok()) {
      std::printf("\nlearned utility estimator:\n%s", serialized->c_str());
    }
  } else {
    std::printf("\nno labels were provided; nothing to recommend.\n");
  }
  return 0;
}
