/// Domain example: parameter sensitivity on the SYN workload.
///
/// Sweeps the recommendation size k and the query strategy on the
/// paper's synthetic testbed (numeric dimensions binned at 3 and 4 bins)
/// and prints how much labeling effort each configuration needs — the
/// kind of study a practitioner runs before deploying the tool.

#include <cstdio>

#include "active/strategy.h"
#include "core/experiment.h"
#include "data/generator.h"
#include "data/predicate.h"

int main() {
  using namespace vs;

  data::SyntheticOptions options;
  options.num_rows = 100000;  // scaled-down SYN for a quick example run
  options.seed = 42;
  auto table = data::GenerateSynthetic(options);
  if (!table.ok()) return 1;

  auto query = data::SelectRows(
      *table, data::And({data::Between("d0", 0.0, 0.171),
                         data::Between("d1", 0.0, 0.171),
                         data::Between("d2", 0.0, 0.171)}));
  std::printf("SYN: %zu rows, query subset %zu rows (%.2f%%)\n",
              table->num_rows(), query->size(),
              100.0 * query->size() / table->num_rows());

  core::ViewEnumerationOptions enum_options;
  enum_options.numeric_bin_configs = {3, 4};
  auto views = core::EnumerateViews(*table, enum_options);
  auto registry = core::UtilityFeatureRegistry::Default();
  auto matrix =
      core::FeatureMatrix::Build(&*table, *views, *query, &registry, {});
  if (!matrix.ok()) return 1;
  std::printf("view space: %zu views (5 dims x 5 measures x 5 funcs x 2 "
              "bin configs)\n\n",
              matrix->num_views());

  const core::IdealUtilityFunction ideal = core::Table2Presets()[4];
  std::printf("hidden ideal utility: %s\n\n", ideal.name().c_str());

  // Sweep 1: recommendation size k.
  std::printf("k sweep (uncertainty sampling):\n");
  std::printf("  %-4s %-10s %s\n", "k", "labels", "final precision");
  for (int k : {5, 10, 15, 20, 25, 30}) {
    core::ExperimentConfig config;
    config.k = k;
    config.max_labels = 100;
    auto r = core::RunSimulatedSession(*matrix, nullptr, ideal, config);
    if (!r.ok()) continue;
    std::printf("  %-4d %-10d %.2f\n", k, r->labels_to_target,
                r->final_precision);
  }

  // Sweep 2: query strategy at k = 10.
  std::printf("\nstrategy sweep (k = 10):\n");
  std::printf("  %-12s %-10s %s\n", "strategy", "labels", "final precision");
  for (const std::string& strategy : active::AllStrategyNames()) {
    core::ExperimentConfig config;
    config.k = 10;
    config.strategy = strategy;
    config.max_labels = 100;
    auto r = core::RunSimulatedSession(*matrix, nullptr, ideal, config);
    if (!r.ok()) continue;
    std::printf("  %-12s %-10d %.2f\n", strategy.c_str(),
                r->labels_to_target, r->final_precision);
  }
  return 0;
}
