/// Future-work example: scatter-plot view recommendation.
///
/// The paper closes with "we plan ... to extend [ViewSeeker] to support
/// more visualization types, such as scatter plot, line chart etc."  This
/// example exercises that extension (core/scatter.h): enumerate all
/// measure-pair scatter views, score how differently each pair co-varies
/// inside the cohort vs the whole data, and render the winner as an ASCII
/// scatter plot.  (Line charts need no new machinery — see the note in
/// scatter.h.)

#include <cstdio>
#include <vector>

#include "core/scatter.h"
#include "data/generator.h"
#include "data/predicate.h"

namespace {

using namespace vs;

/// Renders (x, y) pairs of a selection as a coarse ASCII density grid.
void RenderScatter(const data::Table& table, const std::string& x,
                   const std::string& y,
                   const data::SelectionVector& selection, int grid = 18) {
  auto xv = data::NumericColumnView::Wrap(
      table.ColumnByName(x).value().get());
  auto yv = data::NumericColumnView::Wrap(
      table.ColumnByName(y).value().get());
  if (!xv.ok() || !yv.ok()) return;
  double xlo = 1e300;
  double xhi = -1e300;
  double ylo = 1e300;
  double yhi = -1e300;
  for (uint32_t r : selection) {
    if (xv->IsNull(r) || yv->IsNull(r)) continue;
    xlo = std::min(xlo, xv->at(r));
    xhi = std::max(xhi, xv->at(r));
    ylo = std::min(ylo, yv->at(r));
    yhi = std::max(yhi, yv->at(r));
  }
  if (!(xlo < xhi) || !(ylo < yhi)) return;
  std::vector<std::vector<int>> cells(grid, std::vector<int>(grid, 0));
  for (uint32_t r : selection) {
    if (xv->IsNull(r) || yv->IsNull(r)) continue;
    int cx = static_cast<int>((xv->at(r) - xlo) / (xhi - xlo) * (grid - 1));
    int cy = static_cast<int>((yv->at(r) - ylo) / (yhi - ylo) * (grid - 1));
    ++cells[grid - 1 - cy][cx];
  }
  const char* shades = " .:+*#";
  for (int row = 0; row < grid; ++row) {
    std::printf("    |");
    for (int col = 0; col < grid; ++col) {
      int level = std::min(5, cells[row][col]);
      std::printf("%c", shades[level]);
    }
    std::printf("|\n");
  }
  std::printf("     %s -> (y axis: %s)\n", x.c_str(), y.c_str());
}

}  // namespace

int main() {
  data::DiabetesOptions options;
  options.num_rows = 30000;
  auto table = data::GenerateDiabetes(options);
  if (!table.ok()) return 1;

  auto query = data::SelectRows(
      *table, data::Compare("medical_specialty", data::CompareOp::kEq,
                            data::Value("Nephrology")));
  std::printf("cohort: Nephrology patients -> %zu of %zu rows\n\n",
              query->size(), table->num_rows());

  auto views = core::EnumerateScatterViews(*table);
  if (!views.ok()) return 1;
  std::printf("scatter view space: %zu measure pairs\n", views->size());

  // Weighted composite of the three scatter features.
  ml::Vector weights = {0.5, 0.3, 0.2};
  auto rec = core::RecommendScatterViews(*table, *views, *query, weights, 3);
  if (!rec.ok()) {
    std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop scatter views (corr-deviation 0.5 / centroid 0.3 / "
              "dispersion 0.2):\n");
  for (size_t idx : *rec) {
    const auto& view = (*views)[idx];
    auto features = core::ComputeScatterFeatures(*table, view, *query);
    auto corr_q = core::PearsonCorrelation(*table, view.measure_x,
                                           view.measure_y, &*query);
    auto corr_all = core::PearsonCorrelation(*table, view.measure_x,
                                             view.measure_y, nullptr);
    std::printf("\n  %s\n", view.Id().c_str());
    if (features.ok() && corr_q.ok() && corr_all.ok()) {
      std::printf("    corr(cohort) = %+.2f  corr(all) = %+.2f  "
                  "centroid shift = %.2f sd\n",
                  *corr_q, *corr_all, features->centroid_shift);
    }
  }

  std::printf("\ncohort scatter of the winner:\n");
  const auto& winner = (*views)[(*rec)[0]];
  RenderScatter(*table, winner.measure_x, winner.measure_y, *query);
  return 0;
}
