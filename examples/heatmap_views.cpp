/// Future-work example: heatmap view recommendation.
///
/// Complements scatter_views.cpp: here the candidate views are dimension
/// *pairs* crossed into a grid with an aggregated measure as cell
/// intensity (core/heatmap.h, backed by the 2-D group-by executor).  The
/// recommender surfaces the grids where the cohort's joint distribution
/// deviates most from the whole population's.

#include <algorithm>
#include <cstdio>

#include "core/heatmap.h"
#include "data/generator.h"
#include "data/predicate.h"

namespace {

using namespace vs;

void RenderHeatmap(const data::GroupBy2DResult& grid,
                   const stats::Distribution& dist, const char* title) {
  std::printf("  %s\n", title);
  double max_mass = 0.0;
  for (size_t i = 0; i < dist.size(); ++i) {
    max_mass = std::max(max_mass, dist[i]);
  }
  const char* shades = " .:-=+*#%@";
  std::printf("  %-18s", "");
  for (const std::string& col : grid.col_labels) {
    std::printf(" %-4s", col.substr(0, 4).c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < grid.num_rows(); ++r) {
    std::printf("  %-18s", grid.row_labels[r].substr(0, 18).c_str());
    for (size_t c = 0; c < grid.num_cols(); ++c) {
      const double mass = dist[r * grid.num_cols() + c];
      const int level =
          max_mass > 0.0
              ? std::min(9, static_cast<int>(mass / max_mass * 9.0))
              : 0;
      std::printf(" [%c] ", shades[level]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  data::DiabetesOptions options;
  options.num_rows = 30000;
  auto table = data::GenerateDiabetes(options);
  if (!table.ok()) return 1;

  auto query = data::SelectRows(
      *table, data::Compare("number_inpatient", data::CompareOp::kGe,
                            data::Value(2.0)));
  std::printf("cohort: frequently hospitalized patients "
              "(number_inpatient >= 2) -> %zu of %zu rows\n\n",
              query->size(), table->num_rows());

  core::HeatmapEnumerationOptions enum_options;
  enum_options.functions = {data::AggregateFunction::kCount};
  auto views = core::EnumerateHeatmapViews(*table, enum_options);
  if (!views.ok()) return 1;
  std::printf("heatmap view space: %zu dimension-pair grids\n\n",
              views->size());

  auto rec = core::RecommendHeatmaps(*table, *views, *query,
                                     stats::DistanceKind::kL1, 2);
  if (!rec.ok()) {
    std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
    return 1;
  }

  for (size_t idx : *rec) {
    const auto& spec = (*views)[idx];
    auto mat = core::MaterializeHeatmap(*table, spec, *query);
    if (!mat.ok()) continue;
    std::printf("%s\n", spec.Id().c_str());
    RenderHeatmap(mat->target, mat->target_dist, "cohort:");
    RenderHeatmap(mat->reference, mat->reference_dist, "everyone:");
    std::printf("\n");
  }
  return 0;
}
