/// Domain example: exploring a clinical (DIAB-shaped) dataset.
///
/// Shows the workflow the paper's introduction motivates: an analyst
/// issues a SQL query over a patient cohort, ViewSeeker surfaces the
/// aggregate views where that cohort deviates most from the population,
/// the analyst steers with a handful of labels, and the learned utility
/// estimator is saved for reuse.

#include <cstdio>

#include "core/experiment.h"
#include "core/recommender.h"
#include "core/seeker.h"
#include "core/simulated_user.h"
#include "data/generator.h"
#include "data/predicate.h"
#include "data/query.h"
#include "ml/model_io.h"

namespace {

void PrintViewAsChart(const vs::data::Table& table,
                      const vs::core::ViewSpec& spec,
                      const vs::data::SelectionVector& query) {
  vs::data::GroupByExecutor executor(&table);
  auto mat = vs::core::MaterializeView(executor, spec, query);
  if (!mat.ok()) return;
  std::printf("  %s\n", spec.Id().c_str());
  for (size_t b = 0; b < mat->target_dist.size(); ++b) {
    std::printf("    %-18s |", mat->target.bin_labels[b].c_str());
    const int target_width = static_cast<int>(mat->target_dist[b] * 40);
    for (int i = 0; i < target_width; ++i) std::printf("#");
    std::printf("\n    %-18s |", "(reference)");
    const int ref_width = static_cast<int>(mat->reference_dist[b] * 40);
    for (int i = 0; i < ref_width; ++i) std::printf("-");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace vs;

  data::DiabetesOptions options;
  options.num_rows = 50000;
  auto table = data::GenerateDiabetes(options);
  if (!table.ok()) return 1;

  // The analyst's cohort, expressed through the SQL front end's WHERE
  // grammar (parsed once to show the glue; the selection drives the rest).
  auto parsed = data::ParseQuery(
      "SELECT AVG(num_medications) FROM diab "
      "WHERE insulin = 'Up' AND age_group = '[50-70)' "
      "GROUP BY diag_group");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto query = data::SelectRows(*table, parsed->query.filter);
  std::printf("cohort: insulin=Up, age 50-70 -> %zu of %zu patients\n\n",
              query->size(), table->num_rows());

  auto views = core::EnumerateViews(*table, {});
  auto registry = core::UtilityFeatureRegistry::Default();
  auto matrix =
      core::FeatureMatrix::Build(&*table, *views, *query, &registry, {});
  if (!matrix.ok()) return 1;

  // What a fixed deviation-only recommender (SeeDB-style) would show:
  auto by_emd = core::RecommendByFeatureName(*matrix, "EMD", 3);
  std::printf("SeeDB-style top views by EMD alone:\n");
  for (size_t v : *by_emd) {
    std::printf("  %s\n", matrix->views()[v].Id().c_str());
  }

  // Interactive refinement: the analyst actually cares about a composite
  // of deviation and chart usability (simulated here).
  core::IdealUtilityFunction ideal = core::Table2Presets()[9];  // w/ usability
  auto user = core::SimulatedUser::Make(&matrix->normalized(), ideal);
  if (!user.ok()) return 1;

  core::ViewSeekerOptions seeker_options;
  seeker_options.k = 3;
  auto seeker = core::ViewSeeker::Make(&*matrix, seeker_options);
  int labels = 0;
  while (labels < 40 && seeker->num_unlabeled() > 0) {
    auto q = seeker->NextQueries();
    if (!q.ok()) break;
    auto st = seeker->SubmitLabel((*q)[0], *user->Label((*q)[0]));
    if (!st.ok()) break;
    ++labels;
  }

  auto topk = seeker->RecommendTopK();
  std::printf("\nViewSeeker top views after %d labels (ideal: %s):\n",
              labels, ideal.name().c_str());
  for (size_t v : *topk) {
    PrintViewAsChart(*table, matrix->views()[v], *query);
  }

  // Persist the learned estimator: it IS the session's output
  // (Algorithm 1 returns the view utility estimator).
  auto serialized =
      ml::SerializeLinear(seeker->utility_estimator().model());
  if (serialized.ok()) {
    std::printf("\nlearned utility estimator (%zu weights):\n%s",
                seeker->utility_estimator().model().coefficients().size(),
                serialized->c_str());
  }
  return 0;
}
