#include "common/string_util.h"

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "el"));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  8 "), 8);  // surrounding whitespace ok
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
}

TEST(ParseInt64Test, RejectsOverflow) {
  auto r = ParseInt64("99999999999999999999999999");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("7"), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("nanx").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace vs
