#include "common/threadpool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(ThreadPoolTest, InlineModeRunsImmediately) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int value = 0;
  pool.Submit([&value] { value = 7; });
  EXPECT_EQ(value, 7);  // inline execution completes before return
}

TEST(ThreadPoolTest, WorkersRunAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&counter](size_t) { counter.fetch_add(1); });
  pool.ParallelFor(7, 3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForInlineMode) {
  ThreadPool pool(0);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SumViaParallelForMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> partial(101, 0);
  pool.ParallelFor(1, 101, [&partial](size_t i) {
    partial[i] = static_cast<long long>(i);
  });
  long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 5050);
}

TEST(ThreadPoolTest, DefaultThreadsIsSane) {
  const size_t n = ThreadPool::DefaultThreads();
  EXPECT_LT(n, 1024u);
}

TEST(ThreadPoolTest, CompletedCounterMatchesSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.tasks_completed(), 50u);
  EXPECT_EQ(pool.queue_depth(), 0u);  // drained
}

TEST(ThreadPoolTest, CompletedCounterMatchesParallelForChunks) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  // ParallelFor splits [0, n) into min(n, threads * 4) chunk tasks.
  pool.ParallelFor(0, 3, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(pool.tasks_completed(), 3u);
  pool.ParallelFor(0, 100, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 103);
  EXPECT_EQ(pool.tasks_completed(), 3u + 16u);
}

TEST(ThreadPoolTest, InlineModeCountsWork) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.queue_depth(), 0u);
  pool.Submit([] {});
  EXPECT_EQ(pool.tasks_completed(), 1u);
  // Inline ParallelFor runs the whole range as one task.
  pool.ParallelFor(0, 5, [](size_t) {});
  EXPECT_EQ(pool.tasks_completed(), 2u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

}  // namespace
}  // namespace vs
