#include "common/threadpool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(ThreadPoolTest, InlineModeRunsImmediately) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int value = 0;
  pool.Submit([&value] { value = 7; });
  EXPECT_EQ(value, 7);  // inline execution completes before return
}

TEST(ThreadPoolTest, WorkersRunAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&counter](size_t) { counter.fetch_add(1); });
  pool.ParallelFor(7, 3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForInlineMode) {
  ThreadPool pool(0);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SumViaParallelForMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> partial(101, 0);
  pool.ParallelFor(1, 101, [&partial](size_t i) {
    partial[i] = static_cast<long long>(i);
  });
  long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 5050);
}

TEST(ThreadPoolTest, DefaultThreadsIsSane) {
  const size_t n = ThreadPool::DefaultThreads();
  EXPECT_LT(n, 1024u);
}

TEST(ThreadPoolTest, CompletedCounterMatchesSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.tasks_completed(), 50u);
  EXPECT_EQ(pool.queue_depth(), 0u);  // drained
}

TEST(ThreadPoolTest, CompletedCounterMatchesParallelForChunks) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  // ParallelFor splits [0, n) into min(n, threads * 4) chunk tasks.
  pool.ParallelFor(0, 3, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(pool.tasks_completed(), 3u);
  pool.ParallelFor(0, 100, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 103);
  EXPECT_EQ(pool.tasks_completed(), 3u + 16u);
}

TEST(ThreadPoolTest, InlineModeCountsWork) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.queue_depth(), 0u);
  pool.Submit([] {});
  EXPECT_EQ(pool.tasks_completed(), 1u);
  // Inline ParallelFor runs the whole range as one task.
  pool.ParallelFor(0, 5, [](size_t) {});
  EXPECT_EQ(pool.tasks_completed(), 2u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, UnboundedSubmitAlwaysAccepts) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.max_queue(), 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pool.Submit([] {}));
  }
  pool.WaitIdle();
  EXPECT_EQ(pool.tasks_rejected(), 0u);
}

TEST(ThreadPoolTest, RejectPolicyShedsTasksAtCapacity) {
  ThreadPoolOptions options;
  options.num_threads = 1;
  options.max_queue = 1;
  options.overflow = QueueOverflowPolicy::kReject;
  ThreadPool pool(options);
  EXPECT_EQ(pool.max_queue(), 1u);

  // Park the single worker so queued tasks cannot drain.
  std::mutex gate;
  gate.lock();
  std::atomic<bool> worker_running{false};
  ASSERT_TRUE(pool.Submit([&gate, &worker_running] {
    worker_running.store(true);
    gate.lock();
    gate.unlock();
  }));
  while (!worker_running.load()) std::this_thread::yield();

  // One slot in the queue: first fills it, second must be rejected.
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.tasks_rejected(), 1u);

  gate.unlock();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);  // the rejected task never ran
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnRejectPool) {
  // A kReject pool with a full queue sheds the chunk submissions;
  // ParallelFor must still run every index (inline on the caller).
  ThreadPoolOptions options;
  options.num_threads = 1;
  options.max_queue = 1;
  options.overflow = QueueOverflowPolicy::kReject;
  ThreadPool pool(options);

  // Park the worker, then fill the single queue slot: every chunk
  // submission from ParallelFor is now rejected.
  std::mutex gate;
  gate.lock();
  std::atomic<bool> worker_running{false};
  ASSERT_TRUE(pool.Submit([&gate, &worker_running] {
    worker_running.store(true);
    gate.lock();
    gate.unlock();
  }));
  while (!worker_running.load()) std::this_thread::yield();
  ASSERT_TRUE(pool.Submit([] {}));  // occupies the queue slot

  std::vector<std::atomic<int>> hits(64);
  std::thread caller([&pool, &hits] {
    pool.ParallelFor(0, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  });
  // The inline fallback covers the whole range while the worker is still
  // parked; only then release the pool so ParallelFor's WaitIdle returns.
  auto all_hit = [&hits] {
    for (const auto& h : hits) {
      if (h.load() == 0) return false;
    }
    return true;
  };
  while (!all_hit()) std::this_thread::yield();
  gate.unlock();
  caller.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, BlockPolicyWaitsForSpace) {
  ThreadPoolOptions options;
  options.num_threads = 1;
  options.max_queue = 1;
  options.overflow = QueueOverflowPolicy::kBlock;
  ThreadPool pool(options);

  std::mutex gate;
  gate.lock();
  std::atomic<bool> worker_running{false};
  ASSERT_TRUE(pool.Submit([&gate, &worker_running] {
    worker_running.store(true);
    gate.lock();
    gate.unlock();
  }));
  while (!worker_running.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));  // fills the queue

  // The next Submit blocks until the worker frees a slot.
  std::atomic<bool> accepted{false};
  std::thread submitter([&pool, &ran, &accepted] {
    accepted.store(pool.Submit([&ran] { ran.fetch_add(1); }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load());  // still parked behind the full queue

  gate.unlock();
  submitter.join();
  EXPECT_TRUE(accepted.load());
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(pool.tasks_rejected(), 0u);
}

}  // namespace
}  // namespace vs
