#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(err.ValueOr(-1), -1);
  Result<int> ok(7);
  EXPECT_EQ(ok.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VS_ASSIGN_OR_RETURN(int h, Half(x));
  VS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
}

}  // namespace
}  // namespace vs
