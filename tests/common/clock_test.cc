#include "common/clock.h"

#include <thread>

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(ClockTest, RealClockIsMonotonic) {
  const Clock* clock = Clock::Real();
  const int64_t a = clock->NowMicros();
  const int64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
}

TEST(ClockTest, RealClockAdvancesAcrossSleep) {
  const Clock* clock = Clock::Real();
  const int64_t before = clock->NowMicros();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(clock->NowMicros() - before, 4000);
}

TEST(ClockTest, RealIsASingleton) {
  EXPECT_EQ(Clock::Real(), Clock::Real());
}

TEST(ClockTest, FakeClockStartsWhereTold) {
  FakeClock clock(1'000'000);
  EXPECT_EQ(clock.NowMicros(), 1'000'000);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.0);
}

TEST(ClockTest, FakeClockOnlyMovesWhenAdvanced) {
  FakeClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250);
  clock.AdvanceSeconds(1.5);
  EXPECT_EQ(clock.NowMicros(), 1'500'250);
  clock.SetMicros(42);
  EXPECT_EQ(clock.NowMicros(), 42);
}

TEST(ClockTest, FakeClockAdvancesAreVisibleAcrossThreads) {
  FakeClock clock;
  std::thread t([&clock] { clock.AdvanceMicros(777); });
  t.join();
  EXPECT_EQ(clock.NowMicros(), 777);
}

}  // namespace
}  // namespace vs
