#include "common/options_util.h"

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(OptionMapTest, ParsesKeyValuePairs) {
  auto r = OptionMap::Parse("k=5;alpha=0.1;name=syn");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_TRUE(r->Has("k"));
  EXPECT_EQ(*r->GetInt("k", 0), 5);
  EXPECT_DOUBLE_EQ(*r->GetDouble("alpha", 0.0), 0.1);
  EXPECT_EQ(*r->GetString("name", ""), "syn");
}

TEST(OptionMapTest, MissingKeysYieldDefaults) {
  auto r = OptionMap::Parse("a=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(*r->GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(*r->GetString("missing", "dflt"), "dflt");
  EXPECT_TRUE(*r->GetBool("missing", true));
}

TEST(OptionMapTest, WhitespaceAndEmptySegmentsTolerated) {
  auto r = OptionMap::Parse("  a = 1 ; ; b=2;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(*r->GetInt("a", 0), 1);
  EXPECT_EQ(*r->GetInt("b", 0), 2);
}

TEST(OptionMapTest, RejectsMissingEquals) {
  EXPECT_FALSE(OptionMap::Parse("novalue").ok());
}

TEST(OptionMapTest, RejectsEmptyKey) {
  EXPECT_FALSE(OptionMap::Parse("=5").ok());
}

TEST(OptionMapTest, RejectsDuplicateKeys) {
  auto r = OptionMap::Parse("a=1;a=2");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST(OptionMapTest, MalformedPresentValueIsError) {
  auto r = OptionMap::Parse("k=abc");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->GetInt("k", 0).ok());
  EXPECT_FALSE(r->GetDouble("k", 0.0).ok());
  EXPECT_FALSE(r->GetBool("k", false).ok());
  EXPECT_EQ(*r->GetString("k", ""), "abc");  // strings always fine
}

TEST(OptionMapTest, BoolSpellings) {
  auto r = OptionMap::Parse("a=true;b=0;c=YES;d=off");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r->GetBool("a", false));
  EXPECT_FALSE(*r->GetBool("b", true));
  EXPECT_TRUE(*r->GetBool("c", false));
  EXPECT_FALSE(*r->GetBool("d", true));
}

TEST(OptionMapTest, SetAndRoundTrip) {
  OptionMap m;
  m.Set("b", "2");
  m.Set("a", "1");
  EXPECT_EQ(m.ToString(), "a=1;b=2");  // sorted keys
  auto parsed = OptionMap::Parse(m.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), m.ToString());
}

TEST(OptionMapTest, EmptySpecIsEmptyMap) {
  auto r = OptionMap::Parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 0u);
}

}  // namespace
}  // namespace vs
