#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, NextInt64CoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateMatches) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  const double lambda = 2.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(29);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(5, 0.0)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(31);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.NextZipf(5, 1.0)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(37);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(41);
  auto perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(43);
  EXPECT_TRUE(rng.Permutation(0).empty());
  auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SplitProducesDecorrelatedStream) {
  Rng parent(47);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownFirstOutputs) {
  // SplitMix64 reference: seed 0 produces e220a8397b1dcdaf as first output.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace vs
