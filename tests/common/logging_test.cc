#include "common/logging.h"

#include <gtest/gtest.h>

namespace vs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::GetLevel(); }
  void TearDown() override { Logger::SetLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kDebug);
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroStreamsWithoutCrashing) {
  Logger::SetLevel(LogLevel::kError);  // keep test output quiet
  VS_LOG(kDebug) << "value=" << 42 << " name=" << "x";
  VS_LOG(kInfo) << "suppressed";
  SUCCEED();
}

TEST_F(LoggingTest, ErrorLevelAlwaysEmittable) {
  Logger::SetLevel(LogLevel::kError);
  Logger::Log(LogLevel::kError, "an error record (expected in test output)");
  SUCCEED();
}

TEST(CheckTest, PassingCheckDoesNothing) {
  VS_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ VS_CHECK(false); }, "CHECK failed");
}

}  // namespace
}  // namespace vs
