#include "common/logging.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace vs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::GetLevel(); }
  void TearDown() override { Logger::SetLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kDebug);
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroStreamsWithoutCrashing) {
  Logger::SetLevel(LogLevel::kError);  // keep test output quiet
  VS_LOG(kDebug) << "value=" << 42 << " name=" << "x";
  VS_LOG(kInfo) << "suppressed";
  SUCCEED();
}

TEST_F(LoggingTest, ErrorLevelAlwaysEmittable) {
  Logger::SetLevel(LogLevel::kError);
  Logger::Log(LogLevel::kError, "an error record (expected in test output)");
  SUCCEED();
}

TEST_F(LoggingTest, SinkCapturesFilteredRecords) {
  Logger::SetLevel(LogLevel::kWarn);
  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger::SetSink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  Logger::Log(LogLevel::kInfo, "below the level filter");
  Logger::Log(LogLevel::kWarn, "captured warning");
  VS_LOG(kError) << "captured " << "error " << 42;
  Logger::SetSink(nullptr);  // restore stderr
  Logger::Log(LogLevel::kError,
              "after sink removal (expected in test output)");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  // The sink receives the raw message: no "[WARN] " prefix, no newline.
  EXPECT_EQ(captured[0].second, "captured warning");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "captured error 42");
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(Logger::LevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(Logger::LevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(Logger::LevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(Logger::LevelName(LogLevel::kError), "ERROR");
}

TEST(CheckTest, PassingCheckDoesNothing) {
  VS_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ VS_CHECK(false); }, "CHECK failed");
}

}  // namespace
}  // namespace vs
