#include "common/status.h"

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, ResourceExhaustedIsDistinctAndNamed) {
  Status s = Status::ResourceExhausted("session cap reached");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsFailedPrecondition());
  EXPECT_FALSE(s.IsAborted());
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(s.ToString(), "ResourceExhausted: session cap reached");
}

TEST(StatusTest, PredicatesAreMutuallyExclusive) {
  Status s = Status::NotFound("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
}

Status FailsThenPropagates(bool fail) {
  VS_RETURN_IF_ERROR(fail ? Status::Aborted("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace vs
