#include "common/latency.h"

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(LatencyPercentileTest, DefinedRuleNeedsEnoughSamples) {
  // p needs at least 1/(1-p) samples: p50 -> 2, p95 -> 20, p99 -> 100.
  EXPECT_FALSE(LatencyPercentileDefined(0, 0.5));
  EXPECT_FALSE(LatencyPercentileDefined(1, 0.5));
  EXPECT_TRUE(LatencyPercentileDefined(2, 0.5));
  EXPECT_FALSE(LatencyPercentileDefined(19, 0.95));
  EXPECT_TRUE(LatencyPercentileDefined(20, 0.95));
  EXPECT_FALSE(LatencyPercentileDefined(99, 0.99));
  EXPECT_TRUE(LatencyPercentileDefined(100, 0.99));
}

TEST(LatencyPercentileTest, NearestRankIndex) {
  // min(n-1, floor(p*(n-1) + 0.5)) — the formula loadgen always used.
  EXPECT_EQ(LatencyPercentileIndex(1, 0.99), 0u);
  EXPECT_EQ(LatencyPercentileIndex(100, 0.5), 50u);
  EXPECT_EQ(LatencyPercentileIndex(100, 0.99), 98u);
  EXPECT_EQ(LatencyPercentileIndex(100, 1.0), 99u);
  EXPECT_EQ(LatencyPercentileIndex(101, 0.99), 99u);
}

TEST(LatencyPercentileTest, SortedLookup) {
  EXPECT_EQ(LatencyPercentileSorted({}, 0.5), -1.0);
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  EXPECT_EQ(LatencyPercentileSorted(sorted, 0.5), 51.0);
  EXPECT_EQ(LatencyPercentileSorted(sorted, 0.99), 99.0);
  EXPECT_EQ(LatencyPercentileSorted(sorted, 0.0), 1.0);
}

TEST(LatencyRecorderTest, SummarizeConvertsSecondsToMs) {
  LatencyRecorder recorder;
  recorder.Record(0.001);
  recorder.Record(0.002);
  recorder.Record(0.003);
  recorder.Record(0.004);
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.max_ms, 4.0);
  EXPECT_NEAR(summary.mean_ms, 2.5, 1e-9);
  EXPECT_NEAR(summary.p50_ms, 3.0, 1e-9);  // nearest-rank over 4 samples
  EXPECT_EQ(summary.p99_ms, -1.0);         // undefined below 100 samples
}

TEST(LatencyRecorderTest, WithinBudgetCountsAtOrUnder) {
  LatencyRecorder recorder;
  recorder.Record(0.010);
  recorder.Record(0.020);
  recorder.Record(0.030);
  const LatencySummary summary = recorder.Summarize(/*budget_ms=*/20.0);
  EXPECT_EQ(summary.budget_ms, 20.0);
  EXPECT_EQ(summary.within_budget, 2u);  // 10ms and 20ms; 30ms is over
  EXPECT_NEAR(summary.WithinFraction(), 2.0 / 3.0, 1e-12);
}

TEST(LatencyRecorderTest, MergeCombinesWorkers) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.Record(0.001);
  b.Record(0.002);
  b.Record(0.003);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Summarize().max_ms, 3.0);
}

TEST(LatencySummaryTest, TailRulePrefersP99ElseP50) {
  LatencyRecorder small;
  small.Record(0.005);
  small.Record(0.015);
  // Two samples: p99 undefined, so the tail is p50 — the same rule the
  // server-side SLO tracker applies to sparse windows.
  const LatencySummary sparse = small.Summarize(/*budget_ms=*/12.0);
  EXPECT_EQ(sparse.p99_ms, -1.0);
  EXPECT_EQ(sparse.TailMs(), sparse.p50_ms);
  EXPECT_FALSE(sparse.TailWithinBudget());  // p50 = 15ms > 12ms

  LatencyRecorder big;
  for (int i = 0; i < 200; ++i) big.Record(0.001);
  const LatencySummary dense = big.Summarize(/*budget_ms=*/2.0);
  EXPECT_GT(dense.p99_ms, 0.0);
  EXPECT_EQ(dense.TailMs(), dense.p99_ms);
  EXPECT_TRUE(dense.TailWithinBudget());
}

TEST(LatencySummaryTest, EmptyAndUnbudgetedEdges) {
  const LatencySummary empty = LatencyRecorder().Summarize(10.0);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.WithinFraction(), 1.0);  // nothing to judge
  EXPECT_EQ(empty.TailMs(), -1.0);
  EXPECT_TRUE(empty.TailWithinBudget());

  LatencyRecorder recorder;
  recorder.Record(5.0);  // 5000ms, but no budget configured
  EXPECT_TRUE(recorder.Summarize(0.0).TailWithinBudget());
}

}  // namespace
}  // namespace vs
