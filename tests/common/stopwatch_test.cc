#include "common/stopwatch.h"

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, MicrosConsistentWithSeconds) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const int64_t us = sw.ElapsedMicros();
  const double s = sw.ElapsedSeconds();
  EXPECT_LE(static_cast<double>(us) / 1e6, s + 1e-3);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  d.Charge(1'000'000'000);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, UnitBudgetExpiresExactly) {
  Deadline d = Deadline::AfterUnits(3);
  EXPECT_FALSE(d.Expired());
  d.Charge();
  d.Charge();
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.UnitsLeft(), 1);
  d.Charge();
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, BulkChargeCanOvershoot) {
  Deadline d = Deadline::AfterUnits(10);
  d.Charge(25);
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.UnitsLeft(), 0);
}

TEST(DeadlineTest, WallClockDeadlineExpires) {
  Deadline d = Deadline::AfterSeconds(0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, WallClockFutureNotYetExpired) {
  Deadline d = Deadline::AfterSeconds(60.0);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ChargeIgnoredInWallClockMode) {
  Deadline d = Deadline::AfterSeconds(60.0);
  d.Charge(1'000'000);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.UnitsLeft(), 0);
}

}  // namespace
}  // namespace vs
