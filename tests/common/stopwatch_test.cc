#include "common/stopwatch.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vs {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, MicrosConsistentWithSeconds) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const int64_t us = sw.ElapsedMicros();
  const double s = sw.ElapsedSeconds();
  EXPECT_LE(static_cast<double>(us) / 1e6, s + 1e-3);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  d.Charge(1'000'000'000);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, UnitBudgetExpiresExactly) {
  Deadline d = Deadline::AfterUnits(3);
  EXPECT_FALSE(d.Expired());
  d.Charge();
  d.Charge();
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.UnitsLeft(), 1);
  d.Charge();
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, BulkChargeCanOvershoot) {
  Deadline d = Deadline::AfterUnits(10);
  d.Charge(25);
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.UnitsLeft(), 0);
}

TEST(DeadlineTest, WallClockDeadlineExpires) {
  Deadline d = Deadline::AfterSeconds(0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, WallClockFutureNotYetExpired) {
  Deadline d = Deadline::AfterSeconds(60.0);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ChargeIgnoredInWallClockMode) {
  Deadline d = Deadline::AfterSeconds(60.0);
  d.Charge(1'000'000);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.UnitsLeft(), 0);
}

TEST(DeadlineTest, InfiniteRemainingUsesSentinels) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
  EXPECT_GT(d.RemainingSeconds(), 0.0);
  EXPECT_EQ(d.RemainingUnits(), Deadline::kNoUnitLimit);
}

TEST(DeadlineTest, RemainingUnitsTracksChargesAndClamps) {
  Deadline d = Deadline::AfterUnits(5);
  EXPECT_EQ(d.RemainingUnits(), 5);
  // No wall-clock bound applies in unit mode.
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
  d.Charge(2);
  EXPECT_EQ(d.RemainingUnits(), 3);
  d.Charge(10);  // overshoot clamps to zero, never negative
  EXPECT_EQ(d.RemainingUnits(), 0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, RemainingSecondsBoundedByBudget) {
  Deadline d = Deadline::AfterSeconds(60.0);
  const double remaining = d.RemainingSeconds();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 60.0);
  // No unit budget applies in wall-clock mode.
  EXPECT_EQ(d.RemainingUnits(), Deadline::kNoUnitLimit);

  Deadline expired = Deadline::AfterSeconds(0.0);
  EXPECT_DOUBLE_EQ(expired.RemainingSeconds(), 0.0);  // clamped, not negative
}

}  // namespace
}  // namespace vs
