#include "data/predicate.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

Table TestTable() {
  auto schema = *Schema::Make({
      {"city", DataType::kString, FieldRole::kDimension},
      {"age", DataType::kInt64, FieldRole::kMeasure},
      {"score", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  // row 0..5
  EXPECT_TRUE(b.AppendRow({Value("nyc"), Value(int64_t{25}), Value(0.5)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("sf"), Value(int64_t{30}), Value(0.9)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("nyc"), Value(int64_t{35}), Value(0.1)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("la"), Value(int64_t{40}), Value(0.7)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(), Value(int64_t{45}), Value(0.3)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("sf"), Value(), Value(0.6)}).ok());
  return *b.Build();
}

TEST(PredicateTest, NumericComparisons) {
  Table t = TestTable();
  auto sel = SelectRows(t, Compare("age", CompareOp::kGe, Value(int64_t{35})));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelectionVector{2, 3, 4}));

  sel = SelectRows(t, Compare("age", CompareOp::kLt, Value(int64_t{30})));
  EXPECT_EQ(*sel, (SelectionVector{0}));

  sel = SelectRows(t, Compare("score", CompareOp::kEq, Value(0.7)));
  EXPECT_EQ(*sel, (SelectionVector{3}));

  sel = SelectRows(t, Compare("age", CompareOp::kNe, Value(int64_t{25})));
  // Null age (row 5) never matches, even under !=.
  EXPECT_EQ(*sel, (SelectionVector{1, 2, 3, 4}));
}

TEST(PredicateTest, CategoricalEquality) {
  Table t = TestTable();
  auto sel = SelectRows(t, Compare("city", CompareOp::kEq, Value("nyc")));
  EXPECT_EQ(*sel, (SelectionVector{0, 2}));

  sel = SelectRows(t, Compare("city", CompareOp::kNe, Value("nyc")));
  // Null city (row 4) excluded.
  EXPECT_EQ(*sel, (SelectionVector{1, 3, 5}));
}

TEST(PredicateTest, CategoricalEqualityAgainstUnknownLabel) {
  Table t = TestTable();
  auto sel = SelectRows(t, Compare("city", CompareOp::kEq, Value("tokyo")));
  EXPECT_TRUE(sel->empty());
  sel = SelectRows(t, Compare("city", CompareOp::kNe, Value("tokyo")));
  EXPECT_EQ(*sel, (SelectionVector{0, 1, 2, 3, 5}));
}

TEST(PredicateTest, CategoricalOrderingIsLexicographic) {
  Table t = TestTable();
  auto sel = SelectRows(t, Compare("city", CompareOp::kLt, Value("nyc")));
  EXPECT_EQ(*sel, (SelectionVector{3}));  // only "la"
}

TEST(PredicateTest, InSetCategorical) {
  Table t = TestTable();
  auto sel = SelectRows(t, InSet("city", {Value("sf"), Value("la"),
                                          Value("unknown")}));
  EXPECT_EQ(*sel, (SelectionVector{1, 3, 5}));
}

TEST(PredicateTest, InSetNumeric) {
  Table t = TestTable();
  auto sel = SelectRows(t, InSet("age", {Value(int64_t{25}),
                                         Value(int64_t{45})}));
  EXPECT_EQ(*sel, (SelectionVector{0, 4}));
}

TEST(PredicateTest, BetweenIsHalfOpen) {
  Table t = TestTable();
  auto sel = SelectRows(t, Between("age", 30.0, 40.0));
  EXPECT_EQ(*sel, (SelectionVector{1, 2}));  // 40 excluded
}

TEST(PredicateTest, AndOrNot) {
  Table t = TestTable();
  auto nyc = Compare("city", CompareOp::kEq, Value("nyc"));
  auto young = Compare("age", CompareOp::kLe, Value(int64_t{30}));
  auto sel = SelectRows(t, And({nyc, young}));
  EXPECT_EQ(*sel, (SelectionVector{0}));

  sel = SelectRows(t, Or({nyc, young}));
  EXPECT_EQ(*sel, (SelectionVector{0, 1, 2}));

  sel = SelectRows(t, Not(nyc));
  EXPECT_EQ(*sel, (SelectionVector{1, 3, 4, 5}));  // pure complement
}

TEST(PredicateTest, TrueAndEmptyOr) {
  Table t = TestTable();
  auto all = SelectRows(t, True());
  EXPECT_EQ(all->size(), 6u);
  auto none = SelectRows(t, Or({}));
  EXPECT_TRUE(none->empty());
}

TEST(PredicateTest, NullPredicateSelectsEverything) {
  Table t = TestTable();
  auto sel = SelectRows(t, static_cast<const Predicate*>(nullptr));
  EXPECT_EQ(sel->size(), 6u);
}

TEST(PredicateTest, UnknownColumnIsNotFound) {
  Table t = TestTable();
  auto sel = SelectRows(t, Compare("bogus", CompareOp::kEq, Value(1.0)));
  EXPECT_FALSE(sel.ok());
  EXPECT_TRUE(sel.status().IsNotFound());
}

TEST(PredicateTest, TypeMismatchesRejected) {
  Table t = TestTable();
  EXPECT_FALSE(
      SelectRows(t, Compare("city", CompareOp::kEq, Value(1.0))).ok());
  EXPECT_FALSE(
      SelectRows(t, Compare("age", CompareOp::kEq, Value("x"))).ok());
  EXPECT_FALSE(SelectRows(t, Compare("age", CompareOp::kEq, Value())).ok());
  EXPECT_FALSE(SelectRows(t, InSet("city", {Value(1.0)})).ok());
  EXPECT_FALSE(SelectRows(t, Between("city", 0.0, 1.0)).ok());
}

TEST(PredicateTest, ToStringRendersTree) {
  auto p = And({Compare("age", CompareOp::kGe, Value(int64_t{30})),
                Not(Compare("city", CompareOp::kEq, Value("nyc")))});
  EXPECT_EQ(p->ToString(), "(age >= 30 AND NOT city == nyc)");
}

TEST(CompareOpTest, Names) {
  EXPECT_EQ(CompareOpName(CompareOp::kEq), "==");
  EXPECT_EQ(CompareOpName(CompareOp::kNe), "!=");
  EXPECT_EQ(CompareOpName(CompareOp::kLe), "<=");
}

}  // namespace
}  // namespace vs::data
