#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/groupby.h"
#include "data/table.h"
#include "data/value.h"

namespace vs::data {
namespace {

// The prewarm contract (data/groupby.h): once every dimension a workload
// uses has been Prewarm()ed, no Execute/ExecuteBatch mix performs cache
// writes — num_cached_ranges() must not move — so the executor may be
// shared by concurrent readers.  Verified here on both the kernel path
// and the scalar oracle path.

Table MixedTable() {
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"i", DataType::kInt64, FieldRole::kDimension},
      {"m", DataType::kDouble, FieldRole::kMeasure},
  });
  Rng rng(5);
  TableBuilder b(schema);
  for (int r = 0; r < 500; ++r) {
    EXPECT_TRUE(b.AppendRow({Value("L" + std::to_string(rng.NextBounded(7))),
                             Value(rng.NextDouble() * 40.0),
                             Value(rng.NextInt64(0, 100)),
                             Value(rng.NextGaussian())})
                    .ok());
  }
  return *b.Build();
}

std::vector<GroupBySpec> WorkloadSpecs() {
  return {
      {"c", "m", AggregateFunction::kAvg, 0},
      {"x", "m", AggregateFunction::kSum, 6},
      {"x", "m", AggregateFunction::kMax, 6},
      {"i", "m", AggregateFunction::kCount, 4},
  };
}

TEST(GroupByBatchContractTest, NoCacheWritesAfterPrewarm) {
  Table table = MixedTable();
  for (const bool use_kernel : {false, true}) {
    SCOPED_TRACE(use_kernel ? "kernel" : "scalar");
    GroupByExecutorOptions options;
    options.use_kernel = use_kernel;
    GroupByExecutor executor(&table, options);
    EXPECT_EQ(executor.num_cached_ranges(), 0u);

    for (const GroupBySpec& spec : WorkloadSpecs()) {
      ASSERT_TRUE(executor.Prewarm(spec).ok());
    }
    // Two numeric dimensions -> two cached ranges; the categorical
    // prewarm is a no-op.
    const size_t warmed = executor.num_cached_ranges();
    EXPECT_EQ(warmed, 2u);

    SelectionVector some_rows = {1, 3, 5, 7, 400};
    for (const GroupBySpec& spec : WorkloadSpecs()) {
      ASSERT_TRUE(executor.Execute(spec, nullptr).ok());
      ASSERT_TRUE(executor.Execute(spec, &some_rows).ok());
      EXPECT_EQ(executor.num_cached_ranges(), warmed) << spec.ToString();
    }
    // Shared-scan batches over each dimension group, same invariant.
    std::vector<GroupBySpec> numeric_batch = {
        {"x", "m", AggregateFunction::kSum, 6},
        {"x", "m", AggregateFunction::kMin, 6},
        {"x", "m", AggregateFunction::kAvg, 6},
    };
    ASSERT_TRUE(executor.ExecuteBatch(numeric_batch, nullptr).ok());
    ASSERT_TRUE(executor.ExecuteBatch(numeric_batch, &some_rows).ok());
    EXPECT_EQ(executor.num_cached_ranges(), warmed);
  }
}

TEST(GroupByBatchContractTest, PrewarmIsIdempotent) {
  Table table = MixedTable();
  GroupByExecutor executor(&table, {});
  const GroupBySpec spec{"x", "m", AggregateFunction::kSum, 6};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(executor.Prewarm(spec).ok());
    EXPECT_EQ(executor.num_cached_ranges(), 1u);
  }
  // A different bin count over the same dimension reuses the cached
  // range: the cache is keyed by dimension, not by binning.
  ASSERT_TRUE(
      executor.Execute({"x", "m", AggregateFunction::kSum, 9}, nullptr).ok());
  EXPECT_EQ(executor.num_cached_ranges(), 1u);
}

// Identity between batch and per-spec execution is part of the batch
// contract (and what makes the prewarm invariant meaningful: the batch
// must not take a different, cache-writing route).
TEST(GroupByBatchContractTest, BatchIdenticalToPerSpecOnBothPaths) {
  Table table = MixedTable();
  std::vector<GroupBySpec> batch = {
      {"c", "m", AggregateFunction::kCount, 0},
      {"c", "m", AggregateFunction::kSum, 0},
      {"c", "m", AggregateFunction::kAvg, 0},
      {"c", "m", AggregateFunction::kMin, 0},
      {"c", "m", AggregateFunction::kMax, 0},
  };
  SelectionVector evens;
  for (uint32_t r = 0; r < table.num_rows(); r += 2) evens.push_back(r);

  for (const bool use_kernel : {false, true}) {
    SCOPED_TRACE(use_kernel ? "kernel" : "scalar");
    GroupByExecutorOptions options;
    options.use_kernel = use_kernel;
    GroupByExecutor executor(&table, options);
    auto results = executor.ExecuteBatch(batch, &evens);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), batch.size());
    for (size_t s = 0; s < batch.size(); ++s) {
      auto single = executor.Execute(batch[s], &evens);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(single->bin_labels, (*results)[s].bin_labels);
      EXPECT_EQ(single->counts, (*results)[s].counts);
      EXPECT_EQ(single->values, (*results)[s].values);
      EXPECT_EQ(single->sums, (*results)[s].sums);
      EXPECT_EQ(single->sumsqs, (*results)[s].sumsqs);
      EXPECT_EQ(single->rows_seen, (*results)[s].rows_seen);
    }
  }
}

// Batch validation: mixed dimensions or bin counts are rejected up front
// on both paths, with matching status codes.
TEST(GroupByBatchContractTest, MixedDimensionBatchRejectedOnBothPaths) {
  Table table = MixedTable();
  const std::vector<GroupBySpec> mixed_dim = {
      {"c", "m", AggregateFunction::kSum, 0},
      {"x", "m", AggregateFunction::kSum, 6},
  };
  const std::vector<GroupBySpec> mixed_bins = {
      {"x", "m", AggregateFunction::kSum, 6},
      {"x", "m", AggregateFunction::kSum, 7},
  };
  for (const bool use_kernel : {false, true}) {
    GroupByExecutorOptions options;
    options.use_kernel = use_kernel;
    GroupByExecutor executor(&table, options);
    for (const auto* batch : {&mixed_dim, &mixed_bins}) {
      auto r = executor.ExecuteBatch(*batch, nullptr);
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace vs::data
