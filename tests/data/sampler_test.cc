#include "data/sampler.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace vs::data {
namespace {

TEST(BernoulliSampleTest, RateZeroAndOne) {
  vs::Rng rng(1);
  EXPECT_TRUE(BernoulliSample(100, 0.0, &rng).empty());
  auto all = BernoulliSample(100, 1.0, &rng);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 99u);
}

TEST(BernoulliSampleTest, RateApproximatelyRespected) {
  vs::Rng rng(2);
  auto sel = BernoulliSample(100000, 0.1, &rng);
  EXPECT_NEAR(static_cast<double>(sel.size()) / 100000.0, 0.1, 0.01);
}

TEST(BernoulliSampleTest, OutputIsSortedAndUnique) {
  vs::Rng rng(3);
  auto sel = BernoulliSample(10000, 0.3, &rng);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
  EXPECT_EQ(std::adjacent_find(sel.begin(), sel.end()), sel.end());
}

TEST(BernoulliSampleTest, Deterministic) {
  vs::Rng a(42);
  vs::Rng b(42);
  EXPECT_EQ(BernoulliSample(1000, 0.5, &a), BernoulliSample(1000, 0.5, &b));
}

TEST(BernoulliSampleTest, OfSelectionSubsets) {
  vs::Rng rng(4);
  SelectionVector base = {5, 10, 15, 20, 25, 30};
  auto sub = BernoulliSample(base, 0.5, &rng);
  for (uint32_t r : sub) {
    EXPECT_TRUE(std::binary_search(base.begin(), base.end(), r));
  }
  vs::Rng rng2(5);
  EXPECT_EQ(BernoulliSample(base, 1.0, &rng2), base);
}

TEST(ReservoirSampleTest, ExactSize) {
  vs::Rng rng(6);
  EXPECT_EQ(ReservoirSample(100, 10, &rng).size(), 10u);
  EXPECT_EQ(ReservoirSample(5, 10, &rng).size(), 5u);  // k > n
  EXPECT_TRUE(ReservoirSample(0, 10, &rng).empty());
  EXPECT_TRUE(ReservoirSample(10, 0, &rng).empty());
}

TEST(ReservoirSampleTest, SortedUniqueInRange) {
  vs::Rng rng(7);
  auto sel = ReservoirSample(1000, 100, &rng);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
  EXPECT_EQ(std::adjacent_find(sel.begin(), sel.end()), sel.end());
  EXPECT_LT(sel.back(), 1000u);
}

TEST(ReservoirSampleTest, UniformCoverage) {
  // Each of 10 items should appear in ~half of many size-5 samples.
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    vs::Rng rng(1000 + trial);
    for (uint32_t r : ReservoirSample(10, 5, &rng)) ++hits[r];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / 2000.0, 0.5, 0.05);
  }
}

TEST(ReservoirSampleTest, OfSelectionDrawsFromSelection) {
  vs::Rng rng(8);
  SelectionVector base = {2, 4, 8, 16, 32};
  auto sub = ReservoirSample(base, 3, &rng);
  EXPECT_EQ(sub.size(), 3u);
  for (uint32_t r : sub) {
    EXPECT_TRUE(std::binary_search(base.begin(), base.end(), r));
  }
}

TEST(StratifiedSampleTest, PerStratumQuota) {
  // 100 rows of stratum 0, 10 rows of stratum 1.
  std::vector<int32_t> strata;
  for (int i = 0; i < 100; ++i) strata.push_back(0);
  for (int i = 0; i < 10; ++i) strata.push_back(1);
  vs::Rng rng(9);
  auto sel = StratifiedSample(strata, 2, 0.2, &rng);
  ASSERT_TRUE(sel.ok());
  int s0 = 0;
  int s1 = 0;
  for (uint32_t r : *sel) {
    (strata[r] == 0 ? s0 : s1)++;
  }
  EXPECT_EQ(s0, 20);  // ceil(0.2 * 100)
  EXPECT_EQ(s1, 2);   // ceil(0.2 * 10)
}

TEST(StratifiedSampleTest, InvalidInputs) {
  vs::Rng rng(10);
  std::vector<int32_t> strata = {0, 1, 2};
  EXPECT_FALSE(StratifiedSample(strata, 0, 0.5, &rng).ok());
  EXPECT_FALSE(StratifiedSample(strata, 2, 0.5, &rng).ok());  // code 2 oob
}

TEST(StratifiedSampleTest, SortedOutput) {
  std::vector<int32_t> strata;
  for (int i = 0; i < 50; ++i) strata.push_back(i % 3);
  vs::Rng rng(11);
  auto sel = StratifiedSample(strata, 3, 0.4, &rng);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(std::is_sorted(sel->begin(), sel->end()));
}

}  // namespace
}  // namespace vs::data
