#include "data/io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace vs::data {
namespace {

Table MixedTable() {
  auto schema = *Schema::Make({
      {"city", DataType::kString, FieldRole::kDimension},
      {"count", DataType::kInt64, FieldRole::kMeasure},
      {"score", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  EXPECT_TRUE(
      b.AppendRow({Value("nyc"), Value(int64_t{5}), Value(1.25)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(), Value(int64_t{-3}), Value()}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value("sf"), Value(), Value(-0.5)}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value("nyc"), Value(int64_t{7}), Value(3.75)}).ok());
  return *b.Build();
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  EXPECT_TRUE(a.schema() == b.schema());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.GetValue(r, c), b.GetValue(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(TableIoTest, RoundTripPreservesEverything) {
  Table t = MixedTable();
  auto bytes = SerializeTable(t);
  ASSERT_TRUE(bytes.ok());
  auto back = DeserializeTable(*bytes);
  ASSERT_TRUE(back.ok());
  ExpectTablesEqual(t, *back);
}

TEST(TableIoTest, RoundTripPreservesDictionaryOrder) {
  Table t = MixedTable();
  auto back = DeserializeTable(*SerializeTable(t));
  ASSERT_TRUE(back.ok());
  const auto* orig = *t.CategoricalColumnByName("city");
  const auto* loaded = *back->CategoricalColumnByName("city");
  EXPECT_EQ(orig->dictionary(), loaded->dictionary());
  EXPECT_EQ(orig->codes(), loaded->codes());
}

TEST(TableIoTest, RoundTripPreservesRoles) {
  Table t = MixedTable();
  auto back = DeserializeTable(*SerializeTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->schema().field(0).role, FieldRole::kDimension);
  EXPECT_EQ(back->schema().field(1).role, FieldRole::kMeasure);
}

TEST(TableIoTest, EmptyTableRoundTrips) {
  auto schema = *Schema::Make({{"v", DataType::kDouble, FieldRole::kMeasure}});
  TableBuilder b(schema);
  Table t = *b.Build();
  auto back = DeserializeTable(*SerializeTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 1u);
}

TEST(TableIoTest, GeneratedDatasetRoundTrips) {
  DiabetesOptions options;
  options.num_rows = 500;
  Table t = *GenerateDiabetes(options);
  auto back = DeserializeTable(*SerializeTable(t));
  ASSERT_TRUE(back.ok());
  ExpectTablesEqual(t, *back);
}

TEST(TableIoTest, RejectsBadMagicAndVersion) {
  EXPECT_FALSE(DeserializeTable("").ok());
  EXPECT_FALSE(DeserializeTable("XXXX").ok());
  Table t = MixedTable();
  std::string bytes = *SerializeTable(t);
  std::string bad_magic = bytes;
  bad_magic[0] = 'Z';
  EXPECT_FALSE(DeserializeTable(bad_magic).ok());
  std::string bad_version = bytes;
  bad_version[4] = 99;
  auto r = DeserializeTable(bad_version);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST(TableIoTest, RejectsTruncation) {
  Table t = MixedTable();
  std::string bytes = *SerializeTable(t);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    EXPECT_FALSE(DeserializeTable(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(TableIoTest, RejectsTrailingGarbage) {
  Table t = MixedTable();
  std::string bytes = *SerializeTable(t) + "extra";
  EXPECT_FALSE(DeserializeTable(bytes).ok());
}

TEST(TableIoTest, FileRoundTrip) {
  Table t = MixedTable();
  const std::string path = ::testing::TempDir() + "/vs_io_test.vst";
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  auto back = ReadTableFile(path);
  ASSERT_TRUE(back.ok());
  ExpectTablesEqual(t, *back);
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileIsIOError) {
  auto r = ReadTableFile("/nonexistent/file.vst");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

}  // namespace
}  // namespace vs::data
