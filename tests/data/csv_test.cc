#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace vs::data {
namespace {

TEST(CsvReadTest, InfersTypes) {
  const std::string text =
      "name,age,score\n"
      "alice,30,0.5\n"
      "bob,25,1.5\n";
  auto t = ReadCsv(text, {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(2).type, DataType::kDouble);
  EXPECT_EQ(t->GetValue(1, 0).str(), "bob");
  EXPECT_EQ(t->GetValue(0, 1).int64(), 30);
  EXPECT_DOUBLE_EQ(t->GetValue(1, 2).dbl(), 1.5);
}

TEST(CsvReadTest, DefaultRoles) {
  auto t = ReadCsv("s,n\nx,1\n", {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).role, FieldRole::kDimension);  // string
  EXPECT_EQ(t->schema().field(1).role, FieldRole::kMeasure);    // numeric
}

TEST(CsvReadTest, ExplicitRoles) {
  CsvReadOptions options;
  options.dimension_columns = {"n"};
  options.measure_columns = {"s"};
  auto t = ReadCsv("s,n,z\nx,1,2\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).role, FieldRole::kMeasure);
  EXPECT_EQ(t->schema().field(1).role, FieldRole::kDimension);
  EXPECT_EQ(t->schema().field(2).role, FieldRole::kOther);  // unlisted
}

TEST(CsvReadTest, EmptyCellsAreNulls) {
  auto t = ReadCsv("a,b\n1,\n,2\n", {});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
  EXPECT_TRUE(t->GetValue(1, 0).is_null());
  EXPECT_EQ(t->GetValue(0, 0).int64(), 1);
}

TEST(CsvReadTest, QuotedFieldsWithCommasAndEscapes) {
  const std::string text =
      "name,desc\n"
      "a,\"hello, world\"\n"
      "b,\"she said \"\"hi\"\"\"\n";
  auto t = ReadCsv(text, {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GetValue(0, 1).str(), "hello, world");
  EXPECT_EQ(t->GetValue(1, 1).str(), "she said \"hi\"");
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto t = ReadCsv("a,b\r\n1,2\r\n3,4\r\n", {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 1).int64(), 4);
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  CsvReadOptions options;
  options.has_header = false;
  auto t = ReadCsv("1,x\n2,y\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).name, "col0");
  EXPECT_EQ(t->schema().field(1).name, "col1");
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvReadTest, MaxRowsLimits) {
  CsvReadOptions options;
  options.max_rows = 1;
  auto t = ReadCsv("a\n1\n2\n3\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(CsvReadTest, MissingFinalNewlineOk) {
  auto t = ReadCsv("a,b\n1,2", {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(CsvReadTest, RaggedRowIsError) {
  EXPECT_FALSE(ReadCsv("a,b\n1\n", {}).ok());
}

TEST(CsvReadTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ReadCsv("a\n\"oops\n", {}).ok());
}

TEST(CsvReadTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsv("", {}).ok());
}

TEST(CsvReadTest, MixedNumbersPromoteToDouble) {
  auto t = ReadCsv("x\n1\n2.5\n", {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kDouble);
}

TEST(CsvRoundTripTest, WriteThenReadPreservesData) {
  auto schema = *Schema::Make({
      {"city", DataType::kString, FieldRole::kDimension},
      {"v", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({Value("a,b"), Value(1.25)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(), Value(-3.5)}).ok());
  Table t = *b.Build();

  std::string text = WriteCsv(t);
  auto back = ReadCsv(text, {});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->GetValue(0, 0).str(), "a,b");
  EXPECT_TRUE(back->GetValue(1, 0).is_null());
  EXPECT_DOUBLE_EQ(back->GetValue(1, 1).dbl(), -3.5);
}

TEST(CsvFileTest, RoundTripThroughDisk) {
  auto schema = *Schema::Make({{"v", DataType::kInt64, FieldRole::kMeasure}});
  TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({Value(int64_t{7})}).ok());
  Table t = *b.Build();

  const std::string path = ::testing::TempDir() + "/vs_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path, {});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetValue(0, 0).int64(), 7);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/path/file.csv", {});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

}  // namespace
}  // namespace vs::data
