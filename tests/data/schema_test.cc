#include "data/schema.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

Schema MakeTestSchema() {
  auto r = Schema::Make({
      {"region", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"sales", DataType::kDouble, FieldRole::kMeasure},
      {"cost", DataType::kDouble, FieldRole::kMeasure},
      {"note", DataType::kString, FieldRole::kOther},
  });
  return *r;
}

TEST(SchemaTest, MakeAndLookup) {
  Schema s = MakeTestSchema();
  EXPECT_EQ(s.num_fields(), 5u);
  EXPECT_EQ(*s.FieldIndex("sales"), 2u);
  EXPECT_EQ(s.field(0).name, "region");
  EXPECT_TRUE(s.HasField("cost"));
  EXPECT_FALSE(s.HasField("nope"));
}

TEST(SchemaTest, FieldIndexMissingIsNotFound) {
  Schema s = MakeTestSchema();
  auto r = s.FieldIndex("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto r = Schema::Make({
      {"a", DataType::kInt64, FieldRole::kDimension},
      {"a", DataType::kDouble, FieldRole::kMeasure},
  });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto r = Schema::Make({{"", DataType::kInt64, FieldRole::kMeasure}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RoleQueries) {
  Schema s = MakeTestSchema();
  EXPECT_EQ(s.FieldsWithRole(FieldRole::kDimension),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(s.FieldsWithRole(FieldRole::kMeasure),
            (std::vector<size_t>{2, 3}));
  EXPECT_EQ(s.NamesWithRole(FieldRole::kMeasure),
            (std::vector<std::string>{"sales", "cost"}));
  EXPECT_EQ(s.NamesWithRole(FieldRole::kOther),
            (std::vector<std::string>{"note"}));
}

TEST(SchemaTest, EmptySchemaIsValid) {
  auto r = Schema::Make({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_fields(), 0u);
}

TEST(SchemaTest, EqualityIsStructural) {
  EXPECT_EQ(MakeTestSchema(), MakeTestSchema());
  auto other = Schema::Make({{"x", DataType::kInt64, FieldRole::kMeasure}});
  EXPECT_FALSE(MakeTestSchema() == *other);
}

TEST(SchemaTest, ToStringMentionsEveryField) {
  std::string s = MakeTestSchema().ToString();
  EXPECT_NE(s.find("region:string:dimension"), std::string::npos);
  EXPECT_NE(s.find("sales:double:measure"), std::string::npos);
}

TEST(FieldRoleTest, Names) {
  EXPECT_EQ(FieldRoleName(FieldRole::kDimension), "dimension");
  EXPECT_EQ(FieldRoleName(FieldRole::kMeasure), "measure");
  EXPECT_EQ(FieldRoleName(FieldRole::kOther), "other");
}

}  // namespace
}  // namespace vs::data
