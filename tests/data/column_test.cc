#include "data/column.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

TEST(Int64ColumnTest, AppendAndRead) {
  Int64Column col;
  col.Append(1);
  col.Append(-2);
  col.Append(3);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.at(1), -2);
  EXPECT_EQ(col.type(), DataType::kInt64);
  EXPECT_EQ(col.null_count(), 0u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_EQ(col.GetValue(2).int64(), 3);
}

TEST(Int64ColumnTest, NullHandling) {
  Int64Column col;
  col.Append(1);
  col.AppendNull();
  col.Append(2);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_TRUE(col.GetValue(1).is_null());
}

TEST(Int64ColumnTest, FromVectorIsNullFree) {
  Int64Column col({10, 20, 30});
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.null_count(), 0u);
  EXPECT_EQ(col.data()[2], 30);
}

TEST(Int64ColumnTest, NullBackfillAfterValidPrefix) {
  Int64Column col;
  for (int i = 0; i < 5; ++i) col.Append(i);
  col.AppendNull();  // triggers mask backfill
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(col.IsNull(i));
  EXPECT_TRUE(col.IsNull(5));
}

TEST(DoubleColumnTest, AppendAndRead) {
  DoubleColumn col;
  col.Append(0.5);
  col.AppendNull();
  EXPECT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col.at(0), 0.5);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.type(), DataType::kDouble);
}

TEST(CategoricalColumnTest, DictionaryEncoding) {
  CategoricalColumn col;
  col.Append("red");
  col.Append("blue");
  col.Append("red");
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.cardinality(), 2);
  EXPECT_EQ(col.code(0), col.code(2));
  EXPECT_NE(col.code(0), col.code(1));
  EXPECT_EQ(col.label(col.code(1)), "blue");
  EXPECT_EQ(col.GetValue(2).str(), "red");
}

TEST(CategoricalColumnTest, CodeForLookup) {
  CategoricalColumn col;
  col.Append("a");
  col.Append("b");
  EXPECT_EQ(*col.CodeFor("b"), 1);
  auto missing = col.CodeFor("zzz");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(CategoricalColumnTest, Nulls) {
  CategoricalColumn col;
  col.Append("x");
  col.AppendNull();
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.code(1), CategoricalColumn::kNullCode);
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.cardinality(), 1);  // null adds no dictionary entry
}

TEST(CategoricalColumnTest, InternWithoutAppend) {
  CategoricalColumn col;
  int32_t a = col.InternLabel("a");
  int32_t b = col.InternLabel("b");
  int32_t a2 = col.InternLabel("a");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(col.cardinality(), 2);
}

TEST(CategoricalColumnTest, AppendCodeReusesDictionary) {
  CategoricalColumn col;
  col.InternLabel("only");
  col.AppendCode(0);
  col.AppendCode(0);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.GetValue(1).str(), "only");
}

TEST(CategoricalColumnTest, DictionaryPreservesInsertionOrder) {
  CategoricalColumn col;
  col.Append("z");
  col.Append("a");
  col.Append("m");
  EXPECT_EQ(col.dictionary(),
            (std::vector<std::string>{"z", "a", "m"}));
}

}  // namespace
}  // namespace vs::data
