#include "data/groupby.h"

#include <gtest/gtest.h>

#include "data/predicate.h"

namespace vs::data {
namespace {

Table CategoricalTable() {
  auto schema = *Schema::Make({
      {"color", DataType::kString, FieldRole::kDimension},
      {"v", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  EXPECT_TRUE(b.AppendRow({Value("red"), Value(1.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("blue"), Value(2.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("red"), Value(3.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("green"), Value(4.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("blue"), Value(6.0)}).ok());
  return *b.Build();
}

Table NumericDimTable() {
  auto schema = *Schema::Make({
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"v", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  // x in [0, 10]: values 0, 2.5, 5, 7.5, 10
  for (double x : {0.0, 2.5, 5.0, 7.5, 10.0}) {
    EXPECT_TRUE(b.AppendRow({Value(x), Value(x * 10.0)}).ok());
  }
  return *b.Build();
}

TEST(GroupByTest, SumPerCategory) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  auto r = ex.Execute({"color", "v", AggregateFunction::kSum, 0}, nullptr);
  ASSERT_TRUE(r.ok());
  // Dictionary order: red, blue, green.
  EXPECT_EQ(r->bin_labels,
            (std::vector<std::string>{"red", "blue", "green"}));
  EXPECT_DOUBLE_EQ(r->values[0], 4.0);
  EXPECT_DOUBLE_EQ(r->values[1], 8.0);
  EXPECT_DOUBLE_EQ(r->values[2], 4.0);
  EXPECT_EQ(r->counts, (std::vector<int64_t>{2, 2, 1}));
  EXPECT_EQ(r->rows_seen, 5);
}

TEST(GroupByTest, AllFiveAggregatesOnOneGroup) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  struct Case {
    AggregateFunction f;
    double red;
  };
  // red values: 1, 3
  for (const auto& [f, expected] :
       {Case{AggregateFunction::kCount, 2.0}, Case{AggregateFunction::kSum, 4.0},
        Case{AggregateFunction::kAvg, 2.0}, Case{AggregateFunction::kMin, 1.0},
        Case{AggregateFunction::kMax, 3.0}}) {
    auto r = ex.Execute({"color", "v", f, 0}, nullptr);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->values[0], expected) << AggregateFunctionName(f);
  }
}

TEST(GroupByTest, SelectionRestrictsRowsButKeepsAllBins) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  SelectionVector sel = {0, 2};  // both red
  auto r = ex.Execute({"color", "v", AggregateFunction::kCount, 0}, &sel);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_bins(), 3u);  // bins from full table dictionary
  EXPECT_DOUBLE_EQ(r->values[0], 2.0);
  EXPECT_DOUBLE_EQ(r->values[1], 0.0);  // blue empty under selection
  EXPECT_DOUBLE_EQ(r->values[2], 0.0);
  EXPECT_EQ(r->rows_seen, 2);
}

TEST(GroupByTest, EmptySelectionYieldsZeroBins) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  SelectionVector sel;
  auto r = ex.Execute({"color", "v", AggregateFunction::kSum, 0}, &sel);
  ASSERT_TRUE(r.ok());
  for (double v : r->values) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(r->rows_seen, 0);
}

TEST(GroupByTest, NumericBinning) {
  Table t = NumericDimTable();
  GroupByExecutor ex(&t);
  auto r = ex.Execute({"x", "v", AggregateFunction::kCount, 2}, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_bins(), 2u);
  // Range [0, 10], width 5: bin0 = [0,5) -> {0, 2.5}, bin1 = [5,10] -> {5, 7.5, 10}.
  EXPECT_DOUBLE_EQ(r->values[0], 2.0);
  EXPECT_DOUBLE_EQ(r->values[1], 3.0);
}

TEST(GroupByTest, MaxValueLandsInLastBin) {
  Table t = NumericDimTable();
  GroupByExecutor ex(&t);
  auto r = ex.Execute({"x", "v", AggregateFunction::kMax, 4}, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_bins(), 4u);
  EXPECT_DOUBLE_EQ(r->values[3], 100.0);  // x = 10 -> v = 100 in last bin
}

TEST(GroupByTest, NumericBinsDerivedFromFullTableUnderSelection) {
  Table t = NumericDimTable();
  GroupByExecutor ex(&t);
  SelectionVector sel = {0, 1};  // x = 0, 2.5 only
  auto r = ex.Execute({"x", "v", AggregateFunction::kCount, 2}, &sel);
  ASSERT_TRUE(r.ok());
  // Bin edges still [0,5), [5,10]: both selected rows in bin 0.
  EXPECT_DOUBLE_EQ(r->values[0], 2.0);
  EXPECT_DOUBLE_EQ(r->values[1], 0.0);
}

TEST(GroupByTest, SumsAndSumsqsExposed) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  auto r = ex.Execute({"color", "v", AggregateFunction::kAvg, 0}, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->sums[0], 4.0);     // red: 1 + 3
  EXPECT_DOUBLE_EQ(r->sumsqs[0], 10.0);  // 1 + 9
}

TEST(GroupByTest, NullsExcluded) {
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"v", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({Value("a"), Value(1.0)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(), Value(2.0)}).ok());      // null dim
  ASSERT_TRUE(b.AppendRow({Value("a"), Value()}).ok());      // null measure
  Table t = *b.Build();
  GroupByExecutor ex(&t);
  auto r = ex.Execute({"c", "v", AggregateFunction::kCount, 0}, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->values[0], 1.0);  // only row 0 counts
}

TEST(GroupByTest, ErrorsOnBadSpecs) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  // Categorical dim with bins.
  EXPECT_FALSE(
      ex.Execute({"color", "v", AggregateFunction::kSum, 3}, nullptr).ok());
  // Unknown columns.
  EXPECT_FALSE(
      ex.Execute({"bogus", "v", AggregateFunction::kSum, 0}, nullptr).ok());
  EXPECT_FALSE(
      ex.Execute({"color", "bogus", AggregateFunction::kSum, 0}, nullptr)
          .ok());
  // Non-numeric measure.
  EXPECT_FALSE(
      ex.Execute({"color", "color", AggregateFunction::kSum, 0}, nullptr)
          .ok());
}

TEST(GroupByTest, NumericDimWithoutBinsIsError) {
  Table t = NumericDimTable();
  GroupByExecutor ex(&t);
  EXPECT_FALSE(
      ex.Execute({"x", "v", AggregateFunction::kSum, 0}, nullptr).ok());
}

TEST(GroupByTest, OutOfRangeSelectionIsError) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  SelectionVector sel = {99};
  EXPECT_FALSE(
      ex.Execute({"color", "v", AggregateFunction::kSum, 0}, &sel).ok());
}

TEST(GroupByTest, NumBinsReporting) {
  Table cat = CategoricalTable();
  GroupByExecutor ex(&cat);
  EXPECT_EQ(*ex.NumBins({"color", "v", AggregateFunction::kSum, 0}), 3);
  Table num = NumericDimTable();
  GroupByExecutor ex2(&num);
  EXPECT_EQ(*ex2.NumBins({"x", "v", AggregateFunction::kSum, 7}), 7);
}

TEST(ExecuteBatchTest, MatchesPerSpecExecution) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  std::vector<GroupBySpec> specs;
  for (AggregateFunction f : AllAggregateFunctions()) {
    specs.push_back({"color", "v", f, 0});
  }
  auto batch = ex.ExecuteBatch(specs, nullptr);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    auto single = ex.Execute(specs[s], nullptr);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[s].values, single->values) << specs[s].ToString();
    EXPECT_EQ((*batch)[s].counts, single->counts);
    EXPECT_EQ((*batch)[s].bin_labels, single->bin_labels);
    EXPECT_EQ((*batch)[s].rows_seen, single->rows_seen);
  }
}

TEST(ExecuteBatchTest, NumericDimensionWithSelection) {
  Table t = NumericDimTable();
  GroupByExecutor ex(&t);
  SelectionVector sel = {0, 2, 4};
  std::vector<GroupBySpec> specs = {
      {"x", "v", AggregateFunction::kSum, 3},
      {"x", "v", AggregateFunction::kMax, 3},
  };
  auto batch = ex.ExecuteBatch(specs, &sel);
  ASSERT_TRUE(batch.ok());
  for (size_t s = 0; s < specs.size(); ++s) {
    auto single = ex.Execute(specs[s], &sel);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[s].values, single->values);
  }
}

TEST(ExecuteBatchTest, MultipleMeasuresShareTheScan) {
  // Two measures over one dimension in one batch.
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"a", DataType::kDouble, FieldRole::kMeasure},
      {"b", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder builder(schema);
  ASSERT_TRUE(
      builder.AppendRow({Value("x"), Value(1.0), Value(10.0)}).ok());
  ASSERT_TRUE(
      builder.AppendRow({Value("y"), Value(2.0), Value(20.0)}).ok());
  Table t = *builder.Build();
  GroupByExecutor ex(&t);
  std::vector<GroupBySpec> specs = {
      {"c", "a", AggregateFunction::kSum, 0},
      {"c", "b", AggregateFunction::kSum, 0},
  };
  auto batch = ex.ExecuteBatch(specs, nullptr);
  ASSERT_TRUE(batch.ok());
  EXPECT_DOUBLE_EQ((*batch)[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ((*batch)[1].values[0], 10.0);
}

TEST(ExecuteBatchTest, Validation) {
  Table t = CategoricalTable();
  GroupByExecutor ex(&t);
  EXPECT_FALSE(ex.ExecuteBatch({}, nullptr).ok());
  // Mixed dimensions in one batch.
  std::vector<GroupBySpec> mixed = {
      {"color", "v", AggregateFunction::kSum, 0},
      {"v", "v", AggregateFunction::kSum, 2},
  };
  EXPECT_FALSE(ex.ExecuteBatch(mixed, nullptr).ok());
  // Bad selection.
  SelectionVector bad = {99};
  std::vector<GroupBySpec> ok_specs = {
      {"color", "v", AggregateFunction::kSum, 0}};
  EXPECT_FALSE(ex.ExecuteBatch(ok_specs, &bad).ok());
}

TEST(ExecuteQueryTest, FilterThenGroup) {
  Table t = CategoricalTable();
  AggregateQuery q;
  q.spec = {"color", "v", AggregateFunction::kSum, 0};
  q.filter = Compare("v", CompareOp::kGe, Value(3.0));
  auto r = ExecuteQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->values[0], 3.0);  // red keeps only v=3
  EXPECT_DOUBLE_EQ(r->values[1], 6.0);  // blue keeps only v=6
  EXPECT_DOUBLE_EQ(r->values[2], 4.0);  // green keeps v=4
}

TEST(GroupBySpecTest, ToStringFormat) {
  GroupBySpec s{"d", "m", AggregateFunction::kAvg, 4};
  EXPECT_EQ(s.ToString(), "AVG(m) GROUP BY d [4 bins]");
  GroupBySpec c{"d", "m", AggregateFunction::kCount, 0};
  EXPECT_EQ(c.ToString(), "COUNT(m) GROUP BY d");
}

}  // namespace
}  // namespace vs::data
