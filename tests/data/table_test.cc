#include "data/table.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

Schema SalesSchema() {
  return *Schema::Make({
      {"region", DataType::kString, FieldRole::kDimension},
      {"units", DataType::kInt64, FieldRole::kMeasure},
      {"revenue", DataType::kDouble, FieldRole::kMeasure},
  });
}

Table SmallTable() {
  TableBuilder b(SalesSchema());
  EXPECT_TRUE(b.AppendRow({Value("east"), Value(int64_t{3}), Value(30.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("west"), Value(int64_t{5}), Value(55.5)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("east"), Value(int64_t{2}), Value(20.0)}).ok());
  return *b.Build();
}

TEST(TableBuilderTest, BuildsWithCorrectShape) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.GetValue(1, 0).str(), "west");
  EXPECT_EQ(t.GetValue(1, 1).int64(), 5);
  EXPECT_DOUBLE_EQ(t.GetValue(1, 2).dbl(), 55.5);
}

TEST(TableBuilderTest, RejectsWrongArity) {
  TableBuilder b(SalesSchema());
  auto s = b.AppendRow({Value("east"), Value(int64_t{3})});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(b.num_rows(), 0u);
}

TEST(TableBuilderTest, RejectsTypeMismatch) {
  TableBuilder b(SalesSchema());
  auto s = b.AppendRow({Value(int64_t{1}), Value(int64_t{3}), Value(1.0)});
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(TableBuilderTest, FailedAppendLeavesBuilderConsistent) {
  TableBuilder b(SalesSchema());
  // Last cell bad: no column may be partially appended.
  auto s = b.AppendRow({Value("x"), Value(int64_t{1}), Value("oops")});
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(b.AppendRow({Value("y"), Value(int64_t{2}), Value(2.0)}).ok());
  Table t = *b.Build();
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetValue(0, 0).str(), "y");
}

TEST(TableBuilderTest, WidensIntToDouble) {
  TableBuilder b(SalesSchema());
  ASSERT_TRUE(
      b.AppendRow({Value("e"), Value(int64_t{1}), Value(int64_t{10})}).ok());
  Table t = *b.Build();
  EXPECT_DOUBLE_EQ(t.GetValue(0, 2).dbl(), 10.0);
}

TEST(TableBuilderTest, AcceptsNullsAnywhere) {
  TableBuilder b(SalesSchema());
  ASSERT_TRUE(b.AppendRow({Value(), Value(), Value()}).ok());
  Table t = *b.Build();
  EXPECT_TRUE(t.GetValue(0, 0).is_null());
  EXPECT_TRUE(t.GetValue(0, 1).is_null());
  EXPECT_TRUE(t.GetValue(0, 2).is_null());
}

TEST(TableTest, ColumnByNameAndTyped) {
  Table t = SmallTable();
  ASSERT_TRUE(t.ColumnByName("region").ok());
  EXPECT_FALSE(t.ColumnByName("bogus").ok());
  ASSERT_TRUE(t.CategoricalColumnByName("region").ok());
  ASSERT_TRUE(t.Int64ColumnByName("units").ok());
  ASSERT_TRUE(t.DoubleColumnByName("revenue").ok());
  EXPECT_FALSE(t.DoubleColumnByName("region").ok());
  EXPECT_FALSE(t.CategoricalColumnByName("units").ok());
}

TEST(TableTest, MakeRejectsLengthMismatch) {
  auto schema = *Schema::Make({
      {"a", DataType::kInt64, FieldRole::kMeasure},
      {"b", DataType::kInt64, FieldRole::kMeasure},
  });
  auto c1 = std::make_shared<Int64Column>(std::vector<int64_t>{1, 2});
  auto c2 = std::make_shared<Int64Column>(std::vector<int64_t>{1});
  EXPECT_FALSE(Table::Make(schema, {c1, c2}).ok());
}

TEST(TableTest, MakeRejectsTypeMismatch) {
  auto schema =
      *Schema::Make({{"a", DataType::kDouble, FieldRole::kMeasure}});
  auto c1 = std::make_shared<Int64Column>(std::vector<int64_t>{1});
  EXPECT_FALSE(Table::Make(schema, {c1}).ok());
}

TEST(TableTest, TakeMaterializesSubset) {
  Table t = SmallTable();
  auto sub = t.Take({0, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_rows(), 2u);
  EXPECT_EQ(sub->GetValue(0, 0).str(), "east");
  EXPECT_EQ(sub->GetValue(1, 1).int64(), 2);
}

TEST(TableTest, TakeRejectsUnsortedOrOutOfRange) {
  Table t = SmallTable();
  EXPECT_FALSE(t.Take({2, 0}).ok());
  EXPECT_FALSE(t.Take({0, 0}).ok());
  EXPECT_FALSE(t.Take({0, 99}).ok());
}

TEST(TableTest, AllRowsSelection) {
  Table t = SmallTable();
  SelectionVector all = t.AllRows();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 0u);
  EXPECT_EQ(all[2], 2u);
}

TEST(NumericColumnViewTest, WrapsBothNumericTypes) {
  Int64Column ints({1, 2});
  DoubleColumn dbls(std::vector<double>{0.5, 1.5});
  auto iv = NumericColumnView::Wrap(&ints);
  ASSERT_TRUE(iv.ok());
  EXPECT_DOUBLE_EQ(iv->at(1), 2.0);
  auto dv = NumericColumnView::Wrap(&dbls);
  ASSERT_TRUE(dv.ok());
  EXPECT_DOUBLE_EQ(dv->at(0), 0.5);
  EXPECT_EQ(dv->size(), 2u);
}

TEST(NumericColumnViewTest, RejectsCategorical) {
  CategoricalColumn cat;
  cat.Append("x");
  EXPECT_FALSE(NumericColumnView::Wrap(&cat).ok());
}

}  // namespace
}  // namespace vs::data
