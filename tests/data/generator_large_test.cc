#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"

namespace vs::data {
namespace {

/// Small-scale options the statistical pins run at: large enough for
/// tight frequency estimates, small enough for the unit label.
LargeScaleOptions SmallOptions() {
  LargeScaleOptions options;
  options.num_rows = 60'000;
  options.cardinalities = {8, 64};
  options.num_numeric_dims = 2;
  options.num_measures = 3;
  options.seed = 5;
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Normalized zipf level probabilities — the distribution CatCode samples.
std::vector<double> ZipfProbabilities(int32_t cardinality, double s) {
  std::vector<double> probs(static_cast<size_t>(cardinality));
  double total = 0.0;
  for (size_t l = 0; l < probs.size(); ++l) {
    probs[l] = 1.0 / std::pow(static_cast<double>(l + 1), s);
    total += probs[l];
  }
  for (double& p : probs) p /= total;
  return probs;
}

TEST(LargeScaleGeneratorTest, SchemaShape) {
  auto t = GenerateLargeScale(SmallOptions());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 60'000u);
  EXPECT_EQ(t->num_columns(), 7u);  // 2 categorical + 2 numeric + 3 measures
  EXPECT_EQ(t->schema().field(0).name, "g0");
  EXPECT_EQ(t->schema().field(2).name, "d0");
  EXPECT_EQ(t->schema().field(4).name, "m0");
  EXPECT_EQ(t->schema().FieldsWithRole(FieldRole::kDimension).size(), 4u);
  EXPECT_EQ(t->schema().FieldsWithRole(FieldRole::kMeasure).size(), 3u);
}

TEST(LargeScaleGeneratorTest, ZipfLevelFrequenciesMatchTheory) {
  const LargeScaleOptions options = SmallOptions();
  auto t = GenerateLargeScale(options);
  ASSERT_TRUE(t.ok());
  const auto* g0 = *t->CategoricalColumnByName("g0");
  ASSERT_EQ(g0->cardinality(), 8);
  std::vector<double> freq(8, 0.0);
  for (const int32_t code : g0->codes()) {
    freq[static_cast<size_t>(code)] += 1.0;
  }
  const auto n = static_cast<double>(t->num_rows());
  const std::vector<double> expected = ZipfProbabilities(8, options.zipf_s);
  for (size_t l = 0; l < 8; ++l) {
    // 60k draws: a 4-sigma band around p is well under ±0.01.
    EXPECT_NEAR(freq[l] / n, expected[l], 0.01) << "level " << l;
  }
  // Tail mass pin: the head level dominates and the distribution is
  // genuinely skewed, not uniform.
  EXPECT_GT(freq[0] / n, 1.5 * freq[7] / n);
}

TEST(LargeScaleGeneratorTest, DistinctCountsPerDimension) {
  auto t = GenerateLargeScale(SmallOptions());
  ASSERT_TRUE(t.ok());
  // With 60k rows every level of an 8-ary and a 64-ary zipf dimension is
  // hit (the rarest 64-ary level still has p ~ 0.2%, expectation > 100).
  for (const char* name : {"g0", "g1"}) {
    const auto* column = *t->CategoricalColumnByName(name);
    std::set<int32_t> distinct(column->codes().begin(),
                               column->codes().end());
    EXPECT_EQ(distinct.size(),
              static_cast<size_t>(column->cardinality()))
        << name;
  }
}

TEST(LargeScaleGeneratorTest, NumericDimsUniformAndMeasuresSkewed) {
  auto t = GenerateLargeScale(SmallOptions());
  ASSERT_TRUE(t.ok());
  const auto* d0 = *t->DoubleColumnByName("d0");
  double sum = 0.0;
  for (const double v : d0->data()) {
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / static_cast<double>(d0->size()), 0.5, 0.01);

  // Lognormal-ish measures: strictly positive with mean above median
  // (right skew) — the shape that makes tail-heavy aggregates realistic.
  const auto* m0 = *t->DoubleColumnByName("m0");
  std::vector<double> values(m0->data().begin(), m0->data().end());
  double mean = 0.0;
  for (const double v : values) {
    ASSERT_GT(v, 0.0);
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  EXPECT_GT(mean, values[values.size() / 2]);
}

TEST(LargeScaleGeneratorTest, ChunkSizeNeverChangesTheBytes) {
  // Counter-based generation makes the output a pure function of
  // (seed, column, row): streaming with a tiny chunk, a huge chunk, or a
  // chunk that straddles num_rows unevenly must give identical files.
  LargeScaleOptions options = SmallOptions();
  options.num_rows = 10'000;
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/vs_large_a.vst";
  const std::string path_b = dir + "/vs_large_b.vst";
  options.chunk_rows = 777;  // 10000 = 12*777 + 676: ragged final chunk
  ASSERT_TRUE(GenerateLargeScaleToFile(options, path_a).ok());
  options.chunk_rows = 1 << 20;  // one chunk holds everything
  ASSERT_TRUE(GenerateLargeScaleToFile(options, path_b).ok());
  const std::string bytes_a = ReadFileBytes(path_a);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, ReadFileBytes(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(LargeScaleGeneratorTest, StreamedFileMatchesInMemoryWriteExactly) {
  LargeScaleOptions options = SmallOptions();
  options.num_rows = 5'000;
  options.chunk_rows = 1'000;
  const std::string dir = ::testing::TempDir();
  const std::string streamed = dir + "/vs_large_streamed.vst";
  const std::string buffered = dir + "/vs_large_buffered.vst";
  ASSERT_TRUE(GenerateLargeScaleToFile(options, streamed).ok());
  auto table = GenerateLargeScale(options);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(WriteTableFile(*table, buffered).ok());
  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(buffered));

  auto bytes = LargeScaleFileBytes(options);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, ReadFileBytes(streamed).size());

  auto reread = ReadTableFile(streamed);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->num_rows(), 5'000u);
  std::remove(streamed.c_str());
  std::remove(buffered.c_str());
}

TEST(LargeScaleGeneratorTest, InvalidOptionsRejected) {
  LargeScaleOptions bad = SmallOptions();
  bad.num_rows = 0;
  EXPECT_FALSE(GenerateLargeScale(bad).ok());
  bad = SmallOptions();
  bad.num_rows = 500'000'000ULL;  // above the 200M guard
  EXPECT_FALSE(GenerateLargeScale(bad).ok());
  bad = SmallOptions();
  bad.cardinalities = {1};
  EXPECT_FALSE(GenerateLargeScale(bad).ok());
  bad = SmallOptions();
  bad.cardinalities.clear();
  bad.num_numeric_dims = 0;
  EXPECT_FALSE(GenerateLargeScale(bad).ok());
  bad = SmallOptions();
  bad.zipf_s = -0.1;
  EXPECT_FALSE(GenerateLargeScale(bad).ok());
  bad = SmallOptions();
  bad.chunk_rows = 0;
  EXPECT_FALSE(GenerateLargeScaleToFile(bad, "/tmp/never.vst").ok());
}

/// 10M+ rows streamed to disk — minutes of CPU, hundreds of MB. Runs only
/// under the stress ctest label (vs_generator_10m_smoke sets the env var);
/// plain unit invocations skip it.
TEST(LargeScaleGeneratorStressTest, TenMillionRowStreamedGeneration) {
  const char* rows_env = std::getenv("VS_LARGE_ROWS");
  if (rows_env == nullptr) {
    GTEST_SKIP() << "set VS_LARGE_ROWS=10000000 to run the 10M-row case";
  }
  LargeScaleOptions options;  // defaults: 10M rows, 3 cat + 2 num + 4 meas
  options.num_rows =
      static_cast<uint64_t>(std::strtoull(rows_env, nullptr, 10));
  ASSERT_GE(options.num_rows, 1'000'000u);
  const std::string path = ::testing::TempDir() + "/vs_large_10m.vst";
  auto expect_bytes = LargeScaleFileBytes(options);
  ASSERT_TRUE(expect_bytes.ok());
  ASSERT_TRUE(GenerateLargeScaleToFile(options, path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(static_cast<uint64_t>(in.tellg()), *expect_bytes);
  in.close();
  auto reread = ReadTableFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->num_rows(), options.num_rows);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vs::data
