#include "data/query.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

Table TestTable() {
  auto schema = *Schema::Make({
      {"region", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"sales", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  EXPECT_TRUE(
      b.AppendRow({Value("east"), Value(int64_t{2020}), Value(10.0)}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value("west"), Value(int64_t{2020}), Value(20.0)}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value("east"), Value(int64_t{2021}), Value(30.0)}).ok());
  EXPECT_TRUE(
      b.AppendRow({Value("west"), Value(int64_t{2021}), Value(40.0)}).ok());
  return *b.Build();
}

TEST(QueryParserTest, MinimalQuery) {
  auto q = ParseQuery("SELECT SUM(sales) FROM t GROUP BY region");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->table_name, "t");
  EXPECT_EQ(q->query.spec.measure, "sales");
  EXPECT_EQ(q->query.spec.dimension, "region");
  EXPECT_EQ(q->query.spec.func, AggregateFunction::kSum);
  EXPECT_EQ(q->query.spec.num_bins, 0);
  EXPECT_EQ(q->query.filter, nullptr);
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery("select avg(sales) from T group by region");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->query.spec.func, AggregateFunction::kAvg);
}

TEST(QueryParserTest, WhereConjunction) {
  auto q = ParseQuery(
      "SELECT MAX(sales) FROM t WHERE year >= 2021 AND region = 'east' "
      "GROUP BY region");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->query.filter, nullptr);
  EXPECT_NE(q->query.filter->ToString().find("AND"), std::string::npos);
}

TEST(QueryParserTest, BinsClause) {
  auto q = ParseQuery("SELECT COUNT(sales) FROM t GROUP BY year BINS 4");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->query.spec.num_bins, 4);
}

TEST(QueryParserTest, BetweenAndIn) {
  auto q = ParseQuery(
      "SELECT SUM(sales) FROM t WHERE sales BETWEEN 10 AND 35 AND region IN "
      "('east', 'west') GROUP BY region");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->query.filter, nullptr);
}

TEST(QueryParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM sales FROM t GROUP BY r").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(sales) FROM t").ok());  // no GROUP BY
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(sales) FROM t GROUP BY region trailing").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(sales) FROM t GROUP BY region BINS -2").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(sales) FROM t WHERE GROUP BY region").ok());
  EXPECT_FALSE(ParseQuery("SELECT MEDIAN(sales) FROM t GROUP BY r").ok());
}

TEST(QueryParserTest, UnterminatedStringIsError) {
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(s) FROM t WHERE r = 'oops GROUP BY r").ok());
}

TEST(QueryParserTest, CountStarNotSupported) {
  auto q = ParseQuery("SELECT COUNT(*) FROM t GROUP BY region");
  EXPECT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsNotSupported());
}

TEST(RunSqlTest, EndToEndAggregation) {
  Table t = TestTable();
  auto r = RunSql(t, "SELECT SUM(sales) FROM t GROUP BY region");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->bin_labels, (std::vector<std::string>{"east", "west"}));
  EXPECT_DOUBLE_EQ(r->values[0], 40.0);
  EXPECT_DOUBLE_EQ(r->values[1], 60.0);
}

TEST(RunSqlTest, FilteredAggregation) {
  Table t = TestTable();
  auto r = RunSql(
      t, "SELECT AVG(sales) FROM t WHERE year = 2021 GROUP BY region");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->values[0], 30.0);
  EXPECT_DOUBLE_EQ(r->values[1], 40.0);
}

TEST(RunSqlTest, NumericDimensionWithBins) {
  Table t = TestTable();
  auto r = RunSql(t, "SELECT COUNT(sales) FROM t GROUP BY year BINS 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_bins(), 2u);
  EXPECT_DOUBLE_EQ(r->values[0], 2.0);
  EXPECT_DOUBLE_EQ(r->values[1], 2.0);
}

TEST(RunSqlTest, UnknownColumnSurfacesAtExecution) {
  Table t = TestTable();
  EXPECT_FALSE(RunSql(t, "SELECT SUM(bogus) FROM t GROUP BY region").ok());
}

TEST(ParseFilterTest, SingleCondition) {
  Table t = TestTable();
  auto p = ParseFilter("region = 'east'");
  ASSERT_TRUE(p.ok());
  auto sel = SelectRows(t, *p);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelectionVector{0, 2}));
}

TEST(ParseFilterTest, Conjunction) {
  Table t = TestTable();
  auto p = ParseFilter("region = 'east' AND year >= 2021");
  ASSERT_TRUE(p.ok());
  auto sel = SelectRows(t, *p);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelectionVector{2}));
}

TEST(ParseFilterTest, BetweenAndIn) {
  Table t = TestTable();
  auto p = ParseFilter(
      "sales BETWEEN 15 AND 35 AND region IN ('east', 'west')");
  ASSERT_TRUE(p.ok());
  auto sel = SelectRows(t, *p);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelectionVector{1, 2}));
}

TEST(ParseFilterTest, SyntaxErrors) {
  EXPECT_FALSE(ParseFilter("").ok());
  EXPECT_FALSE(ParseFilter("region =").ok());
  EXPECT_FALSE(ParseFilter("region = 'x' extra").ok());
  EXPECT_FALSE(ParseFilter("AND region = 'x'").ok());
}

TEST(ParseFilterTest, MatchesEquivalentFullQueryFilter) {
  Table t = TestTable();
  auto standalone = ParseFilter("year = 2020");
  auto full = ParseQuery(
      "SELECT SUM(sales) FROM t WHERE year = 2020 GROUP BY region");
  ASSERT_TRUE(standalone.ok() && full.ok());
  auto a = SelectRows(t, *standalone);
  auto b = SelectRows(t, full->query.filter);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace vs::data
