#include "data/value.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, TypedConstructors) {
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{7}).int64(), 7);
  EXPECT_DOUBLE_EQ(Value(1.5).dbl(), 1.5);
  EXPECT_EQ(Value("hi").str(), "hi");
}

TEST(ValueTest, AsDoubleCoercesNumericsOnly) {
  double out = 0.0;
  EXPECT_TRUE(Value(int64_t{3}).AsDouble(&out));
  EXPECT_DOUBLE_EQ(out, 3.0);
  EXPECT_TRUE(Value(2.5).AsDouble(&out));
  EXPECT_DOUBLE_EQ(out, 2.5);
  EXPECT_FALSE(Value("3").AsDouble(&out));
  EXPECT_FALSE(Value().AsDouble(&out));
}

TEST(ValueTest, NumericCompareAcrossKinds) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(3.0).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_GT(Value(int64_t{0}).Compare(Value()), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
  EXPECT_GT(Value("z").Compare(Value("a")), 0);
}

TEST(ValueTest, NumericsSortBeforeStrings) {
  EXPECT_LT(Value(int64_t{999}).Compare(Value("0")), 0);
  EXPECT_GT(Value("0").Compare(Value(999.0)), 0);
}

TEST(ValueTest, EqualityAndLess) {
  EXPECT_TRUE(Value(int64_t{4}) == Value(4.0));
  EXPECT_TRUE(Value(1.0) < Value(int64_t{2}));
  EXPECT_FALSE(Value("a") == Value("b"));
}

TEST(ValueTest, ToStringRendersByType) {
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("text").ToString(), "text");
  EXPECT_EQ(Value(0.5).ToString(), "0.5");
}

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataTypeName(DataType::kNull), "null");
  EXPECT_EQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_EQ(DataTypeName(DataType::kString), "string");
}

}  // namespace
}  // namespace vs::data
