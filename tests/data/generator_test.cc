#include "data/generator.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

SyntheticOptions SmallSyn() {
  SyntheticOptions options;
  options.num_rows = 5000;
  options.seed = 1;
  return options;
}

TEST(SyntheticGeneratorTest, ShapeMatchesOptions) {
  auto t = GenerateSynthetic(SmallSyn());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 5000u);
  EXPECT_EQ(t->num_columns(), 10u);  // 5 dims + 5 measures
  EXPECT_EQ(t->schema().FieldsWithRole(FieldRole::kDimension).size(), 5u);
  EXPECT_EQ(t->schema().FieldsWithRole(FieldRole::kMeasure).size(), 5u);
  EXPECT_EQ(t->schema().field(0).name, "d0");
  EXPECT_EQ(t->schema().field(5).name, "m0");
}

TEST(SyntheticGeneratorTest, ValuesInUnitInterval) {
  auto t = GenerateSynthetic(SmallSyn());
  ASSERT_TRUE(t.ok());
  for (size_t c = 0; c < t->num_columns(); ++c) {
    const auto* col =
        dynamic_cast<const DoubleColumn*>(t->column(c).get());
    ASSERT_NE(col, nullptr);
    for (size_t r = 0; r < 200; ++r) {
      EXPECT_GE(col->at(r), 0.0);
      EXPECT_LT(col->at(r), 1.0);
    }
  }
}

TEST(SyntheticGeneratorTest, DeterministicForSeed) {
  auto a = GenerateSynthetic(SmallSyn());
  auto b = GenerateSynthetic(SmallSyn());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a->GetValue(r, 3).dbl(), b->GetValue(r, 3).dbl());
  }
}

TEST(SyntheticGeneratorTest, DifferentSeedsDiffer) {
  SyntheticOptions o2 = SmallSyn();
  o2.seed = 2;
  auto a = GenerateSynthetic(SmallSyn());
  auto b = GenerateSynthetic(o2);
  int same = 0;
  for (size_t r = 0; r < 100; ++r) {
    if (a->GetValue(r, 0).dbl() == b->GetValue(r, 0).dbl()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SyntheticGeneratorTest, UniformMeansNearHalf) {
  auto t = GenerateSynthetic(SmallSyn());
  const auto* m0 = *t->DoubleColumnByName("m0");
  double sum = 0.0;
  for (double v : m0->data()) sum += v;
  EXPECT_NEAR(sum / m0->size(), 0.5, 0.03);
}

TEST(SyntheticGeneratorTest, CorrelationCouplesMeasuresToDims) {
  SyntheticOptions options = SmallSyn();
  options.num_rows = 20000;
  options.correlation = 0.9;
  auto t = GenerateSynthetic(options);
  ASSERT_TRUE(t.ok());
  // With strong correlation, m0 should correlate with the dimension mean.
  const auto* m0 = *t->DoubleColumnByName("m0");
  const auto* d0 = *t->DoubleColumnByName("d0");
  double mean_m = 0.0;
  double mean_d = 0.0;
  const size_t n = t->num_rows();
  for (size_t r = 0; r < n; ++r) {
    mean_m += m0->at(r);
    mean_d += d0->at(r);
  }
  mean_m /= n;
  mean_d /= n;
  double cov = 0.0;
  for (size_t r = 0; r < n; ++r) {
    cov += (m0->at(r) - mean_m) * (d0->at(r) - mean_d);
  }
  cov /= n;
  EXPECT_GT(cov, 0.001);  // positive coupling (weights are positive)
}

TEST(SyntheticGeneratorTest, InvalidOptionsRejected) {
  SyntheticOptions bad = SmallSyn();
  bad.num_dimensions = 0;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  bad = SmallSyn();
  bad.correlation = 1.5;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
}

DiabetesOptions SmallDiab() {
  DiabetesOptions options;
  options.num_rows = 5000;
  options.seed = 3;
  return options;
}

TEST(DiabetesGeneratorTest, ShapeMatchesPaperTestbed) {
  auto t = GenerateDiabetes(SmallDiab());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 5000u);
  EXPECT_EQ(t->schema().FieldsWithRole(FieldRole::kDimension).size(), 7u);
  EXPECT_EQ(t->schema().FieldsWithRole(FieldRole::kMeasure).size(), 8u);
}

TEST(DiabetesGeneratorTest, DimensionCardinalitiesMatchDeclared) {
  auto t = GenerateDiabetes(SmallDiab());
  ASSERT_TRUE(t.ok());
  const auto declared = DiabetesDimensionCardinalities();
  const auto dims = t->schema().FieldsWithRole(FieldRole::kDimension);
  ASSERT_EQ(dims.size(), declared.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    const auto* cat =
        dynamic_cast<const CategoricalColumn*>(t->column(dims[i]).get());
    ASSERT_NE(cat, nullptr);
    EXPECT_EQ(cat->cardinality(), declared[i])
        << t->schema().field(dims[i]).name;
  }
}

TEST(DiabetesGeneratorTest, MeasuresAreNonNegative) {
  auto t = GenerateDiabetes(SmallDiab());
  ASSERT_TRUE(t.ok());
  for (size_t m : t->schema().FieldsWithRole(FieldRole::kMeasure)) {
    const auto* col =
        dynamic_cast<const DoubleColumn*>(t->column(m).get());
    ASSERT_NE(col, nullptr);
    for (size_t r = 0; r < 500; ++r) {
      EXPECT_GE(col->at(r), 0.0);
    }
  }
}

TEST(DiabetesGeneratorTest, Deterministic) {
  auto a = GenerateDiabetes(SmallDiab());
  auto b = GenerateDiabetes(SmallDiab());
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a->GetValue(r, 0).str(), b->GetValue(r, 0).str());
    EXPECT_EQ(a->GetValue(r, 8).dbl(), b->GetValue(r, 8).dbl());
  }
}

TEST(DiabetesGeneratorTest, LevelFrequenciesAreSkewed) {
  auto t = GenerateDiabetes(SmallDiab());
  const auto* race = *t->CategoricalColumnByName("race");
  std::vector<int> counts(race->cardinality(), 0);
  for (int32_t code : race->codes()) ++counts[code];
  // Zipf skew: first level strictly more frequent than last.
  EXPECT_GT(counts.front(), counts.back());
}

TEST(DiabetesGeneratorTest, EffectsCreateGroupDifferences) {
  // With effect_sigma > 0, group means of a measure should differ across
  // levels of a dimension by more than noise alone would produce.
  DiabetesOptions options = SmallDiab();
  options.num_rows = 20000;
  auto t = GenerateDiabetes(options);
  const auto* dim = *t->CategoricalColumnByName("diag_group");
  const auto* m = *t->DoubleColumnByName("num_medications");
  std::vector<double> sum(dim->cardinality(), 0.0);
  std::vector<int> n(dim->cardinality(), 0);
  for (size_t r = 0; r < t->num_rows(); ++r) {
    sum[dim->code(r)] += m->at(r);
    ++n[dim->code(r)];
  }
  double lo = 1e300;
  double hi = -1e300;
  for (int32_t c = 0; c < dim->cardinality(); ++c) {
    const double mean = sum[c] / n[c];
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  EXPECT_GT(hi / lo, 1.05);  // at least 5% spread across groups
}

TEST(DiabetesGeneratorTest, InvalidOptionsRejected) {
  DiabetesOptions bad = SmallDiab();
  bad.effect_sigma = -1.0;
  EXPECT_FALSE(GenerateDiabetes(bad).ok());
}

}  // namespace
}  // namespace vs::data
