#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/groupby.h"
#include "data/table.h"
#include "data/value.h"

namespace vs::data {
namespace {

// Corpus-driven differential fuzzer (ctest binary `vs_kernel_diff`): the
// typed kernel against the scalar oracle on adversarial inputs — NaN/Inf
// measures, all-null columns, empty tables, single-row tables, empty
// groups and all-rows-filtered selections.  Serial kernel runs on these
// (small) inputs promise bit-identical results, so the comparison is
// exact, modulo NaN != NaN.

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectSameDoubles(const std::vector<double>& oracle,
                       const std::vector<double>& got, const char* what) {
  ASSERT_EQ(oracle.size(), got.size()) << what;
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (std::isnan(oracle[i]) || std::isnan(got[i])) {
      EXPECT_EQ(std::isnan(oracle[i]), std::isnan(got[i]))
          << what << " bin " << i;
    } else {
      EXPECT_EQ(oracle[i], got[i]) << what << " bin " << i;
    }
  }
}

// Runs `spec` on both paths (plus the hash-forced kernel) and requires
// identical outcomes: same status on failure, same result on success.
void ExpectDifferentialMatch(const Table& table, const GroupBySpec& spec,
                             const SelectionVector* selection,
                             const std::string& context) {
  SCOPED_TRACE(context + " " + spec.ToString());
  GroupByExecutorOptions scalar_options;
  scalar_options.use_kernel = false;
  GroupByExecutor scalar(&table, scalar_options);
  auto oracle = scalar.Execute(spec, selection);

  GroupByExecutorOptions hash_options;
  hash_options.dense_bins_max = 0;
  for (const auto& kernel_options :
       {GroupByExecutorOptions{}, hash_options}) {
    GroupByExecutor kernel(&table, kernel_options);
    auto got = kernel.Execute(spec, selection);
    ASSERT_EQ(oracle.ok(), got.ok())
        << (oracle.ok() ? got.status().ToString()
                        : oracle.status().ToString());
    if (!oracle.ok()) {
      EXPECT_EQ(oracle.status().code(), got.status().code());
      continue;
    }
    EXPECT_EQ(oracle->bin_labels, got->bin_labels);
    EXPECT_EQ(oracle->counts, got->counts);
    EXPECT_EQ(oracle->rows_seen, got->rows_seen);
    ExpectSameDoubles(oracle->values, got->values, "values");
    ExpectSameDoubles(oracle->sums, got->sums, "sums");
    ExpectSameDoubles(oracle->sumsqs, got->sumsqs, "sumsqs");
  }
}

std::vector<GroupBySpec> AllSpecs(const std::string& dimension,
                                  int32_t num_bins,
                                  const std::string& measure) {
  std::vector<GroupBySpec> specs;
  for (AggregateFunction func :
       {AggregateFunction::kCount, AggregateFunction::kSum,
        AggregateFunction::kAvg, AggregateFunction::kMin,
        AggregateFunction::kMax}) {
    specs.push_back({dimension, measure, func, num_bins});
  }
  return specs;
}

Table BuildTable(const std::vector<Value>& c, const std::vector<Value>& m) {
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"m", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  for (size_t r = 0; r < c.size(); ++r) {
    EXPECT_TRUE(b.AppendRow({c[r], m[r]}).ok());
  }
  return *b.Build();
}

TEST(KernelDiffFuzzTest, NanAndInfMeasures) {
  Table table = BuildTable(
      {Value("a"), Value("a"), Value("b"), Value("b"), Value("c"), Value("c")},
      {Value(kNaN), Value(1.0), Value(kInf), Value(-kInf), Value(kNaN),
       Value(kNaN)});
  for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
    ExpectDifferentialMatch(table, spec, nullptr, "nan/inf measures");
  }
}

TEST(KernelDiffFuzzTest, InfinityInMeasureUnderSelection) {
  Table table = BuildTable(
      {Value("a"), Value("b"), Value("a"), Value("b")},
      {Value(kInf), Value(1.0), Value(-kInf), Value(kNaN)});
  SelectionVector first_two = {0, 1};
  SelectionVector just_nan = {3};
  for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
    ExpectDifferentialMatch(table, spec, &first_two, "inf selection");
    ExpectDifferentialMatch(table, spec, &just_nan, "nan-only selection");
  }
}

TEST(KernelDiffFuzzTest, AllNullMeasure) {
  Table table = BuildTable({Value("a"), Value("b"), Value("a")},
                           {Value(), Value(), Value()});
  for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
    ExpectDifferentialMatch(table, spec, nullptr, "all-null measure");
  }
}

TEST(KernelDiffFuzzTest, AllNullDimension) {
  Table table = BuildTable({Value(), Value(), Value()},
                           {Value(1.0), Value(2.0), Value(3.0)});
  for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
    ExpectDifferentialMatch(table, spec, nullptr, "all-null dimension");
  }
}

TEST(KernelDiffFuzzTest, EmptyTable) {
  Table table = BuildTable({}, {});
  for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
    ExpectDifferentialMatch(table, spec, nullptr, "empty table");
  }
}

TEST(KernelDiffFuzzTest, SingleRowTable) {
  for (const Value& m : {Value(7.5), Value(kNaN), Value(kInf), Value()}) {
    Table table = BuildTable({Value("only")}, {m});
    for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
      ExpectDifferentialMatch(table, spec, nullptr, "single row");
    }
  }
}

TEST(KernelDiffFuzzTest, AllRowsFilteredSelection) {
  Table table = BuildTable({Value("a"), Value("b"), Value("c")},
                           {Value(1.0), Value(2.0), Value(3.0)});
  SelectionVector empty;
  for (const GroupBySpec& spec : AllSpecs("c", 0, "m")) {
    ExpectDifferentialMatch(table, spec, &empty, "all rows filtered");
  }
}

// Numeric dimension whose range degenerates (constant, or no non-null
// values at all): empty-group shapes and error parity.
TEST(KernelDiffFuzzTest, DegenerateNumericDimensions) {
  auto schema = *Schema::Make({
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"m", DataType::kDouble, FieldRole::kMeasure},
  });
  {
    TableBuilder b(schema);
    for (int r = 0; r < 5; ++r) {
      ASSERT_TRUE(b.AppendRow({Value(42.0), Value(double(r))}).ok());
    }
    Table constant = *b.Build();
    for (const GroupBySpec& spec : AllSpecs("x", 6, "m")) {
      ExpectDifferentialMatch(constant, spec, nullptr, "constant dim");
    }
  }
  {
    TableBuilder b(schema);
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(b.AppendRow({Value(), Value(double(r))}).ok());
    }
    Table all_null = *b.Build();
    // Range discovery must fail identically: no non-null values.
    for (const GroupBySpec& spec : AllSpecs("x", 4, "m")) {
      ExpectDifferentialMatch(all_null, spec, nullptr, "null numeric dim");
    }
  }
}

// Seeded randomized corpus: 120 tables with NaN/Inf/null injection in
// every column, random selections (often empty), random specs — ~600
// differential cases per run on top of the deterministic corpus above.
TEST(KernelDiffFuzzTest, SeededRandomNastyTables) {
  Rng rng(0xF0220);
  for (int iteration = 0; iteration < 120; ++iteration) {
    auto schema = *Schema::Make({
        {"c", DataType::kString, FieldRole::kDimension},
        {"x", DataType::kDouble, FieldRole::kDimension},
        {"m", DataType::kDouble, FieldRole::kMeasure},
        {"n", DataType::kInt64, FieldRole::kMeasure},
    });
    const size_t rows = rng.NextBounded(40);  // tiny tables hit edges most
    TableBuilder b(schema);
    for (size_t r = 0; r < rows; ++r) {
      Value c = rng.NextBernoulli(0.2)
                    ? Value()
                    : Value("L" + std::to_string(rng.NextBounded(5)));
      // Dimension values stay finite: non-finite bin arithmetic is
      // undefined on both paths and excluded from the contract.
      Value x = rng.NextBernoulli(0.2) ? Value()
                                       : Value(rng.NextDouble() * 8.0 - 4.0);
      Value m;
      switch (rng.NextBounded(5)) {
        case 0: m = Value(); break;
        case 1: m = Value(kNaN); break;
        case 2: m = Value(rng.NextBernoulli(0.5) ? kInf : -kInf); break;
        default: m = Value(rng.NextGaussian()); break;
      }
      Value n = rng.NextBernoulli(0.2) ? Value()
                                       : Value(rng.NextInt64(-9, 9));
      ASSERT_TRUE(b.AppendRow({c, x, m, n}).ok());
    }
    Table table = *b.Build();

    for (int s = 0; s < 5; ++s) {
      GroupBySpec spec;
      spec.dimension = rng.NextBernoulli(0.5) ? "c" : "x";
      spec.num_bins = spec.dimension == "x"
                          ? static_cast<int32_t>(rng.NextInt64(1, 5))
                          : 0;
      spec.measure = rng.NextBernoulli(0.5) ? "m" : "n";
      const AggregateFunction funcs[] = {
          AggregateFunction::kCount, AggregateFunction::kSum,
          AggregateFunction::kAvg, AggregateFunction::kMin,
          AggregateFunction::kMax};
      spec.func = funcs[rng.NextBounded(5)];

      std::optional<SelectionVector> selection;
      if (rng.NextBernoulli(0.5)) {
        selection.emplace();
        for (size_t r = 0; r < rows; ++r) {
          if (rng.NextBernoulli(0.3)) {
            selection->push_back(static_cast<uint32_t>(r));
          }
        }
      }
      ExpectDifferentialMatch(table, spec,
                              selection ? &*selection : nullptr,
                              "fuzz iter " + std::to_string(iteration));
    }
  }
}

}  // namespace
}  // namespace vs::data
