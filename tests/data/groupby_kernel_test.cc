#include "data/groupby_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/groupby.h"
#include "data/table.h"
#include "data/value.h"

namespace vs::data {
namespace {

// ---------------------------------------------------------------------------
// Differential kernel-equivalence suite: the typed aggregation kernel
// (use_kernel=true, in its dense, hash-forced and multi-threaded
// configurations) against the scalar fold oracle (use_kernel=false).
//
// Contract under test (data/groupby_kernel.h): bin assignment, counts,
// mins and maxs are exact in every configuration; serial kernel runs over
// small inputs are bit-identical to the oracle; partial-merging (threads)
// and lane-replicated (large-input) runs reassociate sums/sumsqs and must
// agree within accumulation tolerance.
// ---------------------------------------------------------------------------

struct RandomTable {
  Table table;
  std::vector<GroupBySpec> specs;  // valid specs for this table
};

// A random table exercising every kernel dispatch: a string dimension
// (random cardinality, sometimes nullable), double and int64 numeric
// dimensions, double and int64 measures (double one sometimes nullable).
RandomTable MakeRandomTable(Rng& rng, size_t max_rows) {
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"i", DataType::kInt64, FieldRole::kDimension},
      {"md", DataType::kDouble, FieldRole::kMeasure},
      {"mi", DataType::kInt64, FieldRole::kMeasure},
  });
  const size_t rows = rng.NextBounded(max_rows + 1);
  const int64_t cardinality = rng.NextInt64(1, 24);
  const double dim_null_rate = rng.NextBernoulli(0.3) ? 0.1 : 0.0;
  const double measure_null_rate = rng.NextBernoulli(0.3) ? 0.15 : 0.0;
  // Occasionally a constant numeric dimension, so every row lands in one
  // bin (degenerate range).
  const bool constant_x = rng.NextBernoulli(0.1);

  TableBuilder b(schema);
  for (size_t r = 0; r < rows; ++r) {
    Value c = rng.NextBernoulli(dim_null_rate)
                  ? Value()
                  : Value("L" + std::to_string(rng.NextBounded(
                                    static_cast<uint64_t>(cardinality))));
    Value x = constant_x ? Value(3.25) : Value(rng.NextDouble() * 100.0 - 50.0);
    Value i = Value(rng.NextInt64(-20, 20));
    Value md = rng.NextBernoulli(measure_null_rate)
                   ? Value()
                   : Value(rng.NextGaussian() * 10.0);
    Value mi = Value(rng.NextInt64(-1000, 1000));
    EXPECT_TRUE(b.AppendRow({c, x, i, md, mi}).ok());
  }

  RandomTable out{*b.Build(), {}};
  const AggregateFunction funcs[] = {
      AggregateFunction::kCount, AggregateFunction::kSum,
      AggregateFunction::kAvg, AggregateFunction::kMin,
      AggregateFunction::kMax};
  const char* dims[] = {"c", "x", "i"};
  const char* measures[] = {"md", "mi"};
  for (int s = 0; s < 4; ++s) {
    GroupBySpec spec;
    spec.dimension = dims[rng.NextBounded(3)];
    spec.measure = measures[rng.NextBounded(2)];
    spec.func = funcs[rng.NextBounded(5)];
    spec.num_bins =
        spec.dimension == "c" ? 0 : static_cast<int32_t>(rng.NextInt64(1, 9));
    out.specs.push_back(spec);
  }
  return out;
}

// nullptr = all rows; otherwise empty, a single row, or a random subset.
std::optional<SelectionVector> MakeRandomSelection(Rng& rng, size_t rows) {
  switch (rng.NextBounded(4)) {
    case 0:
      return std::nullopt;
    case 1:
      return SelectionVector{};
    case 2: {
      SelectionVector one;
      if (rows > 0) one.push_back(static_cast<uint32_t>(rng.NextBounded(rows)));
      return one;
    }
    default: {
      SelectionVector sel;
      const double keep = rng.NextDouble();
      for (size_t r = 0; r < rows; ++r) {
        if (rng.NextBernoulli(keep)) sel.push_back(static_cast<uint32_t>(r));
      }
      return sel;
    }
  }
}

void ExpectExactlyEqual(const GroupByResult& oracle, const GroupByResult& got,
                        const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(oracle.bin_labels, got.bin_labels);
  EXPECT_EQ(oracle.counts, got.counts);
  EXPECT_EQ(oracle.rows_seen, got.rows_seen);
  // Bit-identical: the serial small-input kernel promises the oracle's
  // exact accumulation order.
  EXPECT_EQ(oracle.values, got.values);
  EXPECT_EQ(oracle.sums, got.sums);
  EXPECT_EQ(oracle.sumsqs, got.sumsqs);
}

void ExpectNear(double a, double b, const char* what, size_t bin) {
  if (std::isnan(a) || std::isnan(b)) {
    EXPECT_EQ(std::isnan(a), std::isnan(b)) << what << " bin " << bin;
    return;
  }
  const double tolerance =
      1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_LE(std::fabs(a - b), tolerance) << what << " bin " << bin;
}

// Reassociated configurations: structure, counts and min/max stay exact,
// floating-point accumulations agree within tolerance.
void ExpectEquivalent(const GroupByResult& oracle, const GroupByResult& got,
                      AggregateFunction func, const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(oracle.bin_labels, got.bin_labels);
  EXPECT_EQ(oracle.counts, got.counts);
  EXPECT_EQ(oracle.rows_seen, got.rows_seen);
  ASSERT_EQ(oracle.values.size(), got.values.size());
  const bool exact_values = func == AggregateFunction::kCount ||
                            func == AggregateFunction::kMin ||
                            func == AggregateFunction::kMax;
  for (size_t bin = 0; bin < oracle.values.size(); ++bin) {
    if (exact_values) {
      EXPECT_EQ(oracle.values[bin], got.values[bin]) << "value bin " << bin;
    } else {
      ExpectNear(oracle.values[bin], got.values[bin], "value", bin);
    }
    ExpectNear(oracle.sums[bin], got.sums[bin], "sum", bin);
    ExpectNear(oracle.sumsqs[bin], got.sumsqs[bin], "sumsq", bin);
  }
}

// 150 random tables x 4 specs x random selections, each run through three
// kernel configurations against the scalar oracle: 600 differential
// cases, 1800 oracle-vs-kernel comparisons per run of this one test.
TEST(GroupByKernelDifferentialTest, RandomTablesMatchScalarOracle) {
  Rng rng(20260808);
  for (int iteration = 0; iteration < 150; ++iteration) {
    RandomTable random = MakeRandomTable(rng, /*max_rows=*/600);

    GroupByExecutorOptions scalar_options;
    scalar_options.use_kernel = false;
    GroupByExecutor scalar(&random.table, scalar_options);

    GroupByExecutor dense(&random.table, {});  // defaults: kernel, dense
    GroupByExecutorOptions hash_options;
    hash_options.dense_bins_max = 0;  // force the FNV hash path
    GroupByExecutor hashed(&random.table, hash_options);
    GroupByExecutorOptions threaded_options;
    threaded_options.kernel_threads = 4;
    GroupByExecutor threaded(&random.table, threaded_options);

    for (const GroupBySpec& spec : random.specs) {
      const auto selection = MakeRandomSelection(rng, random.table.num_rows());
      const SelectionVector* sel = selection ? &*selection : nullptr;
      const std::string context =
          "iter " + std::to_string(iteration) + " " + spec.ToString() +
          (sel == nullptr ? " all rows"
                          : " sel " + std::to_string(sel->size()));

      auto oracle = scalar.Execute(spec, sel);
      ASSERT_TRUE(oracle.ok()) << context << ": " << oracle.status().ToString();

      auto got_dense = dense.Execute(spec, sel);
      ASSERT_TRUE(got_dense.ok()) << context;
      ExpectExactlyEqual(*oracle, *got_dense, context + " [dense]");

      auto got_hash = hashed.Execute(spec, sel);
      ASSERT_TRUE(got_hash.ok()) << context;
      ExpectExactlyEqual(*oracle, *got_hash, context + " [hash]");

      auto got_threaded = threaded.Execute(spec, sel);
      ASSERT_TRUE(got_threaded.ok()) << context;
      ExpectEquivalent(*oracle, *got_threaded, spec.func,
                       context + " [threads=4]");
    }
  }
}

// Above the lane-replication threshold (64k rows) the dense kernel
// reassociates sums; counts/min/max/labels must stay exact and the
// floating-point aggregates within tolerance.
TEST(GroupByKernelDifferentialTest, LaneReplicatedLargeScanWithinTolerance) {
  Rng rng(7);
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"m", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  const size_t kRows = 80'000;  // > kLaneMinRows
  for (size_t r = 0; r < kRows; ++r) {
    // Zipf-hot labels: the exact shape lane replication exists for.
    const uint64_t code = std::min<uint64_t>(31, rng.NextBounded(64) / 3);
    ASSERT_TRUE(b.AppendRow({Value("L" + std::to_string(code)),
                             Value(rng.NextDouble() * 10.0),
                             Value(rng.NextGaussian())})
                    .ok());
  }
  Table table = *b.Build();

  GroupByExecutorOptions scalar_options;
  scalar_options.use_kernel = false;
  GroupByExecutor scalar(&table, scalar_options);
  GroupByExecutor kernel(&table, {});

  for (const GroupBySpec& spec :
       {GroupBySpec{"c", "m", AggregateFunction::kSum, 0},
        GroupBySpec{"c", "m", AggregateFunction::kAvg, 0},
        GroupBySpec{"c", "m", AggregateFunction::kMin, 0},
        GroupBySpec{"c", "m", AggregateFunction::kMax, 0},
        GroupBySpec{"x", "m", AggregateFunction::kSum, 8}}) {
    auto oracle = scalar.Execute(spec, nullptr);
    ASSERT_TRUE(oracle.ok());
    auto got = kernel.Execute(spec, nullptr);
    ASSERT_TRUE(got.ok());
    ExpectEquivalent(*oracle, *got, spec.func, spec.ToString());
  }
}

// ExecuteBatch must agree with per-spec Execute on both paths, and the
// kernel batch with the scalar batch.
TEST(GroupByKernelDifferentialTest, BatchMatchesPerSpecExecution) {
  Rng rng(99);
  for (int iteration = 0; iteration < 25; ++iteration) {
    RandomTable random = MakeRandomTable(rng, /*max_rows=*/400);
    // Batch requires a shared dimension/bin count; derive variants of the
    // first spec across measures and functions.
    GroupBySpec base = random.specs[0];
    std::vector<GroupBySpec> specs;
    for (const char* measure : {"md", "mi"}) {
      for (AggregateFunction func :
           {AggregateFunction::kCount, AggregateFunction::kSum,
            AggregateFunction::kAvg, AggregateFunction::kMin,
            AggregateFunction::kMax}) {
        GroupBySpec spec = base;
        spec.measure = measure;
        spec.func = func;
        specs.push_back(spec);
      }
    }
    const auto selection = MakeRandomSelection(rng, random.table.num_rows());
    const SelectionVector* sel = selection ? &*selection : nullptr;

    for (const bool use_kernel : {false, true}) {
      GroupByExecutorOptions options;
      options.use_kernel = use_kernel;
      GroupByExecutor executor(&random.table, options);
      auto batch = executor.ExecuteBatch(specs, sel);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      ASSERT_EQ(batch->size(), specs.size());
      for (size_t s = 0; s < specs.size(); ++s) {
        auto single = executor.Execute(specs[s], sel);
        ASSERT_TRUE(single.ok());
        ExpectExactlyEqual(*single, (*batch)[s],
                           specs[s].ToString() +
                               (use_kernel ? " [kernel]" : " [scalar]"));
      }
    }
  }
}

// Invalid inputs must fail identically on both paths: same ok-ness, same
// status code.
TEST(GroupByKernelDifferentialTest, ErrorStatusParity) {
  Rng rng(3);
  RandomTable random = MakeRandomTable(rng, 50);
  GroupByExecutorOptions scalar_options;
  scalar_options.use_kernel = false;
  GroupByExecutor scalar(&random.table, scalar_options);
  GroupByExecutor kernel(&random.table, {});

  const GroupBySpec bad_specs[] = {
      {"missing", "md", AggregateFunction::kSum, 0},
      {"c", "missing", AggregateFunction::kSum, 0},
      {"c", "md", AggregateFunction::kSum, 4},   // bins on categorical
      {"x", "md", AggregateFunction::kSum, 0},   // no bins on numeric
      {"x", "md", AggregateFunction::kSum, -3},  // negative bins
      {"md", "md", AggregateFunction::kSum, 0},  // measure as dimension
      {"c", "c", AggregateFunction::kSum, 0},    // dimension as measure
  };
  for (const GroupBySpec& spec : bad_specs) {
    SCOPED_TRACE(spec.ToString());
    auto oracle = scalar.Execute(spec, nullptr);
    auto got = kernel.Execute(spec, nullptr);
    EXPECT_EQ(oracle.ok(), got.ok());
    if (!oracle.ok() && !got.ok()) {
      EXPECT_EQ(oracle.status().code(), got.status().code());
    }
  }

  // Out-of-range selection row ids.
  SelectionVector bad_sel = {
      static_cast<uint32_t>(random.table.num_rows() + 7)};
  auto oracle =
      scalar.Execute({"c", "md", AggregateFunction::kSum, 0}, &bad_sel);
  auto got = kernel.Execute({"c", "md", AggregateFunction::kSum, 0}, &bad_sel);
  EXPECT_EQ(oracle.ok(), got.ok());
  if (!oracle.ok() && !got.ok()) {
    EXPECT_EQ(oracle.status().code(), got.status().code());
  }
}

// Many-thread stress, aimed at the sanitizer CI jobs: a prewarmed
// executor with an 8-way kernel partial split shared by 4 concurrent
// reader threads.  Every result must still match the scalar oracle
// (TSan/ASan make any partial-buffer race or merge-order bug visible;
// the assertions make silent corruption visible everywhere else).
TEST(GroupByKernelStressTest, ConcurrentReadersOverThreadedKernel) {
  Rng rng(1234);
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"m", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  const size_t kRows = 100'000;
  for (size_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(b.AppendRow({Value("L" + std::to_string(rng.NextBounded(17))),
                             Value(rng.NextDouble() * 5.0),
                             Value(rng.NextGaussian())})
                    .ok());
  }
  Table table = *b.Build();

  GroupByExecutorOptions scalar_options;
  scalar_options.use_kernel = false;
  GroupByExecutor scalar(&table, scalar_options);
  GroupByExecutorOptions kernel_options;
  kernel_options.kernel_threads = 8;
  GroupByExecutor kernel(&table, kernel_options);

  const std::vector<GroupBySpec> specs = {
      {"c", "m", AggregateFunction::kSum, 0},
      {"c", "m", AggregateFunction::kMin, 0},
      {"x", "m", AggregateFunction::kAvg, 8},
      {"x", "m", AggregateFunction::kCount, 8},
  };
  for (const GroupBySpec& spec : specs) {
    ASSERT_TRUE(scalar.Prewarm(spec).ok());
    ASSERT_TRUE(kernel.Prewarm(spec).ok());
  }
  std::vector<GroupByResult> oracles;
  for (const GroupBySpec& spec : specs) {
    auto r = scalar.Execute(spec, nullptr);
    ASSERT_TRUE(r.ok());
    oracles.push_back(std::move(*r));
  }

  constexpr int kReaders = 4;
  constexpr int kRoundsPerReader = 3;
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerReader; ++round) {
        const GroupBySpec& spec = specs[(t + round) % specs.size()];
        const GroupByResult& oracle = oracles[(t + round) % specs.size()];
        auto got = kernel.Execute(spec, nullptr);
        if (!got.ok() || got->counts != oracle.counts ||
            got->bin_labels != oracle.bin_labels ||
            got->rows_seen != oracle.rows_seen) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Full-precision check once the swarm is done (tolerance: 8-way merge
  // plus lane replication reassociate the sums).
  for (size_t s = 0; s < specs.size(); ++s) {
    auto got = kernel.Execute(specs[s], nullptr);
    ASSERT_TRUE(got.ok());
    ExpectEquivalent(oracles[s], *got, specs[s].func, specs[s].ToString());
  }
}

// ---------------------------------------------------------------------------
// KernelColumnRange: the typed range scan must be bit-identical to a
// sequential min/max fold (associativity), across types and null shapes.
// ---------------------------------------------------------------------------

TEST(KernelColumnRangeTest, MatchesSequentialScanOnRandomColumns) {
  Rng rng(41);
  for (int iteration = 0; iteration < 60; ++iteration) {
    const size_t rows = rng.NextBounded(300);
    const bool use_int = rng.NextBernoulli(0.5);
    const double null_rate = rng.NextBernoulli(0.4) ? 0.2 : 0.0;
    auto schema = *Schema::Make({
        {"x", use_int ? DataType::kInt64 : DataType::kDouble,
         FieldRole::kDimension},
    });
    TableBuilder b(schema);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextBernoulli(null_rate)) {
        ASSERT_TRUE(b.AppendRow({Value()}).ok());
        continue;
      }
      if (use_int) {
        const int64_t v = rng.NextInt64(-5000, 5000);
        lo = std::min(lo, static_cast<double>(v));
        hi = std::max(hi, static_cast<double>(v));
        ASSERT_TRUE(b.AppendRow({Value(v)}).ok());
      } else {
        const double v = rng.NextGaussian() * 1e6;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        ASSERT_TRUE(b.AppendRow({Value(v)}).ok());
      }
    }
    Table table = *b.Build();
    auto column = table.ColumnByName("x");
    ASSERT_TRUE(column.ok());
    auto range = KernelColumnRange(column->get());
    ASSERT_TRUE(range.ok());
    EXPECT_EQ(range->first, lo) << "iter " << iteration;
    EXPECT_EQ(range->second, hi) << "iter " << iteration;
  }
}

TEST(KernelColumnRangeTest, RejectsNonNumericColumns) {
  auto schema = *Schema::Make({
      {"c", DataType::kString, FieldRole::kDimension},
  });
  TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({Value("a")}).ok());
  Table table = *b.Build();
  auto column = table.ColumnByName("c");
  ASSERT_TRUE(column.ok());
  auto range = KernelColumnRange(column->get());
  EXPECT_FALSE(range.ok());
  EXPECT_TRUE(range.status().IsInvalidArgument());
}

}  // namespace
}  // namespace vs::data
