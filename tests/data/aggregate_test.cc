#include "data/aggregate.h"

#include <gtest/gtest.h>

namespace vs::data {
namespace {

TEST(AggregateAccumulatorTest, EmptyFinalizesToZero) {
  AggregateAccumulator acc;
  for (AggregateFunction f : AllAggregateFunctions()) {
    EXPECT_DOUBLE_EQ(acc.Finalize(f), 0.0) << AggregateFunctionName(f);
  }
}

TEST(AggregateAccumulatorTest, SingleValue) {
  AggregateAccumulator acc;
  acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kCount), 1.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kSum), 4.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kAvg), 4.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kMin), 4.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kMax), 4.0);
}

TEST(AggregateAccumulatorTest, MultipleValues) {
  AggregateAccumulator acc;
  for (double v : {2.0, -1.0, 5.0, 0.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kCount), 4.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kSum), 6.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kAvg), 1.5);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kMin), -1.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateFunction::kMax), 5.0);
  EXPECT_DOUBLE_EQ(acc.sumsq, 4.0 + 1.0 + 25.0 + 0.0);
}

TEST(AggregateAccumulatorTest, MergeMatchesSequential) {
  AggregateAccumulator a;
  AggregateAccumulator b;
  AggregateAccumulator whole;
  for (double v : {1.0, 2.0, 3.0}) {
    a.Add(v);
    whole.Add(v);
  }
  for (double v : {-5.0, 10.0}) {
    b.Add(v);
    whole.Add(v);
  }
  a.Merge(b);
  for (AggregateFunction f : AllAggregateFunctions()) {
    EXPECT_DOUBLE_EQ(a.Finalize(f), whole.Finalize(f))
        << AggregateFunctionName(f);
  }
  EXPECT_DOUBLE_EQ(a.sumsq, whole.sumsq);
}

TEST(AggregateAccumulatorTest, MergeWithEmpty) {
  AggregateAccumulator a;
  a.Add(3.0);
  AggregateAccumulator empty;
  a.Merge(empty);
  EXPECT_EQ(a.count, 1);
  EXPECT_DOUBLE_EQ(a.Finalize(AggregateFunction::kMin), 3.0);
}

TEST(AggregateFunctionTest, NamesRoundTripThroughParse) {
  for (AggregateFunction f : AllAggregateFunctions()) {
    auto parsed = ParseAggregateFunction(AggregateFunctionName(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
}

TEST(AggregateFunctionTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(*ParseAggregateFunction("avg"), AggregateFunction::kAvg);
  EXPECT_EQ(*ParseAggregateFunction("Sum"), AggregateFunction::kSum);
  EXPECT_EQ(*ParseAggregateFunction("mean"), AggregateFunction::kAvg);
}

TEST(AggregateFunctionTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseAggregateFunction("median").ok());
}

TEST(AggregateFunctionTest, ExactlyFiveFunctions) {
  EXPECT_EQ(AllAggregateFunctions().size(),
            static_cast<size_t>(kNumAggregateFunctions));
  EXPECT_EQ(kNumAggregateFunctions, 5);
}

}  // namespace
}  // namespace vs::data
