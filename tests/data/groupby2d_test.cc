#include "data/groupby2d.h"

#include <gtest/gtest.h>

#include "data/groupby.h"

namespace vs::data {
namespace {

Table GridTable() {
  auto schema = *Schema::Make({
      {"color", DataType::kString, FieldRole::kDimension},
      {"size", DataType::kString, FieldRole::kDimension},
      {"x", DataType::kDouble, FieldRole::kDimension},
      {"v", DataType::kDouble, FieldRole::kMeasure},
  });
  TableBuilder b(schema);
  // (color, size, x, v)
  EXPECT_TRUE(b.AppendRow({Value("r"), Value("S"), Value(0.0), Value(1.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("r"), Value("L"), Value(1.0), Value(2.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("g"), Value("S"), Value(2.0), Value(3.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("g"), Value("L"), Value(3.0), Value(4.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value("r"), Value("S"), Value(4.0), Value(5.0)}).ok());
  return *b.Build();
}

TEST(GroupBy2DTest, CategoricalGridSums) {
  Table t = GridTable();
  GroupBy2DSpec spec{"color", "size", "v", AggregateFunction::kSum, 0, 0};
  auto r = ExecuteGroupBy2D(t, spec, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);  // r, g
  ASSERT_EQ(r->num_cols(), 2u);  // S, L
  EXPECT_EQ(r->row_labels, (std::vector<std::string>{"r", "g"}));
  EXPECT_EQ(r->col_labels, (std::vector<std::string>{"S", "L"}));
  EXPECT_DOUBLE_EQ(r->value(0, 0), 6.0);  // r,S: 1 + 5
  EXPECT_DOUBLE_EQ(r->value(0, 1), 2.0);  // r,L
  EXPECT_DOUBLE_EQ(r->value(1, 0), 3.0);  // g,S
  EXPECT_DOUBLE_EQ(r->value(1, 1), 4.0);  // g,L
  EXPECT_EQ(r->count(0, 0), 2);
  EXPECT_EQ(r->rows_seen, 5);
}

TEST(GroupBy2DTest, MarginalsMatchOneDimensionalGroupBy) {
  Table t = GridTable();
  GroupBy2DSpec spec{"color", "size", "v", AggregateFunction::kSum, 0, 0};
  auto grid = ExecuteGroupBy2D(t, spec, nullptr);
  ASSERT_TRUE(grid.ok());

  GroupByExecutor executor(&t);
  auto by_color =
      executor.Execute({"color", "v", AggregateFunction::kSum, 0}, nullptr);
  ASSERT_TRUE(by_color.ok());
  for (size_t r = 0; r < grid->num_rows(); ++r) {
    double row_sum = 0.0;
    for (size_t c = 0; c < grid->num_cols(); ++c) {
      row_sum += grid->value(r, c);
    }
    EXPECT_DOUBLE_EQ(row_sum, by_color->values[r]) << grid->row_labels[r];
  }
}

TEST(GroupBy2DTest, MixedCategoricalNumeric) {
  Table t = GridTable();
  GroupBy2DSpec spec{"color", "x", "v", AggregateFunction::kCount, 0, 2};
  auto r = ExecuteGroupBy2D(t, spec, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  ASSERT_EQ(r->num_cols(), 2u);  // x in [0,2) and [2,4]
  // r rows: x = 0, 1 (bin 0) and 4 (bin 1); g rows: x = 2, 3 (bin 1).
  EXPECT_DOUBLE_EQ(r->value(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(r->value(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r->value(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(r->value(1, 1), 2.0);
}

TEST(GroupBy2DTest, SelectionKeepsFullGridShape) {
  Table t = GridTable();
  GroupBy2DSpec spec{"color", "size", "v", AggregateFunction::kCount, 0, 0};
  SelectionVector sel = {0};  // single (r, S) row
  auto r = ExecuteGroupBy2D(t, spec, &sel);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_cells(), 4u);
  EXPECT_DOUBLE_EQ(r->value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r->value(1, 1), 0.0);
  EXPECT_EQ(r->rows_seen, 1);
}

TEST(GroupBy2DTest, Validation) {
  Table t = GridTable();
  // Same dimension twice.
  EXPECT_FALSE(ExecuteGroupBy2D(
                   t, {"color", "color", "v", AggregateFunction::kSum, 0, 0},
                   nullptr)
                   .ok());
  // Categorical with bins.
  EXPECT_FALSE(ExecuteGroupBy2D(
                   t, {"color", "size", "v", AggregateFunction::kSum, 2, 0},
                   nullptr)
                   .ok());
  // Numeric without bins.
  EXPECT_FALSE(ExecuteGroupBy2D(
                   t, {"color", "x", "v", AggregateFunction::kSum, 0, 0},
                   nullptr)
                   .ok());
  // Unknown columns.
  EXPECT_FALSE(ExecuteGroupBy2D(
                   t, {"bogus", "size", "v", AggregateFunction::kSum, 0, 0},
                   nullptr)
                   .ok());
  // Out-of-range selection.
  SelectionVector bad = {99};
  EXPECT_FALSE(ExecuteGroupBy2D(
                   t, {"color", "size", "v", AggregateFunction::kSum, 0, 0},
                   &bad)
                   .ok());
}

TEST(GroupBy2DSpecTest, ToStringFormat) {
  GroupBy2DSpec spec{"a", "b", "m", AggregateFunction::kAvg, 3, 4};
  EXPECT_EQ(spec.ToString(), "AVG(m) GROUP BY a x b [3 x 4 bins]");
}

}  // namespace
}  // namespace vs::data
