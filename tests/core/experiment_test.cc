#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace vs::core {
namespace {

ExperimentConfig FastConfig() {
  ExperimentConfig config;
  config.k = 5;
  config.max_labels = 20;
  config.seed = 3;
  return config;
}

TEST(ExperimentTest, ConvergesOnSingleComponentIdeal) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[1];  // EMD
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, FastConfig());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reached_target);
  EXPECT_DOUBLE_EQ(r->final_precision, 1.0);
  EXPECT_GT(r->labels_to_target, 0);
  EXPECT_LE(r->labels_to_target, 20);
  EXPECT_FALSE(r->trajectory.empty());
}

TEST(ExperimentTest, TrajectoryLabelsAreMonotone) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[3];
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, FastConfig());
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->trajectory.size(); ++i) {
    EXPECT_GT(r->trajectory[i].labels, r->trajectory[i - 1].labels);
  }
}

TEST(ExperimentTest, UdStopMode) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[0];
  ExperimentConfig config = FastConfig();
  config.stop_on_ud_zero = true;
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, config);
  ASSERT_TRUE(r.ok());
  if (r->reached_target) {
    EXPECT_NEAR(r->final_ud, 0.0, 1e-9);
  }
}

TEST(ExperimentTest, MaxLabelsCapRespected) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[10];
  ExperimentConfig config = FastConfig();
  config.max_labels = 3;
  config.target_precision = 1.01;  // unreachable -> must hit the cap
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, config);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->reached_target);
  EXPECT_EQ(r->labels_to_target, 3);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[4];
  auto a = RunSimulatedSession(*world.matrix, nullptr, ideal, FastConfig());
  auto b = RunSimulatedSession(*world.matrix, nullptr, ideal, FastConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels_to_target, b->labels_to_target);
  ASSERT_EQ(a->trajectory.size(), b->trajectory.size());
  for (size_t i = 0; i < a->trajectory.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->trajectory[i].precision,
                     b->trajectory[i].precision);
  }
}

TEST(ExperimentTest, RefinementModeRunsOnRoughMatrix) {
  auto exact = testutil::MakeMiniWorld(1.0);
  auto rough = testutil::MakeMiniWorld(0.3, 17);
  IdealUtilityFunction ideal = Table2Presets()[1];
  ExperimentConfig config = FastConfig();
  config.refine = true;
  config.refine_views_per_iteration = 2;
  config.max_labels = 10;
  // Unreachable target so the session never stops early and refinement is
  // guaranteed to run between iterations.
  config.target_precision = 1.01;
  auto r = RunSimulatedSession(*exact.matrix, rough.matrix.get(), ideal,
                               config);
  ASSERT_TRUE(r.ok());
  // Refinement must have upgraded at least some rows (2 per iteration).
  EXPECT_GE(rough.matrix->num_exact(), 10u);
  EXPECT_FALSE(r->trajectory.empty());
}

TEST(ExperimentTest, PrunedRefinementConvergesLikeUnpruned) {
  auto exact = testutil::MakeMiniWorld(1.0);
  auto rough_plain = testutil::MakeMiniWorld(0.3, 17);
  auto rough_pruned = testutil::MakeMiniWorld(0.3, 17);
  IdealUtilityFunction ideal = Table2Presets()[1];

  ExperimentConfig config = FastConfig();
  config.refine = true;
  config.refine_views_per_iteration = 3;
  config.stop_on_ud_zero = true;
  config.max_labels = 40;
  auto plain = RunSimulatedSession(*exact.matrix, rough_plain.matrix.get(),
                                   ideal, config);
  ASSERT_TRUE(plain.ok());

  config.prune = true;
  config.prune_margin = 0.25;
  auto pruned = RunSimulatedSession(*exact.matrix,
                                    rough_pruned.matrix.get(), ideal,
                                    config);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->reached_target, plain->reached_target);
  // Pruning must not refine MORE views than the unpruned run.
  EXPECT_LE(rough_pruned.matrix->num_exact(),
            rough_plain.matrix->num_exact());
}

TEST(ExperimentTest, RefineWithoutWorkingMatrixRejected) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[0];
  ExperimentConfig config = FastConfig();
  config.refine = true;
  EXPECT_FALSE(
      RunSimulatedSession(*world.matrix, nullptr, ideal, config).ok());
}

TEST(ExperimentTest, ZeroMaxLabelsRejected) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[0];
  ExperimentConfig config = FastConfig();
  config.max_labels = 0;
  EXPECT_FALSE(
      RunSimulatedSession(*world.matrix, nullptr, ideal, config).ok());
}

TEST(ExperimentTest, MultipleViewsPerIterationConverges) {
  // The paper's M parameter (views presented per iteration, default 1).
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[1];
  ExperimentConfig config = FastConfig();
  config.views_per_iteration = 3;
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reached_target);
  // Labels arrive in batches of M, so the trajectory steps by 3.
  ASSERT_GE(r->trajectory.size(), 1u);
  EXPECT_EQ(r->trajectory[0].labels, 3);
}

TEST(ExperimentTest, QuantizedLabelsStillConverge) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[1];
  ExperimentConfig config = FastConfig();
  config.label_quantization = 0.05;
  config.tie_epsilon = 0.025;
  config.max_labels = 25;
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->final_precision, 0.8);
}

TEST(ExperimentTest, NoisyLabelsStillProgress) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[1];
  ExperimentConfig config = FastConfig();
  config.label_noise = 0.05;
  config.max_labels = 20;
  auto r = RunSimulatedSession(*world.matrix, nullptr, ideal, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->final_precision, 0.2);
}

TEST(ExperimentTest, AverageLabelsAggregates) {
  auto world = testutil::MakeMiniWorld();
  auto avg = AverageLabelsToTarget(*world.matrix,
                                   Table2PresetsWithComponents(1),
                                   FastConfig());
  ASSERT_TRUE(avg.ok());
  EXPECT_GT(*avg, 0.0);
  EXPECT_LE(*avg, 20.0);
  EXPECT_FALSE(AverageLabelsToTarget(*world.matrix, {}, FastConfig()).ok());
}

TEST(ExperimentTest, RandomStrategyNeedsMoreLabelsThanUncertainty) {
  // The paper's core claim in miniature: averaged over the composite
  // presets, uncertainty sampling should not be worse than random.
  auto world = testutil::MakeMiniWorld();
  ExperimentConfig uncertainty = FastConfig();
  uncertainty.max_labels = 20;
  ExperimentConfig random = uncertainty;
  random.strategy = "random";
  random.seed = 3;
  auto presets = Table2PresetsWithComponents(2);
  auto u = AverageLabelsToTarget(*world.matrix, presets, uncertainty);
  auto r = AverageLabelsToTarget(*world.matrix, presets, random);
  ASSERT_TRUE(u.ok() && r.ok());
  EXPECT_LE(*u, *r + 3.0);  // allow slack on the tiny pool
}

}  // namespace
}  // namespace vs::core
