#include "core/refinement.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(RefinementTest, RefinesEverythingUnderInfiniteDeadline) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  EXPECT_FALSE(refiner.AllExact());
  Deadline deadline = Deadline::Infinite();
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 20);
  EXPECT_TRUE(stats->all_exact);
  EXPECT_TRUE(refiner.AllExact());
}

TEST(RefinementTest, WorkUnitDeadlineLimitsBatch) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  // Budget for exactly 5 rows.
  Deadline deadline =
      Deadline::AfterUnits(5 * world.matrix->RefineCostPerRow());
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 5);
  EXPECT_FALSE(stats->all_exact);
  EXPECT_EQ(world.matrix->num_exact(), 5u);
}

TEST(RefinementTest, PriorityOrderRespected) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  // Priorities: view 7 highest, then 3, then everything else.
  std::vector<double> priorities(20, 0.0);
  priorities[7] = 2.0;
  priorities[3] = 1.0;
  Deadline deadline =
      Deadline::AfterUnits(2 * world.matrix->RefineCostPerRow());
  auto stats = refiner.RefineBatch(priorities, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 2);
  EXPECT_TRUE(world.matrix->IsExact(7));
  EXPECT_TRUE(world.matrix->IsExact(3));
  EXPECT_FALSE(world.matrix->IsExact(0));
}

TEST(RefinementTest, SkipsAlreadyExactRows) {
  auto world = testutil::MakeMiniWorld(0.3);
  ASSERT_TRUE(world.matrix->RefineRow(0).ok());
  ASSERT_TRUE(world.matrix->RefineRow(1).ok());
  IncrementalRefiner refiner(world.matrix.get());
  Deadline deadline = Deadline::Infinite();
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 18);
}

TEST(RefinementTest, ExpiredDeadlineRefinesNothing) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  Deadline deadline = Deadline::AfterUnits(0);
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 0);
}

TEST(RefinementTest, SecondBatchContinuesWhereFirstStopped) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  const int64_t cost = world.matrix->RefineCostPerRow();
  Deadline first = Deadline::AfterUnits(12 * cost);
  ASSERT_TRUE(refiner.RefineBatch({}, &first).ok());
  EXPECT_EQ(world.matrix->num_exact(), 12u);
  Deadline second = Deadline::Infinite();
  auto stats = refiner.RefineBatch({}, &second);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 8);
  EXPECT_TRUE(stats->all_exact);
}

TEST(RefinementTest, Validation) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  Deadline deadline = Deadline::Infinite();
  std::vector<double> wrong_size(3, 0.0);
  EXPECT_FALSE(refiner.RefineBatch(wrong_size, &deadline).ok());
  EXPECT_FALSE(refiner.RefineBatch({}, nullptr).ok());
  IncrementalRefiner null_refiner(nullptr);
  EXPECT_FALSE(null_refiner.RefineBatch({}, &deadline).ok());
}

TEST(RefinementTest, PrunedBatchSkipsHopelessViews) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  // Scores: view 0 dominates; with a tiny margin most views cannot enter
  // the top-1 and must be pruned.
  std::vector<double> scores(20, 0.0);
  scores[0] = 1.0;
  scores[1] = 0.99;
  PruningOptions pruning;
  pruning.k = 1;
  pruning.margin = 0.05;
  Deadline deadline = Deadline::Infinite();
  auto stats = refiner.RefineBatchPruned(scores, pruning, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 2);   // only views 0 and 1 are candidates
  EXPECT_EQ(stats->rows_pruned, 18);
  EXPECT_TRUE(world.matrix->IsExact(0));
  EXPECT_TRUE(world.matrix->IsExact(1));
  EXPECT_FALSE(world.matrix->IsExact(5));
}

TEST(RefinementTest, PrunedBatchWithHugeMarginMatchesUnpruned) {
  auto pruned_world = testutil::MakeMiniWorld(0.3);
  auto plain_world = testutil::MakeMiniWorld(0.3);
  std::vector<double> scores(20);
  for (size_t i = 0; i < 20; ++i) scores[i] = static_cast<double>(i);

  IncrementalRefiner pruned(pruned_world.matrix.get());
  PruningOptions pruning;
  pruning.k = 5;
  pruning.margin = 1e9;  // nothing prunable
  Deadline d1 = Deadline::Infinite();
  auto s1 = pruned.RefineBatchPruned(scores, pruning, &d1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->rows_pruned, 0);

  IncrementalRefiner plain(plain_world.matrix.get());
  Deadline d2 = Deadline::Infinite();
  auto s2 = plain.RefineBatch(scores, &d2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->rows_refined, s2->rows_refined);
}

TEST(RefinementTest, PrunedBatchRequiresFullPriorities) {
  auto world = testutil::MakeMiniWorld(0.3);
  IncrementalRefiner refiner(world.matrix.get());
  Deadline deadline = Deadline::Infinite();
  EXPECT_FALSE(
      refiner.RefineBatchPruned({}, PruningOptions{}, &deadline).ok());
}

TEST(RefinementTest, AlreadyExactMatrixIsNoop) {
  auto world = testutil::MakeMiniWorld(1.0);
  IncrementalRefiner refiner(world.matrix.get());
  Deadline deadline = Deadline::Infinite();
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 0);
  EXPECT_TRUE(stats->all_exact);
}

}  // namespace
}  // namespace vs::core
