#include "core/seeker.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/ideal_utility.h"
#include "core/metrics.h"
#include "core/simulated_user.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(ViewSeekerTest, MakeValidation) {
  auto world = testutil::MakeMiniWorld();
  ViewSeekerOptions options;
  EXPECT_FALSE(ViewSeeker::Make(nullptr, options).ok());
  options.k = 0;
  EXPECT_FALSE(ViewSeeker::Make(world.matrix.get(), options).ok());
  options.k = 5;
  options.views_per_iteration = 0;
  EXPECT_FALSE(ViewSeeker::Make(world.matrix.get(), options).ok());
  options.views_per_iteration = 1;
  options.strategy = "bogus";
  EXPECT_FALSE(ViewSeeker::Make(world.matrix.get(), options).ok());
}

TEST(ViewSeekerTest, StartsInColdStartWithAllUnlabeled) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  EXPECT_TRUE(seeker->in_cold_start());
  EXPECT_EQ(seeker->num_labeled(), 0u);
  EXPECT_EQ(seeker->num_unlabeled(), 20u);
  EXPECT_FALSE(seeker->RecommendTopK().ok());  // no labels yet
}

TEST(ViewSeekerTest, SubmitLabelValidation) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  EXPECT_FALSE(seeker->SubmitLabel(9999, 0.5).ok());
  EXPECT_FALSE(seeker->SubmitLabel(0, -0.1).ok());
  EXPECT_FALSE(seeker->SubmitLabel(0, 1.1).ok());
  ASSERT_TRUE(seeker->SubmitLabel(0, 0.5).ok());
  auto again = seeker->SubmitLabel(0, 0.5);
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.IsAlreadyExists());
}

TEST(ViewSeekerTest, LabelingMovesViewToLabeledSet) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  ASSERT_TRUE(seeker->SubmitLabel(3, 0.8).ok());
  EXPECT_EQ(seeker->num_labeled(), 1u);
  EXPECT_EQ(seeker->num_unlabeled(), 19u);
  EXPECT_EQ(seeker->labeled()[0], 3u);
  EXPECT_DOUBLE_EQ(seeker->labels()[0], 0.8);
  // Utility estimator is fitted after the first label.
  EXPECT_TRUE(seeker->utility_estimator().fitted());
  EXPECT_TRUE(seeker->RecommendTopK().ok());
}

TEST(ViewSeekerTest, ColdStartEndsAfterBothClasses) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  ASSERT_TRUE(seeker->SubmitLabel(0, 0.9).ok());
  EXPECT_TRUE(seeker->in_cold_start());
  ASSERT_TRUE(seeker->SubmitLabel(1, 0.1).ok());
  EXPECT_FALSE(seeker->in_cold_start());
}

TEST(ViewSeekerTest, NextQueriesReturnsUnlabeledViews) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  for (int iter = 0; iter < 10; ++iter) {
    auto queries = seeker->NextQueries();
    ASSERT_TRUE(queries.ok());
    ASSERT_EQ(queries->size(), 1u);
    const size_t q = (*queries)[0];
    const auto& labeled = seeker->labeled();
    EXPECT_EQ(std::find(labeled.begin(), labeled.end(), q), labeled.end());
    ASSERT_TRUE(seeker->SubmitLabel(q, iter % 2 == 0 ? 0.9 : 0.1).ok());
  }
}

TEST(ViewSeekerTest, BatchQueriesAreDistinct) {
  auto world = testutil::MakeMiniWorld();
  ViewSeekerOptions options;
  options.views_per_iteration = 4;
  auto seeker = ViewSeeker::Make(world.matrix.get(), options);
  ASSERT_TRUE(seeker.ok());
  auto queries = seeker->NextQueries();
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 4u);
  std::set<size_t> unique(queries->begin(), queries->end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(ViewSeekerTest, ExhaustingPoolIsHandled) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(seeker->SubmitLabel(i, i % 3 == 0 ? 0.9 : 0.2).ok());
  }
  EXPECT_EQ(seeker->num_unlabeled(), 0u);
  auto queries = seeker->NextQueries();
  EXPECT_FALSE(queries.ok());
  EXPECT_TRUE(queries.status().IsFailedPrecondition());
  EXPECT_TRUE(seeker->RecommendTopK().ok());  // recommendation still works
}

TEST(ViewSeekerTest, RecommendTopKReturnsKViews) {
  auto world = testutil::MakeMiniWorld();
  ViewSeekerOptions options;
  options.k = 7;
  auto seeker = ViewSeeker::Make(world.matrix.get(), options);
  ASSERT_TRUE(seeker.ok());
  ASSERT_TRUE(seeker->SubmitLabel(0, 0.5).ok());
  auto topk = seeker->RecommendTopK();
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->size(), 7u);
}

TEST(ViewSeekerTest, LearnsSingleFeatureUtilityQuickly) {
  // Simulated session against u* = EMD; the seeker should converge to the
  // ideal top-5 within a modest number of labels.
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal =
      Table2Presets()[1];  // 1.0 * EMD
  auto user = SimulatedUser::Make(&world.matrix->normalized(), ideal);
  ASSERT_TRUE(user.ok());
  const auto ideal_topk = TopKIndices(
      std::vector<double>(user->true_scores().begin(),
                          user->true_scores().end()),
      5);

  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  double best_precision = 0.0;
  for (int iter = 0; iter < 15 && seeker->num_unlabeled() > 0; ++iter) {
    auto queries = seeker->NextQueries();
    ASSERT_TRUE(queries.ok());
    for (size_t q : *queries) {
      ASSERT_TRUE(seeker->SubmitLabel(q, *user->Label(q)).ok());
    }
    auto topk = seeker->RecommendTopK();
    ASSERT_TRUE(topk.ok());
    best_precision =
        std::max(best_precision, *TopKPrecision(*topk, ideal_topk));
  }
  EXPECT_GE(best_precision, 0.8);
}

TEST(ViewSeekerTest, DiverseRecommendationMatchesPlainAtLambdaZero) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  ASSERT_TRUE(seeker.ok());
  EXPECT_FALSE(seeker->RecommendDiverseTopK(0.3).ok());  // no labels yet
  ASSERT_TRUE(seeker->SubmitLabel(0, 0.9).ok());
  ASSERT_TRUE(seeker->SubmitLabel(1, 0.1).ok());
  auto plain = seeker->RecommendTopK();
  auto zero_lambda = seeker->RecommendDiverseTopK(0.0);
  ASSERT_TRUE(plain.ok() && zero_lambda.ok());
  EXPECT_EQ(*plain, *zero_lambda);
  auto diverse = seeker->RecommendDiverseTopK(0.6);
  ASSERT_TRUE(diverse.ok());
  EXPECT_EQ(diverse->size(), plain->size());
}

TEST(ViewSeekerTest, AutoRidgeSessionStillConverges) {
  auto world = testutil::MakeMiniWorld();
  IdealUtilityFunction ideal = Table2Presets()[4];
  auto user = SimulatedUser::Make(&world.matrix->normalized(), ideal);
  ASSERT_TRUE(user.ok());
  const auto ideal_topk = TopKIndices(
      std::vector<double>(user->true_scores().begin(),
                          user->true_scores().end()),
      5);

  ViewSeekerOptions options;
  options.auto_ridge = true;
  auto seeker = ViewSeeker::Make(world.matrix.get(), options);
  ASSERT_TRUE(seeker.ok());
  double best_precision = 0.0;
  for (int iter = 0; iter < 15 && seeker->num_unlabeled() > 0; ++iter) {
    auto q = seeker->NextQueries();
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(seeker->SubmitLabel((*q)[0], *user->Label((*q)[0])).ok());
    auto topk = seeker->RecommendTopK();
    ASSERT_TRUE(topk.ok());
    best_precision =
        std::max(best_precision, *TopKPrecision(*topk, ideal_topk));
  }
  EXPECT_GE(best_precision, 0.8);
}

TEST(ViewSeekerTest, DeterministicGivenSeed) {
  auto world = testutil::MakeMiniWorld();
  auto run = [&world](uint64_t seed) {
    ViewSeekerOptions options;
    options.seed = seed;
    auto seeker = ViewSeeker::Make(world.matrix.get(), options);
    std::vector<size_t> sequence;
    for (int i = 0; i < 8; ++i) {
      auto q = seeker->NextQueries();
      sequence.push_back((*q)[0]);
      auto st = seeker->SubmitLabel((*q)[0], (i % 2) ? 0.9 : 0.1);
      (void)st;
    }
    return sequence;
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace vs::core
