#include "core/session_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/ideal_utility.h"
#include "core/simulated_user.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

/// Strips the v2 integrity trailer and rewrites the header, producing the
/// exact bytes a pre-CRC release would have written.
std::string DowngradeToV1(std::string text) {
  const std::string v2_header = "viewseeker-session v2";
  EXPECT_EQ(text.compare(0, v2_header.size(), v2_header), 0);
  text.replace(0, v2_header.size(), "viewseeker-session v1");
  const size_t trailer = text.rfind("\ncrc32: ");
  EXPECT_NE(trailer, std::string::npos);
  text.erase(trailer + 1);
  return text;
}

/// Runs a few labeling iterations and returns the seeker.
ViewSeeker LabeledSeeker(const FeatureMatrix* matrix, int labels) {
  ViewSeekerOptions options;
  options.k = 3;
  options.seed = 9;
  auto seeker = ViewSeeker::Make(matrix, options);
  auto user = SimulatedUser::Make(&matrix->normalized(),
                                  Table2Presets()[3]);
  for (int i = 0; i < labels; ++i) {
    auto q = seeker->NextQueries();
    auto st = seeker->SubmitLabel((*q)[0], *user->Label((*q)[0]));
    (void)st;
  }
  return std::move(*seeker);
}

TEST(SessionIoTest, RoundTripReproducesState) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 6);
  auto text = SaveSession(original);
  ASSERT_TRUE(text.ok());

  auto restored = RestoreSession(world.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), original.num_labeled());
  EXPECT_EQ(restored->labeled(), original.labeled());
  EXPECT_EQ(restored->labels(), original.labels());
  EXPECT_EQ(restored->options().k, original.options().k);
  EXPECT_EQ(restored->options().strategy, original.options().strategy);

  // Replayed estimators are bit-identical.
  EXPECT_EQ(restored->utility_estimator().model().coefficients(),
            original.utility_estimator().model().coefficients());
  EXPECT_DOUBLE_EQ(restored->utility_estimator().model().intercept(),
                   original.utility_estimator().model().intercept());
  EXPECT_EQ(*restored->RecommendTopK(), *original.RecommendTopK());
}

TEST(SessionIoTest, RestoredSessionContinuesIdentically) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 5);
  auto text = SaveSession(original);
  auto restored = RestoreSession(world.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  // Note: the RNG position differs (restore replays labels without the
  // cold-start draws), so only deterministic (non-random) continuations
  // are guaranteed identical; with both classes present the uncertainty
  // strategy is deterministic.
  if (!original.in_cold_start()) {
    auto next_original = original.NextQueries();
    auto next_restored = restored->NextQueries();
    ASSERT_TRUE(next_original.ok() && next_restored.ok());
    EXPECT_EQ(*next_original, *next_restored);
  }
}

TEST(SessionIoTest, RestoredSessionAcceptsFurtherLabels) {
  // The serving resume path: save, rebuild the matrix from scratch,
  // restore, and keep labeling — the restored seeker must behave like a
  // live one (same top-k now, and willing to accept more labels).
  auto world_a = testutil::MakeMiniWorld();
  auto world_b = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world_a.matrix.get(), 6);
  auto text = SaveSession(original);
  ASSERT_TRUE(text.ok());
  auto restored = RestoreSession(world_b.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored->RecommendTopK(), *original.RecommendTopK());

  auto next = restored->NextQueries();
  ASSERT_TRUE(next.ok());
  ASSERT_FALSE(next->empty());
  ASSERT_TRUE(restored->SubmitLabel((*next)[0], 1.0).ok());
  EXPECT_EQ(restored->num_labeled(), 7u);
  EXPECT_TRUE(restored->RecommendTopK().ok());
}

TEST(SessionIoTest, RestoreOntoFreshMatrixWorks) {
  // Matrix rebuilt from scratch (same table/views): ids must line up.
  auto world_a = testutil::MakeMiniWorld();
  auto world_b = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world_a.matrix.get(), 4);
  auto text = SaveSession(original);
  auto restored = RestoreSession(world_b.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), 4u);
}

TEST(SessionIoTest, EmptySessionRoundTrips) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  auto text = SaveSession(*seeker);
  ASSERT_TRUE(text.ok());
  auto restored = RestoreSession(world.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), 0u);
  EXPECT_TRUE(restored->in_cold_start());
}

TEST(SessionIoTest, MalformedInputsRejected) {
  auto world = testutil::MakeMiniWorld();
  EXPECT_FALSE(RestoreSession(world.matrix.get(), "").ok());
  EXPECT_FALSE(RestoreSession(world.matrix.get(), "garbage").ok());
  EXPECT_FALSE(RestoreSession(nullptr, "viewseeker-session v1\n").ok());

  ViewSeeker original = LabeledSeeker(world.matrix.get(), 2);
  // Corrupt a view id on a v1 body (no checksum) so the semantic check,
  // not the integrity check, has to catch it.
  std::string bad = DowngradeToV1(*SaveSession(original));
  const size_t pos = bad.find("BY");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 2, "ZZ");
  auto r = RestoreSession(world.matrix.get(), bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(SessionIoTest, V2ChecksumDetectsCorruption) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 2);
  std::string text = *SaveSession(original);
  ASSERT_NE(text.find("viewseeker-session v2"), std::string::npos);
  ASSERT_NE(text.rfind("\ncrc32: "), std::string::npos);

  // Any single-byte flip in the body must be rejected by the checksum.
  std::string bad = text;
  const size_t pos = bad.find("BY");
  ASSERT_NE(pos, std::string::npos);
  bad[pos] = 'Z';
  auto r = RestoreSession(world.matrix.get(), bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("crc"), std::string::npos);

  // A corrupted trailer itself is also rejected.
  std::string bad_trailer = text;
  bad_trailer[bad_trailer.size() - 2] ^= 0x1;
  EXPECT_FALSE(RestoreSession(world.matrix.get(), bad_trailer).ok());
}

TEST(SessionIoTest, V1SessionsStillRestore) {
  // In-memory downgrade: the v1 reader path accepts trailer-less text.
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 5);
  const std::string v1 = DowngradeToV1(*SaveSession(original));
  auto restored = RestoreSession(world.matrix.get(), v1);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), original.num_labeled());
  EXPECT_EQ(restored->labels(), original.labels());
  EXPECT_EQ(*restored->RecommendTopK(), *original.RecommendTopK());
}

TEST(SessionIoTest, CommittedV1FixtureRestores) {
  // Bytes written by the pre-CRC release, committed verbatim: upgrading
  // the binary must never orphan spilled sessions already on disk.
  std::ifstream in(std::string(VS_TESTDATA_DIR) + "/session_v1.session",
                   std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  ASSERT_EQ(text.compare(0, 21, "viewseeker-session v1"), 0);

  auto world = testutil::MakeMiniWorld();
  auto restored = RestoreSession(world.matrix.get(), text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), 4u);
  // The fixture was recorded with the same deterministic labeling loop;
  // replaying it live must agree with the committed bytes.
  ViewSeeker relabeled = LabeledSeeker(world.matrix.get(), 4);
  EXPECT_EQ(restored->labeled(), relabeled.labeled());
  EXPECT_EQ(restored->labels(), relabeled.labels());
}

TEST(SessionIoTest, TruncatedLabelListRejected) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 3);
  std::string text = *SaveSession(original);
  // Claim more labels than present.
  const size_t pos = text.find("labels: 3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "labels: 9");
  EXPECT_FALSE(RestoreSession(world.matrix.get(), text).ok());
}

}  // namespace
}  // namespace vs::core
