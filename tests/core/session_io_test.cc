#include "core/session_io.h"

#include <gtest/gtest.h>

#include "core/ideal_utility.h"
#include "core/simulated_user.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

/// Runs a few labeling iterations and returns the seeker.
ViewSeeker LabeledSeeker(const FeatureMatrix* matrix, int labels) {
  ViewSeekerOptions options;
  options.k = 3;
  options.seed = 9;
  auto seeker = ViewSeeker::Make(matrix, options);
  auto user = SimulatedUser::Make(&matrix->normalized(),
                                  Table2Presets()[3]);
  for (int i = 0; i < labels; ++i) {
    auto q = seeker->NextQueries();
    auto st = seeker->SubmitLabel((*q)[0], *user->Label((*q)[0]));
    (void)st;
  }
  return std::move(*seeker);
}

TEST(SessionIoTest, RoundTripReproducesState) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 6);
  auto text = SaveSession(original);
  ASSERT_TRUE(text.ok());

  auto restored = RestoreSession(world.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), original.num_labeled());
  EXPECT_EQ(restored->labeled(), original.labeled());
  EXPECT_EQ(restored->labels(), original.labels());
  EXPECT_EQ(restored->options().k, original.options().k);
  EXPECT_EQ(restored->options().strategy, original.options().strategy);

  // Replayed estimators are bit-identical.
  EXPECT_EQ(restored->utility_estimator().model().coefficients(),
            original.utility_estimator().model().coefficients());
  EXPECT_DOUBLE_EQ(restored->utility_estimator().model().intercept(),
                   original.utility_estimator().model().intercept());
  EXPECT_EQ(*restored->RecommendTopK(), *original.RecommendTopK());
}

TEST(SessionIoTest, RestoredSessionContinuesIdentically) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 5);
  auto text = SaveSession(original);
  auto restored = RestoreSession(world.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  // Note: the RNG position differs (restore replays labels without the
  // cold-start draws), so only deterministic (non-random) continuations
  // are guaranteed identical; with both classes present the uncertainty
  // strategy is deterministic.
  if (!original.in_cold_start()) {
    auto next_original = original.NextQueries();
    auto next_restored = restored->NextQueries();
    ASSERT_TRUE(next_original.ok() && next_restored.ok());
    EXPECT_EQ(*next_original, *next_restored);
  }
}

TEST(SessionIoTest, RestoredSessionAcceptsFurtherLabels) {
  // The serving resume path: save, rebuild the matrix from scratch,
  // restore, and keep labeling — the restored seeker must behave like a
  // live one (same top-k now, and willing to accept more labels).
  auto world_a = testutil::MakeMiniWorld();
  auto world_b = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world_a.matrix.get(), 6);
  auto text = SaveSession(original);
  ASSERT_TRUE(text.ok());
  auto restored = RestoreSession(world_b.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored->RecommendTopK(), *original.RecommendTopK());

  auto next = restored->NextQueries();
  ASSERT_TRUE(next.ok());
  ASSERT_FALSE(next->empty());
  ASSERT_TRUE(restored->SubmitLabel((*next)[0], 1.0).ok());
  EXPECT_EQ(restored->num_labeled(), 7u);
  EXPECT_TRUE(restored->RecommendTopK().ok());
}

TEST(SessionIoTest, RestoreOntoFreshMatrixWorks) {
  // Matrix rebuilt from scratch (same table/views): ids must line up.
  auto world_a = testutil::MakeMiniWorld();
  auto world_b = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world_a.matrix.get(), 4);
  auto text = SaveSession(original);
  auto restored = RestoreSession(world_b.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), 4u);
}

TEST(SessionIoTest, EmptySessionRoundTrips) {
  auto world = testutil::MakeMiniWorld();
  auto seeker = ViewSeeker::Make(world.matrix.get(), {});
  auto text = SaveSession(*seeker);
  ASSERT_TRUE(text.ok());
  auto restored = RestoreSession(world.matrix.get(), *text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_labeled(), 0u);
  EXPECT_TRUE(restored->in_cold_start());
}

TEST(SessionIoTest, MalformedInputsRejected) {
  auto world = testutil::MakeMiniWorld();
  EXPECT_FALSE(RestoreSession(world.matrix.get(), "").ok());
  EXPECT_FALSE(RestoreSession(world.matrix.get(), "garbage").ok());
  EXPECT_FALSE(RestoreSession(nullptr, "viewseeker-session v1\n").ok());

  ViewSeeker original = LabeledSeeker(world.matrix.get(), 2);
  std::string text = *SaveSession(original);
  // Corrupt a view id.
  std::string bad = text;
  const size_t pos = bad.find("BY");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 2, "ZZ");
  auto r = RestoreSession(world.matrix.get(), bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(SessionIoTest, TruncatedLabelListRejected) {
  auto world = testutil::MakeMiniWorld();
  ViewSeeker original = LabeledSeeker(world.matrix.get(), 3);
  std::string text = *SaveSession(original);
  // Claim more labels than present.
  const size_t pos = text.find("labels: 3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "labels: 9");
  EXPECT_FALSE(RestoreSession(world.matrix.get(), text).ok());
}

}  // namespace
}  // namespace vs::core
