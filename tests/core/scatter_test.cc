#include "core/scatter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generator.h"
#include "data/predicate.h"

namespace vs::core {
namespace {

/// Table with a subset whose (x, y) correlation flips sign vs the whole.
data::Table CorrelationTable() {
  auto schema = *data::Schema::Make({
      {"group", data::DataType::kString, data::FieldRole::kDimension},
      {"x", data::DataType::kDouble, data::FieldRole::kMeasure},
      {"y", data::DataType::kDouble, data::FieldRole::kMeasure},
      {"noise", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  vs::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const bool special = i % 4 == 0;
    const double x = rng.NextDouble();
    // Special group: y falls with x; others: y rises with x.
    const double y = special ? 1.0 - x + 0.05 * rng.NextGaussian()
                             : x + 0.05 * rng.NextGaussian();
    auto st = b.AppendRow({data::Value(special ? "special" : "normal"),
                           data::Value(x), data::Value(y),
                           data::Value(rng.NextDouble())});
    (void)st;
  }
  return *b.Build();
}

TEST(ScatterViewTest, IdAndEquality) {
  ScatterViewSpec v{"a", "b"};
  EXPECT_EQ(v.Id(), "SCATTER(a, b)");
  EXPECT_TRUE((v == ScatterViewSpec{"a", "b"}));
  EXPECT_FALSE((v == ScatterViewSpec{"b", "a"}));
}

TEST(EnumerateScatterViewsTest, MeasurePairs) {
  data::Table t = CorrelationTable();
  auto views = EnumerateScatterViews(t);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 3u);  // C(3, 2) over x, y, noise
}

TEST(EnumerateScatterViewsTest, NeedsTwoMeasures) {
  auto schema = *data::Schema::Make({
      {"d", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  auto st = b.AppendRow({data::Value("x"), data::Value(1.0)});
  (void)st;
  auto views = EnumerateScatterViews(*b.Build());
  EXPECT_FALSE(views.ok());
  EXPECT_TRUE(views.status().IsFailedPrecondition());
}

TEST(PearsonCorrelationTest, DetectsSignedCorrelation) {
  data::Table t = CorrelationTable();
  auto query = *data::SelectRows(
      t, data::Compare("group", data::CompareOp::kEq,
                       data::Value("special")));
  auto corr_subset = PearsonCorrelation(t, "x", "y", &query);
  ASSERT_TRUE(corr_subset.ok());
  EXPECT_LT(*corr_subset, -0.8);  // y = 1 - x in the subset
  auto corr_all = PearsonCorrelation(t, "x", "y", nullptr);
  ASSERT_TRUE(corr_all.ok());
  EXPECT_GT(*corr_all, 0.3);  // mostly rising overall
}

TEST(PearsonCorrelationTest, NoiseIsUncorrelated) {
  data::Table t = CorrelationTable();
  auto corr = PearsonCorrelation(t, "x", "noise", nullptr);
  ASSERT_TRUE(corr.ok());
  EXPECT_NEAR(*corr, 0.0, 0.15);
}

TEST(PearsonCorrelationTest, InUnitRange) {
  data::Table t = CorrelationTable();
  for (const char* pair : {"y", "noise"}) {
    auto corr = PearsonCorrelation(t, "x", pair, nullptr);
    ASSERT_TRUE(corr.ok());
    EXPECT_GE(*corr, -1.0);
    EXPECT_LE(*corr, 1.0);
  }
}

TEST(PearsonCorrelationTest, DegenerateInputsRejected) {
  auto schema = *data::Schema::Make({
      {"a", data::DataType::kDouble, data::FieldRole::kMeasure},
      {"b", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder builder(schema);
  ASSERT_TRUE(builder.AppendRow({data::Value(1.0), data::Value(2.0)}).ok());
  data::Table one_row = *builder.Build();
  EXPECT_FALSE(PearsonCorrelation(one_row, "a", "b", nullptr).ok());

  data::TableBuilder builder2(schema);
  ASSERT_TRUE(builder2.AppendRow({data::Value(1.0), data::Value(1.0)}).ok());
  ASSERT_TRUE(builder2.AppendRow({data::Value(1.0), data::Value(2.0)}).ok());
  data::Table constant = *builder2.Build();
  auto r = PearsonCorrelation(constant, "a", "b", nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(ScatterFeaturesTest, CorrelationFlipScoresHigh) {
  data::Table t = CorrelationTable();
  auto query = *data::SelectRows(
      t, data::Compare("group", data::CompareOp::kEq,
                       data::Value("special")));
  auto xy = ComputeScatterFeatures(t, {"x", "y"}, query);
  ASSERT_TRUE(xy.ok());
  auto xnoise = ComputeScatterFeatures(t, {"x", "noise"}, query);
  ASSERT_TRUE(xnoise.ok());
  EXPECT_GT(xy->correlation_deviation, 1.0);   // sign flip ~ |1 - (-1)|
  EXPECT_LT(xnoise->correlation_deviation, 0.4);
  EXPECT_GE(xy->centroid_shift, 0.0);
  EXPECT_GE(xy->dispersion_ratio, 0.0);
}

TEST(RecommendScatterViewsTest, RanksFlippedPairFirst) {
  data::Table t = CorrelationTable();
  auto query = *data::SelectRows(
      t, data::Compare("group", data::CompareOp::kEq,
                       data::Value("special")));
  auto views = *EnumerateScatterViews(t);
  ml::Vector weights = {1.0, 0.0, 0.0};  // correlation deviation only
  auto rec = RecommendScatterViews(t, views, query, weights, 1);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 1u);
  EXPECT_EQ(views[(*rec)[0]].Id(), "SCATTER(x, y)");
}

TEST(RecommendScatterViewsTest, Validation) {
  data::Table t = CorrelationTable();
  auto query = t.AllRows();
  auto views = *EnumerateScatterViews(t);
  EXPECT_FALSE(
      RecommendScatterViews(t, views, query, {1.0}, 1).ok());  // bad width
  EXPECT_FALSE(
      RecommendScatterViews(t, views, query, {1.0, 0.0, 0.0}, 0).ok());
  EXPECT_FALSE(
      RecommendScatterViews(t, {}, query, {1.0, 0.0, 0.0}, 1).ok());
}

TEST(ScatterEndToEnd, WorksOnGeneratedClinicalData) {
  data::DiabetesOptions options;
  options.num_rows = 3000;
  auto t = data::GenerateDiabetes(options);
  ASSERT_TRUE(t.ok());
  auto query = *data::SelectRows(
      *t, data::Compare("gender", data::CompareOp::kEq,
                        data::Value("Male")));
  auto views = EnumerateScatterViews(*t);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 28u);  // C(8, 2)
  ml::Vector weights = {0.5, 0.3, 0.2};
  auto rec = RecommendScatterViews(*t, *views, query, weights, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 5u);
}

}  // namespace
}  // namespace vs::core
