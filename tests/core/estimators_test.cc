#include "core/estimators.h"

#include <gtest/gtest.h>

namespace vs::core {
namespace {

ml::Matrix PoolFeatures() {
  // 6 views x 2 features.
  return ml::Matrix{{0.0, 0.0}, {0.2, 0.1}, {0.4, 0.9},
                    {0.6, 0.3}, {0.8, 0.7}, {1.0, 1.0}};
}

TEST(ViewUtilityEstimatorTest, LearnsLinearUtility) {
  ml::Matrix pool = PoolFeatures();
  // u = 0.5 * f0 + 0.5 * f1 labels on 4 of the 6 views.
  std::vector<size_t> labeled = {0, 2, 3, 5};
  std::vector<double> labels;
  for (size_t i : labeled) {
    labels.push_back(0.5 * pool(i, 0) + 0.5 * pool(i, 1));
  }
  ViewUtilityEstimator estimator;
  ASSERT_TRUE(estimator.Refit(pool, labeled, labels).ok());
  EXPECT_TRUE(estimator.fitted());
  auto scores = estimator.ScoreAll(pool);
  ASSERT_TRUE(scores.ok());
  // Held-out views should score near their true utility.
  EXPECT_NEAR((*scores)[1], 0.15, 0.05);
  EXPECT_NEAR((*scores)[4], 0.75, 0.05);
}

TEST(ViewUtilityEstimatorTest, SingleLabelIsEnough) {
  ml::Matrix pool = PoolFeatures();
  ViewUtilityEstimator estimator;
  ASSERT_TRUE(estimator.Refit(pool, {3}, {0.7}).ok());
  EXPECT_TRUE(estimator.fitted());
  auto s = estimator.Score(pool.Row(3));
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, 0.7, 1e-6);
}

TEST(ViewUtilityEstimatorTest, RefitValidation) {
  ml::Matrix pool = PoolFeatures();
  ViewUtilityEstimator estimator;
  EXPECT_FALSE(estimator.Refit(pool, {}, {}).ok());
  EXPECT_FALSE(estimator.Refit(pool, {0, 1}, {0.5}).ok());
  EXPECT_FALSE(estimator.Refit(pool, {99}, {0.5}).ok());
  EXPECT_FALSE(estimator.fitted());
  EXPECT_FALSE(estimator.ScoreAll(pool).ok());
}

TEST(UncertaintyEstimatorTest, StaysUnfittedWithSingleClass) {
  ml::Matrix pool = PoolFeatures();
  UncertaintyEstimator estimator;
  ASSERT_TRUE(estimator.Refit(pool, {0, 1}, {0.1, 0.2}).ok());
  EXPECT_FALSE(estimator.fitted());
  ASSERT_TRUE(estimator.Refit(pool, {4, 5}, {0.9, 1.0}).ok());
  EXPECT_FALSE(estimator.fitted());
}

TEST(UncertaintyEstimatorTest, FitsOnceBothClassesPresent) {
  ml::Matrix pool = PoolFeatures();
  UncertaintyEstimator estimator;
  ASSERT_TRUE(
      estimator.Refit(pool, {0, 1, 4, 5}, {0.1, 0.2, 0.9, 1.0}).ok());
  EXPECT_TRUE(estimator.fitted());
  // Monotone: higher features -> higher probability.
  EXPECT_GT(*estimator.PredictProba(pool.Row(5)),
            *estimator.PredictProba(pool.Row(0)));
}

TEST(UncertaintyEstimatorTest, ThresholdControlsClassSplit) {
  ml::Matrix pool = PoolFeatures();
  UncertaintyEstimator strict({}, 0.95);
  // Labels 0.9 and 0.1 are both negative under the 0.95 threshold.
  ASSERT_TRUE(strict.Refit(pool, {0, 5}, {0.1, 0.9}).ok());
  EXPECT_FALSE(strict.fitted());
  EXPECT_DOUBLE_EQ(strict.positive_threshold(), 0.95);
}

TEST(UncertaintyEstimatorTest, RefitValidation) {
  ml::Matrix pool = PoolFeatures();
  UncertaintyEstimator estimator;
  EXPECT_FALSE(estimator.Refit(pool, {0}, {0.1, 0.9}).ok());
  EXPECT_FALSE(estimator.PredictProba(pool.Row(0)).ok());  // unfitted
}

}  // namespace
}  // namespace vs::core
