#include "core/metrics.h"

#include <gtest/gtest.h>

namespace vs::core {
namespace {

TEST(TopKIndicesTest, PicksLargestInOrder) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7, 0.3};
  EXPECT_EQ(TopKIndices(scores, 3), (std::vector<size_t>{1, 3, 2}));
}

TEST(TopKIndicesTest, TiesBreakByLowerIndex) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.9};
  EXPECT_EQ(TopKIndices(scores, 3), (std::vector<size_t>{3, 0, 1}));
}

TEST(TopKIndicesTest, KClampedToSize) {
  std::vector<double> scores = {0.1, 0.2};
  EXPECT_EQ(TopKIndices(scores, 10).size(), 2u);
  EXPECT_TRUE(TopKIndices({}, 5).empty());
  EXPECT_TRUE(TopKIndices(scores, 0).empty());
}

TEST(TopKPrecisionTest, FullOverlapIsOne) {
  auto p = TopKPrecision({1, 2, 3}, {3, 1, 2});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(TopKPrecisionTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(*TopKPrecision({1, 2, 9, 8}, {1, 2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(*TopKPrecision({9, 8, 7}, {1, 2, 3}), 0.0);
}

TEST(TopKPrecisionTest, EmptyIdealIsError) {
  EXPECT_FALSE(TopKPrecision({1}, {}).ok());
}

TEST(UtilityDistanceTest, IdenticalSetsHaveZeroUd) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  auto ud = UtilityDistance(scores, {0, 1}, {0, 1});
  ASSERT_TRUE(ud.ok());
  EXPECT_DOUBLE_EQ(*ud, 0.0);
}

TEST(UtilityDistanceTest, TieTolerant) {
  // Views 1 and 2 have identical utility: swapping them keeps UD = 0 even
  // though precision would drop — the exact property motivating Eq. 8.
  std::vector<double> scores = {0.9, 0.5, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(*UtilityDistance(scores, {0, 2}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(*TopKPrecision({0, 2}, {0, 1}), 0.5);
}

TEST(UtilityDistanceTest, KnownGap) {
  std::vector<double> scores = {1.0, 0.8, 0.6, 0.0};
  // Ideal {0,1} sum 1.8; recommended {0,3} sum 1.0; UD = 0.8/2.
  EXPECT_DOUBLE_EQ(*UtilityDistance(scores, {0, 3}, {0, 1}), 0.4);
}

TEST(UtilityDistanceTest, Validation) {
  std::vector<double> scores = {1.0};
  EXPECT_FALSE(UtilityDistance(scores, {0}, {}).ok());
  EXPECT_FALSE(UtilityDistance(scores, {5}, {0}).ok());
  EXPECT_FALSE(UtilityDistance(scores, {0}, {5}).ok());
}

TEST(KendallTauTest, PerfectAgreement) {
  EXPECT_DOUBLE_EQ(*KendallTau({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0);
}

TEST(KendallTauTest, PerfectDisagreement) {
  EXPECT_DOUBLE_EQ(*KendallTau({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}), -1.0);
}

TEST(KendallTauTest, TiesReduceMagnitude) {
  auto tau = KendallTau({1.0, 1.0, 2.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(tau.ok());
  EXPECT_GT(*tau, 0.0);
  EXPECT_LT(*tau, 1.0);
}

TEST(KendallTauTest, Validation) {
  EXPECT_FALSE(KendallTau({1.0}, {1.0}).ok());
  EXPECT_FALSE(KendallTau({1.0, 2.0}, {1.0}).ok());
}

}  // namespace
}  // namespace vs::core
