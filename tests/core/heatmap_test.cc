#include "core/heatmap.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "data/generator.h"
#include "data/predicate.h"

namespace vs::core {
namespace {

TEST(HeatmapViewSpecTest, IdFormat) {
  HeatmapViewSpec v{"a", "b", "m", data::AggregateFunction::kAvg, 0, 0};
  EXPECT_EQ(v.Id(), "HEATMAP AVG(m) BY a x b");
  HeatmapViewSpec binned{"x", "y", "m", data::AggregateFunction::kCount, 3,
                         4};
  EXPECT_EQ(binned.Id(), "HEATMAP COUNT(m) BY x x y/3x4");
}

TEST(EnumerateHeatmapViewsTest, PairCount) {
  data::Table t = testutil::MiniTable();  // 2 dims, 2 measures
  auto views = EnumerateHeatmapViews(t, {});
  ASSERT_TRUE(views.ok());
  // C(2,2)=1 pair x 2 measures x 5 funcs.
  EXPECT_EQ(views->size(), 10u);
}

TEST(EnumerateHeatmapViewsTest, DiabPairCount) {
  data::DiabetesOptions options;
  options.num_rows = 200;
  auto t = data::GenerateDiabetes(options);
  HeatmapEnumerationOptions enum_options;
  enum_options.functions = {data::AggregateFunction::kAvg};
  auto views = EnumerateHeatmapViews(*t, enum_options);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 21u * 8u);  // C(7,2) pairs x 8 measures
}

TEST(EnumerateHeatmapViewsTest, NeedsTwoDimensions) {
  auto schema = *data::Schema::Make({
      {"d", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  auto st = b.AppendRow({data::Value("x"), data::Value(1.0)});
  (void)st;
  auto views = EnumerateHeatmapViews(*b.Build(), {});
  EXPECT_FALSE(views.ok());
}

TEST(MaterializeHeatmapTest, GridsAlignAndNormalize) {
  data::Table t = testutil::MiniTable();
  auto query = testutil::MiniQuerySelection(t);
  HeatmapViewSpec spec{"color", "size", "m1",
                       data::AggregateFunction::kSum, 0, 0};
  auto mat = MaterializeHeatmap(t, spec, query);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->target.num_cells(), mat->reference.num_cells());
  EXPECT_EQ(mat->target.row_labels, mat->reference.row_labels);
  EXPECT_TRUE(stats::IsValidDistribution(mat->target_dist));
  EXPECT_TRUE(stats::IsValidDistribution(mat->reference_dist));
}

TEST(MaterializeHeatmapTest, QueryMassConcentratesInFilteredRow) {
  data::Table t = testutil::MiniTable();
  auto query = testutil::MiniQuerySelection(t);  // color == red
  HeatmapViewSpec spec{"color", "size", "m1",
                       data::AggregateFunction::kCount, 0, 0};
  auto mat = MaterializeHeatmap(t, spec, query);
  ASSERT_TRUE(mat.ok());
  // All target mass must be in the "red" grid row.
  size_t red_row = 0;
  for (size_t r = 0; r < mat->target.num_rows(); ++r) {
    if (mat->target.row_labels[r] == "red") red_row = r;
  }
  double red_mass = 0.0;
  for (size_t c = 0; c < mat->target.num_cols(); ++c) {
    red_mass +=
        mat->target_dist[red_row * mat->target.num_cols() + c];
  }
  EXPECT_DOUBLE_EQ(red_mass, 1.0);
}

TEST(RecommendHeatmapsTest, ReturnsKRankedViews) {
  data::Table t = testutil::MiniTable();
  auto query = testutil::MiniQuerySelection(t);
  auto views = *EnumerateHeatmapViews(t, {});
  auto rec = RecommendHeatmaps(t, views, query,
                               stats::DistanceKind::kL1, 3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 3u);
}

TEST(RecommendHeatmapsTest, Validation) {
  data::Table t = testutil::MiniTable();
  auto query = testutil::MiniQuerySelection(t);
  auto views = *EnumerateHeatmapViews(t, {});
  EXPECT_FALSE(
      RecommendHeatmaps(t, views, query, stats::DistanceKind::kL1, 0).ok());
  EXPECT_FALSE(
      RecommendHeatmaps(t, {}, query, stats::DistanceKind::kL1, 3).ok());
}

TEST(RecommendHeatmapsTest, WorksOnClinicalData) {
  data::DiabetesOptions options;
  options.num_rows = 2000;
  auto t = data::GenerateDiabetes(options);
  auto query = *data::SelectRows(
      *t, data::Compare("gender", data::CompareOp::kEq,
                        data::Value("Female")));
  HeatmapEnumerationOptions enum_options;
  enum_options.functions = {data::AggregateFunction::kAvg};
  auto views = *EnumerateHeatmapViews(*t, enum_options);
  auto rec = RecommendHeatmaps(*t, views, query,
                               stats::DistanceKind::kEMD, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 5u);
}

}  // namespace
}  // namespace vs::core
