#include "core/simulated_user.h"

#include <gtest/gtest.h>

namespace vs::core {
namespace {

ml::Matrix PoolFeatures() {
  return ml::Matrix{{0.0, 1.0}, {0.5, 0.5}, {1.0, 0.0}, {0.25, 0.25}};
}

TEST(SimulatedUserTest, LabelsAreNormalizedScores) {
  ml::Matrix pool = PoolFeatures();
  IdealUtilityFunction ideal("f0", {1.0, 0.0});
  auto user = SimulatedUser::Make(&pool, ideal);
  ASSERT_TRUE(user.ok());
  // Scores: 0, 0.5, 1, 0.25 -> already max 1.
  EXPECT_DOUBLE_EQ(*user->Label(2), 1.0);
  EXPECT_DOUBLE_EQ(*user->Label(1), 0.5);
  EXPECT_DOUBLE_EQ(*user->Label(0), 0.0);
}

TEST(SimulatedUserTest, NormalizationScalesBestToOne) {
  ml::Matrix pool = {{0.2}, {0.4}};
  IdealUtilityFunction ideal("f0", {1.0});
  auto user = SimulatedUser::Make(&pool, ideal);
  ASSERT_TRUE(user.ok());
  EXPECT_DOUBLE_EQ(*user->Label(1), 1.0);
  EXPECT_DOUBLE_EQ(*user->Label(0), 0.5);
}

TEST(SimulatedUserTest, NegativeScoresShiftedIntoUnitInterval) {
  ml::Matrix pool = {{0.0}, {1.0}};
  IdealUtilityFunction ideal("neg", {-1.0});
  auto user = SimulatedUser::Make(&pool, ideal);
  ASSERT_TRUE(user.ok());
  EXPECT_DOUBLE_EQ(*user->Label(0), 1.0);  // least negative is best
  EXPECT_DOUBLE_EQ(*user->Label(1), 0.0);
}

TEST(SimulatedUserTest, ConstantScoresRejected) {
  ml::Matrix pool = {{0.5}, {0.5}};
  IdealUtilityFunction ideal("f0", {1.0});
  auto user = SimulatedUser::Make(&pool, ideal);
  EXPECT_FALSE(user.ok());
  EXPECT_TRUE(user.status().IsFailedPrecondition());
}

TEST(SimulatedUserTest, OutOfRangeViewRejected) {
  ml::Matrix pool = PoolFeatures();
  IdealUtilityFunction ideal("f0", {1.0, 0.0});
  auto user = SimulatedUser::Make(&pool, ideal);
  ASSERT_TRUE(user.ok());
  EXPECT_FALSE(user->Label(99).ok());
}

TEST(SimulatedUserTest, NoiseStaysInUnitInterval) {
  ml::Matrix pool = PoolFeatures();
  IdealUtilityFunction ideal("f0", {1.0, 0.0});
  SimulatedUserOptions options;
  options.label_noise = 0.5;
  auto user = SimulatedUser::Make(&pool, ideal, options);
  ASSERT_TRUE(user.ok());
  for (int i = 0; i < 100; ++i) {
    const double l = *user->Label(i % 4);
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST(SimulatedUserTest, NoisyLabelsVaryAcrossCalls) {
  ml::Matrix pool = PoolFeatures();
  IdealUtilityFunction ideal("f0", {1.0, 0.0});
  SimulatedUserOptions options;
  options.label_noise = 0.2;
  auto user = SimulatedUser::Make(&pool, ideal, options);
  ASSERT_TRUE(user.ok());
  const double a = *user->Label(1);
  const double b = *user->Label(1);
  EXPECT_NE(a, b);
}

TEST(SimulatedUserTest, InvalidInputsRejected) {
  IdealUtilityFunction ideal("f0", {1.0});
  EXPECT_FALSE(SimulatedUser::Make(nullptr, ideal).ok());
  ml::Matrix pool = {{0.1}, {0.9}};
  SimulatedUserOptions options;
  options.label_noise = -0.1;
  EXPECT_FALSE(SimulatedUser::Make(&pool, ideal, options).ok());
}

TEST(SimulatedUserTest, TrueScoresExposedForMetrics) {
  ml::Matrix pool = PoolFeatures();
  IdealUtilityFunction ideal("f0", {1.0, 0.0});
  auto user = SimulatedUser::Make(&pool, ideal);
  ASSERT_TRUE(user.ok());
  ASSERT_EQ(user->true_scores().size(), 4u);
  EXPECT_DOUBLE_EQ(user->true_scores()[2], 1.0);
}

}  // namespace
}  // namespace vs::core
