#include "core/feature_kernels.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/utility_features.h"
#include "core/view_data.h"
#include "data/groupby.h"
#include "data/table.h"
#include "data/value.h"
#include "stats/distance.h"
#include "stats/histogram.h"

namespace vs::core {
namespace {

// Differential equivalence suite for the fused utility-feature kernels
// (core/feature_kernels.h) against the per-feature scalar functions: the
// deviation family within 1e-9 (lane partial sums reassociate), the
// non-loop features (Usability / Accuracy / P-value) bit-identical.

constexpr double kTolerance = 1e-9;

void ExpectFeatureNear(double oracle, double got, const std::string& what) {
  if (std::isnan(oracle) || std::isnan(got)) {
    EXPECT_EQ(std::isnan(oracle), std::isnan(got)) << what;
    return;
  }
  EXPECT_LE(std::fabs(oracle - got),
            kTolerance * std::max({1.0, std::fabs(oracle), std::fabs(got)}))
      << what << " oracle=" << oracle << " got=" << got;
}

stats::Distribution RandomDistribution(Rng& rng, size_t bins) {
  std::vector<double> raw(bins);
  double total = 0.0;
  const bool spiky = rng.NextBernoulli(0.3);
  for (size_t i = 0; i < bins; ++i) {
    raw[i] = spiky && !rng.NextBernoulli(0.2) ? 0.0 : rng.NextDouble();
    total += raw[i];
  }
  if (total == 0.0 && bins > 0) {
    raw[rng.NextBounded(bins)] = 1.0;
    total = 1.0;
  }
  for (double& v : raw) v /= total;
  return stats::Distribution{std::move(raw)};
}

// 500 random aligned pairs per run: the fused single-pass deviation
// kernel vs the five stats:: scalar distances.
TEST(FeatureKernelsTest, FusedDeviationMatchesScalarDistances) {
  Rng rng(20260808);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const size_t bins = 1 + rng.NextBounded(200);
    const stats::Distribution p = RandomDistribution(rng, bins);
    const stats::Distribution q = RandomDistribution(rng, bins);
    auto fused = FusedDeviationDistances(p, q);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();

    const std::string context = "iter " + std::to_string(iteration) +
                                " bins " + std::to_string(bins);
    ExpectFeatureNear(*stats::KlDivergence(p, q), fused->kl, context + " KL");
    ExpectFeatureNear(*stats::EarthMoversDistance(p, q), fused->emd,
                      context + " EMD");
    ExpectFeatureNear(*stats::L1Distance(p, q), fused->l1, context + " L1");
    ExpectFeatureNear(*stats::L2Distance(p, q), fused->l2, context + " L2");
    ExpectFeatureNear(*stats::MaxDiff(p, q), fused->max_diff,
                      context + " MAX_DIFF");
  }
}

TEST(FeatureKernelsTest, FusedDeviationShapeErrorsMatchScalar) {
  const stats::Distribution p{{0.5, 0.5}};
  const stats::Distribution q{{0.25, 0.25, 0.5}};
  auto fused = FusedDeviationDistances(p, q);
  auto scalar = stats::L1Distance(p, q);
  EXPECT_FALSE(fused.ok());
  EXPECT_FALSE(scalar.ok());
  EXPECT_EQ(fused.status().code(), scalar.status().code());

  const stats::Distribution empty{{}};
  auto fused_empty = FusedDeviationDistances(empty, empty);
  auto scalar_empty = stats::L1Distance(empty, empty);
  EXPECT_EQ(fused_empty.ok(), scalar_empty.ok());
}

// End-to-end: materialized views from random tables through the Default()
// registry with kernels on vs off.  The deviation prefix agrees within
// tolerance; Usability/Accuracy/P-value delegate to the same stats::
// routines and must be bit-identical.
TEST(FeatureKernelsTest, RegistryComputeAllMatchesScalarOnRandomViews) {
  Rng rng(77);
  auto kernel_registry = UtilityFeatureRegistry::Default();
  auto scalar_registry = UtilityFeatureRegistry::Default();
  scalar_registry.set_use_kernels(false);
  ASSERT_TRUE(kernel_registry.use_kernels());
  ASSERT_FALSE(scalar_registry.use_kernels());

  for (int iteration = 0; iteration < 40; ++iteration) {
    auto schema = *data::Schema::Make({
        {"c", data::DataType::kString, data::FieldRole::kDimension},
        {"x", data::DataType::kDouble, data::FieldRole::kDimension},
        {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
    });
    const size_t rows = 20 + rng.NextBounded(300);
    data::TableBuilder b(schema);
    for (size_t r = 0; r < rows; ++r) {
      ASSERT_TRUE(
          b.AppendRow({data::Value("L" + std::to_string(rng.NextBounded(9))),
                       data::Value(rng.NextDouble() * 50.0),
                       data::Value(rng.NextGaussian() * 4.0 + 1.0)})
              .ok());
    }
    data::Table table = *b.Build();
    data::GroupByExecutor executor(&table);

    data::SelectionVector query;
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextBernoulli(0.35)) query.push_back(static_cast<uint32_t>(r));
    }
    if (query.empty()) query.push_back(0);

    for (const ViewSpec& spec :
         {ViewSpec{"c", "m", data::AggregateFunction::kAvg, 0},
          ViewSpec{"c", "m", data::AggregateFunction::kSum, 0},
          ViewSpec{"x", "m", data::AggregateFunction::kCount, 5}}) {
      auto view = MaterializeView(executor, spec, query);
      if (!view.ok()) continue;  // degenerate distribution; both paths skip
      auto kernel_values = kernel_registry.ComputeAll(*view);
      auto scalar_values = scalar_registry.ComputeAll(*view);
      ASSERT_EQ(kernel_values.ok(), scalar_values.ok());
      if (!kernel_values.ok()) continue;
      ASSERT_EQ(kernel_values->size(), scalar_values->size());
      for (int f = 0; f < kNumBuiltinFeatures; ++f) {
        const std::string context =
            "iter " + std::to_string(iteration) + " " +
            UtilityFeatureName(static_cast<UtilityFeature>(f));
        if (f >= static_cast<int>(UtilityFeature::kUsability)) {
          EXPECT_EQ((*kernel_values)[f], (*scalar_values)[f]) << context;
        } else {
          ExpectFeatureNear((*scalar_values)[f], (*kernel_values)[f], context);
        }
      }
    }
  }
}

// Custom features registered on top of the built-in prefix always run
// through their own function, on both settings, in registration order.
TEST(FeatureKernelsTest, CustomFeatureUnaffectedByKernelToggle) {
  auto registry = UtilityFeatureRegistry::Default();
  ASSERT_TRUE(registry
                  .Register("CONST42",
                            [](const ViewMaterialization&) -> vs::Result<double> {
                              return 42.0;
                            })
                  .ok());

  auto schema = *data::Schema::Make({
      {"c", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  Rng rng(5);
  for (int r = 0; r < 60; ++r) {
    ASSERT_TRUE(
        b.AppendRow({data::Value("L" + std::to_string(rng.NextBounded(4))),
                     data::Value(rng.NextDouble())})
            .ok());
  }
  data::Table table = *b.Build();
  data::GroupByExecutor executor(&table);
  data::SelectionVector query = {0, 2, 4, 6, 8, 10};
  auto view = MaterializeView(
      executor, {"c", "m", data::AggregateFunction::kAvg, 0}, query);
  ASSERT_TRUE(view.ok());

  for (const bool use_kernels : {true, false}) {
    registry.set_use_kernels(use_kernels);
    auto values = registry.ComputeAll(*view);
    ASSERT_TRUE(values.ok());
    ASSERT_EQ(values->size(), static_cast<size_t>(kNumBuiltinFeatures) + 1);
    EXPECT_EQ((*values)[kNumBuiltinFeatures], 42.0);
  }
}

// A registry whose prefix is NOT the unmodified built-in eight must never
// take the fused path, even with kernels enabled.
TEST(FeatureKernelsTest, NonDefaultRegistryIgnoresKernelFlag) {
  UtilityFeatureRegistry registry;
  ASSERT_TRUE(registry
                  .Register("ONLY",
                            [](const ViewMaterialization&) -> vs::Result<double> {
                              return 7.0;
                            })
                  .ok());
  registry.set_use_kernels(true);

  auto schema = *data::Schema::Make({
      {"c", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({data::Value("a"), data::Value(1.0)}).ok());
  ASSERT_TRUE(b.AppendRow({data::Value("b"), data::Value(2.0)}).ok());
  data::Table table = *b.Build();
  data::GroupByExecutor executor(&table);
  data::SelectionVector query = {0};
  auto view = MaterializeView(
      executor, {"c", "m", data::AggregateFunction::kAvg, 0}, query);
  ASSERT_TRUE(view.ok());
  auto values = registry.ComputeAll(*view);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 1u);
  EXPECT_EQ((*values)[0], 7.0);
}

// ComputeBuiltinFeatures is the raw kernel entry point used by the
// registry; its output must line up index-for-index with ComputeAll.
TEST(FeatureKernelsTest, ComputeBuiltinFeaturesMatchesRegistry) {
  auto schema = *data::Schema::Make({
      {"c", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  Rng rng(11);
  for (int r = 0; r < 120; ++r) {
    ASSERT_TRUE(
        b.AppendRow({data::Value("L" + std::to_string(rng.NextBounded(6))),
                     data::Value(rng.NextGaussian() + 3.0)})
            .ok());
  }
  data::Table table = *b.Build();
  data::GroupByExecutor executor(&table);
  data::SelectionVector query;
  for (uint32_t r = 0; r < 120; r += 3) query.push_back(r);
  auto view = MaterializeView(
      executor, {"c", "m", data::AggregateFunction::kSum, 0}, query);
  ASSERT_TRUE(view.ok());

  double raw[kNumBuiltinFeatures] = {};
  ASSERT_TRUE(ComputeBuiltinFeatures(*view, raw).ok());
  auto registry = UtilityFeatureRegistry::Default();
  auto values = registry.ComputeAll(*view);
  ASSERT_TRUE(values.ok());
  for (int f = 0; f < kNumBuiltinFeatures; ++f) {
    EXPECT_EQ(raw[f], (*values)[f]) << f;
  }
}

}  // namespace
}  // namespace vs::core
