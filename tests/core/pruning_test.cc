#include "core/pruning.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(PruningTest, AllExactKeepsTopKOnly) {
  std::vector<double> scores = {0.9, 0.8, 0.5, 0.3, 0.1};
  std::vector<bool> exact(5, true);
  PruningOptions options;
  options.k = 2;
  options.margin = 0.05;
  auto candidates = TopKCandidates(scores, exact, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE((*candidates)[0]);
  EXPECT_TRUE((*candidates)[1]);
  EXPECT_FALSE((*candidates)[2]);
  EXPECT_FALSE((*candidates)[3]);
  EXPECT_FALSE((*candidates)[4]);
}

TEST(PruningTest, RoughRowsNearBoundarySurvive) {
  // Rough 0.75 with margin 0.1 can reach 0.85 >= second-best lower bound.
  std::vector<double> scores = {0.9, 0.8, 0.75, 0.3};
  std::vector<bool> exact = {true, true, false, false};
  PruningOptions options;
  options.k = 2;
  options.margin = 0.1;
  auto candidates = TopKCandidates(scores, exact, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE((*candidates)[2]);   // 0.75 + 0.1 >= 0.8
  EXPECT_FALSE((*candidates)[3]);  // 0.3 + 0.1 < 0.8
}

TEST(PruningTest, LargeMarginPrunesNothing) {
  std::vector<double> scores = {0.9, 0.5, 0.1};
  std::vector<bool> exact(3, false);
  PruningOptions options;
  options.k = 1;
  options.margin = 10.0;
  auto candidates = TopKCandidates(scores, exact, options);
  ASSERT_TRUE(candidates.ok());
  for (bool c : *candidates) EXPECT_TRUE(c);
}

TEST(PruningTest, ZeroMarginPrunesAggressively) {
  std::vector<double> scores = {0.9, 0.5, 0.1};
  std::vector<bool> exact(3, false);
  PruningOptions options;
  options.k = 1;
  options.margin = 0.0;
  auto candidates = TopKCandidates(scores, exact, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE((*candidates)[0]);
  EXPECT_FALSE((*candidates)[1]);
}

TEST(PruningTest, SafetyNoFalsePruning) {
  // Property: for any margin that truly bounds the rough error, the true
  // top-k is never pruned.
  vs::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 30;
    const double margin = 0.1;
    std::vector<double> exact_scores(n);
    std::vector<double> rough_scores(n);
    std::vector<bool> exact(n, false);
    for (size_t i = 0; i < n; ++i) {
      exact_scores[i] = rng.NextDouble();
      rough_scores[i] =
          exact_scores[i] + (rng.NextDouble() * 2.0 - 1.0) * margin;
    }
    PruningOptions options;
    options.k = 5;
    options.margin = margin;
    auto candidates = TopKCandidates(rough_scores, exact, options);
    ASSERT_TRUE(candidates.ok());
    for (size_t v : TopKIndices(exact_scores, 5)) {
      EXPECT_TRUE((*candidates)[v]) << "true top-k view pruned";
    }
  }
}

TEST(PruningTest, OrderIsScoreDescendingRoughOnly) {
  std::vector<double> scores = {0.5, 0.9, 0.7, 0.8};
  std::vector<bool> exact = {false, true, false, false};
  PruningOptions options;
  options.k = 4;
  options.margin = 1.0;  // keep everything
  auto order = PrunedRefinementOrder(scores, exact, options);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<size_t>{3, 2, 0}));  // rough rows only
}

TEST(PruningTest, MatrixOverloadUsesExactness) {
  auto world = testutil::MakeMiniWorld(0.3);
  ASSERT_TRUE(world.matrix->RefineRow(0).ok());
  std::vector<double> scores(world.matrix->num_views(), 0.5);
  PruningOptions options;
  options.k = 5;
  options.margin = 1.0;
  auto order = PrunedRefinementOrder(*world.matrix, scores, options);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), world.matrix->num_views() - 1);  // row 0 exact
  for (size_t v : *order) EXPECT_NE(v, 0u);
}

TEST(PruningTest, Validation) {
  std::vector<double> scores = {0.5};
  std::vector<bool> exact = {true, false};
  PruningOptions options;
  EXPECT_FALSE(TopKCandidates(scores, exact, options).ok());
  exact = {true};
  options.k = 0;
  EXPECT_FALSE(TopKCandidates(scores, exact, options).ok());
  options.k = 1;
  options.margin = -0.1;
  EXPECT_FALSE(TopKCandidates(scores, exact, options).ok());
  EXPECT_FALSE(TopKCandidates({}, {}, PruningOptions{}).ok());
}

TEST(PruningTest, KLargerThanPoolKeepsEverything) {
  std::vector<double> scores = {0.9, 0.1};
  std::vector<bool> exact = {true, true};
  PruningOptions options;
  options.k = 10;
  auto candidates = TopKCandidates(scores, exact, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE((*candidates)[0]);
  EXPECT_TRUE((*candidates)[1]);
}

}  // namespace
}  // namespace vs::core
