#include "core/view.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "data/generator.h"

namespace vs::core {
namespace {

TEST(ViewSpecTest, IdFormat) {
  ViewSpec v{"region", "sales", data::AggregateFunction::kAvg, 0};
  EXPECT_EQ(v.Id(), "AVG(sales) BY region");
  ViewSpec binned{"x", "m", data::AggregateFunction::kCount, 3};
  EXPECT_EQ(binned.Id(), "COUNT(m) BY x/3");
}

TEST(ViewSpecTest, ToGroupBySpec) {
  ViewSpec v{"a", "m", data::AggregateFunction::kMax, 4};
  data::GroupBySpec g = v.ToGroupBySpec();
  EXPECT_EQ(g.dimension, "a");
  EXPECT_EQ(g.measure, "m");
  EXPECT_EQ(g.func, data::AggregateFunction::kMax);
  EXPECT_EQ(g.num_bins, 4);
}

TEST(ViewSpecTest, Equality) {
  ViewSpec a{"a", "m", data::AggregateFunction::kSum, 0};
  ViewSpec b = a;
  EXPECT_TRUE(a == b);
  b.num_bins = 3;
  EXPECT_FALSE(a == b);
}

TEST(EnumerateViewsTest, CategoricalTableEnumeratesAxMxF) {
  data::Table table = testutil::MiniTable();
  auto views = EnumerateViews(table, {});
  ASSERT_TRUE(views.ok());
  // 2 dims x 2 measures x 5 funcs.
  EXPECT_EQ(views->size(), 20u);
  for (const ViewSpec& v : *views) {
    EXPECT_EQ(v.num_bins, 0);
  }
}

TEST(EnumerateViewsTest, DiabShapeIs280Views) {
  data::DiabetesOptions options;
  options.num_rows = 100;  // shape only
  auto table = data::GenerateDiabetes(options);
  ASSERT_TRUE(table.ok());
  auto views = EnumerateViews(*table, {});
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 280u);  // 7 x 8 x 5, Table 1
}

TEST(EnumerateViewsTest, SynShapeIs250ViewsWithTwoBinConfigs) {
  data::SyntheticOptions options;
  options.num_rows = 100;
  auto table = data::GenerateSynthetic(options);
  ASSERT_TRUE(table.ok());
  ViewEnumerationOptions enum_options;
  enum_options.numeric_bin_configs = {3, 4};
  auto views = EnumerateViews(*table, enum_options);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 250u);  // 5 x 5 x 5 x 2, Table 1
}

TEST(EnumerateViewsTest, FunctionSubsetRespected) {
  data::Table table = testutil::MiniTable();
  ViewEnumerationOptions options;
  options.functions = {data::AggregateFunction::kSum};
  auto views = EnumerateViews(table, options);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 4u);  // 2 x 2 x 1
  for (const ViewSpec& v : *views) {
    EXPECT_EQ(v.func, data::AggregateFunction::kSum);
  }
}

TEST(EnumerateViewsTest, ViewIdsAreUnique) {
  data::Table table = testutil::MiniTable();
  auto views = EnumerateViews(table, {});
  ASSERT_TRUE(views.ok());
  std::set<std::string> ids;
  for (const ViewSpec& v : *views) ids.insert(v.Id());
  EXPECT_EQ(ids.size(), views->size());
}

TEST(EnumerateViewsTest, ErrorsWithoutDimensionsOrMeasures) {
  auto no_dims = *data::Schema::Make(
      {{"m", data::DataType::kDouble, data::FieldRole::kMeasure}});
  data::TableBuilder b1(no_dims);
  ASSERT_TRUE(b1.AppendRow({data::Value(1.0)}).ok());
  EXPECT_FALSE(EnumerateViews(*b1.Build(), {}).ok());

  auto no_measures = *data::Schema::Make(
      {{"d", data::DataType::kString, data::FieldRole::kDimension}});
  data::TableBuilder b2(no_measures);
  ASSERT_TRUE(b2.AppendRow({data::Value("x")}).ok());
  EXPECT_FALSE(EnumerateViews(*b2.Build(), {}).ok());
}

TEST(EnumerateViewsTest, NumericDimsWithoutBinConfigsRejected) {
  data::SyntheticOptions options;
  options.num_rows = 10;
  auto table = data::GenerateSynthetic(options);
  ViewEnumerationOptions enum_options;
  enum_options.numeric_bin_configs = {};
  EXPECT_FALSE(EnumerateViews(*table, enum_options).ok());
  enum_options.numeric_bin_configs = {0};
  EXPECT_FALSE(EnumerateViews(*table, enum_options).ok());
}

TEST(EnumerateViewsTest, StringMeasureRejected) {
  auto schema = *data::Schema::Make({
      {"d", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kString, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({data::Value("x"), data::Value("y")}).ok());
  EXPECT_FALSE(EnumerateViews(*b.Build(), {}).ok());
}

TEST(EnumerateViewsTest, MaxViewsCapSubsamplesDeterministically) {
  data::Table table = testutil::MiniTable();
  ViewEnumerationOptions options;
  options.max_views = 7;
  auto a = EnumerateViews(table, options);
  auto b = EnumerateViews(table, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), 7u);
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i] == (*b)[i]);
  }
  // Different seeds yield different subsets (with high probability).
  options.max_views_seed = 999;
  auto c = EnumerateViews(table, options);
  ASSERT_TRUE(c.ok());
  bool any_different = false;
  for (size_t i = 0; i < c->size(); ++i) {
    if (!((*a)[i] == (*c)[i])) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(EnumerateViewsTest, MaxViewsLargerThanSpaceIsNoop) {
  data::Table table = testutil::MiniTable();
  ViewEnumerationOptions options;
  options.max_views = 1000;
  auto views = EnumerateViews(table, options);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 20u);
}

TEST(ViewSpaceSizeTest, Eq1) {
  EXPECT_EQ(ViewSpaceSize(7, 8, 5), 560);   // DIAB: 2 x 280
  EXPECT_EQ(ViewSpaceSize(5, 5, 5), 250);   // SYN per bin config
  EXPECT_EQ(ViewSpaceSize(1, 1, 1), 2);
}

}  // namespace
}  // namespace vs::core
