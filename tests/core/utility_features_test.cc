#include "core/utility_features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "stats/distance.h"

namespace vs::core {
namespace {

ViewMaterialization MiniMaterialization(const data::Table& table,
                                        const ViewSpec& spec) {
  data::GroupByExecutor executor(&table);
  return *MaterializeView(executor, spec,
                          testutil::MiniQuerySelection(table));
}

TEST(UtilityFeatureTest, NamesAndParseRoundTrip) {
  for (int i = 0; i < kNumBuiltinFeatures; ++i) {
    const auto f = static_cast<UtilityFeature>(i);
    auto parsed = ParseUtilityFeature(UtilityFeatureName(f));
    ASSERT_TRUE(parsed.ok()) << UtilityFeatureName(f);
    EXPECT_EQ(*parsed, i);
  }
  EXPECT_FALSE(ParseUtilityFeature("bogus").ok());
}

TEST(UtilityFeatureRegistryTest, DefaultHasEightFeaturesInOrder) {
  auto registry = UtilityFeatureRegistry::Default();
  ASSERT_EQ(registry.size(), 8u);
  EXPECT_EQ(registry.names()[0], "KL");
  EXPECT_EQ(registry.names()[1], "EMD");
  EXPECT_EQ(registry.names()[4], "MAX_DIFF");
  EXPECT_EQ(registry.names()[7], "PVALUE");
  EXPECT_EQ(*registry.IndexOf("ACCURACY"), 6u);
  EXPECT_FALSE(registry.IndexOf("nope").ok());
}

TEST(UtilityFeatureRegistryTest, ComputeAllProducesFiniteValues) {
  data::Table table = testutil::MiniTable();
  auto registry = UtilityFeatureRegistry::Default();
  for (const ViewSpec& spec : testutil::MiniViews(table)) {
    auto features = registry.ComputeAll(MiniMaterialization(table, spec));
    ASSERT_TRUE(features.ok()) << spec.Id();
    ASSERT_EQ(features->size(), 8u);
    for (double f : *features) {
      EXPECT_TRUE(std::isfinite(f)) << spec.Id();
    }
  }
}

TEST(UtilityFeatureRegistryTest, DeviationFeaturesMatchDirectDistances) {
  data::Table table = testutil::MiniTable();
  auto registry = UtilityFeatureRegistry::Default();
  ViewSpec spec{"size", "m1", data::AggregateFunction::kAvg, 0};
  ViewMaterialization mat = MiniMaterialization(table, spec);
  auto features = registry.ComputeAll(mat);
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ(
      (*features)[static_cast<int>(UtilityFeature::kEMD)],
      *stats::EarthMoversDistance(mat.target_dist, mat.reference_dist));
  EXPECT_DOUBLE_EQ(
      (*features)[static_cast<int>(UtilityFeature::kL1)],
      *stats::L1Distance(mat.target_dist, mat.reference_dist));
  EXPECT_DOUBLE_EQ(
      (*features)[static_cast<int>(UtilityFeature::kMaxDiff)],
      *stats::MaxDiff(mat.target_dist, mat.reference_dist));
}

TEST(UtilityFeatureRegistryTest, BoundedFeaturesInUnitInterval) {
  data::Table table = testutil::MiniTable();
  auto registry = UtilityFeatureRegistry::Default();
  for (const ViewSpec& spec : testutil::MiniViews(table)) {
    auto features = registry.ComputeAll(MiniMaterialization(table, spec));
    ASSERT_TRUE(features.ok());
    for (UtilityFeature f : {UtilityFeature::kUsability,
                             UtilityFeature::kAccuracy,
                             UtilityFeature::kPValue}) {
      const double v = (*features)[static_cast<int>(f)];
      EXPECT_GE(v, 0.0) << spec.Id() << " " << UtilityFeatureName(f);
      EXPECT_LE(v, 1.0) << spec.Id() << " " << UtilityFeatureName(f);
    }
  }
}

TEST(UtilityFeatureRegistryTest, IdenticalTargetAndReferenceScoreZeroDeviation) {
  data::Table table = testutil::MiniTable();
  data::GroupByExecutor executor(&table);
  data::SelectionVector all = table.AllRows();
  ViewSpec spec{"color", "m1", data::AggregateFunction::kSum, 0};
  // Target = reference = whole table.
  auto mat = MaterializeView(executor, spec, all);
  ASSERT_TRUE(mat.ok());
  auto registry = UtilityFeatureRegistry::Default();
  auto features = registry.ComputeAll(*mat);
  ASSERT_TRUE(features.ok());
  for (UtilityFeature f :
       {UtilityFeature::kKL, UtilityFeature::kEMD, UtilityFeature::kL1,
        UtilityFeature::kL2, UtilityFeature::kMaxDiff}) {
    EXPECT_NEAR((*features)[static_cast<int>(f)], 0.0, 1e-9)
        << UtilityFeatureName(f);
  }
  // And the target is as expected under the null: p-value feature ~ 0.
  EXPECT_LT((*features)[static_cast<int>(UtilityFeature::kPValue)], 0.5);
}

TEST(UtilityFeatureRegistryTest, CustomFeatureRegistration) {
  auto registry = UtilityFeatureRegistry::Default();
  ASSERT_TRUE(registry
                  .Register("BIN_COUNT",
                            [](const ViewMaterialization& view) {
                              return vs::Result<double>(static_cast<double>(
                                  view.target.num_bins()));
                            })
                  .ok());
  EXPECT_EQ(registry.size(), 9u);
  data::Table table = testutil::MiniTable();
  ViewSpec spec{"color", "m1", data::AggregateFunction::kSum, 0};
  auto features = registry.ComputeAll(MiniMaterialization(table, spec));
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ((*features)[8], 3.0);  // color has 3 bins
}

TEST(UtilityFeatureRegistryTest, RegistrationValidation) {
  auto registry = UtilityFeatureRegistry::Default();
  EXPECT_FALSE(registry.Register("KL", nullptr).ok());  // null fn
  auto dup = registry.Register(
      "KL", [](const ViewMaterialization&) { return vs::Result<double>(0.0); });
  EXPECT_FALSE(dup.ok());
  EXPECT_TRUE(dup.IsAlreadyExists());
  auto empty_name = registry.Register(
      "", [](const ViewMaterialization&) { return vs::Result<double>(0.0); });
  EXPECT_FALSE(empty_name.ok());
}

TEST(UtilityFeatureRegistryTest, FeatureErrorPropagates) {
  UtilityFeatureRegistry registry;
  ASSERT_TRUE(registry
                  .Register("fails",
                            [](const ViewMaterialization&) {
                              return vs::Result<double>(
                                  vs::Status::Internal("boom"));
                            })
                  .ok());
  data::Table table = testutil::MiniTable();
  ViewSpec spec{"color", "m1", data::AggregateFunction::kSum, 0};
  auto r = registry.ComputeAll(MiniMaterialization(table, spec));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(UtilityFeatureRegistryTest, EmptyTargetSelectionGivesZeroPValue) {
  data::Table table = testutil::MiniTable();
  data::GroupByExecutor executor(&table);
  data::SelectionVector empty;
  ViewSpec spec{"color", "m1", data::AggregateFunction::kCount, 0};
  auto mat = MaterializeView(executor, spec, empty);
  ASSERT_TRUE(mat.ok());
  auto registry = UtilityFeatureRegistry::Default();
  auto features = registry.ComputeAll(*mat);
  ASSERT_TRUE(features.ok());
  // Degenerate target carries no evidence.
  EXPECT_DOUBLE_EQ((*features)[static_cast<int>(UtilityFeature::kPValue)],
                   0.0);
}

}  // namespace
}  // namespace vs::core
