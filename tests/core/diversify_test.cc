#include "core/diversify.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

std::vector<double> UtilityByEmd(const FeatureMatrix& matrix) {
  std::vector<double> scores(matrix.num_views());
  for (size_t i = 0; i < matrix.num_views(); ++i) {
    scores[i] = matrix.normalized()(i, 1);  // EMD column
  }
  return scores;
}

TEST(DiversifyTest, LambdaZeroIsPlainTopK) {
  auto world = testutil::MakeMiniWorld();
  auto scores = UtilityByEmd(*world.matrix);
  DiversifyOptions options;
  options.k = 5;
  options.lambda = 0.0;
  auto diversified = DiversifiedTopK(*world.matrix, scores, options);
  ASSERT_TRUE(diversified.ok());
  EXPECT_EQ(*diversified, TopKIndices(scores, 5));
}

TEST(DiversifyTest, FirstPickIsAlwaysTheBestView) {
  auto world = testutil::MakeMiniWorld();
  auto scores = UtilityByEmd(*world.matrix);
  for (double lambda : {0.1, 0.5, 0.9}) {
    DiversifyOptions options;
    options.k = 4;
    options.lambda = lambda;
    auto selected = DiversifiedTopK(*world.matrix, scores, options);
    ASSERT_TRUE(selected.ok());
    EXPECT_EQ((*selected)[0], TopKIndices(scores, 1)[0]);
  }
}

TEST(DiversifyTest, SelectionIsDistinctAndSizedK) {
  auto world = testutil::MakeMiniWorld();
  auto scores = UtilityByEmd(*world.matrix);
  DiversifyOptions options;
  options.k = 8;
  options.lambda = 0.5;
  auto selected = DiversifiedTopK(*world.matrix, scores, options);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 8u);
  std::set<size_t> unique(selected->begin(), selected->end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(DiversifyTest, DiversityIncreasesPairwiseSpread) {
  auto world = testutil::MakeMiniWorld();
  auto scores = UtilityByEmd(*world.matrix);
  const ml::Matrix& rows = world.matrix->normalized();
  auto spread = [&rows](const std::vector<size_t>& views) {
    double total = 0.0;
    int pairs = 0;
    for (size_t a = 0; a < views.size(); ++a) {
      for (size_t b = a + 1; b < views.size(); ++b) {
        double acc = 0.0;
        for (size_t j = 0; j < rows.cols(); ++j) {
          const double d = rows(views[a], j) - rows(views[b], j);
          acc += d * d;
        }
        total += std::sqrt(acc);
        ++pairs;
      }
    }
    return total / pairs;
  };
  DiversifyOptions plain;
  plain.k = 5;
  plain.lambda = 0.0;
  DiversifyOptions diverse;
  diverse.k = 5;
  diverse.lambda = 0.8;
  auto base = DiversifiedTopK(*world.matrix, scores, plain);
  auto spread_out = DiversifiedTopK(*world.matrix, scores, diverse);
  ASSERT_TRUE(base.ok() && spread_out.ok());
  EXPECT_GE(spread(*spread_out), spread(*base));
}

TEST(DiversifyTest, KClampsToPool) {
  auto world = testutil::MakeMiniWorld();
  auto scores = UtilityByEmd(*world.matrix);
  DiversifyOptions options;
  options.k = 1000;
  options.lambda = 0.5;
  auto selected = DiversifiedTopK(*world.matrix, scores, options);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), world.matrix->num_views());
}

TEST(DiversifyTest, Validation) {
  auto world = testutil::MakeMiniWorld();
  std::vector<double> wrong_size(3, 0.0);
  DiversifyOptions options;
  EXPECT_FALSE(DiversifiedTopK(*world.matrix, wrong_size, options).ok());
  auto scores = UtilityByEmd(*world.matrix);
  options.k = 0;
  EXPECT_FALSE(DiversifiedTopK(*world.matrix, scores, options).ok());
  options.k = 5;
  options.lambda = 1.5;
  EXPECT_FALSE(DiversifiedTopK(*world.matrix, scores, options).ok());
}

}  // namespace
}  // namespace vs::core
