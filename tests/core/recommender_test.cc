#include "core/recommender.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(RecommenderTest, ByFeatureMatchesManualRanking) {
  auto world = testutil::MakeMiniWorld();
  const size_t emd = 1;
  auto rec = RecommendByFeature(*world.matrix, emd, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 5u);
  // Manual ranking over the normalized column.
  std::vector<double> col;
  for (size_t i = 0; i < world.matrix->num_views(); ++i) {
    col.push_back(world.matrix->normalized()(i, emd));
  }
  EXPECT_EQ(*rec, TopKIndices(col, 5));
}

TEST(RecommenderTest, ByFeatureNameResolvesRegistry) {
  auto world = testutil::MakeMiniWorld();
  auto by_index = RecommendByFeature(*world.matrix, 1, 5);
  auto by_name = RecommendByFeatureName(*world.matrix, "EMD", 5);
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, *by_index);
  EXPECT_FALSE(RecommendByFeatureName(*world.matrix, "NOPE", 5).ok());
}

TEST(RecommenderTest, ByWeightsEqualsFeatureWhenOneHot) {
  auto world = testutil::MakeMiniWorld();
  ml::Vector weights(8, 0.0);
  weights[4] = 1.0;  // MAX_DIFF
  auto by_weights = RecommendByWeights(*world.matrix, weights, 5);
  auto by_feature = RecommendByFeature(*world.matrix, 4, 5);
  ASSERT_TRUE(by_weights.ok());
  EXPECT_EQ(*by_weights, *by_feature);
}

TEST(RecommenderTest, CompositeWeightsDifferFromSingleFeature) {
  auto world = testutil::MakeMiniWorld();
  ml::Vector composite(8, 0.0);
  composite[0] = 0.3;  // KL
  composite[1] = 0.3;  // EMD
  composite[6] = 0.4;  // ACCURACY
  auto comp = RecommendByWeights(*world.matrix, composite, 5);
  ASSERT_TRUE(comp.ok());
  EXPECT_EQ(comp->size(), 5u);
}

TEST(RecommenderTest, Validation) {
  auto world = testutil::MakeMiniWorld();
  EXPECT_FALSE(RecommendByFeature(*world.matrix, 99, 5).ok());
  EXPECT_FALSE(RecommendByFeature(*world.matrix, 0, 0).ok());
  EXPECT_FALSE(RecommendByFeature(*world.matrix, 0, -1).ok());
  ml::Vector short_weights(3, 1.0);
  EXPECT_FALSE(RecommendByWeights(*world.matrix, short_weights, 5).ok());
  ml::Vector ok_weights(8, 1.0);
  EXPECT_FALSE(RecommendByWeights(*world.matrix, ok_weights, 0).ok());
}

TEST(RecommenderTest, KLargerThanPoolClamps) {
  auto world = testutil::MakeMiniWorld();
  auto rec = RecommendByFeature(*world.matrix, 0, 100);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 20u);
}

}  // namespace
}  // namespace vs::core
