#include "core/view_data.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(MaterializeViewTest, TargetAndReferenceAlign) {
  data::Table table = testutil::MiniTable();
  data::SelectionVector query = testutil::MiniQuerySelection(table);
  data::GroupByExecutor executor(&table);
  ViewSpec spec{"size", "m1", data::AggregateFunction::kAvg, 0};
  auto mat = MaterializeView(executor, spec, query);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->target.num_bins(), mat->reference.num_bins());
  EXPECT_EQ(mat->target.bin_labels, mat->reference.bin_labels);
  EXPECT_EQ(mat->target_dist.size(), mat->reference_dist.size());
}

TEST(MaterializeViewTest, DistributionsAreNormalized) {
  data::Table table = testutil::MiniTable();
  data::SelectionVector query = testutil::MiniQuerySelection(table);
  data::GroupByExecutor executor(&table);
  for (const ViewSpec& spec : testutil::MiniViews(table)) {
    auto mat = MaterializeView(executor, spec, query);
    ASSERT_TRUE(mat.ok()) << spec.Id();
    EXPECT_TRUE(stats::IsValidDistribution(mat->target_dist)) << spec.Id();
    EXPECT_TRUE(stats::IsValidDistribution(mat->reference_dist))
        << spec.Id();
  }
}

TEST(MaterializeViewTest, TargetUsesOnlyQueryRows) {
  data::Table table = testutil::MiniTable();
  data::SelectionVector query = testutil::MiniQuerySelection(table);
  data::GroupByExecutor executor(&table);
  ViewSpec spec{"color", "m1", data::AggregateFunction::kCount, 0};
  auto mat = MaterializeView(executor, spec, query);
  ASSERT_TRUE(mat.ok());
  // Query is color == red: all target mass in the red bin.
  // Dictionary order comes from insertion; find the red bin by label.
  size_t red_bin = 0;
  for (size_t b = 0; b < mat->target.bin_labels.size(); ++b) {
    if (mat->target.bin_labels[b] == "red") red_bin = b;
  }
  EXPECT_DOUBLE_EQ(mat->target_dist[red_bin], 1.0);
  EXPECT_EQ(mat->target.rows_seen, static_cast<int64_t>(query.size()));
  EXPECT_EQ(mat->reference.rows_seen,
            static_cast<int64_t>(table.num_rows()));
}

TEST(MaterializeViewTest, ReferenceSelectionRestrictsReference) {
  data::Table table = testutil::MiniTable();
  data::SelectionVector query = testutil::MiniQuerySelection(table);
  data::SelectionVector half;
  for (uint32_t r = 0; r < table.num_rows(); r += 2) half.push_back(r);
  data::GroupByExecutor executor(&table);
  ViewSpec spec{"size", "m2", data::AggregateFunction::kSum, 0};
  auto mat = MaterializeView(executor, spec, query, &half);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->reference.rows_seen, static_cast<int64_t>(half.size()));
}

TEST(MaterializeViewTest, UnknownColumnsError) {
  data::Table table = testutil::MiniTable();
  data::SelectionVector query = testutil::MiniQuerySelection(table);
  data::GroupByExecutor executor(&table);
  ViewSpec bad{"bogus", "m1", data::AggregateFunction::kSum, 0};
  EXPECT_FALSE(MaterializeView(executor, bad, query).ok());
}

}  // namespace
}  // namespace vs::core
