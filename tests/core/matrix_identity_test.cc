#include "core/matrix_identity.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(MatrixIdentityTest, Fnv1a64KnownVectors) {
  // Published FNV-1a 64-bit test vectors (offset basis and "a").
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(MatrixIdentityTest, KeyIsDeterministicAndWellFormed) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrixOptions options;
  const std::string a = FeatureMatrixCacheKey(
      "mini#240", world.query, world.views, *world.registry, options);
  const std::string b = FeatureMatrixCacheKey(
      "mini#240", world.query, world.views, *world.registry, options);
  EXPECT_EQ(a, b);
  // Five fixed-width hex groups: 5*16 digits + 4 dashes.
  ASSERT_EQ(a.size(), 84u);
  for (size_t i = 0; i < a.size(); ++i) {
    if (i == 16 || i == 33 || i == 50 || i == 67) {
      EXPECT_EQ(a[i], '-') << "position " << i;
    } else {
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(a[i])))
          << "position " << i;
    }
  }
}

TEST(MatrixIdentityTest, KeyHashesSelectionContentNotProvenance) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrixOptions options;
  const std::string base = FeatureMatrixCacheKey(
      "t", world.query, world.views, *world.registry, options);

  // An equal-content copy of the selection (different vector object,
  // different hypothetical filter text) keys identically.
  data::SelectionVector copy = world.query;
  EXPECT_EQ(base, FeatureMatrixCacheKey("t", copy, world.views,
                                        *world.registry, options));

  // Any change to the selected rows changes the key.
  data::SelectionVector fewer = world.query;
  fewer.pop_back();
  EXPECT_NE(base, FeatureMatrixCacheKey("t", fewer, world.views,
                                        *world.registry, options));
  data::SelectionVector all = world.table->AllRows();
  EXPECT_NE(base, FeatureMatrixCacheKey("t", all, world.views,
                                        *world.registry, options));
}

TEST(MatrixIdentityTest, KeySensitivity) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrixOptions options;
  const std::string base = FeatureMatrixCacheKey(
      "t", world.query, world.views, *world.registry, options);

  // Table identity.
  EXPECT_NE(base, FeatureMatrixCacheKey("t2", world.query, world.views,
                                        *world.registry, options));

  // View space: dropping one view must change the key.
  std::vector<ViewSpec> fewer_views = world.views;
  fewer_views.pop_back();
  EXPECT_NE(base, FeatureMatrixCacheKey("t", world.query, fewer_views,
                                        *world.registry, options));

  // Registry: an empty feature set keys differently.
  UtilityFeatureRegistry empty;
  EXPECT_NE(base, FeatureMatrixCacheKey("t", world.query, world.views,
                                        empty, options));

  // Value-affecting options.
  FeatureMatrixOptions sampled = options;
  sampled.sample_rate = 0.5;
  EXPECT_NE(base, FeatureMatrixCacheKey("t", world.query, world.views,
                                        *world.registry, sampled));
  FeatureMatrixOptions reseeded = options;
  reseeded.seed = options.seed + 1;
  EXPECT_NE(base, FeatureMatrixCacheKey("t", world.query, world.views,
                                        *world.registry, reseeded));
  FeatureMatrixOptions per_view = options;
  per_view.shared_scan = false;
  EXPECT_NE(base, FeatureMatrixCacheKey("t", world.query, world.views,
                                        *world.registry, per_view));
}

TEST(MatrixIdentityTest, NumThreadsDoesNotAffectKey) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrixOptions sequential;
  sequential.num_threads = 0;
  FeatureMatrixOptions parallel;
  parallel.num_threads = 8;
  // Results are documented identical across thread counts (see
  // FeatureMatrixTest.ParallelBuildMatchesSequential), so the key must
  // let those builds share one cache slot.
  EXPECT_EQ(FeatureMatrixCacheKey("t", world.query, world.views,
                                  *world.registry, sequential),
            FeatureMatrixCacheKey("t", world.query, world.views,
                                  *world.registry, parallel));
}

}  // namespace
}  // namespace vs::core
