#include "core/feature_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace vs::core {
namespace {

TEST(FeatureMatrixTest, ExactBuildShape) {
  auto world = testutil::MakeMiniWorld();
  EXPECT_EQ(world.matrix->num_views(), 20u);
  EXPECT_EQ(world.matrix->num_features(), 8u);
  EXPECT_TRUE(world.matrix->AllExact());
  EXPECT_EQ(world.matrix->num_exact(), 20u);
}

TEST(FeatureMatrixTest, NormalizedColumnsInUnitInterval) {
  auto world = testutil::MakeMiniWorld();
  const ml::Matrix& n = world.matrix->normalized();
  for (size_t i = 0; i < n.rows(); ++i) {
    for (size_t j = 0; j < n.cols(); ++j) {
      EXPECT_GE(n(i, j), 0.0);
      EXPECT_LE(n(i, j), 1.0);
    }
  }
  // Each column attains both 0 and 1 (non-constant columns).
  for (size_t j = 0; j < n.cols(); ++j) {
    double lo = 1.0;
    double hi = 0.0;
    for (size_t i = 0; i < n.rows(); ++i) {
      lo = std::min(lo, n(i, j));
      hi = std::max(hi, n(i, j));
    }
    EXPECT_DOUBLE_EQ(lo, 0.0) << "column " << j;
    // A constant raw column normalizes to all zeros, so only check hi when
    // the column varies.
    if (hi > 0.0) {
      EXPECT_DOUBLE_EQ(hi, 1.0) << "column " << j;
    }
  }
}

TEST(FeatureMatrixTest, RawValuesAreFinite) {
  auto world = testutil::MakeMiniWorld();
  const ml::Matrix& raw = world.matrix->raw();
  for (size_t i = 0; i < raw.rows(); ++i) {
    for (size_t j = 0; j < raw.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(raw(i, j)));
    }
  }
}

TEST(FeatureMatrixTest, SampledBuildIsRoughButRefinable) {
  auto exact = testutil::MakeMiniWorld(1.0);
  auto rough = testutil::MakeMiniWorld(0.3, 77);
  EXPECT_FALSE(rough.matrix->AllExact());
  EXPECT_EQ(rough.matrix->num_exact(), 0u);

  // Refine every row: raw values must then match the exact build.
  for (size_t i = 0; i < rough.matrix->num_views(); ++i) {
    ASSERT_TRUE(rough.matrix->RefineRow(i).ok());
    EXPECT_TRUE(rough.matrix->IsExact(i));
  }
  EXPECT_TRUE(rough.matrix->AllExact());
  for (size_t i = 0; i < rough.matrix->num_views(); ++i) {
    for (size_t j = 0; j < rough.matrix->num_features(); ++j) {
      EXPECT_NEAR(rough.matrix->raw()(i, j), exact.matrix->raw()(i, j),
                  1e-12)
          << "view " << i << " feature " << j;
    }
  }
}

TEST(FeatureMatrixTest, RoughFeaturesApproximateExact) {
  auto exact = testutil::MakeMiniWorld(1.0);
  auto rough = testutil::MakeMiniWorld(0.5, 5);
  // Rough EMD should correlate with exact EMD across views (rank check on
  // the extremes).
  const size_t emd = 1;
  double max_exact = -1.0;
  size_t argmax_exact = 0;
  for (size_t i = 0; i < exact.matrix->num_views(); ++i) {
    if (exact.matrix->raw()(i, emd) > max_exact) {
      max_exact = exact.matrix->raw()(i, emd);
      argmax_exact = i;
    }
  }
  // The exact-best view should be at least above-median under rough.
  std::vector<double> rough_col;
  for (size_t i = 0; i < rough.matrix->num_views(); ++i) {
    rough_col.push_back(rough.matrix->raw()(i, emd));
  }
  std::vector<double> sorted = rough_col;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GE(rough_col[argmax_exact], sorted[sorted.size() / 2]);
}

TEST(FeatureMatrixTest, RefineRowIsIdempotent) {
  auto rough = testutil::MakeMiniWorld(0.3);
  ASSERT_TRUE(rough.matrix->RefineRow(0).ok());
  const double v = rough.matrix->raw()(0, 0);
  ASSERT_TRUE(rough.matrix->RefineRow(0).ok());  // no-op
  EXPECT_DOUBLE_EQ(rough.matrix->raw()(0, 0), v);
  EXPECT_EQ(rough.matrix->num_exact(), 1u);
}

TEST(FeatureMatrixTest, RefinementInvalidatesNormalization) {
  auto rough = testutil::MakeMiniWorld(0.3);
  const ml::Matrix before = rough.matrix->normalized();
  for (size_t i = 0; i < rough.matrix->num_views(); ++i) {
    ASSERT_TRUE(rough.matrix->RefineRow(i).ok());
  }
  const ml::Matrix& after = rough.matrix->normalized();
  // At least one normalized entry must have moved.
  bool changed = false;
  for (size_t i = 0; i < before.rows() && !changed; ++i) {
    for (size_t j = 0; j < before.cols() && !changed; ++j) {
      if (std::fabs(before(i, j) - after(i, j)) > 1e-12) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(FeatureMatrixTest, NormalizedRowMatchesMatrix) {
  auto world = testutil::MakeMiniWorld();
  ml::Vector row = world.matrix->NormalizedRow(3);
  for (size_t j = 0; j < row.size(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], world.matrix->normalized()(3, j));
  }
}

TEST(FeatureMatrixTest, BuildValidation) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrixOptions options;
  auto registry = UtilityFeatureRegistry::Default();

  EXPECT_FALSE(FeatureMatrix::Build(nullptr, world.views, world.query,
                                    &registry, options)
                   .ok());
  EXPECT_FALSE(FeatureMatrix::Build(world.table.get(), {}, world.query,
                                    &registry, options)
                   .ok());
  EXPECT_FALSE(FeatureMatrix::Build(world.table.get(), world.views,
                                    world.query, nullptr, options)
                   .ok());
  options.sample_rate = 0.0;
  EXPECT_FALSE(FeatureMatrix::Build(world.table.get(), world.views,
                                    world.query, &registry, options)
                   .ok());
  options.sample_rate = 1.5;
  EXPECT_FALSE(FeatureMatrix::Build(world.table.get(), world.views,
                                    world.query, &registry, options)
                   .ok());
  options.sample_rate = 1.0;
  data::SelectionVector bad_query = {9999999};
  EXPECT_FALSE(FeatureMatrix::Build(world.table.get(), world.views,
                                    bad_query, &registry, options)
                   .ok());

  UtilityFeatureRegistry empty;
  EXPECT_FALSE(FeatureMatrix::Build(world.table.get(), world.views,
                                    world.query, &empty, options)
                   .ok());
}

TEST(FeatureMatrixTest, RefineRowOutOfRange) {
  auto world = testutil::MakeMiniWorld(0.5);
  EXPECT_FALSE(world.matrix->RefineRow(9999).ok());
}

TEST(FeatureMatrixTest, RefineCostReflectsTableSize) {
  auto world = testutil::MakeMiniWorld();
  EXPECT_EQ(world.matrix->RefineCostPerRow(),
            static_cast<int64_t>(world.table->num_rows() +
                                 world.query.size()));
}

TEST(FeatureMatrixTest, ParallelBuildMatchesSequential) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrixOptions parallel_options;
  parallel_options.num_threads = 3;
  auto parallel = FeatureMatrix::Build(world.table.get(), world.views,
                                       world.query, world.registry.get(),
                                       parallel_options);
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < world.matrix->num_views(); ++i) {
    for (size_t j = 0; j < world.matrix->num_features(); ++j) {
      EXPECT_DOUBLE_EQ(parallel->raw()(i, j), world.matrix->raw()(i, j))
          << "view " << i << " feature " << j;
    }
  }
  EXPECT_TRUE(parallel->AllExact());
}

TEST(FeatureMatrixTest, ParallelRoughBuildMatchesSequentialRough) {
  auto sequential = testutil::MakeMiniWorld(0.4, 9);
  FeatureMatrixOptions options;
  options.sample_rate = 0.4;
  options.seed = 9;
  options.num_threads = 2;
  auto parallel = FeatureMatrix::Build(
      sequential.table.get(), sequential.views, sequential.query,
      sequential.registry.get(), options);
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < sequential.matrix->num_views(); ++i) {
    for (size_t j = 0; j < sequential.matrix->num_features(); ++j) {
      EXPECT_DOUBLE_EQ(parallel->raw()(i, j),
                       sequential.matrix->raw()(i, j));
    }
  }
  EXPECT_FALSE(parallel->AllExact());
}

TEST(FeatureMatrixTest, PerViewModeMatchesSharedScan) {
  auto world = testutil::MakeMiniWorld();  // shared scan by default
  FeatureMatrixOptions options;
  options.shared_scan = false;
  auto per_view = FeatureMatrix::Build(world.table.get(), world.views,
                                       world.query, world.registry.get(),
                                       options);
  ASSERT_TRUE(per_view.ok());
  for (size_t i = 0; i < world.matrix->num_views(); ++i) {
    for (size_t j = 0; j < world.matrix->num_features(); ++j) {
      EXPECT_DOUBLE_EQ(per_view->raw()(i, j), world.matrix->raw()(i, j));
    }
  }
}

TEST(FeatureMatrixTest, PerViewRefinementMatchesSharedScanRefinement) {
  FeatureMatrixOptions rough_options;
  rough_options.sample_rate = 0.3;
  rough_options.seed = 21;
  auto shared = testutil::MakeMiniWorld(0.3, 21);
  rough_options.shared_scan = false;
  auto per_view = FeatureMatrix::Build(shared.table.get(), shared.views,
                                       shared.query, shared.registry.get(),
                                       rough_options);
  ASSERT_TRUE(per_view.ok());
  std::vector<size_t> rows = {0, 3, 7, 8, 9};
  ASSERT_TRUE(shared.matrix->RefineRows(rows).ok());
  ASSERT_TRUE(per_view->RefineRows(rows).ok());
  for (size_t i : rows) {
    for (size_t j = 0; j < per_view->num_features(); ++j) {
      EXPECT_DOUBLE_EQ(per_view->raw()(i, j), shared.matrix->raw()(i, j));
    }
  }
  EXPECT_EQ(per_view->num_exact(), rows.size());
}

TEST(FeatureMatrixTest, CopySharesState) {
  auto world = testutil::MakeMiniWorld();
  FeatureMatrix copy = *world.matrix;
  EXPECT_TRUE(copy.SharesStateWith(*world.matrix));
  // Shared state means shared storage, not merely equal values.
  EXPECT_EQ(&copy.raw(), &world.matrix->raw());
  EXPECT_EQ(&copy.views(), &world.matrix->views());
  EXPECT_EQ(copy.ApproxBytes(), world.matrix->ApproxBytes());
  EXPECT_GT(copy.ApproxBytes(), 0u);
}

TEST(FeatureMatrixTest, RefineDetachesSharedState) {
  auto rough = testutil::MakeMiniWorld(0.3, 7);
  FeatureMatrix session_copy = *rough.matrix;
  ASSERT_TRUE(session_copy.SharesStateWith(*rough.matrix));

  ASSERT_TRUE(session_copy.RefineRows({0, 1, 2}).ok());
  EXPECT_FALSE(session_copy.SharesStateWith(*rough.matrix));
  EXPECT_EQ(session_copy.num_exact(), 3u);
  // The canonical matrix is untouched by the copy's refinement.
  EXPECT_EQ(rough.matrix->num_exact(), 0u);
  EXPECT_FALSE(rough.matrix->IsExact(0));
}

TEST(FeatureMatrixTest, CowIsolatesSiblingCopies) {
  auto rough = testutil::MakeMiniWorld(0.3, 7);
  FeatureMatrix session_a = *rough.matrix;
  FeatureMatrix session_b = *rough.matrix;

  ASSERT_TRUE(session_a.RefineRows({0, 1, 2, 3}).ok());
  // B still shares the canonical state and sees pre-refinement values.
  EXPECT_TRUE(session_b.SharesStateWith(*rough.matrix));
  for (size_t j = 0; j < session_b.num_features(); ++j) {
    EXPECT_DOUBLE_EQ(session_b.raw()(0, j), rough.matrix->raw()(0, j));
  }
  // Refining B now detaches it too; A's exact rows are unaffected.
  ASSERT_TRUE(session_b.RefineRows({5}).ok());
  EXPECT_FALSE(session_b.SharesStateWith(session_a));
  EXPECT_EQ(session_a.num_exact(), 4u);
  EXPECT_EQ(session_b.num_exact(), 1u);
  EXPECT_EQ(rough.matrix->num_exact(), 0u);
}

TEST(FeatureMatrixTest, RefineOnUniqueHandleDoesNotCopy) {
  auto rough = testutil::MakeMiniWorld(0.3, 7);
  const double* storage = rough.matrix->raw().data().data();
  ASSERT_TRUE(rough.matrix->RefineRows({0}).ok());
  // Sole owner: refinement writes in place instead of detaching.
  EXPECT_EQ(rough.matrix->raw().data().data(), storage);
}

TEST(FeatureMatrixTest, NormalizedIsPerHandleAfterDetach) {
  auto rough = testutil::MakeMiniWorld(0.3, 7);
  const ml::Matrix canonical_norm = rough.matrix->normalized();
  FeatureMatrix session_copy = *rough.matrix;
  for (size_t i = 0; i < session_copy.num_views(); ++i) {
    ASSERT_TRUE(session_copy.RefineRow(i).ok());
  }
  // The copy renormalizes over refined values; the canonical handle's
  // normalization is untouched.
  const ml::Matrix& after = rough.matrix->normalized();
  for (size_t i = 0; i < canonical_norm.rows(); ++i) {
    for (size_t j = 0; j < canonical_norm.cols(); ++j) {
      EXPECT_DOUBLE_EQ(after(i, j), canonical_norm(i, j));
    }
  }
}

TEST(FeatureMatrixTest, DeterministicAcrossBuilds) {
  auto a = testutil::MakeMiniWorld(0.4, 9);
  auto b = testutil::MakeMiniWorld(0.4, 9);
  for (size_t i = 0; i < a.matrix->num_views(); ++i) {
    for (size_t j = 0; j < a.matrix->num_features(); ++j) {
      EXPECT_DOUBLE_EQ(a.matrix->raw()(i, j), b.matrix->raw()(i, j));
    }
  }
}

}  // namespace
}  // namespace vs::core
