#ifndef VS_TESTS_CORE_CORE_TEST_UTIL_H_
#define VS_TESTS_CORE_CORE_TEST_UTIL_H_

/// Shared fixtures for core-module tests: a small deterministic table with
/// categorical dimensions and structured measures, plus its standard query
/// subset and feature matrix.

#include <memory>

#include "common/random.h"
#include "core/feature_matrix.h"
#include "core/utility_features.h"
#include "core/view.h"
#include "data/predicate.h"
#include "data/table.h"

namespace vs::core::testutil {

/// 240 rows, dimensions color{red,green,blue} and size{S,L}, measures
/// m1/m2 with color- and size-dependent means so views genuinely deviate.
inline data::Table MiniTable() {
  auto schema = *data::Schema::Make({
      {"color", data::DataType::kString, data::FieldRole::kDimension},
      {"size", data::DataType::kString, data::FieldRole::kDimension},
      {"m1", data::DataType::kDouble, data::FieldRole::kMeasure},
      {"m2", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder builder(schema);
  vs::Rng rng(12345);
  const char* colors[] = {"red", "green", "blue"};
  const char* sizes[] = {"S", "L"};
  for (int i = 0; i < 240; ++i) {
    const int c = static_cast<int>(rng.NextBounded(3));
    const int s = static_cast<int>(rng.NextBounded(2));
    // m1 depends on color, m2 on size; both positive.
    const double m1 = (c + 1) * 2.0 + rng.NextDouble();
    const double m2 = (s + 1) * 3.0 + rng.NextDouble();
    auto status = builder.AppendRow({data::Value(colors[c]),
                                     data::Value(sizes[s]), data::Value(m1),
                                     data::Value(m2)});
    (void)status;
  }
  return *builder.Build();
}

/// The standard query subset: color == "red".
inline data::SelectionVector MiniQuerySelection(const data::Table& table) {
  return *data::SelectRows(
      table, data::Compare("color", data::CompareOp::kEq,
                           data::Value("red")));
}

/// All views of MiniTable: 2 dims x 2 measures x 5 funcs = 20.
inline std::vector<ViewSpec> MiniViews(const data::Table& table) {
  return *EnumerateViews(table, ViewEnumerationOptions{});
}

/// Holds the table and registry alive alongside the matrix (FeatureMatrix
/// borrows both); everything is heap-allocated so MiniWorld can be moved
/// without invalidating the matrix's borrowed pointers.
struct MiniWorld {
  std::unique_ptr<data::Table> table;
  data::SelectionVector query;
  std::vector<ViewSpec> views;
  std::unique_ptr<UtilityFeatureRegistry> registry;
  std::unique_ptr<FeatureMatrix> matrix;
};

inline MiniWorld MakeMiniWorld(double sample_rate = 1.0,
                               uint64_t seed = 123) {
  MiniWorld world;
  world.table = std::make_unique<data::Table>(MiniTable());
  world.query = MiniQuerySelection(*world.table);
  world.views = MiniViews(*world.table);
  world.registry = std::make_unique<UtilityFeatureRegistry>(
      UtilityFeatureRegistry::Default());
  FeatureMatrixOptions options;
  options.sample_rate = sample_rate;
  options.seed = seed;
  world.matrix = std::make_unique<FeatureMatrix>(
      *FeatureMatrix::Build(world.table.get(), world.views, world.query,
                            world.registry.get(), options));
  return world;
}

}  // namespace vs::core::testutil

#endif  // VS_TESTS_CORE_CORE_TEST_UTIL_H_
