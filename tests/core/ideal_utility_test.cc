#include "core/ideal_utility.h"

#include <gtest/gtest.h>

#include "core/utility_features.h"

namespace vs::core {
namespace {

TEST(IdealUtilityTest, FromComponentsBuildsSparseWeights) {
  auto fn = IdealUtilityFunction::FromComponents(
      "test", 8, {{1, 0.5}, {0, 0.5}});
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(fn->weights().size(), 8u);
  EXPECT_DOUBLE_EQ(fn->weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(fn->weights()[1], 0.5);
  EXPECT_DOUBLE_EQ(fn->weights()[2], 0.0);
  EXPECT_EQ(fn->NumComponents(), 2);
}

TEST(IdealUtilityTest, FromComponentsRejectsBadIndex) {
  EXPECT_FALSE(
      IdealUtilityFunction::FromComponents("bad", 8, {{8, 1.0}}).ok());
  EXPECT_FALSE(
      IdealUtilityFunction::FromComponents("bad", 8, {{-1, 1.0}}).ok());
}

TEST(IdealUtilityTest, ScoreIsDotProduct) {
  IdealUtilityFunction fn("f", {0.3, 0.7});
  auto s = fn.Score({1.0, 2.0});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 0.3 + 1.4);
  EXPECT_FALSE(fn.Score({1.0}).ok());
}

TEST(IdealUtilityTest, ScoreAllMatchesScore) {
  IdealUtilityFunction fn("f", {1.0, -1.0});
  ml::Matrix m = {{0.5, 0.2}, {0.1, 0.9}};
  auto all = fn.ScoreAll(m);
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ((*all)[0], *fn.Score(m.Row(0)));
  EXPECT_DOUBLE_EQ((*all)[1], *fn.Score(m.Row(1)));
}

TEST(Table2Test, HasElevenPresets) {
  auto presets = Table2Presets();
  ASSERT_EQ(presets.size(), 11u);
}

TEST(Table2Test, ComponentCountsMatchPaperGrouping) {
  // UF 1-3 single, 4-6 two, 7-11 three components.
  auto presets = Table2Presets();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(presets[i].NumComponents(), 1);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(presets[i].NumComponents(), 2);
  for (int i = 6; i < 11; ++i) EXPECT_EQ(presets[i].NumComponents(), 3);
  EXPECT_EQ(Table2PresetsWithComponents(1).size(), 3u);
  EXPECT_EQ(Table2PresetsWithComponents(2).size(), 3u);
  EXPECT_EQ(Table2PresetsWithComponents(3).size(), 5u);
  EXPECT_TRUE(Table2PresetsWithComponents(4).empty());
}

TEST(Table2Test, WeightsSumToOne) {
  for (const auto& fn : Table2Presets()) {
    double total = 0.0;
    for (double w : fn.weights()) total += w;
    EXPECT_NEAR(total, 1.0, 1e-12) << fn.name();
  }
}

TEST(Table2Test, SpecificPresetsMatchTable2) {
  auto presets = Table2Presets();
  auto idx = [](UtilityFeature f) { return static_cast<size_t>(f); };
  // UF 1: 1.0 * KL.
  EXPECT_DOUBLE_EQ(presets[0].weights()[idx(UtilityFeature::kKL)], 1.0);
  // UF 6: 0.5 EMD + 0.5 p-value.
  EXPECT_DOUBLE_EQ(presets[5].weights()[idx(UtilityFeature::kEMD)], 0.5);
  EXPECT_DOUBLE_EQ(presets[5].weights()[idx(UtilityFeature::kPValue)], 0.5);
  // UF 11: 0.3 EMD + 0.3 KL + 0.4 Accuracy.
  EXPECT_DOUBLE_EQ(presets[10].weights()[idx(UtilityFeature::kEMD)], 0.3);
  EXPECT_DOUBLE_EQ(presets[10].weights()[idx(UtilityFeature::kKL)], 0.3);
  EXPECT_DOUBLE_EQ(presets[10].weights()[idx(UtilityFeature::kAccuracy)],
                   0.4);
  // UF 10 uses usability.
  EXPECT_DOUBLE_EQ(presets[9].weights()[idx(UtilityFeature::kUsability)],
                   0.4);
}

TEST(Table2Test, NamesAreDescriptive) {
  auto presets = Table2Presets();
  EXPECT_EQ(presets[0].name(), "1.0*KL");
  EXPECT_NE(presets[10].name().find("Accuracy"), std::string::npos);
}

}  // namespace
}  // namespace vs::core
