/// Golden-file regression pin of all eight built-in utility features.
///
/// Algorithm 1's offline initialization reduces every view to one row of
/// utility-feature values; those numbers are the contract between the data
/// layer, the stats layer, and everything downstream (estimators, the
/// matrix cache's bit-identity guarantee).  This test pins the full
/// view x feature matrix of the deterministic MiniWorld table to values
/// committed in testdata/feature_matrix_golden.txt, with a per-feature
/// tolerance.
///
/// Regenerating after an *intentional* semantic change:
///   VS_REGEN_GOLDEN=1 ./build/tests/vs_core_test \
///       --gtest_filter='FeatureMatrixGoldenTest.*'
/// then review the diff and commit it (docs/TESTING.md).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/feature_matrix.h"
#include "core_test_util.h"

namespace vs::core {
namespace {

std::string GoldenPath() {
  return std::string(VS_TESTDATA_DIR) + "/feature_matrix_golden.txt";
}

/// Distances and usability are closed-form over small rationals; PVALUE
/// runs through the incomplete-gamma series, so it gets a looser (still
/// tight) pin.
double ToleranceFor(const std::string& feature) {
  return feature == "PVALUE" ? 1e-9 : 1e-12;
}

TEST(FeatureMatrixGoldenTest, AllFeaturesMatchCommittedValues) {
  auto world = testutil::MakeMiniWorld();  // seeded, exact build
  const auto& names = world.registry->names();
  ASSERT_EQ(names.size(), 8u);

  if (std::getenv("VS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << "# feature_matrix_golden v1: <view_id>\\t<feature>\\t<value>\n";
    out << "# table: testutil::MiniTable (240 rows, rng seed 12345); "
           "query: color == red\n";
    for (size_t i = 0; i < world.matrix->num_views(); ++i) {
      for (size_t j = 0; j < names.size(); ++j) {
        char value[64];
        std::snprintf(value, sizeof(value), "%.17g",
                      world.matrix->raw()(i, j));
        out << world.views[i].Id() << "\t" << names[j] << "\t" << value
            << "\n";
      }
    }
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << " (regenerate with VS_REGEN_GOLDEN=1)";
  std::map<std::pair<std::string, std::string>, double> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Tab-separated because view ids contain spaces ("COUNT(m1) BY color").
    const size_t tab1 = line.find('\t');
    const size_t tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : line.find('\t', tab1 + 1);
    ASSERT_NE(tab2, std::string::npos) << "bad golden line: " << line;
    const std::string view_id = line.substr(0, tab1);
    const std::string feature = line.substr(tab1 + 1, tab2 - tab1 - 1);
    const double value = std::strtod(line.c_str() + tab2 + 1, nullptr);
    golden[{view_id, feature}] = value;
  }
  ASSERT_EQ(golden.size(), world.matrix->num_views() * names.size());

  for (size_t i = 0; i < world.matrix->num_views(); ++i) {
    for (size_t j = 0; j < names.size(); ++j) {
      const auto key = std::make_pair(world.views[i].Id(), names[j]);
      ASSERT_TRUE(golden.count(key) > 0)
          << "no golden value for " << key.first << " " << key.second;
      EXPECT_NEAR(world.matrix->raw()(i, j), golden[key],
                  ToleranceFor(names[j]))
          << "view " << key.first << " feature " << key.second;
    }
  }
}

/// The eight features themselves are part of the pin: a silent rename or
/// reorder in the default registry would otherwise shift every column.
TEST(FeatureMatrixGoldenTest, DefaultRegistryOrderIsPinned) {
  const auto registry = UtilityFeatureRegistry::Default();
  const std::vector<std::string> expected = {"KL",       "EMD",    "L1",
                                             "L2",       "MAX_DIFF",
                                             "USABILITY", "ACCURACY",
                                             "PVALUE"};
  EXPECT_EQ(registry.names(), expected);
}

}  // namespace
}  // namespace vs::core
