#include "workload/runner.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "serve/http.h"
#include "serve/server.h"
#include "workload/plan.h"
#include "workload/spec.h"

namespace vs::workload {
namespace {

// Regression pin for the open-loop think-time contract (runner.cc): the
// pause before an op starts when the *previous response arrived*, i.e.
// the server's service time is subtracted from the planned sleep.  If a
// regression made the runner sleep the full think time on top of service
// time, offered load would silently drop whenever the server slows down
// — exactly what an open-loop harness must not do.
//
// The pin: a scripted session of kNext ops with fixed think times against
// a stub server that sleeps a known service time per next.  With the
// deduction, wall time ~= think_1 + sum(think - service) + sum(service);
// without it, ~= sum(think) + sum(service).  The bounds below separate
// the two by ~0.7s while leaving generous scheduler slack.

constexpr double kServiceSeconds = 0.12;
constexpr double kThinkSeconds = 0.20;
constexpr int kNextOps = 8;

class StubServer {
 public:
  StubServer() {
    server_ = std::make_unique<serve::HttpServer>(
        serve::HttpServerOptions{},
        [this](const serve::HttpRequest& request) {
          return Handle(request);
        });
  }

  vs::Status Start() { return server_->Start(); }
  void Stop() { server_->Stop(); }
  int port() const { return server_->port(); }
  int next_requests() const { return next_requests_.load(); }

 private:
  serve::HttpResponse Handle(const serve::HttpRequest& request) {
    serve::HttpResponse response;
    if (request.method == "POST" && request.path == "/sessions") {
      response.status = 201;
      response.body = "{\"id\":\"s1\"}";
      return response;
    }
    if (request.method == "GET" && request.path == "/sessions/s1/next") {
      const int fetched = next_requests_.fetch_add(1);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(kServiceSeconds));
      response.body = "{\"views\":[{\"view\":" + std::to_string(fetched) +
                      ",\"spec\":\"v\"}]}";
      return response;
    }
    if (request.method == "POST" && request.path == "/sessions/s1/label") {
      response.body = "{}";
      return response;
    }
    if (request.method == "DELETE" && request.path == "/sessions/s1") {
      response.body = "{}";
      return response;
    }
    response.status = 404;
    response.body = "{\"error\":\"unexpected request\"}";
    return response;
  }

  std::unique_ptr<serve::HttpServer> server_;
  std::atomic<int> next_requests_{0};
};

WorkloadPlan ThinkPlan() {
  WorkloadPlan plan;
  plan.spec.name = "think-pin";
  plan.spec.arrival.mode = ArrivalMode::kOpen;
  plan.spec.arrival.max_concurrent = 1;
  plan.filters = {""};

  SessionPlan session;
  session.index = 0;
  session.arrival_seconds = 0.0;
  session.filter_index = 0;
  for (int i = 0; i < kNextOps; ++i) {
    PlannedOp op;
    op.kind = OpKind::kNext;
    op.think_before_seconds = kThinkSeconds;
    session.ops.push_back(op);
  }
  plan.sessions.push_back(std::move(session));
  plan.total_ops = kNextOps;
  return plan;
}

TEST(RunnerThinkTimeTest, OpenLoopThinkSubtractsServiceTime) {
  StubServer stub;
  ASSERT_TRUE(stub.Start().ok());

  const WorkloadPlan plan = ThinkPlan();
  RunnerOptions options;
  options.port = stub.port();

  vs::Stopwatch watch;
  auto report = RunWorkload(plan, options);
  const double elapsed = watch.ElapsedSeconds();
  stub.Stop();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->sessions_completed, 1u);
  EXPECT_EQ(report->ops_executed, static_cast<uint64_t>(kNextOps));
  EXPECT_EQ(stub.next_requests(), kNextOps);

  // With the service-time deduction: the first think runs in full (the
  // create reply is immediate), every later sleep is cut to
  // (think - service), and the service times themselves serialize:
  //   ~ 0.20 + 7 * 0.08 + 8 * 0.12 = 1.72 s.
  // Without the deduction the same script takes
  //   ~ 8 * 0.20 + 8 * 0.12 = 2.56 s.
  const double deducted_estimate =
      kThinkSeconds + (kNextOps - 1) * (kThinkSeconds - kServiceSeconds) +
      kNextOps * kServiceSeconds;
  const double undeducted_estimate =
      kNextOps * (kThinkSeconds + kServiceSeconds);
  // Sanity: the two behaviours are far enough apart for the bound to
  // discriminate (0.84 s here).
  ASSERT_GT(undeducted_estimate - deducted_estimate, 0.5);

  // Lower bound: the think pauses really happened (no think at all would
  // finish in ~8 * 0.12 = 0.96 s).
  EXPECT_GT(elapsed, deducted_estimate - 0.25);
  // Upper bound: far below the no-deduction wall time even with sloppy
  // scheduler wakeups.
  EXPECT_LT(elapsed, undeducted_estimate - 0.4);
}

// A service time LONGER than the think pause must swallow the pause
// entirely (remaining <= 0 -> no sleep), never sleep a negative-clamped
// full think.
TEST(RunnerThinkTimeTest, ServiceLongerThanThinkSkipsSleepEntirely) {
  StubServer stub;
  ASSERT_TRUE(stub.Start().ok());

  WorkloadPlan plan = ThinkPlan();
  // Shrink the thinks below the 0.12 s service time.
  for (PlannedOp& op : plan.sessions[0].ops) op.think_before_seconds = 0.03;
  RunnerOptions options;
  options.port = stub.port();

  vs::Stopwatch watch;
  auto report = RunWorkload(plan, options);
  const double elapsed = watch.ElapsedSeconds();
  stub.Stop();

  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->errors, 0u);
  // First think (0.03) + 8 services (0.96): everything after the first
  // op is service-bound.  A regression that sleeps the full think per op
  // would add ~7 * 0.03 = 0.21 s on top.
  EXPECT_GT(elapsed, 8 * kServiceSeconds - 0.05);
  EXPECT_LT(elapsed, 8 * kServiceSeconds + 0.18);
}

}  // namespace
}  // namespace vs::workload
