#include "workload/spec.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace vs::workload {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string CommittedSpecPath() {
  return std::string(VS_WORKLOADS_DIR) + "/mixed_smoke.json";
}

TEST(WorkloadSpecTest, GoldenCommittedSpecIsCanonical) {
  // The committed example spec is written in canonical form: parsing and
  // re-serializing reproduces the file byte-for-byte, so the schema shown
  // in workloads/*.json can never drift from what the parser accepts.
  const std::string text = ReadFileOrDie(CommittedSpecPath());
  auto spec = ParseWorkloadSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(ToJsonText(*spec), text);
}

TEST(WorkloadSpecTest, GoldenCommittedSpecValues) {
  auto spec = LoadWorkloadSpecFile(CommittedSpecPath());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "mixed_smoke");
  EXPECT_EQ(spec->seed, 1u);
  EXPECT_EQ(spec->arrival.mode, ArrivalMode::kOpen);
  EXPECT_DOUBLE_EQ(spec->arrival.rate_per_sec, 1.5);
  EXPECT_EQ(spec->popularity.filters, 8);
  EXPECT_EQ(spec->popularity.column, "d0");
  EXPECT_DOUBLE_EQ(spec->slo.target, 0.9);
  ASSERT_EQ(spec->slo.budget_ms.count("create_session"), 1u);
  EXPECT_DOUBLE_EQ(spec->slo.budget_ms.at("next"), 3000.0);
}

TEST(WorkloadSpecTest, RoundTripPreservesEveryField) {
  WorkloadSpec spec;
  spec.name = "rt";
  spec.seed = 12345;
  spec.duration_seconds = 7.5;
  spec.k = 9;
  spec.table = "/data/t.vst";
  spec.arrival.mode = ArrivalMode::kClosed;
  spec.arrival.users = 17;
  spec.arrival.max_concurrent = 33;
  spec.arrival.rate_per_sec = 2.25;
  spec.think_time.median_ms = 111.5;
  spec.think_time.sigma = 1.25;
  spec.think_time.cap_ms = 999.0;
  spec.session.min_steps = 2;
  spec.session.max_steps = 40;
  spec.mix = {0.1, 0.2, 0.3, 0.4};
  spec.popularity = {13, 1.3, 0.75, 0.125, "num_lab_procedures", -2.0, 50.0};
  spec.slo.target = 0.95;
  spec.slo.budget_ms = {{"next", 250.0}, {"topk", 125.5}};

  auto parsed = ParseWorkloadSpec(ToJsonText(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(ToJsonText(*parsed), ToJsonText(spec));
  EXPECT_EQ(parsed->seed, 12345u);
  EXPECT_EQ(parsed->arrival.mode, ArrivalMode::kClosed);
  EXPECT_DOUBLE_EQ(parsed->popularity.lo, -2.0);
  EXPECT_DOUBLE_EQ(parsed->slo.budget_ms.at("topk"), 125.5);
}

TEST(WorkloadSpecTest, DefaultsApplyWhenSectionsOmitted) {
  auto spec = ParseWorkloadSpec(R"({"name": "minimal"})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->arrival.mode, ArrivalMode::kOpen);
  EXPECT_EQ(spec->session.min_steps, 4);
  EXPECT_DOUBLE_EQ(spec->mix.label, 0.45);
  EXPECT_TRUE(spec->slo.budget_ms.empty());
}

TEST(WorkloadSpecTest, RejectsMalformedStructure) {
  EXPECT_FALSE(ParseWorkloadSpec("").ok());
  EXPECT_FALSE(ParseWorkloadSpec("[1,2]").ok());
  EXPECT_FALSE(ParseWorkloadSpec("{\"name\": \"x\"").ok());  // truncated
  EXPECT_FALSE(ParseWorkloadSpec("{}").ok());  // name required
  EXPECT_FALSE(
      ParseWorkloadSpec(R"({"name": "x", "arrival": 3})").ok());
}

TEST(WorkloadSpecTest, RejectsUnknownFields) {
  // A typo'd key must fail loudly, not silently measure the wrong thing.
  EXPECT_FALSE(
      ParseWorkloadSpec(R"({"name": "x", "durration_seconds": 5})").ok());
  EXPECT_FALSE(ParseWorkloadSpec(
                   R"({"name": "x", "mix": {"nxt": 1.0}})")
                   .ok());
  EXPECT_FALSE(ParseWorkloadSpec(
                   R"({"name": "x", "slo": {"budget_ms": {"nope": 5}}})")
                   .ok());
}

TEST(WorkloadSpecTest, RejectsOutOfRangeAndOverflowingFields) {
  const auto bad = [](const std::string& body) {
    return !ParseWorkloadSpec("{\"name\": \"x\", " + body + "}").ok();
  };
  EXPECT_TRUE(bad(R"("seed": -1)"));
  EXPECT_TRUE(bad(R"("seed": 1.5)"));
  EXPECT_TRUE(bad(R"("seed": 1e300)"));
  EXPECT_TRUE(bad(R"("duration_seconds": 0)"));
  EXPECT_TRUE(bad(R"("duration_seconds": 1e9)"));
  EXPECT_TRUE(bad(R"("k": 0)"));
  EXPECT_TRUE(bad(R"("arrival": {"mode": "poisson"})"));
  EXPECT_TRUE(bad(R"("arrival": {"users": 1e6})"));
  EXPECT_TRUE(bad(R"("think_time": {"median_ms": 100, "cap_ms": 50})"));
  EXPECT_TRUE(bad(R"("session": {"min_steps": 9, "max_steps": 3})"));
  EXPECT_TRUE(
      bad(R"("mix": {"next": 0, "label": 0, "topk": 0, "requery": 0})"));
  EXPECT_TRUE(bad(R"("popularity": {"lo": 2, "hi": 1})"));
  EXPECT_TRUE(bad(R"("popularity": {"width": 0})"));
  EXPECT_TRUE(bad(R"("slo": {"target": 0})"));
  EXPECT_TRUE(bad(R"("slo": {"budget_ms": {"next": -5}})"));
  // Individually legal rate and duration whose product overflows the
  // 1e6-session plan cap.
  EXPECT_TRUE(bad(
      R"("duration_seconds": 86400, "arrival": {"rate_per_sec": 100})"));
}

TEST(WorkloadSpecTest, LoadFileErrorsNameThePath) {
  auto missing = LoadWorkloadSpecFile("/nonexistent/spec.json");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("/nonexistent/spec.json"),
            std::string::npos);
}

}  // namespace
}  // namespace vs::workload
