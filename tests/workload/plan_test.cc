#include "workload/plan.h"

#include <gtest/gtest.h>

namespace vs::workload {
namespace {

WorkloadSpec TestSpec() {
  WorkloadSpec spec;
  spec.name = "plan_test";
  spec.seed = 11;
  spec.duration_seconds = 20.0;
  spec.arrival.mode = ArrivalMode::kOpen;
  spec.arrival.rate_per_sec = 3.0;
  spec.arrival.max_concurrent = 4;
  spec.think_time.median_ms = 100.0;
  spec.think_time.cap_ms = 1000.0;
  spec.session.min_steps = 3;
  spec.session.max_steps = 9;
  spec.popularity.filters = 5;
  return spec;
}

TEST(WorkloadPlanTest, SameSeedYieldsBitIdenticalLedger) {
  auto a = CompilePlan(TestSpec());
  auto b = CompilePlan(TestSpec());
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string ledger_a = FormatLedger(*a);
  const std::string ledger_b = FormatLedger(*b);
  EXPECT_EQ(ledger_a, ledger_b);  // the reproducibility contract
  EXPECT_EQ(LedgerDigest(ledger_a), LedgerDigest(ledger_b));
  EXPECT_GT(a->sessions.size(), 10u);
  EXPECT_GT(a->total_ops, a->sessions.size());
}

TEST(WorkloadPlanTest, SeedOverrideChangesTheLedger) {
  auto a = CompilePlan(TestSpec());
  auto b = CompilePlan(TestSpec(), /*seed_override=*/999);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->spec.seed, 999u);
  EXPECT_NE(FormatLedger(*a), FormatLedger(*b));
}

TEST(WorkloadPlanTest, OpenLoopArrivalsAreOrderedWithinDuration) {
  auto plan = CompilePlan(TestSpec());
  ASSERT_TRUE(plan.ok());
  double previous = 0.0;
  for (const SessionPlan& session : plan->sessions) {
    EXPECT_GE(session.arrival_seconds, previous);
    EXPECT_LT(session.arrival_seconds, 20.0);
    EXPECT_GE(session.lane, 0);
    EXPECT_LT(session.lane, 4);
    previous = session.arrival_seconds;
  }
}

TEST(WorkloadPlanTest, ScriptsAreExecutable) {
  auto plan = CompilePlan(TestSpec());
  ASSERT_TRUE(plan.ok());
  for (const SessionPlan& session : plan->sessions) {
    ASSERT_GE(session.filter_index, 0);
    ASSERT_LT(session.filter_index, 5);
    EXPECT_GE(session.ops.size(), 3u);
    EXPECT_LE(session.ops.size(), 9u);
    // A label is only ever scheduled with a fetched-but-unlabeled view
    // outstanding (the generative model masks it otherwise), so every
    // script is executable against an ideal server.
    int fetched = 0;
    for (const PlannedOp& op : session.ops) {
      EXPECT_GE(op.think_before_seconds, 0.0);
      EXPECT_LE(op.think_before_seconds, 1.0);  // cap_ms
      switch (op.kind) {
        case OpKind::kNext:
          ++fetched;
          break;
        case OpKind::kLabel:
          EXPECT_GT(fetched, 0);
          --fetched;
          break;
        case OpKind::kRequery:
          ASSERT_GE(op.filter_index, 0);
          ASSERT_LT(op.filter_index, 5);
          fetched = 0;
          break;
        case OpKind::kTopk:
          break;
      }
    }
  }
}

TEST(WorkloadPlanTest, FiltersAreOverlappingRangePredicates) {
  auto plan = CompilePlan(TestSpec());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->filters.size(), 5u);
  for (const std::string& filter : plan->filters) {
    EXPECT_NE(filter.find("d0 >= "), std::string::npos) << filter;
    EXPECT_NE(filter.find(" AND d0 < "), std::string::npos) << filter;
  }
  // Zipf popularity: the pool's head filter should be assigned to more
  // sessions than its tail filter.
  std::vector<int> counts(5, 0);
  for (const SessionPlan& session : plan->sessions) {
    ++counts[static_cast<size_t>(session.filter_index)];
  }
  EXPECT_GE(counts[0], counts[4]);
}

TEST(WorkloadPlanTest, ClosedModeFillsEveryLane) {
  WorkloadSpec spec = TestSpec();
  spec.arrival.mode = ArrivalMode::kClosed;
  spec.arrival.users = 3;
  auto plan = CompilePlan(spec);
  ASSERT_TRUE(plan.ok());
  std::vector<int> per_lane(3, 0);
  for (const SessionPlan& session : plan->sessions) {
    ASSERT_GE(session.lane, 0);
    ASSERT_LT(session.lane, 3);
    ++per_lane[static_cast<size_t>(session.lane)];
  }
  for (const int n : per_lane) EXPECT_GE(n, 4);
}

TEST(WorkloadPlanTest, MixChangeDoesNotShiftArrivals) {
  // Arrival times come from their own derived stream: retuning the op mix
  // must not move when sessions start (else A/B runs aren't comparable).
  WorkloadSpec a = TestSpec();
  WorkloadSpec b = TestSpec();
  b.mix.topk = 0.9;
  auto plan_a = CompilePlan(a);
  auto plan_b = CompilePlan(b);
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());
  ASSERT_EQ(plan_a->sessions.size(), plan_b->sessions.size());
  for (size_t i = 0; i < plan_a->sessions.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan_a->sessions[i].arrival_seconds,
                     plan_b->sessions[i].arrival_seconds);
  }
}

}  // namespace
}  // namespace vs::workload
