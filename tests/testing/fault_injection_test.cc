#include "testing/fault_injection.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/groupby.h"
#include "data/table.h"
#include "data/value.h"

namespace vs::fault {
namespace {

TEST(FaultInjectionTest, DisabledByDefault) {
  ASSERT_EQ(ActiveFaultInjector(), nullptr);
  EXPECT_FALSE(VS_FAULT("never.configured"));
  EXPECT_FALSE(InjectFault("never.configured"));
}

TEST(FaultInjectionTest, ScopedInstallAndUninstall) {
  FaultInjector injector(1);
  {
    ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(ActiveFaultInjector(), &injector);
  }
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
}

TEST(FaultInjectionTest, UnconfiguredPointCountsHitsButNeverFires) {
  FaultInjector injector(1);
  ScopedFaultInjector scoped(&injector);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(VS_FAULT("some.point"));
  }
  const auto stats = injector.Stats("some.point");
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.fires, 0u);
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST(FaultInjectionTest, ScheduleFiresExactlyOnListedHits) {
  FaultInjector injector(1);
  injector.SetSchedule("sched.point", {2, 5, 6});
  ScopedFaultInjector scoped(&injector);
  std::vector<int> fired;
  for (int hit = 1; hit <= 10; ++hit) {
    if (VS_FAULT("sched.point")) fired.push_back(hit);
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 5, 6}));
  EXPECT_EQ(injector.Stats("sched.point").fires, 3u);
  EXPECT_EQ(injector.total_fires(), 3u);
}

TEST(FaultInjectionTest, ProbabilityEndpointsAreExact) {
  FaultInjector injector(99);
  injector.SetProbability("always", 1.0);
  injector.SetProbability("never", 0.0);
  ScopedFaultInjector scoped(&injector);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(VS_FAULT("always"));
    EXPECT_FALSE(VS_FAULT("never"));
  }
}

TEST(FaultInjectionTest, ProbabilityRateIsRoughlyHonored) {
  FaultInjector injector(7);
  injector.SetProbability("half", 0.5);
  ScopedFaultInjector scoped(&injector);
  int fires = 0;
  const int kHits = 2000;
  for (int i = 0; i < kHits; ++i) {
    if (VS_FAULT("half")) ++fires;
  }
  EXPECT_GT(fires, kHits / 2 - 200);
  EXPECT_LT(fires, kHits / 2 + 200);
}

// The reproducibility contract: the firing pattern depends only on
// (seed, point, hit index) — a fresh injector with the same seed replays
// it exactly, and a different seed diverges.
TEST(FaultInjectionTest, SameSeedReplaysIdenticalSchedule) {
  const auto pattern = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.SetProbability("replay.point", 0.3);
    ScopedFaultInjector scoped(&injector);
    std::vector<bool> fired;
    for (int i = 0; i < 500; ++i) fired.push_back(VS_FAULT("replay.point"));
    return fired;
  };
  EXPECT_EQ(pattern(42), pattern(42));
  EXPECT_NE(pattern(42), pattern(43));
}

TEST(FaultInjectionTest, DecideMatchesFireSequence) {
  const uint64_t seed = 1234;
  FaultInjector injector(seed);
  injector.SetProbability("decide.point", 0.25);
  ScopedFaultInjector scoped(&injector);
  for (uint64_t hit = 1; hit <= 300; ++hit) {
    const bool expected =
        FaultInjector::Decide(seed, "decide.point", hit, 0.25);
    EXPECT_EQ(VS_FAULT("decide.point"), expected) << "hit " << hit;
  }
}

TEST(FaultInjectionTest, DecideIsAPureFunction) {
  EXPECT_EQ(FaultInjector::Decide(5, "p", 17, 0.4),
            FaultInjector::Decide(5, "p", 17, 0.4));
  EXPECT_FALSE(FaultInjector::Decide(5, "p", 17, 0.0));
  EXPECT_TRUE(FaultInjector::Decide(5, "p", 17, 1.0));
}

TEST(FaultInjectionTest, PointsAreIndependent) {
  FaultInjector injector(11);
  injector.SetSchedule("a", {1});
  injector.SetSchedule("b", {2});
  ScopedFaultInjector scoped(&injector);
  EXPECT_TRUE(VS_FAULT("a"));   // a hit 1
  EXPECT_FALSE(VS_FAULT("b"));  // b hit 1
  EXPECT_FALSE(VS_FAULT("a"));  // a hit 2
  EXPECT_TRUE(VS_FAULT("b"));   // b hit 2
}

TEST(FaultInjectionTest, ClearDisarmsButKeepsCounting) {
  FaultInjector injector(3);
  injector.SetProbability("clear.point", 1.0);
  ScopedFaultInjector scoped(&injector);
  EXPECT_TRUE(VS_FAULT("clear.point"));
  injector.Clear("clear.point");
  EXPECT_FALSE(VS_FAULT("clear.point"));
  EXPECT_EQ(injector.Stats("clear.point").hits, 2u);
  EXPECT_EQ(injector.Stats("clear.point").fires, 1u);
}

TEST(FaultInjectionTest, ClearAllDisarmsEveryPoint) {
  FaultInjector injector(3);
  injector.SetProbability("x", 1.0);
  injector.SetProbability("y", 1.0);
  injector.ClearAll();
  ScopedFaultInjector scoped(&injector);
  EXPECT_FALSE(VS_FAULT("x"));
  EXPECT_FALSE(VS_FAULT("y"));
}

TEST(FaultInjectionTest, AllStatsSortedByName) {
  FaultInjector injector(3);
  ScopedFaultInjector scoped(&injector);
  (void)VS_FAULT("zeta");
  (void)VS_FAULT("alpha");
  (void)VS_FAULT("alpha");
  const auto all = injector.AllStats();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "alpha");
  EXPECT_EQ(all[0].second.hits, 2u);
  EXPECT_EQ(all[1].first, "zeta");
}

// Concurrent hits are counted exactly once each: with a schedule holding a
// single hit index, the whole thread swarm produces exactly one fire.
TEST(FaultInjectionTest, ConcurrentHitsFireExactlyPerSchedule) {
  FaultInjector injector(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  injector.SetSchedule("swarm.point", {100, 500, 900});
  ScopedFaultInjector scoped(&injector);
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fires] {
      for (int i = 0; i < kPerThread; ++i) {
        if (VS_FAULT("swarm.point")) fires.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fires.load(), 3);
  EXPECT_EQ(injector.Stats("swarm.point").hits,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(injector.total_fires(), 3u);
}

// The kernel.partial_merge_fail point sits right before the group-by
// kernel merges its partial aggregates: a scheduled fire must surface as
// an Internal error from Execute, on both the serial and the
// multi-threaded driver, and the very next (unscheduled) call succeeds.
TEST(FaultInjectionTest, KernelPartialMergeFaultSurfacesAsInternal) {
  auto schema = *data::Schema::Make({
      {"c", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  for (int r = 0; r < 200; ++r) {
    ASSERT_TRUE(b.AppendRow({data::Value("L" + std::to_string(r % 5)),
                             data::Value(static_cast<double>(r))})
                    .ok());
  }
  data::Table table = *b.Build();
  const data::GroupBySpec spec{"c", "m", data::AggregateFunction::kSum, 0};

  for (const size_t kernel_threads : {size_t{0}, size_t{4}}) {
    SCOPED_TRACE(kernel_threads);
    data::GroupByExecutorOptions options;
    options.kernel_threads = kernel_threads;
    data::GroupByExecutor executor(&table, options);

    FaultInjector injector(1);
    injector.SetSchedule("kernel.partial_merge_fail", {1});
    ScopedFaultInjector scoped(&injector);

    auto failed = executor.Execute(spec, nullptr);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
    EXPECT_NE(failed.status().message().find("partial"), std::string::npos);
    EXPECT_EQ(injector.Stats("kernel.partial_merge_fail").fires, 1u);

    auto recovered = executor.Execute(spec, nullptr);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->rows_seen, 200);
  }
}

// The scalar oracle path never reaches the kernel, so the fault point
// must not fire there even when armed for every hit.
TEST(FaultInjectionTest, KernelFaultPointUnreachedOnScalarPath) {
  auto schema = *data::Schema::Make({
      {"c", data::DataType::kString, data::FieldRole::kDimension},
      {"m", data::DataType::kDouble, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({data::Value("a"), data::Value(1.0)}).ok());
  data::Table table = *b.Build();
  data::GroupByExecutorOptions options;
  options.use_kernel = false;
  data::GroupByExecutor executor(&table, options);

  FaultInjector injector(1);
  injector.SetProbability("kernel.partial_merge_fail", 1.0);
  ScopedFaultInjector scoped(&injector);
  EXPECT_TRUE(
      executor.Execute({"c", "m", data::AggregateFunction::kSum, 0}, nullptr)
          .ok());
  EXPECT_EQ(injector.Stats("kernel.partial_merge_fail").hits, 0u);
}

}  // namespace
}  // namespace vs::fault
