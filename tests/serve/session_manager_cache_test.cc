/// Integration tests of the shared feature-matrix cache through the
/// SessionManager surface: sessions with equal build identity share one
/// canonical matrix, restore is served from the cache, and per-session
/// refinement stays isolated (COW) from other live sessions.

#include <string>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "serve/session_manager.h"

namespace vs::serve {
namespace {

const std::string& CacheTestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 11;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_mgr_cache_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

SessionManagerOptions CacheOptions() {
  SessionManagerOptions options;
  options.max_sessions = 16;
  options.session_ttl_seconds = 3600;
  return options;
}

CreateSpec Spec(const std::string& filter = "") {
  CreateSpec spec;
  spec.filter = filter;
  spec.options.k = 3;
  spec.options.seed = 5;
  return spec;
}

TEST(SessionManagerCacheTest, EqualSpecsShareOneCanonicalMatrix) {
  SessionManager manager(CacheOptions(), CacheTestTablePath());
  auto a = manager.Create(Spec());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = manager.Create(Spec());
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(manager.cached_matrices(), 1u);
  const FeatureMatrixCacheStats stats = manager.matrix_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // Both sessions are fully usable over the shared matrix.
  EXPECT_TRUE(manager.Next(a->id).ok());
  EXPECT_TRUE(manager.Next(b->id).ok());
}

TEST(SessionManagerCacheTest, DistinctSelectionsGetDistinctEntries) {
  SessionManager manager(CacheOptions(), CacheTestTablePath());
  ASSERT_TRUE(manager.Create(Spec()).ok());
  ASSERT_TRUE(manager.Create(Spec("time_in_hospital >= 6")).ok());

  EXPECT_EQ(manager.cached_matrices(), 2u);
  EXPECT_EQ(manager.matrix_cache().stats().misses, 2u);
  EXPECT_EQ(manager.matrix_cache().stats().hits, 0u);
}

TEST(SessionManagerCacheTest, LabelingOneSessionDoesNotPerturbAnother) {
  SessionManager manager(CacheOptions(), CacheTestTablePath());
  auto a = manager.Create(Spec());
  ASSERT_TRUE(a.ok());
  auto b = manager.Create(Spec());
  ASSERT_TRUE(b.ok());

  // Give B a fitted model, then drive A through labels (which refine A's
  // COW matrix copy); B's recommendation must not move.
  for (int i = 0; i < 2; ++i) {
    auto batch = manager.Next(b->id);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(
        manager.Label(b->id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0).ok());
  }
  auto b_before = manager.TopK(b->id);
  ASSERT_TRUE(b_before.ok()) << b_before.status().ToString();
  for (int i = 0; i < 8; ++i) {
    auto batch = manager.Next(a->id);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->views.empty());
    ASSERT_TRUE(
        manager.Label(a->id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0).ok());
  }
  auto b_after = manager.TopK(b->id);
  ASSERT_TRUE(b_after.ok());
  EXPECT_EQ(b_before->views, b_after->views);
  EXPECT_EQ(b_before->scores, b_after->scores);
}

TEST(SessionManagerCacheTest, RestoreIsServedFromCache) {
  SessionManagerOptions options = CacheOptions();
  options.spill_dir = ::testing::TempDir() + "serve_mgr_cache_spill";
  SessionManager manager(options, CacheTestTablePath());
  auto info = manager.Create(Spec());
  ASSERT_TRUE(info.ok());
  for (int i = 0; i < 4; ++i) {
    auto batch = manager.Next(info->id);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(
        manager.Label(info->id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0)
            .ok());
  }
  auto before = manager.TopK(info->id);
  ASSERT_TRUE(before.ok());

  ASSERT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  const uint64_t misses_before = manager.matrix_cache().stats().misses;

  // The restore path rebuilds the session around the *cached* canonical
  // matrix instead of re-running offline initialization.
  auto after = manager.TopK(info->id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->views, after->views);
  EXPECT_EQ(before->scores, after->scores);
  const FeatureMatrixCacheStats stats = manager.matrix_cache().stats();
  EXPECT_EQ(stats.misses, misses_before);  // no rebuild
  EXPECT_GT(stats.hits, 0u);
}

TEST(SessionManagerCacheTest, DisabledCacheKeepsServingCorrectly) {
  SessionManagerOptions options = CacheOptions();
  options.matrix_cache_entries = 0;
  SessionManager manager(options, CacheTestTablePath());
  auto a = manager.Create(Spec());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = manager.Create(Spec());
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(manager.cached_matrices(), 0u);
  EXPECT_EQ(manager.matrix_cache().stats().misses, 2u);
  EXPECT_TRUE(manager.Next(a->id).ok());
  EXPECT_TRUE(manager.Next(b->id).ok());
}

TEST(SessionManagerCacheTest, CacheSurvivesSessionDeletion) {
  SessionManager manager(CacheOptions(), CacheTestTablePath());
  auto a = manager.Create(Spec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(manager.Delete(a->id).ok());
  EXPECT_EQ(manager.cached_matrices(), 1u);

  // A new equal-identity session is a pure cache hit.
  auto b = manager.Create(Spec());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(manager.matrix_cache().stats().misses, 1u);
  EXPECT_EQ(manager.matrix_cache().stats().hits, 1u);
}

}  // namespace
}  // namespace vs::serve
