#include "serve/json.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace vs::serve {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_FALSE(JsonValue::Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25")->number_value(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17")->number_value(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->number_value(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->string_value(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto v = JsonValue::Parse(
      "{\"a\":[1,2,{\"b\":\"c\"}],\"d\":{\"e\":null},\"f\":true}");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[0].number_value(), 1.0);
  EXPECT_EQ(a->array()[2].Find("b")->string_value(), "c");
  EXPECT_TRUE(v->Find("d")->Find("e")->is_null());
  EXPECT_TRUE(v->Find("f")->bool_value());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  auto v = JsonValue::Parse("\"a\\n\\t\\\"\\\\b\\/\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "a\n\t\"\\b/");
}

TEST(JsonTest, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::Parse("\"\\u0041\"")->string_value(), "A");
  // U+00E9 (é) -> 2-byte UTF-8.
  EXPECT_EQ(JsonValue::Parse("\"\\u00e9\"")->string_value(), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::Parse("\"\\ud83d\\ude00\"")->string_value(),
            "\xf0\x9f\x98\x80");
  // A lone surrogate degrades to U+FFFD instead of failing.
  EXPECT_EQ(JsonValue::Parse("\"\\ud83dx\"")->string_value(),
            "\xef\xbf\xbdx");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("'single'").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
}

TEST(JsonTest, DepthLimitBoundsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());       // default depth 32
  EXPECT_TRUE(JsonValue::Parse(deep, 200).ok());   // relaxed limit
}

TEST(JsonTest, DuplicateKeysLastWins) {
  auto v = JsonValue::Parse("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Find("k")->number_value(), 2.0);
}

TEST(JsonTest, TypedGettersFallBack) {
  auto v = JsonValue::Parse("{\"s\":\"x\",\"n\":4.5,\"i\":7,\"b\":true}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("s", "d"), "x");
  EXPECT_EQ(v->GetString("missing", "d"), "d");
  EXPECT_EQ(v->GetString("n", "d"), "d");  // wrong type -> fallback
  EXPECT_DOUBLE_EQ(v->GetNumber("n", 0.0), 4.5);
  EXPECT_EQ(v->GetInt("i", 0), 7);
  EXPECT_TRUE(v->GetBool("b", false));
}

TEST(JsonTest, GetIntFallsBackOnUnconvertibleNumbers) {
  auto v = JsonValue::Parse(
      "{\"huge\":1e300,\"neg\":-1e300,\"frac\":2.5,"
      "\"edge\":9223372036854775808,\"min\":-9223372036854775808}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetInt("huge", -1), -1);
  EXPECT_EQ(v->GetInt("neg", -1), -1);
  EXPECT_EQ(v->GetInt("frac", -1), -1);
  EXPECT_EQ(v->GetInt("edge", -1), -1);  // 2^63 is out of int64 range
  EXPECT_EQ(v->GetInt("min", -1), INT64_MIN);  // -2^63 is in range
}

TEST(JsonTest, RequiredGettersErrorOnMissingOrWrongType) {
  auto v = JsonValue::Parse("{\"s\":\"x\",\"n\":4.5}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->RequiredString("s"), "x");
  EXPECT_DOUBLE_EQ(*v->RequiredNumber("n"), 4.5);
  EXPECT_FALSE(v->RequiredString("missing").ok());
  EXPECT_FALSE(v->RequiredString("n").ok());
  EXPECT_FALSE(v->RequiredNumber("s").ok());
}

TEST(JsonTest, QuoteRoundTripsThroughParse) {
  const std::string nasty = "line\nquote\"back\\slash\ttab";
  auto v = JsonValue::Parse(JsonQuote(nasty));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), nasty);
}

}  // namespace
}  // namespace vs::serve
