/// Session export/import — the primitive live migration is built on.  A
/// session drained from one manager and imported into another must be
/// byte-identical (same envelope), behaviorally identical (same labels,
/// same top-k), and the handoff must be all-or-nothing under injected
/// durability faults.

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "serve/app.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 31;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_migration_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

SessionManagerOptions ManagerOptions(const std::string& dir_suffix) {
  SessionManagerOptions options;
  options.max_sessions = 8;
  options.session_ttl_seconds = 3600;
  if (!dir_suffix.empty()) {
    options.durability_dir =
        ::testing::TempDir() + "vs_migration_" + dir_suffix + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    // Fixed session ids would collide with a previous run's state.
    std::filesystem::remove_all(options.durability_dir);
    options.durability_fsync = false;
  }
  return options;
}

CreateSpec SmallSpec(const std::string& requested_id = "") {
  CreateSpec spec;
  spec.options.k = 3;
  spec.options.seed = 5;
  spec.requested_id = requested_id;
  return spec;
}

/// Labels n next-views alternately 1/0.
void LabelSome(SessionManager& manager, const std::string& id, int n) {
  for (int i = 0; i < n; ++i) {
    auto batch = manager.Next(id);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_FALSE(batch->views.empty());
    auto labeled =
        manager.Label(id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0);
    ASSERT_TRUE(labeled.ok()) << labeled.status().ToString();
  }
}

TEST(ValidSessionIdTest, AcceptsGeneratedAndClusterShapedIds) {
  EXPECT_TRUE(ValidSessionId("c000173cd94f2"));
  EXPECT_TRUE(ValidSessionId("abc-123_X.y"));
  EXPECT_TRUE(ValidSessionId(std::string(64, 'a')));
}

TEST(ValidSessionIdTest, RejectsUnsafeIds) {
  EXPECT_FALSE(ValidSessionId(""));
  EXPECT_FALSE(ValidSessionId(std::string(65, 'a')));
  EXPECT_FALSE(ValidSessionId("-starts-with-dash"));
  EXPECT_FALSE(ValidSessionId(".hidden"));
  EXPECT_FALSE(ValidSessionId("has space"));
  EXPECT_FALSE(ValidSessionId("path/inject"));
  EXPECT_FALSE(ValidSessionId("dot\ndot"));
  EXPECT_FALSE(ValidSessionId(std::string("nul\0byte", 8)));
}

TEST(RequestedIdTest, CreateHonorsRequestedId) {
  SessionManager manager(ManagerOptions(""), TestTablePath());
  auto info = manager.Create(SmallSpec("router-chose-this"));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->id, "router-chose-this");
  EXPECT_TRUE(manager.Info("router-chose-this").ok());
}

TEST(RequestedIdTest, DuplicateRequestedIdIsAlreadyExists) {
  SessionManager manager(ManagerOptions(""), TestTablePath());
  ASSERT_TRUE(manager.Create(SmallSpec("dup")).ok());
  auto again = manager.Create(SmallSpec("dup"));
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsAlreadyExists()) << again.status().ToString();
}

TEST(RequestedIdTest, InvalidRequestedIdRejected) {
  SessionManager manager(ManagerOptions(""), TestTablePath());
  auto bad = manager.Create(SmallSpec("no/slashes"));
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ExportImportTest, RoundTripIsByteAndBehaviorIdentical) {
  SessionManager source(ManagerOptions("src"), TestTablePath());
  ASSERT_TRUE(source.RecoverFromDisk().ok());
  auto info = source.Create(SmallSpec("mig-1"));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  LabelSome(source, "mig-1", 5);
  auto source_labels = source.Labels("mig-1");
  auto source_topk = source.TopK("mig-1");
  ASSERT_TRUE(source_labels.ok());
  ASSERT_TRUE(source_topk.ok());

  auto envelope = source.ExportSession("mig-1");
  ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();

  SessionManager target(ManagerOptions("dst"), TestTablePath());
  ASSERT_TRUE(target.RecoverFromDisk().ok());
  auto imported = target.ImportSession("mig-1", *envelope);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->id, "mig-1");
  EXPECT_EQ(imported->num_labeled, 5u);

  // Byte-identical: exporting the untouched import reproduces the exact
  // envelope that went in.
  auto reexported = target.ExportSession("mig-1");
  ASSERT_TRUE(reexported.ok());
  EXPECT_EQ(*reexported, *envelope);

  // Behaviorally identical: same label history, same top-k ranking.
  auto target_labels = target.Labels("mig-1");
  auto target_topk = target.TopK("mig-1");
  ASSERT_TRUE(target_labels.ok());
  ASSERT_TRUE(target_topk.ok());
  EXPECT_EQ(target_labels->views, source_labels->views);
  EXPECT_EQ(target_labels->values, source_labels->values);
  EXPECT_EQ(target_topk->views, source_topk->views);
  EXPECT_EQ(target_topk->scores, source_topk->scores);

  // The imported session keeps working.
  EXPECT_TRUE(target.Next("mig-1").ok());
}

TEST(ExportImportTest, ImportSurvivesTargetRestart) {
  SessionManager source(ManagerOptions("src"), TestTablePath());
  ASSERT_TRUE(source.RecoverFromDisk().ok());
  ASSERT_TRUE(source.Create(SmallSpec("mig-dur")).ok());
  LabelSome(source, "mig-dur", 3);
  auto envelope = source.ExportSession("mig-dur");
  ASSERT_TRUE(envelope.ok());

  const SessionManagerOptions target_options = ManagerOptions("dst");
  {
    SessionManager target(target_options, TestTablePath());
    ASSERT_TRUE(target.RecoverFromDisk().ok());
    ASSERT_TRUE(target.ImportSession("mig-dur", *envelope).ok());
    // No drain: the import's own snapshot must already be on disk.
  }
  SessionManager recovered(target_options, TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  auto labels = recovered.Labels("mig-dur");
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  EXPECT_EQ(labels->views.size(), 3u);
}

TEST(ExportImportTest, ImportRejectsConflictsAndGarbage) {
  SessionManager manager(ManagerOptions(""), TestTablePath());
  ASSERT_TRUE(manager.Create(SmallSpec("busy")).ok());
  auto envelope = manager.ExportSession("busy");
  ASSERT_TRUE(envelope.ok());

  auto conflict = manager.ImportSession("busy", *envelope);
  ASSERT_FALSE(conflict.ok());
  EXPECT_TRUE(conflict.status().IsAlreadyExists());

  auto bad_id = manager.ImportSession("bad/id", *envelope);
  ASSERT_FALSE(bad_id.ok());
  EXPECT_TRUE(bad_id.status().IsInvalidArgument());

  auto garbage = manager.ImportSession("fresh", "not an envelope");
  EXPECT_FALSE(garbage.ok());
  EXPECT_FALSE(manager.Info("fresh").ok()) << "failed import left state";
}

TEST(ExportImportTest, ExportOfUnknownSessionIsNotFound) {
  SessionManager manager(ManagerOptions(""), TestTablePath());
  auto missing = manager.ExportSession("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

/// Export persists the envelope before handing it out; when that persist
/// fails (disk full at snapshot rename), the export fails and the source
/// session stays live and unchanged — the migration driver aborts with
/// the session still in place.
TEST(ExportImportTest, ExportFaultLeavesSourceIntact) {
  SessionManager manager(ManagerOptions("src"), TestTablePath());
  ASSERT_TRUE(manager.RecoverFromDisk().ok());
  ASSERT_TRUE(manager.Create(SmallSpec("hold")).ok());
  LabelSome(manager, "hold", 2);

  fault::FaultInjector injector(7);
  fault::ScopedFaultInjector installed(&injector);
  injector.SetProbability("snapshot.rename_fail", 1.0);
  auto envelope = manager.ExportSession("hold");
  EXPECT_FALSE(envelope.ok());
  injector.ClearAll();

  auto labels = manager.Labels("hold");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->views.size(), 2u);
  EXPECT_TRUE(manager.ExportSession("hold").ok()) << "fault did not clear";
}

/// A failed import unwinds completely: no session in memory, nothing
/// recoverable on disk.  This is the exactly-one-copy invariant's target
/// half — the source keeps its copy, the target keeps nothing.
TEST(ExportImportTest, ImportFaultUnwindsCompletely) {
  SessionManager source(ManagerOptions("src"), TestTablePath());
  ASSERT_TRUE(source.RecoverFromDisk().ok());
  ASSERT_TRUE(source.Create(SmallSpec("half")).ok());
  LabelSome(source, "half", 2);
  auto envelope = source.ExportSession("half");
  ASSERT_TRUE(envelope.ok());

  const SessionManagerOptions target_options = ManagerOptions("dst");
  {
    SessionManager target(target_options, TestTablePath());
    ASSERT_TRUE(target.RecoverFromDisk().ok());
    fault::FaultInjector injector(7);
    fault::ScopedFaultInjector installed(&injector);
    injector.SetProbability("snapshot.rename_fail", 1.0);
    auto imported = target.ImportSession("half", *envelope);
    EXPECT_FALSE(imported.ok());
    injector.ClearAll();
    EXPECT_FALSE(target.Info("half").ok()) << "failed import left session";
    // The id is reusable after the unwind.
    EXPECT_TRUE(target.ImportSession("half", *envelope).ok());
    ASSERT_TRUE(target.Delete("half").ok());
  }
  SessionManager recovered(target_options, TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  EXPECT_FALSE(recovered.Info("half").ok())
      << "unwound import recovered from disk";
}

/// The HTTP admin surface: /admin/sessions/{id}/export returns the
/// envelope, import on a second app restores it, and both reject bad
/// input with structured errors.
TEST(AdminEndpointsTest, ExportImportOverHttp) {
  SessionManagerOptions options;
  options.max_sessions = 8;
  SessionManager source_manager(options, TestTablePath());
  SessionManager target_manager(options, TestTablePath());
  ServeAppOptions source_app_options;
  source_app_options.shard_name = "shard0";
  ServeAppOptions target_app_options;
  target_app_options.shard_name = "shard1";
  ServeApp source_app(&source_manager, source_app_options);
  ServeApp target_app(&target_manager, target_app_options);
  HttpServerOptions server_options;
  server_options.port = 0;
  HttpServer source_server(server_options,
                           [&source_app](const HttpRequest& request) {
                             return source_app.Handle(request);
                           });
  HttpServer target_server(server_options,
                           [&target_app](const HttpRequest& request) {
                             return target_app.Handle(request);
                           });
  ASSERT_TRUE(source_server.Start().ok());
  ASSERT_TRUE(target_server.Start().ok());

  HttpClient source("127.0.0.1", source_server.port());
  HttpClient target("127.0.0.1", target_server.port());

  // Create with a router-chosen id via the ?id= query parameter.
  auto created = source.Request("POST", "/sessions?id=hop-1",
                                "{\"k\":3,\"seed\":5}", {});
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  EXPECT_NE(created->body.find("\"id\":\"hop-1\""), std::string::npos);
  const std::string* shard = created->FindHeader("x-shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(*shard, "shard0");

  ASSERT_TRUE(source.Request("POST", "/sessions/hop-1/label",
                             "{\"view\":0,\"label\":1}", {})
                  .ok());

  auto exported =
      source.Request("GET", "/admin/sessions/hop-1/export", "", {});
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->status, 200) << exported->body;
  auto export_json = JsonValue::Parse(exported->body);
  ASSERT_TRUE(export_json.ok());
  const std::string envelope = export_json->GetString("envelope", "");
  ASSERT_FALSE(envelope.empty());

  auto imported = target.Request(
      "POST", "/admin/sessions/hop-1/import",
      "{\"envelope\":" + JsonQuote(envelope) + "}", {});
  ASSERT_TRUE(imported.ok());
  ASSERT_EQ(imported->status, 201) << imported->body;

  auto labels = target.Request("GET", "/sessions/hop-1/labels", "", {});
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->status, 200);
  EXPECT_NE(labels->body.find("\"num_labeled\":1"), std::string::npos)
      << labels->body;

  // Error surfaces: missing session 404s, duplicate import 409s, garbage
  // body 400s.
  auto missing =
      source.Request("GET", "/admin/sessions/ghost/export", "", {});
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto duplicate = target.Request(
      "POST", "/admin/sessions/hop-1/import",
      "{\"envelope\":" + JsonQuote(envelope) + "}", {});
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->status, 409);
  auto garbage = target.Request("POST", "/admin/sessions/x/import",
                                "{\"nope\":1}", {});
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);

  source_server.Stop();
  target_server.Stop();
}

}  // namespace
}  // namespace vs::serve
