#include "serve/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace vs::serve {
namespace {

SloOptions Options(const FakeClock* clock, double budget_ms = 0.0,
                   double window_seconds = 60.0) {
  SloOptions options;
  options.clock = clock;
  options.budget_ms = budget_ms;
  options.window_seconds = window_seconds;
  return options;
}

const SloEndpointSnapshot* Find(
    const std::vector<SloEndpointSnapshot>& snapshots,
    const std::string& endpoint) {
  for (const SloEndpointSnapshot& s : snapshots) {
    if (s.endpoint == endpoint) return &s;
  }
  return nullptr;
}

TEST(SloPercentileDefined, NeedsEnoughSamplesForTheTail) {
  EXPECT_FALSE(SloPercentileDefined(0, 0.50));
  EXPECT_TRUE(SloPercentileDefined(2, 0.50));
  EXPECT_FALSE(SloPercentileDefined(10, 0.99));
  EXPECT_TRUE(SloPercentileDefined(100, 0.99));
}

TEST(SloTracker, PercentilesOverTheWindow) {
  FakeClock clock;
  SloTracker tracker(Options(&clock));
  // 100 samples, 1..100 ms: nearest-rank p50 = 50 ms, p99 = 99 ms.
  for (int i = 1; i <= 100; ++i) {
    tracker.Record("next", i * 1e-3, /*error=*/false);
  }
  const auto snapshots = tracker.Snapshot();
  const SloEndpointSnapshot* next = Find(snapshots, "next");
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->window_samples, 100u);
  EXPECT_EQ(next->total_requests, 100u);
  EXPECT_NEAR(next->p50_ms, 50.0, 1.0);
  EXPECT_NEAR(next->p95_ms, 95.0, 1.0);
  EXPECT_NEAR(next->p99_ms, 99.0, 1.0);
}

TEST(SloTracker, UndefinedTailIsNegativeNotMax) {
  FakeClock clock;
  SloTracker tracker(Options(&clock));
  for (int i = 0; i < 10; ++i) {
    tracker.Record("label", 0.005, /*error=*/false);
  }
  const SloEndpointSnapshot* label = Find(tracker.Snapshot(), "label");
  ASSERT_NE(label, nullptr);
  EXPECT_GE(label->p50_ms, 0.0);
  // 10 samples cannot support a p99 — reported undefined, not as the max.
  EXPECT_LT(label->p99_ms, 0.0);
}

TEST(SloTracker, OldSamplesFallOutOfTheWindow) {
  FakeClock clock;
  SloTracker tracker(Options(&clock, /*budget_ms=*/0.0,
                             /*window_seconds=*/10.0));
  tracker.Record("next", 0.001, false);
  tracker.Record("next", 0.002, false);
  clock.AdvanceSeconds(11.0);
  tracker.Record("next", 0.003, false);
  const SloEndpointSnapshot* next = Find(tracker.Snapshot(), "next");
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->window_samples, 1u);   // the two old samples aged out
  EXPECT_EQ(next->total_requests, 3u);   // cumulative survives the window
}

TEST(SloTracker, BudgetBreachesAreCumulativeBurn) {
  FakeClock clock;
  SloTracker tracker(Options(&clock, /*budget_ms=*/10.0));
  tracker.Record("topk", 0.005, false);  // inside budget
  tracker.Record("topk", 0.050, false);  // breach
  tracker.Record("topk", 0.200, false);  // breach
  const SloEndpointSnapshot* topk = Find(tracker.Snapshot(), "topk");
  ASSERT_NE(topk, nullptr);
  EXPECT_EQ(topk->budget_breaches, 2u);
  // Breaches burned long ago still count after the window empties.
  clock.AdvanceSeconds(120.0);
  const SloEndpointSnapshot* later = Find(tracker.Snapshot(), "topk");
  ASSERT_NE(later, nullptr);
  EXPECT_EQ(later->window_samples, 0u);
  EXPECT_EQ(later->budget_breaches, 2u);
}

TEST(SloTracker, HealthyReflectsTailAgainstBudget) {
  FakeClock clock;
  SloTracker tracker(Options(&clock, /*budget_ms=*/10.0));
  for (int i = 0; i < 4; ++i) tracker.Record("fast", 0.001, false);
  for (int i = 0; i < 4; ++i) tracker.Record("slow", 0.100, false);
  const auto snapshots = tracker.Snapshot();
  const SloEndpointSnapshot* fast = Find(snapshots, "fast");
  const SloEndpointSnapshot* slow = Find(snapshots, "slow");
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  // Few samples: the p50 stands in for the undefined p99.
  EXPECT_TRUE(fast->healthy);
  EXPECT_FALSE(slow->healthy);
}

TEST(SloTracker, ErrorsTrackedSeparatelyFromLatency) {
  FakeClock clock;
  SloTracker tracker(Options(&clock));
  tracker.Record("label", 0.001, /*error=*/false);
  tracker.Record("label", 0.001, /*error=*/true);
  tracker.Record("label", 0.001, /*error=*/true);
  tracker.Record("label", 0.001, /*error=*/false);
  const SloEndpointSnapshot* label = Find(tracker.Snapshot(), "label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->total_errors, 2u);
  EXPECT_NEAR(label->window_error_rate, 0.5, 1e-9);
}

TEST(SloTracker, WindowIsBoundedUnderDenseTraffic) {
  FakeClock clock;
  SloOptions options = Options(&clock);
  options.max_samples_per_endpoint = 16;
  SloTracker tracker(options);
  for (int i = 0; i < 1000; ++i) tracker.Record("next", 0.001, false);
  const SloEndpointSnapshot* next = Find(tracker.Snapshot(), "next");
  ASSERT_NE(next, nullptr);
  EXPECT_LE(next->window_samples, 16u);
  EXPECT_EQ(next->total_requests, 1000u);
}

TEST(SloTracker, ExportMetricsPublishesCountersAndGauges) {
  FakeClock clock;
  SloTracker tracker(Options(&clock, /*budget_ms=*/10.0));
  tracker.Record("next", 0.050, /*error=*/false);  // breach
  tracker.Record("next", 0.001, /*error=*/true);
  tracker.ExportMetrics();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  EXPECT_GE(registry.GetCounter("slo.breaches.next")->value(), 1u);
  EXPECT_GE(registry.GetCounter("slo.errors.next")->value(), 1u);
  // Window gauges appear (exact values depend on interleaved suites
  // sharing the default registry, so only presence is pinned).
  const std::string text =
      obs::ToPrometheusText(registry.SnapshotAll());
  EXPECT_NE(text.find("slo_window_p50_ms_next"), std::string::npos);
  EXPECT_NE(text.find("slo_window_error_rate_next"), std::string::npos);
}

}  // namespace
}  // namespace vs::serve
