#include "serve/durability.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the gtest tmp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "vs_durability_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good());
}

/// ReadWalFile with the Result unwrapped (these tests only read files
/// that exist).
WalScan MustReadWal(const std::string& path) {
  auto scan = ReadWalFile(path);
  EXPECT_TRUE(scan.ok()) << scan.status().ToString();
  return scan.ok() ? *std::move(scan) : WalScan{};
}

std::vector<std::string> SamplePayloads() {
  return {"label\tSUM(m1) BY color\t1",
          "label\tAVG(m2) BY size\t0.12500000000000001",
          "",  // empty payload is a valid record
          std::string(300, 'x'),
          "label\tMAX(m1) BY color\t0"};
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(WalFramingTest, EncodeDecodeRoundTrips) {
  std::string journal;
  for (const std::string& payload : SamplePayloads()) {
    journal += EncodeWalRecord(payload);
  }
  WalScan scan = DecodeWal(journal);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, journal.size());
  ASSERT_EQ(scan.records.size(), SamplePayloads().size());
  for (size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i], SamplePayloads()[i]);
  }
}

TEST(WalFramingTest, EmptyJournalIsClean) {
  WalScan scan = DecodeWal("");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(WalFramingTest, CorruptPayloadStopsTheScan) {
  std::string journal;
  for (const std::string& payload : SamplePayloads()) {
    journal += EncodeWalRecord(payload);
  }
  // Flip one byte inside the payload of record 2 (skip two full frames).
  const size_t frame0 = EncodeWalRecord(SamplePayloads()[0]).size();
  const size_t frame1 = EncodeWalRecord(SamplePayloads()[1]).size();
  std::string bad = journal;
  bad[frame0 + 10] ^= 0x40;
  WalScan scan = DecodeWal(bad);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, frame0);
  EXPECT_EQ(scan.records[0], SamplePayloads()[0]);
  (void)frame1;
}

TEST(WalFramingTest, InsaneLengthPrefixIsTorn) {
  std::string journal = EncodeWalRecord("good");
  // A frame claiming a 16 MiB payload (over the sanity cap) must stop the
  // scan rather than attempt a giant allocation.
  std::string huge(8, '\0');
  huge[2] = 0x01;  // little-endian 0x01000000 = 16 MiB
  huge[3] = 0x01;
  WalScan scan = DecodeWal(journal + huge + std::string(64, 'z'));
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "good");
}

// ---------------------------------------------------------------------------
// Satellite (d): truncate the journal at EVERY byte offset.  Recovery must
// always succeed, always yield a strict prefix of the original records,
// never fabricate data, and be idempotent when re-run on its own output.
// ---------------------------------------------------------------------------

TEST(WalTornTailPropertyTest, EveryTruncationOffsetRecoversAPrefix) {
  const std::vector<std::string> payloads = SamplePayloads();
  std::string journal;
  std::vector<size_t> boundaries = {0};  // byte offsets of record ends
  for (const std::string& payload : payloads) {
    journal += EncodeWalRecord(payload);
    boundaries.push_back(journal.size());
  }

  for (size_t cut = 0; cut <= journal.size(); ++cut) {
    const std::string truncated = journal.substr(0, cut);
    WalScan scan = DecodeWal(truncated);

    // The valid prefix is the largest record boundary at or below the cut.
    size_t expected_records = 0;
    size_t expected_bytes = 0;
    for (size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) {
        expected_records = b;
        expected_bytes = boundaries[b];
      }
    }
    ASSERT_EQ(scan.records.size(), expected_records) << "cut=" << cut;
    ASSERT_EQ(scan.valid_bytes, expected_bytes) << "cut=" << cut;
    ASSERT_EQ(scan.torn_tail, cut != expected_bytes) << "cut=" << cut;
    for (size_t i = 0; i < scan.records.size(); ++i) {
      ASSERT_EQ(scan.records[i], payloads[i]) << "cut=" << cut;
    }

    // Idempotence: decoding the trusted prefix again changes nothing.
    WalScan again = DecodeWal(truncated.substr(0, scan.valid_bytes));
    ASSERT_FALSE(again.torn_tail) << "cut=" << cut;
    ASSERT_EQ(again.records, scan.records) << "cut=" << cut;
    ASSERT_EQ(again.valid_bytes, scan.valid_bytes) << "cut=" << cut;
  }
}

TEST(WalTornTailPropertyTest, AppendAfterTruncationNeverResurrects) {
  // A writer reopened with trusted_bytes must clip the torn tail so the
  // next append lands at the trusted boundary, not after garbage.
  const std::string dir = ScratchDir("reopen");
  const std::string path = dir + "/s.wal";
  const std::string r1 = EncodeWalRecord("one");
  const std::string r2 = EncodeWalRecord("two");
  WriteAll(path, r1 + r2.substr(0, r2.size() / 2));  // torn second record

  WalScan scan = MustReadWal(path);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);

  internal::DurabilityCounters counters;
  auto writer = WalWriter::Open(path, /*do_fsync=*/false, scan.valid_bytes,
                                &counters);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append("three").ok());

  WalScan after = MustReadWal(path);
  EXPECT_FALSE(after.torn_tail);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[0], "one");
  EXPECT_EQ(after.records[1], "three");  // "two" is gone for good
}

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

TEST(WalWriterTest, AppendsAreDurableAndCounted) {
  const std::string dir = ScratchDir("writer");
  const std::string path = dir + "/s.wal";
  internal::DurabilityCounters counters;
  auto writer = WalWriter::Open(path, /*do_fsync=*/true, 0, &counters);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->durable_bytes(), 0u);
  ASSERT_TRUE(writer->Append("a").ok());
  ASSERT_TRUE(writer->Append("bb").ok());
  EXPECT_EQ(writer->pending_records(), 2u);
  EXPECT_GT(writer->durable_bytes(), 0u);

  WalScan scan = MustReadWal(path);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, writer->durable_bytes());
}

TEST(WalWriterTest, ResetTruncatesAndHeals) {
  const std::string dir = ScratchDir("reset");
  const std::string path = dir + "/s.wal";
  internal::DurabilityCounters counters;
  auto writer = WalWriter::Open(path, false, 0, &counters);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("a").ok());
  ASSERT_TRUE(writer->Reset().ok());
  EXPECT_EQ(writer->durable_bytes(), 0u);
  EXPECT_EQ(writer->pending_records(), 0u);
  ASSERT_TRUE(writer->Append("b").ok());
  WalScan scan = MustReadWal(path);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "b");
}

TEST(WalWriterTest, InjectedAppendFailureRollsBack) {
  const std::string dir = ScratchDir("appendfail");
  const std::string path = dir + "/s.wal";
  internal::DurabilityCounters counters;
  auto writer = WalWriter::Open(path, false, 0, &counters);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("kept").ok());
  const size_t durable = writer->durable_bytes();

  fault::FaultInjector injector(7);
  injector.SetSchedule("wal.append_fail", {1});
  fault::ScopedFaultInjector scoped(&injector);
  EXPECT_FALSE(writer->Append("lost").ok());
  // The half-written frame was truncated away; the writer is still usable.
  EXPECT_EQ(writer->durable_bytes(), durable);
  EXPECT_FALSE(writer->broken());
  ASSERT_TRUE(writer->Append("next").ok());

  WalScan scan = MustReadWal(path);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], "kept");
  EXPECT_EQ(scan.records[1], "next");
}

TEST(WalWriterTest, InjectedFsyncFailurePoisonsUntilReset) {
  const std::string dir = ScratchDir("fsyncfail");
  const std::string path = dir + "/s.wal";
  internal::DurabilityCounters counters;
  auto writer = WalWriter::Open(path, /*do_fsync=*/true, 0, &counters);
  ASSERT_TRUE(writer.ok());

  fault::FaultInjector injector(7);
  injector.SetSchedule("wal.fsync_fail", {1});
  {
    fault::ScopedFaultInjector scoped(&injector);
    EXPECT_FALSE(writer->Append("unsynced").ok());
  }
  // After a failed fsync the kernel may have dropped dirty pages — the
  // journal cannot be trusted again until a snapshot supersedes it.
  EXPECT_TRUE(writer->broken());
  EXPECT_FALSE(writer->Append("refused").ok());
  ASSERT_TRUE(writer->Reset().ok());
  EXPECT_FALSE(writer->broken());
  ASSERT_TRUE(writer->Append("healed").ok());
  WalScan scan = MustReadWal(path);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "healed");
}

// ---------------------------------------------------------------------------
// Atomic snapshot writes
// ---------------------------------------------------------------------------

TEST(WriteFileAtomicTest, WritesAndReplaces) {
  const std::string dir = ScratchDir("atomic");
  ASSERT_TRUE(WriteFileAtomic(dir, "f.snap", "v1", true).ok());
  auto read = ReadFileFully(dir + "/f.snap");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v1");
  ASSERT_TRUE(WriteFileAtomic(dir, "f.snap", "v2", true).ok());
  EXPECT_EQ(*ReadFileFully(dir + "/f.snap"), "v2");
  // No temp droppings.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".snap") << entry.path();
  }
}

TEST(WriteFileAtomicTest, InjectedRenameFailureLeavesOldContent) {
  const std::string dir = ScratchDir("renamefail");
  ASSERT_TRUE(WriteFileAtomic(dir, "f.snap", "old", true).ok());

  fault::FaultInjector injector(7);
  injector.SetSchedule("snapshot.rename_fail", {1});
  fault::ScopedFaultInjector scoped(&injector);
  EXPECT_FALSE(WriteFileAtomic(dir, "f.snap", "new", true).ok());
  EXPECT_EQ(*ReadFileFully(dir + "/f.snap"), "old");
  // The failed attempt's temp file was unlinked.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "f.snap");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(ReadWalFileTest, InjectedCorruptionClipsTheScan) {
  const std::string dir = ScratchDir("corrupt");
  const std::string path = dir + "/s.wal";
  std::string journal;
  for (int i = 0; i < 8; ++i) {
    journal += EncodeWalRecord("record " + std::to_string(i));
  }
  WriteAll(path, journal);

  fault::FaultInjector injector(7);
  injector.SetSchedule("recover.corrupt_record", {1});
  fault::ScopedFaultInjector scoped(&injector);
  WalScan scan = MustReadWal(path);
  // The injected bit flip lands mid-file: the scan keeps the prefix and
  // reports the tail torn instead of failing recovery.
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_LT(scan.records.size(), 8u);
  for (size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i], "record " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Recovery scan + quarantine
// ---------------------------------------------------------------------------

TEST(DurabilityManagerTest, ScanRecoversSnapshotAndJournal) {
  DurabilityOptions options;
  options.dir = ScratchDir("scan");
  options.fsync = false;
  DurabilityManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.SaveSnapshot("s1", "snapshot-text").ok());
  auto wal = manager.OpenWal("s1", 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append("l1").ok());
  ASSERT_TRUE(wal->Append("l2").ok());

  DurabilityManager reader(options);
  ASSERT_TRUE(reader.Init().ok());
  auto recovered = reader.ScanForRecovery();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].id, "s1");
  EXPECT_EQ((*recovered)[0].snapshot_text, "snapshot-text");
  ASSERT_EQ((*recovered)[0].wal.records.size(), 2u);
  EXPECT_EQ(reader.stats().quarantined, 0u);
}

TEST(DurabilityManagerTest, OrphanJournalIsQuarantined) {
  DurabilityOptions options;
  options.dir = ScratchDir("orphan");
  options.fsync = false;
  DurabilityManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  WriteAll(options.dir + "/ghost.wal", EncodeWalRecord("x"));
  ASSERT_TRUE(manager.SaveSnapshot("live", "text").ok());

  auto recovered = manager.ScanForRecovery();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].id, "live");
  EXPECT_GE(manager.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(options.dir + "/ghost.wal"));
  // The bytes moved into quarantine/ rather than being destroyed.
  size_t quarantined_files = 0;
  for (const auto& entry :
       fs::directory_iterator(options.dir + "/quarantine")) {
    (void)entry;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, 1u);
}

TEST(DurabilityManagerTest, UnreadableSnapshotQuarantinesTheSession) {
  DurabilityOptions options;
  options.dir = ScratchDir("unreadable");
  options.fsync = false;
  DurabilityManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  // A directory where the snapshot should be is unreadable-as-a-file even
  // for root, unlike permission bits.
  fs::create_directories(options.dir + "/bad.snap");
  ASSERT_TRUE(manager.SaveSnapshot("good", "text").ok());

  auto recovered = manager.ScanForRecovery();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].id, "good");
}

TEST(DurabilityManagerTest, LeftoverTempFilesAreRemoved) {
  DurabilityOptions options;
  options.dir = ScratchDir("tmpclean");
  options.fsync = false;
  DurabilityManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  WriteAll(options.dir + "/s1.snap.tmp", "half-written");
  ASSERT_TRUE(manager.SaveSnapshot("s1", "text").ok());
  auto recovered = manager.ScanForRecovery();
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(fs::exists(options.dir + "/s1.snap.tmp"));
  ASSERT_EQ(recovered->size(), 1u);
}

TEST(DurabilityManagerTest, RemoveSessionDeletesBothFiles) {
  DurabilityOptions options;
  options.dir = ScratchDir("remove");
  options.fsync = false;
  DurabilityManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.SaveSnapshot("s1", "text").ok());
  auto wal = manager.OpenWal("s1", 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append("l").ok());
  EXPECT_TRUE(fs::exists(manager.SnapshotPath("s1")));
  EXPECT_TRUE(fs::exists(manager.WalPath("s1")));
  manager.RemoveSession("s1");
  EXPECT_FALSE(fs::exists(manager.SnapshotPath("s1")));
  EXPECT_FALSE(fs::exists(manager.WalPath("s1")));
}

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  // Chaining is equivalent to one pass.
  const uint32_t partial = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, partial), 0xcbf43926u);
}

}  // namespace
}  // namespace vs::serve
