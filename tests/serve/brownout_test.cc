/// Brownout end-to-end: requests forced into degraded-quality mode (via
/// the `brownout.force` fault point) still speak the full protocol —
/// valid JSON bodies, valid ids and views — but carry the `X-Quality:
/// degraded` header and a `quality` object naming the refinement
/// fraction; once the pressure is gone the healer refines the session
/// back to exact and the markers disappear.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "serve/app.h"
#include "serve/json.h"
#include "serve/session_manager.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 300;
    options.seed = 23;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_brownout_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

HttpRequest Req(std::string method, const std::string& target,
                std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = target;
  const size_t q = target.find('?');
  request.path = q == std::string::npos ? target : target.substr(0, q);
  request.query = q == std::string::npos ? "" : target.substr(q + 1);
  request.body = std::move(body);
  return request;
}

const std::string* Header(const HttpResponse& response,
                          const std::string& name) {
  for (const auto& [key, value] : response.extra_headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

class BrownoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SessionManagerOptions manager_options;
    manager_options.max_sessions = 16;
    manager_options.degraded_sample_rate = 0.25;
    manager_ = std::make_unique<SessionManager>(manager_options,
                                                TestTablePath());
    app_ = std::make_unique<ServeApp>(manager_.get());
  }

  /// Creates one session while `brownout.force` is armed; returns its id.
  std::string CreateDegradedSession() {
    fault::FaultInjector injector(1);
    injector.SetProbability("brownout.force", 1.0);
    fault::ScopedFaultInjector scoped(&injector);
    HttpResponse created = app_->Handle(Req("POST", "/sessions", "{\"k\":3}"));
    EXPECT_EQ(created.status, 201) << created.body;
    EXPECT_NE(Header(created, "X-Quality"), nullptr);
    auto parsed = JsonValue::Parse(created.body);
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? parsed->GetString("id", "") : "";
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServeApp> app_;
};

TEST_F(BrownoutTest, ForcedBrownoutCreateIsDegradedButProtocolValid) {
  fault::FaultInjector injector(1);
  injector.SetProbability("brownout.force", 1.0);
  fault::ScopedFaultInjector scoped(&injector);

  HttpResponse created = app_->Handle(Req("POST", "/sessions", "{\"k\":3}"));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string* quality = Header(created, "X-Quality");
  ASSERT_NE(quality, nullptr);
  EXPECT_EQ(*quality, "degraded");

  auto parsed = JsonValue::Parse(created.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetString("id", "").empty());
  const JsonValue* quality_field = parsed->Find("quality");
  ASSERT_NE(quality_field, nullptr);
  EXPECT_TRUE(quality_field->GetBool("degraded", false));
  const double refined = quality_field->GetNumber("refined_fraction", -1.0);
  EXPECT_GE(refined, 0.0);
  EXPECT_LT(refined, 1.0);
  EXPECT_EQ(manager_->degraded_sessions(), 1u);
}

TEST_F(BrownoutTest, DegradedSessionSpeaksTheFullProtocol) {
  const std::string id = CreateDegradedSession();
  ASSERT_FALSE(id.empty());

  fault::FaultInjector injector(1);
  injector.SetProbability("brownout.force", 1.0);
  fault::ScopedFaultInjector scoped(&injector);

  HttpResponse next = app_->Handle(Req("GET", "/sessions/" + id + "/next"));
  ASSERT_EQ(next.status, 200) << next.body;
  EXPECT_NE(Header(next, "X-Quality"), nullptr);
  auto parsed = JsonValue::Parse(next.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* views = parsed->Find("views");
  ASSERT_NE(views, nullptr);
  ASSERT_FALSE(views->array().empty());
  const int64_t view = views->array()[0].GetInt("view", -1);
  ASSERT_GE(view, 0);

  HttpResponse labeled = app_->Handle(
      Req("POST", "/sessions/" + id + "/label",
          "{\"view\":" + std::to_string(view) + ",\"label\":1}"));
  EXPECT_EQ(labeled.status, 200) << labeled.body;

  HttpResponse topk =
      app_->Handle(Req("GET", "/sessions/" + id + "/topk?lambda=0.3"));
  ASSERT_EQ(topk.status, 200) << topk.body;
  EXPECT_TRUE(JsonValue::Parse(topk.body).ok());
}

TEST_F(BrownoutTest, HealerRestoresFullQuality) {
  const std::string id = CreateDegradedSession();
  ASSERT_FALSE(id.empty());
  ASSERT_EQ(manager_->degraded_sessions(), 1u);

  // Pressure gone (no fault armed): the healer refines the session back
  // to exact within a bounded number of passes.
  int passes = 0;
  while (manager_->degraded_sessions() > 0 && passes < 1000) {
    manager_->HealDegradedSessions(1'000'000);
    ++passes;
  }
  EXPECT_EQ(manager_->degraded_sessions(), 0u) << "still degraded after "
                                               << passes << " passes";

  // Healed sessions answer at full quality: no marker header, and the
  // body carries no quality object (byte-identical to the pre-brownout
  // protocol).
  HttpResponse next = app_->Handle(Req("GET", "/sessions/" + id + "/next"));
  ASSERT_EQ(next.status, 200) << next.body;
  EXPECT_EQ(Header(next, "X-Quality"), nullptr);
  EXPECT_EQ(next.body.find("\"quality\""), std::string::npos);
}

}  // namespace
}  // namespace vs::serve
