/// AIMD admission-control tests: limiter unit/property behaviour under a
/// FakeClock (convergence to min under congestion, additive growth to max
/// while constrained, cooldown collapsing a burst of signals into one
/// decrease), priority classes (critical traffic is never shed), and —
/// end-to-end — starve-freedom of the introspection endpoints while every
/// normal handler is stalled on the `serve.handler_stall` fault.

#include "serve/admission.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "data/generator.h"
#include "data/io.h"
#include "serve/app.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

constexpr auto kNormal = AdmissionClass::kNormal;
constexpr auto kCritical = AdmissionClass::kCritical;

AdmissionOptions SmallLimiter(const FakeClock* clock) {
  AdmissionOptions options;
  options.initial_limit = 4.0;
  options.min_limit = 1.0;
  options.max_limit = 16.0;
  options.backoff_ratio = 0.7;
  options.backoff_cooldown_seconds = 0.1;
  options.clock = clock;
  return options;
}

TEST(AdmissionControllerTest, AdmitsUpToLimitThenSheds) {
  // Start the clock away from 0: last_backoff_us == 0 means "never".
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(controller.Acquire("next", kNormal).admitted);
  }
  EXPECT_FALSE(controller.Acquire("next", kNormal).admitted);
  for (int i = 0; i < 4; ++i) {
    controller.Release("next", kNormal, /*congested=*/false);
  }
  EXPECT_TRUE(controller.Acquire("next", kNormal).admitted);
}

TEST(AdmissionControllerTest, CriticalBypassesFullLimiter) {
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(controller.Acquire("label", kNormal).admitted);
  }
  ASSERT_FALSE(controller.Acquire("label", kNormal).admitted);
  EXPECT_TRUE(controller.Acquire("label", kCritical).admitted);
  controller.Release("label", kCritical, /*congested=*/true);
  // Critical completions never move the limit, congested or not.
  EXPECT_DOUBLE_EQ(controller.LimitFor("label"), 4.0);
}

TEST(AdmissionControllerTest, LastSlotReportsSaturation) {
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(controller.Acquire("topk", kNormal).saturated);
  }
  EXPECT_TRUE(controller.Acquire("topk", kNormal).saturated);
}

TEST(AdmissionControllerTest, CooldownCollapsesCongestionBurst) {
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  auto congested_round = [&] {
    ASSERT_TRUE(controller.Acquire("create_session", kNormal).admitted);
    controller.Release("create_session", kNormal, /*congested=*/true);
  };
  congested_round();
  EXPECT_NEAR(controller.LimitFor("create_session"), 2.8, 1e-9);
  // A second signal inside the cooldown window is the same overload
  // event — the limit must not take a second multiplicative cut.
  congested_round();
  EXPECT_NEAR(controller.LimitFor("create_session"), 2.8, 1e-9);
  clock.AdvanceSeconds(0.2);
  congested_round();
  EXPECT_NEAR(controller.LimitFor("create_session"), 1.96, 1e-9);
}

TEST(AdmissionControllerTest, ConvergesToMinUnderPersistentCongestion) {
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(controller.Acquire("next", kNormal).admitted);
    controller.Release("next", kNormal, /*congested=*/true);
    clock.AdvanceSeconds(0.2);
  }
  EXPECT_DOUBLE_EQ(controller.LimitFor("next"), 1.0);
  // The floor still serves: one request at a time keeps being admitted.
  EXPECT_TRUE(controller.Acquire("next", kNormal).admitted);
}

TEST(AdmissionControllerTest, GrowsToMaxWhileConstrained) {
  FakeClock clock(1'000'000);
  AdmissionOptions options = SmallLimiter(&clock);
  options.initial_limit = 2.0;
  options.max_limit = 4.0;
  AdmissionController controller(options);
  // Run at the limit once so the controller has evidence of demand.
  ASSERT_TRUE(controller.Acquire("next", kNormal).admitted);
  ASSERT_TRUE(controller.Acquire("next", kNormal).saturated);
  controller.Release("next", kNormal, /*congested=*/false);
  controller.Release("next", kNormal, /*congested=*/false);
  EXPECT_GT(controller.LimitFor("next"), 2.0);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(controller.Acquire("next", kNormal).admitted);
    controller.Release("next", kNormal, /*congested=*/false);
  }
  EXPECT_DOUBLE_EQ(controller.LimitFor("next"), 4.0);
}

TEST(AdmissionControllerTest, IdleEndpointDoesNotProbeUpward) {
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  ASSERT_TRUE(controller.Acquire("next", kNormal).admitted);
  controller.Release("next", kNormal, /*congested=*/false);
  // Never ran at the limit: no evidence of headroom, no growth.
  EXPECT_DOUBLE_EQ(controller.LimitFor("next"), 4.0);
}

TEST(AdmissionControllerTest, ForceShedFaultSpareCritical) {
  fault::FaultInjector injector(1);
  injector.SetProbability("admission.force_shed", 1.0);
  fault::ScopedFaultInjector scoped(&injector);
  FakeClock clock(1'000'000);
  AdmissionController controller(SmallLimiter(&clock));
  EXPECT_FALSE(controller.Acquire("next", kNormal).admitted);
  EXPECT_TRUE(controller.Acquire("label", kCritical).admitted);
  auto snapshot = controller.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[1].endpoint, "next");
  EXPECT_EQ(snapshot[1].shed, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: the limiter in front of a real serving stack.

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 300;
    options.seed = 17;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_admission_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

class AdmissionServerTest : public ::testing::Test {
 protected:
  void StartStack() {
    SessionManagerOptions manager_options;
    manager_options.max_sessions = 16;
    manager_ = std::make_unique<SessionManager>(manager_options,
                                                TestTablePath());
    ServeAppOptions app_options;
    app_options.admission_enabled = true;
    app_ = std::make_unique<ServeApp>(manager_.get(), app_options);
    HttpServerOptions server_options;
    server_options.port = 0;
    // Enough transport threads that stalled handlers (plus the kept-alive
    // setup connection) cannot exhaust the pool — this suite is about the
    // admission layer, not transport capacity.
    server_options.worker_threads = 8;
    server_ = std::make_unique<HttpServer>(
        server_options,
        [this](const HttpRequest& request) { return app_->Handle(request); });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  HttpClient Client() { return HttpClient("127.0.0.1", server_->port()); }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(AdmissionServerTest, ShedAnswers429ButLabelAcksSurvive) {
  StartStack();
  HttpClient client = Client();
  auto created = client.Request("POST", "/sessions", "{\"k\":3}");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  const std::string id =
      JsonValue::Parse(created->body)->GetString("id", "");
  auto next = client.Request("GET", "/sessions/" + id + "/next");
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(next->status, 200) << next->body;
  const int64_t view = JsonValue::Parse(next->body)
                           ->Find("views")
                           ->array()[0]
                           .GetInt("view", -1);
  ASSERT_GE(view, 0);

  fault::FaultInjector injector(1);
  injector.SetProbability("admission.force_shed", 1.0);
  fault::ScopedFaultInjector scoped(&injector);

  // Normal traffic is shed with 429 + Retry-After (the client's signal
  // to pace itself, honored by HttpClient's retry loop)...
  auto shed = client.Request("GET", "/sessions/" + id + "/next");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 429);
  auto parsed = JsonValue::Parse(shed->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("error")->GetString("code", ""),
            "ResourceExhausted");
  ASSERT_NE(shed->FindHeader("retry-after"), nullptr);

  // ...while label acks (user state) and introspection pass untouched.
  auto labeled = client.Request("POST", "/sessions/" + id + "/label",
                                "{\"view\":" + std::to_string(view) +
                                    ",\"label\":1}");
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(labeled->status, 200) << labeled->body;
  auto health = client.Request("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
}

TEST_F(AdmissionServerTest, IntrospectionNeverStarvesBehindStalledHandlers) {
  StartStack();
  HttpClient setup = Client();
  auto created = setup.Request("POST", "/sessions", "{\"k\":3}");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  const std::string id =
      JsonValue::Parse(created->body)->GetString("id", "");

  fault::FaultInjector injector(1);
  injector.SetProbability("serve.handler_stall", 1.0);
  fault::ScopedFaultInjector scoped(&injector);

  // Three session requests freeze inside the dispatch wrapper...
  std::atomic<int> finished{0};
  std::vector<std::thread> stuck;
  for (int i = 0; i < 3; ++i) {
    stuck.emplace_back([this, &id, &finished] {
      HttpClient client = Client();
      auto response = client.Request("GET", "/sessions/" + id + "/next");
      EXPECT_TRUE(response.ok());
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(finished.load(), 0);  // genuinely stalled

  // ...and the introspection plane still answers promptly: the stall
  // point exempts it and the limiter never sheds critical traffic.
  HttpClient probe = Client();
  auto health = probe.Request("GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  auto statusz = probe.Request("GET", "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status, 200);

  injector.Clear("serve.handler_stall");
  for (auto& thread : stuck) thread.join();
  EXPECT_EQ(finished.load(), 3);
}

}  // namespace
}  // namespace vs::serve
