/// Property and fuzz tests for the serve JSON layer.
///
/// The core property: for any value v produced by the parser,
/// Parse(WriteJson(v)) succeeds and is structurally equal to v (numbers
/// bit-exact via 17-significant-digit formatting, member order and
/// duplicate keys preserved).  Inputs are random JSON documents grown from
/// a seeded Rng, so every run covers the same trees.  The malformed-input
/// half feeds truncations, hostile nesting, out-of-range numbers, and raw
/// garbage through Parse and asserts it errors (or parses) without
/// crashing — the sanitizer jobs turn any UB here into a test failure.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "serve/json.h"

namespace vs::serve {
namespace {

/// Builds a random JSON document as text.  Depth-bounded so it always
/// parses under the default nesting limit.
std::string RandomJsonText(Rng& rng, int depth) {
  const uint64_t kind = rng.NextBounded(depth >= 4 ? 4 : 6);
  switch (kind) {
    case 0:
      return "null";
    case 1:
      return rng.NextBounded(2) == 0 ? "true" : "false";
    case 2: {
      // Mix integer, fractional, and extreme-exponent shapes.
      switch (rng.NextBounded(4)) {
        case 0:
          return StrFormat("%lld",
                           static_cast<long long>(rng.NextUint64() >> 12) -
                               (1LL << 51));
        case 1:
          return StrFormat("%.17g", rng.NextDouble() * 2e3 - 1e3);
        case 2:
          return StrFormat("%.17g", rng.NextDouble() * 1e-300);
        default:
          return StrFormat("%.17g", (rng.NextDouble() + 0.5) * 1e300);
      }
    }
    case 3: {
      std::string s = "\"";
      const uint64_t len = rng.NextBounded(12);
      for (uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus the characters the quoter must escape.
        const char c = static_cast<char>(0x20 + rng.NextBounded(95));
        if (c == '"' || c == '\\') s += '\\';
        s += c;
      }
      return s + "\"";
    }
    case 4: {
      std::string s = "[";
      const uint64_t len = rng.NextBounded(4);
      for (uint64_t i = 0; i < len; ++i) {
        if (i > 0) s += ",";
        s += RandomJsonText(rng, depth + 1);
      }
      return s + "]";
    }
    default: {
      std::string s = "{";
      const uint64_t len = rng.NextBounded(4);
      for (uint64_t i = 0; i < len; ++i) {
        if (i > 0) s += ",";
        // Small key space on purpose: collisions exercise the
        // duplicate-key path.
        s += StrFormat("\"k%llu\":",
                       static_cast<unsigned long long>(rng.NextBounded(3)));
        s += RandomJsonText(rng, depth + 1);
      }
      return s + "}";
    }
  }
}

TEST(JsonPropertyTest, ParseWriteParseRoundTripsRandomDocuments) {
  Rng rng(20260805);
  for (int i = 0; i < 300; ++i) {
    const std::string text = RandomJsonText(rng, 0);
    auto first = JsonValue::Parse(text);
    ASSERT_TRUE(first.ok()) << "doc " << i << ": " << text;
    const std::string written = WriteJson(*first);
    auto second = JsonValue::Parse(written);
    ASSERT_TRUE(second.ok()) << "rewritten doc " << i << ": " << written;
    EXPECT_TRUE(JsonEquals(*first, *second))
        << "doc " << i << "\n  original:  " << text
        << "\n  rewritten: " << written;
    // Serialization is a fixed point: writing the reparse changes nothing.
    EXPECT_EQ(written, WriteJson(*second)) << "doc " << i;
  }
}

TEST(JsonPropertyTest, RoundTripPreservesDuplicateKeysAndOrder) {
  auto parsed = JsonValue::Parse("{\"b\":1,\"a\":2,\"b\":3}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WriteJson(*parsed), "{\"b\":1,\"a\":2,\"b\":3}");
  // Find still resolves duplicates to the last occurrence after a trip.
  auto again = JsonValue::Parse(WriteJson(*parsed));
  ASSERT_TRUE(again.ok());
  ASSERT_NE(again->Find("b"), nullptr);
  EXPECT_EQ(again->Find("b")->number_value(), 3.0);
}

TEST(JsonPropertyTest, RoundTripControlCharactersInStrings) {
  auto parsed = JsonValue::Parse("\"a\\u0001\\n\\t\\\"\\\\b\"");
  ASSERT_TRUE(parsed.ok());
  auto again = JsonValue::Parse(WriteJson(*parsed));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(JsonEquals(*parsed, *again));
  EXPECT_EQ(again->string_value(), parsed->string_value());
}

// Every proper prefix of a compound document is an incomplete document;
// the parser must reject each one cleanly.
TEST(JsonPropertyTest, AllTruncationsOfACompoundDocumentError) {
  const std::string docs[] = {
      "{\"a\":[1,2.5,null],\"bc\":{\"d\":\"ef\\\"g\"},\"h\":true}",
      "[[1,2],[3,[4,{\"x\":-1.25e-3}]],\"tail\"]",
  };
  for (const std::string& doc : docs) {
    ASSERT_TRUE(JsonValue::Parse(doc).ok()) << doc;
    for (size_t cut = 0; cut < doc.size(); ++cut) {
      EXPECT_FALSE(JsonValue::Parse(doc.substr(0, cut)).ok())
          << "prefix of length " << cut << " of " << doc;
    }
  }
}

TEST(JsonPropertyTest, HostileNestingErrorsInsteadOfOverflowing) {
  for (const size_t depth : {33u, 100u, 10000u}) {
    // A scalar buried `depth` containers down trips the nesting limit; an
    // error (not a stack overflow) is the required outcome.
    const std::string deep_array =
        std::string(depth, '[') + "1" + std::string(depth, ']');
    EXPECT_FALSE(JsonValue::Parse(deep_array).ok()) << "depth " << depth;
    std::string deep_object;
    for (size_t i = 0; i < depth; ++i) deep_object += "{\"k\":";
    deep_object += "1";
    deep_object.append(depth, '}');
    EXPECT_FALSE(JsonValue::Parse(deep_object).ok()) << "depth " << depth;
  }
  // The limit counts the depth of each parsed value: a scalar at
  // max_depth parses, one level deeper errors.
  EXPECT_TRUE(JsonValue::Parse("[[[[1]]]]", /*max_depth=*/4).ok());
  EXPECT_FALSE(JsonValue::Parse("[[[[[1]]]]]", /*max_depth=*/4).ok());
}

TEST(JsonPropertyTest, NumbersOutsideDoubleRangeError) {
  for (const char* text : {"1e999", "-1e999", "1e99999999", "-1.5e308999",
                           "123456789e400"}) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << text;
  }
  // Denormal underflow is representable (rounds toward zero), not an error.
  EXPECT_TRUE(JsonValue::Parse("1e-999").ok());
}

TEST(JsonPropertyTest, RandomGarbageNeverCrashesTheParser) {
  Rng rng(424242);
  for (int i = 0; i < 500; ++i) {
    const uint64_t len = rng.NextBounded(64);
    std::string garbage;
    garbage.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      garbage += static_cast<char>(rng.NextBounded(256));
    }
    // Any outcome is fine; reaching the next iteration without UB is the
    // assertion (the sanitizer jobs enforce it).
    (void)JsonValue::Parse(garbage);
  }
}

TEST(JsonPropertyTest, MutatedValidDocumentsNeverCrashTheParser) {
  Rng rng(777);
  const std::string base =
      "{\"id\":\"s-1\",\"k\":3,\"views\":[1,2,3],\"cold\":false}";
  for (int i = 0; i < 500; ++i) {
    std::string doc = base;
    const size_t pos = rng.NextBounded(doc.size());
    doc[pos] = static_cast<char>(rng.NextBounded(256));
    (void)JsonValue::Parse(doc);
  }
}

}  // namespace
}  // namespace vs::serve
