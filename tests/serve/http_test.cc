#include "serve/http.h"

#include <string>

#include <gtest/gtest.h>

#include "serve/router.h"

namespace vs::serve {
namespace {

/// Feeds the whole text at once and expects a complete request.
HttpRequest ParseOne(const std::string& text,
                     const HttpLimits& limits = HttpLimits()) {
  RequestParser parser(limits);
  auto done = parser.Consume(text);
  EXPECT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_TRUE(done.ok() && *done);
  return parser.TakeRequest();
}

TEST(RequestParserTest, ParsesSimpleGet) {
  HttpRequest r = ParseOne("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/healthz");
  EXPECT_TRUE(r.query.empty());
  EXPECT_TRUE(r.http11);
  EXPECT_TRUE(r.keep_alive);  // 1.1 default
  ASSERT_NE(r.FindHeader("host"), nullptr);
  EXPECT_EQ(*r.FindHeader("host"), "x");
  EXPECT_TRUE(r.body.empty());
}

TEST(RequestParserTest, SplitsQueryString) {
  HttpRequest r = ParseOne("GET /sessions/a/topk?lambda=0.5 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(r.path, "/sessions/a/topk");
  EXPECT_EQ(r.query, "lambda=0.5");
  EXPECT_EQ(r.target, "/sessions/a/topk?lambda=0.5");
}

TEST(RequestParserTest, ReadsContentLengthBody) {
  HttpRequest r = ParseOne(
      "POST /sessions HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":3}");
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "{\"k\":3}");
}

TEST(RequestParserTest, IncrementalBytesAccumulate) {
  RequestParser parser{HttpLimits()};
  const std::string text =
      "POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    auto done = parser.Consume(text.substr(i, 1));
    ASSERT_TRUE(done.ok());
    EXPECT_FALSE(*done) << "complete too early at byte " << i;
  }
  auto done = parser.Consume(text.substr(text.size() - 1));
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(*done);
  EXPECT_EQ(parser.TakeRequest().body, "body");
}

TEST(RequestParserTest, KeepAliveResolution) {
  EXPECT_TRUE(ParseOne("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      ParseOne("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_FALSE(ParseOne("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      ParseOne("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .keep_alive);
}

TEST(RequestParserTest, PipelinedRequestsViaStartNext) {
  RequestParser parser{HttpLimits()};
  auto done = parser.Consume(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(*done);
  EXPECT_EQ(parser.TakeRequest().path, "/a");
  auto next = parser.StartNext();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);  // second request was already buffered
  EXPECT_EQ(parser.TakeRequest().path, "/b");
}

TEST(RequestParserTest, MalformedRequestLineIs400) {
  RequestParser parser{HttpLimits()};
  EXPECT_FALSE(parser.Consume("NOT A REQUEST\r\n\r\n").ok());
  EXPECT_EQ(parser.http_status(), 400);
}

TEST(RequestParserTest, UnsupportedVersionIs505) {
  RequestParser parser{HttpLimits()};
  EXPECT_FALSE(parser.Consume("GET / HTTP/2.0\r\n\r\n").ok());
  EXPECT_EQ(parser.http_status(), 505);
}

TEST(RequestParserTest, TransferEncodingIs501) {
  RequestParser parser{HttpLimits()};
  EXPECT_FALSE(
      parser.Consume("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
          .ok());
  EXPECT_EQ(parser.http_status(), 501);
}

TEST(RequestParserTest, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 8;
  RequestParser parser(limits);
  EXPECT_FALSE(
      parser.Consume("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n").ok());
  EXPECT_EQ(parser.http_status(), 413);
}

TEST(RequestParserTest, OversizedHeadersAre431) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  RequestParser parser(limits);
  const std::string big(128, 'a');
  EXPECT_FALSE(
      parser.Consume("GET / HTTP/1.1\r\nX-Big: " + big + "\r\n\r\n").ok());
  EXPECT_EQ(parser.http_status(), 431);
}

TEST(RequestParserTest, TooManyHeadersAre431) {
  HttpLimits limits;
  limits.max_headers = 3;
  RequestParser parser(limits);
  EXPECT_FALSE(parser
                   .Consume("GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n"
                            "d: 4\r\n\r\n")
                   .ok());
  EXPECT_EQ(parser.http_status(), 431);
}

TEST(RequestParserTest, BadContentLengthIs400) {
  RequestParser parser{HttpLimits()};
  EXPECT_FALSE(
      parser.Consume("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").ok());
  EXPECT_EQ(parser.http_status(), 400);
}

TEST(RequestParserTest, MidRequestTracksPartialBytes) {
  RequestParser parser{HttpLimits()};
  EXPECT_FALSE(parser.mid_request());
  ASSERT_TRUE(parser.Consume("GET /he").ok());
  EXPECT_TRUE(parser.mid_request());
  ASSERT_TRUE(parser.Consume("althz HTTP/1.1\r\n\r\n").ok());
  EXPECT_TRUE(parser.mid_request());  // complete-but-untaken counts too
  parser.TakeRequest();
  auto next = parser.StartNext();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_FALSE(parser.mid_request());
}

TEST(SerializeResponseTest, EmitsStatusHeadersAndBody) {
  HttpResponse response;
  response.status = 201;
  response.body = "{\"id\":\"x\"}\n";
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_EQ(wire.find("HTTP/1.1 201 Created\r\n"), 0u);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"id\":\"x\"}\n"), std::string::npos);
}

TEST(SerializeResponseTest, CloseConnectionHeader) {
  const std::string wire = SerializeResponse(HttpResponse(), false);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
}

TEST(SerializeResponseTest, JsonErrorBodyShape) {
  HttpResponse response = JsonErrorResponse(404, "NotFound", "no such id");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.body,
            "{\"error\":{\"code\":\"NotFound\",\"message\":\"no such id\"}}"
            "\n");
}

HttpRequest MakeRequest(std::string method, std::string path) {
  HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  return request;
}

TEST(RouterTest, DispatchesByMethodAndCapturesParams) {
  Router router;
  std::string seen_id;
  router.Add("GET", "/sessions/{id}/next",
             [&seen_id](const HttpRequest&,
                        const std::vector<std::string>& params) {
               seen_id = params[0];
               HttpResponse response;
               response.body = "next";
               return response;
             });
  router.Add("DELETE", "/sessions/{id}",
             [](const HttpRequest&, const std::vector<std::string>&) {
               HttpResponse response;
               response.body = "deleted";
               return response;
             });

  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/sessions/abc/next")).body,
            "next");
  EXPECT_EQ(seen_id, "abc");
  EXPECT_EQ(router.Dispatch(MakeRequest("DELETE", "/sessions/abc")).body,
            "deleted");
}

TEST(RouterTest, UnknownPathIs404) {
  Router router;
  router.Add("GET", "/a",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse();
             });
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/nope")).status, 404);
}

TEST(RouterTest, WrongMethodIs405WithAllow) {
  Router router;
  router.Add("GET", "/thing",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse();
             });
  HttpResponse response = router.Dispatch(MakeRequest("POST", "/thing"));
  EXPECT_EQ(response.status, 405);
  bool has_allow = false;
  for (const auto& [name, value] : response.extra_headers) {
    if (name == "Allow") has_allow = true;
  }
  EXPECT_TRUE(has_allow);
}

TEST(RouterTest, ParamSegmentDoesNotMatchEmptyOrSlash) {
  Router router;
  router.Add("GET", "/sessions/{id}",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse();
             });
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/sessions/")).status, 404);
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/sessions/a/b")).status,
            404);
}

}  // namespace
}  // namespace vs::serve
