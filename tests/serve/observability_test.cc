/// End-to-end request-scoped observability over the real HTTP stack: a
/// request with a known X-Request-Id is traceable in the response
/// headers, in its wide event's stage breakdown, and — during a
/// fault-injected stall — in the /statusz in-flight table.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "data/generator.h"
#include "data/io.h"
#include "obs/events.h"
#include "serve/app.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 23;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_obs_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

/// Full stack with durability on (labels journal through the WAL) and a
/// capturing wide-event sink sampling every request.
class ObservabilityTest : public ::testing::Test {
 protected:
  void StartStack(ServeAppOptions app_options = DefaultAppOptions()) {
    SessionManagerOptions manager_options;
    manager_options.durability_dir =
        ::testing::TempDir() + "serve_obs_durability_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    manager_options.durability_fsync = false;  // speed; not under test
    // Rotate on every label so a traced label request spans the full
    // durability path (WAL append + snapshot) in one wide event.
    manager_options.snapshot_every_labels = 1;
    manager_ = std::make_unique<SessionManager>(manager_options,
                                                TestTablePath());
    app_ = std::make_unique<ServeApp>(manager_.get(), app_options);
    HttpServerOptions server_options;
    server_options.port = 0;
    server_ = std::make_unique<HttpServer>(
        server_options,
        [this](const HttpRequest& request) { return app_->Handle(request); });
    ASSERT_TRUE(server_->Start().ok());
  }

  static ServeAppOptions DefaultAppOptions() {
    ServeAppOptions options;
    options.wide_event_sink = &Sink();
    options.wide_event_sample = 1;  // every request
    options.slo_budget_ms = 1000.0;
    return options;
  }

  static obs::VectorEventSink& Sink() {
    static obs::VectorEventSink* sink = new obs::VectorEventSink;
    return *sink;
  }

  void SetUp() override { Sink().Clear(); }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  HttpClient Client() { return HttpClient("127.0.0.1", server_->port()); }

  /// The wide event emitted for \p request_id, as JSON ("" when absent).
  static std::string WideEventFor(const std::string& request_id) {
    for (const obs::Event& event : Sink().events()) {
      const std::string json = event.ToJson();
      if (json.find("\"request_id\":\"" + request_id + "\"") !=
          std::string::npos) {
        return json;
      }
    }
    return "";
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
};

TEST(SanitizeRequestIdTest, AcceptsSafeIdsRejectsTheRest) {
  EXPECT_EQ(SanitizeRequestId("abc-123_X.y:z"), "abc-123_X.y:z");
  EXPECT_EQ(SanitizeRequestId(""), "");
  EXPECT_EQ(SanitizeRequestId("has space"), "");
  EXPECT_EQ(SanitizeRequestId("quote\"inject"), "");
  EXPECT_EQ(SanitizeRequestId("newline\ninject"), "");
  EXPECT_EQ(SanitizeRequestId(std::string(64, 'a')), std::string(64, 'a'));
  EXPECT_EQ(SanitizeRequestId(std::string(65, 'a')), "");
}

TEST_F(ObservabilityTest, KnownRequestIdTraceableEndToEnd) {
  StartStack();
  HttpClient client = Client();

  // Create carries a caller-chosen id; the response must echo it.
  auto created = client.Request("POST", "/sessions", "{\"k\":3}",
                                {{"X-Request-Id", "trace-create-1"}});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created->status, 201) << created->body;
  const std::string* echoed = created->FindHeader("x-request-id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "trace-create-1");
  const std::string* stages = created->FindHeader("x-request-stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_NE(stages->find("http.dispatch="), std::string::npos) << *stages;
  const std::string id = JsonValue::Parse(created->body)->GetString("id", "");
  ASSERT_FALSE(id.empty());

  // The create's wide event carries the id plus >= 4 distinct stage
  // spans: transport dispatch, session creation, and the matrix-cache
  // lookup + leader build underneath it.
  const std::string create_event = WideEventFor("trace-create-1");
  ASSERT_FALSE(create_event.empty());
  EXPECT_NE(create_event.find("\"endpoint\":\"create_session\""),
            std::string::npos)
      << create_event;
  for (const char* stage :
       {"stage_us.http.dispatch", "stage_us.session_manager.create",
        "stage_us.fmcache.lookup", "stage_us.fmcache.build"}) {
    EXPECT_NE(create_event.find(stage), std::string::npos)
        << stage << " missing in " << create_event;
  }

  // A durable label: its wide event reaches down into the WAL append.
  auto next = client.Request("GET", "/sessions/" + id + "/next");
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(next->status, 200) << next->body;
  const int64_t view =
      JsonValue::Parse(next->body)->Find("views")->array()[0].GetInt("view",
                                                                     -1);
  ASSERT_GE(view, 0);
  auto labeled = client.Request(
      "POST", "/sessions/" + id + "/label",
      "{\"view\":" + std::to_string(view) + ",\"label\":1}",
      {{"X-Request-Id", "trace-label-1"}});
  ASSERT_TRUE(labeled.ok());
  ASSERT_EQ(labeled->status, 200) << labeled->body;
  ASSERT_NE(labeled->FindHeader("x-request-id"), nullptr);
  EXPECT_EQ(*labeled->FindHeader("x-request-id"), "trace-label-1");

  // >= 4 distinct stage spans for one label: transport, session manager,
  // WAL append, and the cadence snapshot rotation.
  const std::string label_event = WideEventFor("trace-label-1");
  ASSERT_FALSE(label_event.empty());
  for (const char* stage :
       {"stage_us.http.dispatch", "stage_us.session_manager.label",
        "stage_us.durability.wal_append", "stage_us.durability.snapshot"}) {
    EXPECT_NE(label_event.find(stage), std::string::npos)
        << stage << " missing in " << label_event;
  }
}

TEST_F(ObservabilityTest, ErrorResponsesEchoTheRequestId) {
  StartStack();
  HttpClient client = Client();

  // Routed handler error (unknown session -> 404).
  auto missing = client.Request("GET", "/sessions/nope", "",
                                {{"X-Request-Id", "trace-err-1"}});
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  ASSERT_NE(missing->FindHeader("x-request-id"), nullptr);
  EXPECT_EQ(*missing->FindHeader("x-request-id"), "trace-err-1");

  // Unmatched route -> 404 with the id still attached.
  auto unmatched = client.Request("GET", "/no/such/route", "",
                                  {{"X-Request-Id", "trace-err-2"}});
  ASSERT_TRUE(unmatched.ok());
  EXPECT_EQ(unmatched->status, 404);
  ASSERT_NE(unmatched->FindHeader("x-request-id"), nullptr);
  EXPECT_EQ(*unmatched->FindHeader("x-request-id"), "trace-err-2");

  // An unusable id is replaced, not reflected verbatim.
  auto bad = client.Request("GET", "/healthz", "",
                            {{"X-Request-Id", "bad id with spaces"}});
  ASSERT_TRUE(bad.ok());
  const std::string* assigned = bad->FindHeader("x-request-id");
  ASSERT_NE(assigned, nullptr);
  EXPECT_EQ(assigned->compare(0, 4, "req-"), 0) << *assigned;
}

TEST_F(ObservabilityTest, GeneratedIdsAreAssignedWithoutHeader) {
  StartStack();
  HttpClient client = Client();
  auto response = client.Request("GET", "/healthz");
  ASSERT_TRUE(response.ok());
  const std::string* id = response->FindHeader("x-request-id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->compare(0, 4, "req-"), 0) << *id;
}

TEST_F(ObservabilityTest, StatuszShowsStalledRequestInFlight) {
  StartStack();

  fault::FaultInjector injector(7);
  injector.SetProbability("serve.handler_stall", 1.0);
  fault::ScopedFaultInjector scoped(&injector);

  // The stalled request: parks in the dispatch wrapper until the fault
  // is cleared, then resolves normally (404 for the unknown session).
  std::thread stalled([this] {
    HttpClient client = Client();
    auto response = client.Request("GET", "/sessions/zzz/next", "",
                                   {{"X-Request-Id", "stall-1"}});
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 404);
    ASSERT_NE(response->FindHeader("x-request-id"), nullptr);
    EXPECT_EQ(*response->FindHeader("x-request-id"), "stall-1");
  });

  // /statusz (never stalled) must list the request by id, attributed to
  // its endpoint, while it is still parked.
  HttpClient prober = Client();
  std::string statusz;
  Stopwatch deadline;
  bool seen = false;
  while (deadline.ElapsedSeconds() < 10.0) {
    auto response = prober.Request("GET", "/statusz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200);
    statusz = response->body;
    if (statusz.find("\"id\":\"stall-1\"") != std::string::npos) {
      seen = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  injector.Clear("serve.handler_stall");
  stalled.join();

  ASSERT_TRUE(seen) << statusz;
  EXPECT_NE(statusz.find("\"endpoint\":\"next\""), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("\"stage\":\"http.dispatch\""), std::string::npos)
      << statusz;
  // Once released, the in-flight table drains again.
  auto after = prober.Request("GET", "/statusz");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->body.find("\"id\":\"stall-1\""), std::string::npos);
}

TEST_F(ObservabilityTest, StatuszRendersIntrospectionSections) {
  StartStack();
  HttpClient client = Client();
  auto response = client.Request("GET", "/statusz");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  for (const char* field :
       {"\"build\"", "\"version\"", "\"uptime_seconds\"", "\"config\"",
        "\"inflight\"", "\"slo\"", "\"window_seconds\"", "\"matrix_cache\"",
        "\"active_sessions\"", "\"durability\""}) {
    EXPECT_NE(response->body.find(field), std::string::npos)
        << field << " missing in " << response->body;
  }
}

TEST_F(ObservabilityTest, MetricsExposeSloAndBuildInfoAndResponseCodes) {
  StartStack();
  HttpClient client = Client();
  ASSERT_EQ(client.Request("GET", "/healthz")->status, 200);
  auto metrics = client.Request("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  for (const char* needle :
       {"viewseeker_build_info{", "slo_window_p50_ms_healthz",
        "http_responses_200", "serve_endpoint_seconds_healthz"}) {
    EXPECT_NE(metrics->body.find(needle), std::string::npos)
        << needle << " missing";
  }
}

TEST_F(ObservabilityTest, SlowTriggerEmitsWithoutSampling) {
  ServeAppOptions options = DefaultAppOptions();
  options.wide_event_sample = 0;       // sampling off
  options.slow_request_ms = 1e-6;      // everything counts as slow
  StartStack(options);
  HttpClient client = Client();
  ASSERT_EQ(client
                .Request("GET", "/healthz", "",
                         {{"X-Request-Id", "slow-1"}})
                ->status,
            200);
  const std::string event = WideEventFor("slow-1");
  ASSERT_FALSE(event.empty());
  EXPECT_NE(event.find("\"slow\":true"), std::string::npos) << event;
  EXPECT_NE(event.find("\"sampled\":false"), std::string::npos) << event;
}

}  // namespace
}  // namespace vs::serve
