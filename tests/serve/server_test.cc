#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "data/generator.h"
#include "data/io.h"
#include "serve/app.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/session_manager.h"

namespace vs::serve {
namespace {

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 11;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_http_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

/// A full serving stack on an ephemeral port, torn down with the fixture.
class ServerTest : public ::testing::Test {
 protected:
  void StartStack(SessionManagerOptions manager_options =
                      SessionManagerOptions(),
                  HttpServerOptions server_options = HttpServerOptions()) {
    manager_ = std::make_unique<SessionManager>(manager_options,
                                                TestTablePath());
    app_ = std::make_unique<ServeApp>(manager_.get());
    server_options.port = 0;  // ephemeral
    server_ = std::make_unique<HttpServer>(
        server_options,
        [this](const HttpRequest& request) { return app_->Handle(request); });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  HttpClient Client() { return HttpClient("127.0.0.1", server_->port()); }

  std::string CreateSession(HttpClient& client) {
    auto response = client.Request("POST", "/sessions", "{\"k\":3}");
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response->status, 201);
    auto body = JsonValue::Parse(response->body);
    EXPECT_TRUE(body.ok());
    return body->GetString("id", "");
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, HealthzAndMetricsRespond) {
  StartStack();
  HttpClient client = Client();
  auto health = client.Request("GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  auto parsed = JsonValue::Parse(health->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("status", ""), "ok");

  auto metrics = client.Request("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  const std::string* type = metrics->FindHeader("content-type");
  ASSERT_NE(type, nullptr);
  EXPECT_NE(type->find("text/plain"), std::string::npos);
}

TEST_F(ServerTest, FullSessionLifecycleOverHttp) {
  StartStack();
  HttpClient client = Client();
  const std::string id = CreateSession(client);
  ASSERT_FALSE(id.empty());

  for (int i = 0; i < 4; ++i) {
    auto next = client.Request("GET", "/sessions/" + id + "/next");
    ASSERT_TRUE(next.ok());
    ASSERT_EQ(next->status, 200) << next->body;
    auto body = JsonValue::Parse(next->body);
    ASSERT_TRUE(body.ok());
    const JsonValue* views = body->Find("views");
    ASSERT_NE(views, nullptr);
    ASSERT_FALSE(views->array().empty());
    const int64_t view = views->array()[0].GetInt("view", -1);
    ASSERT_GE(view, 0);
    auto labeled = client.Request(
        "POST", "/sessions/" + id + "/label",
        "{\"view\":" + std::to_string(view) +
            ",\"label\":" + (i % 2 == 0 ? "1" : "0") + "}");
    ASSERT_TRUE(labeled.ok());
    EXPECT_EQ(labeled->status, 200) << labeled->body;
  }

  auto info = client.Request("GET", "/sessions/" + id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(JsonValue::Parse(info->body)->GetInt("num_labeled", -1), 4);

  auto topk = client.Request("GET", "/sessions/" + id + "/topk?lambda=0.3");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->status, 200) << topk->body;
  auto topk_body = JsonValue::Parse(topk->body);
  ASSERT_TRUE(topk_body.ok());
  EXPECT_EQ(topk_body->Find("views")->array().size(), 3u);

  auto deleted = client.Request("DELETE", "/sessions/" + id);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->status, 200);
  auto gone = client.Request("GET", "/sessions/" + id);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status, 404);
}

TEST_F(ServerTest, ProtocolErrorsAreTyped) {
  StartStack();
  HttpClient client = Client();

  auto unknown = client.Request("GET", "/nope");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);

  auto wrong_method = client.Request("PATCH", "/sessions");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto bad_json = client.Request("POST", "/sessions", "{not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status, 400);

  auto bad_k = client.Request("POST", "/sessions", "{\"k\":-2}");
  ASSERT_TRUE(bad_k.ok());
  EXPECT_EQ(bad_k->status, 400);

  const std::string id = CreateSession(client);
  auto bad_label = client.Request("POST", "/sessions/" + id + "/label",
                                  "{\"view\":0}");
  ASSERT_TRUE(bad_label.ok());
  EXPECT_EQ(bad_label->status, 400);  // label field missing

  // Out-of-range and fractional view indices must be rejected, never cast.
  auto huge_view = client.Request("POST", "/sessions/" + id + "/label",
                                  "{\"view\":1e300,\"label\":1}");
  ASSERT_TRUE(huge_view.ok());
  EXPECT_EQ(huge_view->status, 400);
  auto frac_view = client.Request("POST", "/sessions/" + id + "/label",
                                  "{\"view\":1.5,\"label\":1}");
  ASSERT_TRUE(frac_view.ok());
  EXPECT_EQ(frac_view->status, 400);

  // An unconvertible k falls back to the default rather than invoking UB;
  // the create succeeds with the default k.
  auto huge_k = client.Request("POST", "/sessions", "{\"k\":1e300}");
  ASSERT_TRUE(huge_k.ok());
  EXPECT_EQ(huge_k->status, 201);

  auto bad_lambda =
      client.Request("GET", "/sessions/" + id + "/topk?lambda=7");
  ASSERT_TRUE(bad_lambda.ok());
  EXPECT_EQ(bad_lambda->status, 400);
}

TEST_F(ServerTest, MalformedRequestLineGets400AndClose) {
  StartStack();
  HttpClient client = Client();
  auto raw = client.RawExchange("THIS IS NOT HTTP\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(raw->find("Connection: close"), std::string::npos);
}

TEST_F(ServerTest, UnsupportedVersionGets505) {
  StartStack();
  HttpClient client = Client();
  auto raw = client.RawExchange("GET /healthz HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("HTTP/1.1 505"), std::string::npos);
}

TEST_F(ServerTest, OversizedBodyGets413) {
  HttpServerOptions server_options;
  server_options.limits.max_body_bytes = 64;
  StartStack(SessionManagerOptions(), server_options);
  HttpClient client = Client();
  const std::string big(256, 'x');
  auto response = client.Request("POST", "/sessions", big);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
}

TEST_F(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartStack();
  HttpClient client = Client();
  for (int i = 0; i < 20; ++i) {
    auto response = client.Request("GET", "/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  // All 20 rode one TCP connection.
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(ServerTest, ConcurrentLabelSubmissionsAllLand) {
  StartStack();
  HttpClient setup = Client();
  const std::string id = CreateSession(setup);
  ASSERT_FALSE(id.empty());

  // 8 clients label 5 distinct views each; per-session locking must
  // serialize them without losing or double-counting any.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &id, t, &ok_count] {
      HttpClient client = Client();
      for (int i = 0; i < kPerThread; ++i) {
        const int view = t * kPerThread + i;
        auto response = client.Request(
            "POST", "/sessions/" + id + "/label",
            "{\"view\":" + std::to_string(view) + ",\"label\":1}");
        if (response.ok() && response->status == 200) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);

  auto info = setup.Request("GET", "/sessions/" + id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(JsonValue::Parse(info->body)->GetInt("num_labeled", -1),
            kThreads * kPerThread);
}

TEST_F(ServerTest, SessionCapMapsTo429) {
  SessionManagerOptions manager_options;
  manager_options.max_sessions = 1;
  StartStack(manager_options);
  HttpClient client = Client();
  ASSERT_FALSE(CreateSession(client).empty());
  auto overflow = client.Request("POST", "/sessions", "{\"k\":3}");
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(overflow->status, 429);
  auto body = JsonValue::Parse(overflow->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("error")->GetString("code", ""),
            "ResourceExhausted");
}

TEST_F(ServerTest, TtlEvictionRestoresTransparently) {
  // The injected FakeClock replaces the old wall-clock dance (a tight TTL,
  // StartReaper, and a sleep-poll loop): idle time only passes when the
  // test advances it, so the eviction is deterministic and instant.
  FakeClock clock;
  SessionManagerOptions manager_options;
  manager_options.session_ttl_seconds = 60.0;
  manager_options.spill_dir = ::testing::TempDir() + "serve_http_spill";
  manager_options.clock = &clock;
  StartStack(manager_options);

  HttpClient client = Client();
  const std::string id = CreateSession(client);
  ASSERT_FALSE(id.empty());
  auto next = client.Request("GET", "/sessions/" + id + "/next");
  ASSERT_TRUE(next.ok());
  const int64_t view =
      JsonValue::Parse(next->body)->Find("views")->array()[0].GetInt("view",
                                                                     -1);
  ASSERT_TRUE(client
                  .Request("POST", "/sessions/" + id + "/label",
                           "{\"view\":" + std::to_string(view) +
                               ",\"label\":1}")
                  .ok());

  // The session ages past its TTL and the next sweep spills it.
  clock.AdvanceSeconds(manager_options.session_ttl_seconds + 1);
  EXPECT_EQ(manager_->EvictIdleOlderThan(
                manager_options.session_ttl_seconds),
            1u);
  EXPECT_EQ(manager_->active_sessions(), 0u);
  EXPECT_EQ(manager_->evicted_sessions(), 1u);

  // The id keeps working: the session is restored with its label intact.
  auto info = client.Request("GET", "/sessions/" + id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, 200) << info->body;
  EXPECT_EQ(JsonValue::Parse(info->body)->GetInt("num_labeled", -1), 1);
}

TEST_F(ServerTest, StopIsGracefulAndIdempotent) {
  StartStack();
  HttpClient client = Client();
  ASSERT_TRUE(client.Request("GET", "/healthz").ok());
  server_->Stop();
  server_->Stop();  // idempotent
  // A fresh connection must now be refused.
  HttpClient late("127.0.0.1", server_->port(), /*timeout_seconds=*/1.0);
  EXPECT_FALSE(late.Request("GET", "/healthz").ok());
}

}  // namespace
}  // namespace vs::serve
