#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "serve/durability.h"
#include "serve/session_manager.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

namespace fs = std::filesystem;

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 11;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_dur_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "vs_mgr_dur_" + name;
  fs::remove_all(dir);
  return dir;  // the manager creates it
}

SessionManagerOptions DurableOptions(const std::string& dir) {
  SessionManagerOptions options;
  options.max_sessions = 8;
  options.session_ttl_seconds = 3600;
  options.durability_dir = dir;
  options.durability_fsync = false;  // unit tests trade fsync for speed
  options.snapshot_every_labels = 4;
  return options;
}

CreateSpec SmallSpec() {
  CreateSpec spec;
  spec.options.k = 3;
  spec.options.seed = 5;
  return spec;
}

/// Labels \p n next-views alternately positive/negative; returns the
/// labeled (view, value) pairs in submission order.
std::vector<std::pair<size_t, double>> LabelSome(SessionManager& manager,
                                                 const std::string& id,
                                                 int n) {
  std::vector<std::pair<size_t, double>> out;
  for (int i = 0; i < n; ++i) {
    auto batch = manager.Next(id);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok() || batch->views.empty()) break;
    const double value = i % 2 == 0 ? 1.0 : 0.0;
    auto labeled = manager.Label(id, batch->views[0], value);
    EXPECT_TRUE(labeled.ok()) << labeled.status().ToString();
    if (labeled.ok()) out.emplace_back(batch->views[0], value);
  }
  return out;
}

void ExpectSameLabels(SessionManager& manager, const std::string& id,
                      const std::vector<std::pair<size_t, double>>& want) {
  auto labels = manager.Labels(id);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->views.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(labels->views[i], want[i].first) << "label " << i;
    EXPECT_DOUBLE_EQ(labels->values[i], want[i].second) << "label " << i;
  }
}

TEST(SessionManagerDurabilityTest, CrashRecoveryRestoresAckedLabels) {
  const std::string dir = ScratchDir("crash");
  std::string id;
  std::vector<std::pair<size_t, double>> labeled;
  {
    SessionManager manager(DurableOptions(dir), TestTablePath());
    ASSERT_TRUE(manager.RecoverFromDisk().ok());
    auto info = manager.Create(SmallSpec());
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    id = info->id;
    labeled = LabelSome(manager, id, 7);
    ASSERT_EQ(labeled.size(), 7u);
    // Destroyed without drain: in-memory state is lost, as in a crash.
    // 7 labels with snapshot_every_labels=4 leaves a journal tail.
    EXPECT_GT(manager.durability_stats().wal_appends, 0u);
  }

  SessionManager recovered(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  const DurabilityStats stats = recovered.durability_stats();
  EXPECT_EQ(stats.recovered_sessions, 1u);
  EXPECT_GT(stats.replayed_labels, 0u);
  ExpectSameLabels(recovered, id, labeled);

  // The recovered session keeps working — and keeps journaling.
  auto more = LabelSome(recovered, id, 2);
  EXPECT_EQ(more.size(), 2u);
}

TEST(SessionManagerDurabilityTest, GracefulDrainThenRestart) {
  const std::string dir = ScratchDir("drain");
  std::string id;
  std::vector<std::pair<size_t, double>> labeled;
  {
    SessionManager manager(DurableOptions(dir), TestTablePath());
    ASSERT_TRUE(manager.RecoverFromDisk().ok());
    auto info = manager.Create(SmallSpec());
    ASSERT_TRUE(info.ok());
    id = info->id;
    labeled = LabelSome(manager, id, 5);
    EXPECT_EQ(manager.PersistAllSessions(), 1u);
  }
  SessionManager recovered(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  ExpectSameLabels(recovered, id, labeled);
  // The drain rotated the journal: recovery replays nothing.
  EXPECT_EQ(recovered.durability_stats().replayed_labels, 0u);
}

TEST(SessionManagerDurabilityTest, DeleteRemovesFilesAndStaysGone) {
  const std::string dir = ScratchDir("delete");
  std::string id;
  {
    SessionManager manager(DurableOptions(dir), TestTablePath());
    ASSERT_TRUE(manager.RecoverFromDisk().ok());
    auto info = manager.Create(SmallSpec());
    ASSERT_TRUE(info.ok());
    id = info->id;
    LabelSome(manager, id, 3);
    ASSERT_TRUE(manager.Delete(id).ok());
    EXPECT_FALSE(fs::exists(dir + "/" + id + ".snap"));
    EXPECT_FALSE(fs::exists(dir + "/" + id + ".wal"));
  }
  SessionManager recovered(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  EXPECT_EQ(recovered.durability_stats().recovered_sessions, 0u);
  EXPECT_TRUE(recovered.Info(id).status().IsNotFound());
}

TEST(SessionManagerDurabilityTest, TornJournalTailIsClippedNotFatal) {
  const std::string dir = ScratchDir("torn");
  std::string id;
  std::vector<std::pair<size_t, double>> labeled;
  {
    SessionManager manager(DurableOptions(dir), TestTablePath());
    ASSERT_TRUE(manager.RecoverFromDisk().ok());
    auto info = manager.Create(SmallSpec());
    ASSERT_TRUE(info.ok());
    id = info->id;
    labeled = LabelSome(manager, id, 5);
  }
  // Simulate a crash mid-append: garbage after the durable records.
  {
    std::ofstream wal(dir + "/" + id + ".wal",
                      std::ios::binary | std::ios::app);
    // Length prefix claims 19 bytes; only a half-frame follows.
    const std::string garbage("\x13\x00\x00\x00garbage-half-frame", 22);
    wal.write(garbage.data(),
              static_cast<std::streamsize>(garbage.size()));
  }
  SessionManager recovered(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  EXPECT_EQ(recovered.durability_stats().torn_tails, 1u);
  ExpectSameLabels(recovered, id, labeled);
  // Appending after recovery lands at the trusted offset: a second
  // restart still sees exactly the acknowledged labels.
  auto more = LabelSome(recovered, id, 1);
  ASSERT_EQ(more.size(), 1u);
  labeled.insert(labeled.end(), more.begin(), more.end());
  EXPECT_EQ(recovered.PersistAllSessions(), 1u);

  SessionManager third(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(third.RecoverFromDisk().ok());
  ExpectSameLabels(third, id, labeled);
}

TEST(SessionManagerDurabilityTest, CreateIsDurableBeforeAck) {
  const std::string dir = ScratchDir("create");
  SessionManager manager(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(manager.RecoverFromDisk().ok());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  // The acknowledged create is already on disk, before any label.
  EXPECT_TRUE(fs::exists(dir + "/" + info->id + ".snap"));
}

TEST(SessionManagerDurabilityTest, DurableEvictionRestoresTransparently) {
  const std::string dir = ScratchDir("evict");
  FakeClock clock;
  SessionManagerOptions options = DurableOptions(dir);
  options.clock = &clock;
  SessionManager manager(options, TestTablePath());
  ASSERT_TRUE(manager.RecoverFromDisk().ok());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  auto labeled = LabelSome(manager, info->id, 5);

  clock.AdvanceSeconds(10.0);
  EXPECT_EQ(manager.EvictIdleOlderThan(5.0), 1u);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.evicted_sessions(), 1u);
  // No plain spill file appears — the durable snapshot is the spill.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == info->id + ".snap" || name == info->id + ".wal" ||
                name == "quarantine")
        << name;
  }
  ExpectSameLabels(manager, info->id, labeled);  // transparent restore
  EXPECT_EQ(manager.active_sessions(), 1u);
}

TEST(SessionManagerDurabilityTest, LabelFailsCleanlyWhenJournalBroken) {
  const std::string dir = ScratchDir("brokenwal");
  SessionManagerOptions options = DurableOptions(dir);
  options.durability_fsync = true;  // fsync failures need fsync enabled
  SessionManager manager(options, TestTablePath());
  ASSERT_TRUE(manager.RecoverFromDisk().ok());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());

  // Fail the journal fsync AND the repair snapshot: the label must be
  // rejected (the client is told the outcome is indeterminate).
  fault::FaultInjector injector(3);
  injector.SetProbability("wal.fsync_fail", 1.0);
  injector.SetProbability("snapshot.rename_fail", 1.0);
  size_t rejected_view = 0;
  {
    fault::ScopedFaultInjector scoped(&injector);
    auto batch = manager.Next(info->id);
    ASSERT_TRUE(batch.ok());
    rejected_view = batch->views[0];
    auto labeled = manager.Label(info->id, batch->views[0], 1.0);
    EXPECT_FALSE(labeled.ok());
  }
  // Faults healed: the next rotation repairs the journal and labeling
  // works again.
  auto batch = manager.Next(info->id);
  ASSERT_TRUE(batch.ok());
  auto labeled = manager.Label(info->id, rejected_view, 1.0);
  // The failed label stayed applied in memory (indeterminate outcome), so
  // relabeling answers AlreadyExists; a fresh view succeeds.
  EXPECT_TRUE(labeled.ok() || labeled.status().IsAlreadyExists());
}

TEST(SessionManagerDurabilityTest, RecoveryQuarantinesGarbageSnapshots) {
  const std::string dir = ScratchDir("garbage");
  std::string good_id;
  std::vector<std::pair<size_t, double>> labeled;
  {
    SessionManager manager(DurableOptions(dir), TestTablePath());
    ASSERT_TRUE(manager.RecoverFromDisk().ok());
    auto info = manager.Create(SmallSpec());
    ASSERT_TRUE(info.ok());
    good_id = info->id;
    labeled = LabelSome(manager, good_id, 3);
  }
  {
    std::ofstream bad(dir + "/zzzz.snap", std::ios::binary);
    bad << "not a session envelope at all";
  }
  SessionManager recovered(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  // The garbage snapshot is out of the way; the good session recovered.
  ExpectSameLabels(recovered, good_id, labeled);
  EXPECT_TRUE(recovered.Info("zzzz").status().IsNotFound());
  EXPECT_TRUE(fs::exists(dir + "/quarantine"));
  bool quarantined = false;
  for (const auto& entry : fs::directory_iterator(dir + "/quarantine")) {
    if (entry.path().filename().string().find("zzzz") != std::string::npos) {
      quarantined = true;
    }
  }
  EXPECT_TRUE(quarantined);
}

TEST(SessionManagerDurabilityTest, RecoverFromDiskIsIdempotent) {
  const std::string dir = ScratchDir("idem");
  std::string id;
  std::vector<std::pair<size_t, double>> labeled;
  {
    SessionManager manager(DurableOptions(dir), TestTablePath());
    ASSERT_TRUE(manager.RecoverFromDisk().ok());
    auto info = manager.Create(SmallSpec());
    ASSERT_TRUE(info.ok());
    id = info->id;
    labeled = LabelSome(manager, id, 5);
  }
  SessionManager recovered(DurableOptions(dir), TestTablePath());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  EXPECT_EQ(recovered.active_sessions() + recovered.evicted_sessions(), 1u);
  ExpectSameLabels(recovered, id, labeled);
}

}  // namespace
}  // namespace vs::serve
