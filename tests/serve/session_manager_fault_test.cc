/// Fault-injection regression tests for SessionManager's spill/restore
/// machinery.  These pin the two bugs PR 2's review found — the eviction
/// use-after-free and the lost-restore race — and verify the durability
/// contract the stress driver relies on: injected spill failures may delay
/// eviction or fail a single lookup, but never lose session state.

#include "serve/session_manager.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "data/generator.h"
#include "data/io.h"
#include "testing/fault_injection.h"

namespace vs::serve {
namespace {

const std::string& FaultTestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 300;
    options.seed = 11;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_fault_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

SessionManagerOptions FaultOptions(FakeClock* clock,
                                   const std::string& spill_tag) {
  SessionManagerOptions options;
  options.max_sessions = 8;
  options.session_ttl_seconds = 3600;  // tests evict explicitly
  options.spill_dir = ::testing::TempDir() + "serve_fault_" + spill_tag;
  options.clock = clock;
  return options;
}

CreateSpec FaultSpec() {
  CreateSpec spec;
  spec.options.k = 3;
  spec.options.seed = 5;
  return spec;
}

void LabelViews(SessionManager& manager, const std::string& id, int n) {
  for (int i = 0; i < n; ++i) {
    auto batch = manager.Next(id);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_FALSE(batch->views.empty());
    auto labeled =
        manager.Label(id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0);
    ASSERT_TRUE(labeled.ok()) << labeled.status().ToString();
  }
}

// A spill write that fails (ENOSPC) must abort the eviction: the session
// stays live and fully usable, and a later eviction succeeds once the
// fault clears.
TEST(SessionManagerFaultTest, EvictionAbortsWhenSpillWriteFails) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "enospc"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  LabelViews(manager, info->id, 4);

  fault::FaultInjector injector(1);
  injector.SetSchedule("session.spill_enospc", {1});
  fault::ScopedFaultInjector scoped(&injector);

  clock.AdvanceSeconds(10);
  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 0u);  // write failed: aborted
  EXPECT_EQ(manager.active_sessions(), 1u);
  auto still_there = manager.Info(info->id);
  ASSERT_TRUE(still_there.ok()) << still_there.status().ToString();
  EXPECT_EQ(still_there->num_labeled, 4u);

  // Fault exhausted (schedule hit 1 only): eviction now goes through and
  // the session restores transparently with its labels.
  clock.AdvanceSeconds(10);
  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  EXPECT_EQ(manager.active_sessions(), 0u);
  auto restored = manager.Info(info->id);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_labeled, 4u);
}

TEST(SessionManagerFaultTest, EvictionAbortsOnShortWrite) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "shortw"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok());
  LabelViews(manager, info->id, 3);

  fault::FaultInjector injector(1);
  injector.SetSchedule("session.spill_short_write", {1});
  fault::ScopedFaultInjector scoped(&injector);

  clock.AdvanceSeconds(10);
  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 0u);
  auto still_there = manager.Info(info->id);
  ASSERT_TRUE(still_there.ok());
  EXPECT_EQ(still_there->num_labeled, 3u);
}

// The lost-restore pin: a restore whose spill read fails must leave the
// spill entry in place, so the very next lookup can restore successfully.
TEST(SessionManagerFaultTest, FailedRestoreLeavesSessionRecoverable) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "readf"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok());
  LabelViews(manager, info->id, 5);
  clock.AdvanceSeconds(10);
  ASSERT_EQ(manager.EvictIdleOlderThan(0.0), 1u);

  fault::FaultInjector injector(1);
  injector.SetSchedule("session.spill_read", {1});
  fault::ScopedFaultInjector scoped(&injector);

  auto failed = manager.Info(info->id);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(failed.status().IsNotFound())
      << "a failed restore must not report the session as gone";

  auto recovered = manager.Info(info->id);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->num_labeled, 5u);
}

// A torn read (corrupted bytes in memory, intact file) errors on the
// first lookup and recovers on retry — state is never lost.
TEST(SessionManagerFaultTest, CorruptReadErrorsThenRecovers) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "corrupt"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok());
  LabelViews(manager, info->id, 4);
  clock.AdvanceSeconds(10);
  ASSERT_EQ(manager.EvictIdleOlderThan(0.0), 1u);

  fault::FaultInjector injector(1);
  injector.SetSchedule("session.spill_corrupt", {1});
  fault::ScopedFaultInjector scoped(&injector);

  EXPECT_FALSE(manager.Info(info->id).ok());
  auto recovered = manager.Info(info->id);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->num_labeled, 4u);
}

TEST(SessionManagerFaultTest, SessionIoRestoreFaultAlsoRecoverable) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "iorestore"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok());
  LabelViews(manager, info->id, 2);
  clock.AdvanceSeconds(10);
  ASSERT_EQ(manager.EvictIdleOlderThan(0.0), 1u);

  fault::FaultInjector injector(1);
  injector.SetSchedule("session_io.restore", {1});
  fault::ScopedFaultInjector scoped(&injector);

  EXPECT_FALSE(manager.Info(info->id).ok());
  auto recovered = manager.Info(info->id);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->num_labeled, 2u);
}

// The eviction use-after-free pin (PR 2 review bug 1): one thread uses a
// session while another evicts it as aggressively as possible.  Under
// TSan/ASan any touch of a freed Session turns this into a hard failure.
TEST(SessionManagerFaultTest, ConcurrentUseAndEvictionIsSafe) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "uafhammer"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok());
  const std::string id = info->id;

  std::atomic<bool> stop{false};
  std::thread evictor([&manager, &clock, &stop] {
    while (!stop.load()) {
      clock.AdvanceSeconds(10);
      manager.EvictIdleOlderThan(0.0);
    }
  });

  int labels = 0;
  for (int i = 0; i < 60; ++i) {
    auto batch = manager.Next(id);
    if (!batch.ok() || batch->views.empty()) continue;
    if (manager.Label(id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0).ok()) {
      ++labels;
    }
  }
  stop.store(true);
  evictor.join();

  auto final_info = manager.Info(id);
  ASSERT_TRUE(final_info.ok()) << final_info.status().ToString();
  EXPECT_EQ(final_info->num_labeled, static_cast<size_t>(labels));
}

// The full churn scenario the stress driver runs, shrunk to test size:
// several writer threads each own one session and label it while spill
// faults fire probabilistically and an eviction thread flushes everything
// it can.  After the faults are gone, every session must resolve with
// exactly the labels its owner got acknowledged.
TEST(SessionManagerFaultTest, ChurnUnderSpillFaultsLosesNothing) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "churn"),
                         FaultTestTablePath());

  fault::FaultInjector injector(20260805);
  injector.SetProbability("session.spill_enospc", 0.25);
  injector.SetProbability("session.spill_short_write", 0.25);
  injector.SetProbability("session.spill_read", 0.25);
  injector.SetProbability("session.spill_corrupt", 0.25);
  injector.SetProbability("session_io.save", 0.1);
  injector.SetProbability("session_io.restore", 0.1);

  constexpr int kWriters = 3;
  constexpr int kIterations = 40;
  std::vector<std::string> ids(kWriters);
  std::vector<size_t> acked(kWriters, 0);
  for (int w = 0; w < kWriters; ++w) {
    auto info = manager.Create(FaultSpec());
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ids[w] = info->id;
  }

  {
    fault::ScopedFaultInjector scoped(&injector);
    std::atomic<bool> stop{false};
    std::thread evictor([&manager, &clock, &stop] {
      while (!stop.load()) {
        clock.AdvanceSeconds(10);
        manager.EvictIdleOlderThan(0.0);
      }
    });
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&manager, &ids, &acked, w] {
        Rng rng(100 + static_cast<uint64_t>(w));
        for (int i = 0; i < kIterations; ++i) {
          auto batch = manager.Next(ids[static_cast<size_t>(w)]);
          if (!batch.ok() || batch->views.empty()) continue;
          const double label = rng.NextDouble() < 0.5 ? 1.0 : 0.0;
          if (manager
                  .Label(ids[static_cast<size_t>(w)], batch->views[0], label)
                  .ok()) {
            ++acked[static_cast<size_t>(w)];
          }
        }
      });
    }
    for (auto& t : writers) t.join();
    stop.store(true);
    evictor.join();
  }  // faults uninstalled

  for (int w = 0; w < kWriters; ++w) {
    auto info = manager.Info(ids[static_cast<size_t>(w)]);
    ASSERT_TRUE(info.ok())
        << "session lost: " << info.status().ToString();
    EXPECT_EQ(info->num_labeled, acked[static_cast<size_t>(w)])
        << "writer " << w;
  }
}

// Faults only fire while installed: the same manager behaves normally
// before and after the scoped window (guards against leaked state in the
// global injector pointer).
TEST(SessionManagerFaultTest, FaultsStopAtScopeExit) {
  FakeClock clock;
  SessionManager manager(FaultOptions(&clock, "scope"),
                         FaultTestTablePath());
  auto info = manager.Create(FaultSpec());
  ASSERT_TRUE(info.ok());
  {
    fault::FaultInjector injector(1);
    injector.SetProbability("session.spill_enospc", 1.0);
    fault::ScopedFaultInjector scoped(&injector);
    clock.AdvanceSeconds(10);
    EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 0u);
  }
  clock.AdvanceSeconds(10);
  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  EXPECT_TRUE(manager.Info(info->id).ok());
}

}  // namespace
}  // namespace vs::serve
