/// Deadline-propagation tests: the hop-decrement arithmetic, the serve
/// layer's expired-in-queue fast 504 and budget echo, the router's
/// decrement-and-forward (observable through the worker's
/// X-Deadline-Budget-Ms echo), and refinement slices stopping inside a
/// work/wall budget (the mechanism brownout healing runs under).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../core/core_test_util.h"
#include "cluster/router_app.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/refinement.h"
#include "data/generator.h"
#include "data/io.h"
#include "serve/app.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/session_manager.h"

namespace vs::serve {
namespace {

TEST(DecrementedDeadlineTest, HopDecrementArithmetic) {
  using cluster::DecrementedDeadlineMs;
  EXPECT_DOUBLE_EQ(DecrementedDeadlineMs(100.0, 30.0), 70.0);
  // A spent budget clamps to zero, never negative.
  EXPECT_DOUBLE_EQ(DecrementedDeadlineMs(100.0, 250.0), 0.0);
  EXPECT_DOUBLE_EQ(DecrementedDeadlineMs(100.0, 100.0), 0.0);
  // "No deadline" (0) stays no-deadline regardless of elapsed time.
  EXPECT_DOUBLE_EQ(DecrementedDeadlineMs(0.0, 50.0), 0.0);
  // Clock skew cannot mint budget.
  EXPECT_DOUBLE_EQ(DecrementedDeadlineMs(100.0, -5.0), 100.0);
}

TEST(DeadlineTest, RefinementStopsInsideUnitBudget) {
  // AfterUnitsAndSeconds is the slice the serve layer hands the refiner:
  // the unit cap bounds work, the wall cap honors the client's budget.
  // With a generous wall bound the unit budget binds deterministically.
  auto world = core::testutil::MakeMiniWorld(0.3);
  core::IncrementalRefiner refiner(world.matrix.get());
  const int64_t cost = world.matrix->RefineCostPerRow();
  Deadline deadline = Deadline::AfterUnitsAndSeconds(3 * cost, 1000.0);
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 3);
  EXPECT_FALSE(refiner.AllExact());
}

TEST(DeadlineTest, ExpiredWallBudgetRefinesNothing) {
  auto world = core::testutil::MakeMiniWorld(0.3);
  core::IncrementalRefiner refiner(world.matrix.get());
  Deadline deadline = Deadline::AfterUnitsAndSeconds(1'000'000, -1.0);
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_refined, 0);
}

// ---------------------------------------------------------------------------
// Serve layer: X-Deadline-Ms in, fast 504 or budget echo out.

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 300;
    options.seed = 19;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_deadline_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

HttpRequest Req(std::string method, const std::string& target,
                std::string body = "", std::string deadline_ms = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = target;
  const size_t q = target.find('?');
  request.path = q == std::string::npos ? target : target.substr(0, q);
  request.query = q == std::string::npos ? "" : target.substr(q + 1);
  request.body = std::move(body);
  if (!deadline_ms.empty()) {
    request.headers.emplace_back("x-deadline-ms", std::move(deadline_ms));
  }
  return request;
}

const std::string* Header(const HttpResponse& response,
                          const std::string& name) {
  for (const auto& [key, value] : response.extra_headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

class DeadlineServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SessionManagerOptions manager_options;
    manager_options.max_sessions = 16;
    manager_ = std::make_unique<SessionManager>(manager_options,
                                                TestTablePath());
    app_ = std::make_unique<ServeApp>(manager_.get());
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServeApp> app_;
};

TEST_F(DeadlineServeTest, GenerousDeadlineEchoesRemainingBudget) {
  HttpResponse created =
      app_->Handle(Req("POST", "/sessions", "{\"k\":3}", "60000"));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string* echoed = Header(created, "X-Deadline-Budget-Ms");
  ASSERT_NE(echoed, nullptr);
  const double budget = ParseDouble(*echoed).ValueOr(-1.0);
  EXPECT_GT(budget, 0.0);
  EXPECT_LE(budget, 60000.0);
}

TEST_F(DeadlineServeTest, ExpiredInQueueFailsFastWith504) {
  // 1 microsecond of budget (the smallest representable deadline):
  // expired before the handler runs, so the request dies in the dispatch
  // wrapper without touching the engine.
  HttpResponse response =
      app_->Handle(Req("POST", "/sessions", "{\"k\":3}", "0.001"));
  ASSERT_EQ(response.status, 504) << response.body;
  auto parsed = JsonValue::Parse(response.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code", ""), "TimedOut");
  EXPECT_EQ(manager_->active_sessions(), 0u);
}

TEST_F(DeadlineServeTest, UndeadlinedRequestsCarryNoBudgetHeader) {
  HttpResponse created = app_->Handle(Req("POST", "/sessions", "{\"k\":3}"));
  ASSERT_EQ(created.status, 201) << created.body;
  EXPECT_EQ(Header(created, "X-Deadline-Budget-Ms"), nullptr);
}

// ---------------------------------------------------------------------------
// Router: decrements the budget across the hop and fast-fails expired
// requests without dialing a worker.

class DeadlineRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SessionManagerOptions manager_options;
    manager_options.max_sessions = 16;
    manager_ = std::make_unique<SessionManager>(manager_options,
                                                TestTablePath());
    ServeAppOptions app_options;
    app_options.shard_name = "shard0";
    app_ = std::make_unique<ServeApp>(manager_.get(), app_options);
    HttpServerOptions server_options;
    server_options.port = 0;
    server_ = std::make_unique<HttpServer>(
        server_options,
        [this](const HttpRequest& request) { return app_->Handle(request); });
    ASSERT_TRUE(server_->Start().ok());
    cluster::ClusterRouterOptions options;
    options.shards.push_back({"shard0", "127.0.0.1", server_->port()});
    options.probe_interval_seconds = 0.0;
    router_ = std::make_unique<cluster::ClusterRouter>(options);
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Stop();
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<cluster::ClusterRouter> router_;
};

TEST_F(DeadlineRouterTest, DecrementsDeadlineAcrossTheHop) {
  HttpResponse created =
      router_->Handle(Req("POST", "/sessions", "{\"k\":3}", "60000"));
  ASSERT_EQ(created.status, 201) << created.body;
  // The worker echoes the deadline it received; strictly less than what
  // the client sent proves the router charged its own elapsed time.
  const std::string* echoed = Header(created, "X-Deadline-Budget-Ms");
  ASSERT_NE(echoed, nullptr);
  const double forwarded = ParseDouble(*echoed).ValueOr(-1.0);
  EXPECT_GT(forwarded, 0.0);
  EXPECT_LT(forwarded, 60000.0);
}

TEST_F(DeadlineRouterTest, ExpiredBudgetNeverDialsAWorker) {
  HttpResponse created = router_->Handle(Req("POST", "/sessions", "{\"k\":3}"));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string id =
      JsonValue::Parse(created.body)->GetString("id", "");
  ASSERT_FALSE(id.empty());

  HttpResponse expired = router_->Handle(
      Req("GET", "/sessions/" + id + "/next", "", "0.001"));
  ASSERT_EQ(expired.status, 504) << expired.body;
  auto parsed = JsonValue::Parse(expired.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code", ""), "TimedOut");
  EXPECT_GE(router_->deadline_rejects(), 1u);

  HttpResponse expired_create =
      router_->Handle(Req("POST", "/sessions", "{\"k\":3}", "0.001"));
  EXPECT_EQ(expired_create.status, 504) << expired_create.body;
  // Only the first, undeadlined create reached the worker.
  EXPECT_EQ(manager_->active_sessions(), 1u);
}

}  // namespace
}  // namespace vs::serve
