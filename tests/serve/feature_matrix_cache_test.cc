#include "serve/feature_matrix_cache.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "core/matrix_identity.h"
#include "core/view.h"
#include "data/generator.h"
#include "data/predicate.h"
#include "data/query.h"
#include "testing/fault_injection.h"

#include "../core/core_test_util.h"

namespace vs::serve {
namespace {

using core::FeatureMatrix;
using core::FeatureMatrixOptions;

/// A builder over the shared MiniWorld; counts invocations so tests can
/// assert single-flight behaviour.
struct CountingBuilder {
  explicit CountingBuilder(const core::testutil::MiniWorld& world,
                           double sample_rate = 1.0)
      : world(&world), sample_rate(sample_rate) {}

  vs::Result<FeatureMatrix> operator()() const {
    ++calls;
    FeatureMatrixOptions options;
    options.sample_rate = sample_rate;
    return FeatureMatrix::Build(world->table.get(), world->views,
                                world->query, world->registry.get(),
                                options);
  }

  const core::testutil::MiniWorld* world;
  double sample_rate;
  mutable std::atomic<int> calls{0};
};

TEST(FeatureMatrixCacheTest, MissBuildsThenHitsShareOneMatrix) {
  auto world = core::testutil::MakeMiniWorld();
  FeatureMatrixCache cache(FeatureMatrixCacheOptions{});
  CountingBuilder builder(world);

  auto first = cache.GetOrBuild("k1", std::ref(builder));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetOrBuild("k1", std::ref(builder));
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(builder.calls.load(), 1);
  EXPECT_EQ(first->get(), second->get());  // the same canonical matrix
  const FeatureMatrixCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, (*first)->ApproxBytes());
  EXPECT_GT(stats.bytes, 0u);
}

TEST(FeatureMatrixCacheTest, CachedMatrixBitIdenticalToFreshBuild) {
  auto world = core::testutil::MakeMiniWorld();
  FeatureMatrixCache cache(FeatureMatrixCacheOptions{});
  CountingBuilder builder(world);

  auto cached = cache.GetOrBuild("k1", std::ref(builder));
  ASSERT_TRUE(cached.ok());
  auto fresh = builder();
  ASSERT_TRUE(fresh.ok());

  ASSERT_EQ((*cached)->num_views(), fresh->num_views());
  ASSERT_EQ((*cached)->num_features(), fresh->num_features());
  // Bit-identical, not merely close: both are the same pure function of
  // the same inputs.
  EXPECT_EQ((*cached)->raw().data(), fresh->raw().data());
  EXPECT_EQ((*cached)->normalized().data(), fresh->normalized().data());
}

/// Property: across random sampled/exact builds, a hit is bit-identical
/// to a fresh build, and refinement through one session's COW copy never
/// changes another session's values.
TEST(FeatureMatrixCacheTest, PropertyHitsBitIdenticalAndCowIsolated) {
  vs::Rng rng(2026);
  for (int trial = 0; trial < 6; ++trial) {
    data::DiabetesOptions table_options;
    table_options.num_rows = 150 + rng.NextBounded(150);
    table_options.seed = 100 + trial;
    auto table_or = data::GenerateDiabetes(table_options);
    ASSERT_TRUE(table_or.ok());
    data::Table table = std::move(*table_or);
    auto views_or =
        core::EnumerateViews(table, core::ViewEnumerationOptions{});
    ASSERT_TRUE(views_or.ok());
    auto registry = core::UtilityFeatureRegistry::Default();
    const data::SelectionVector selection = table.AllRows();

    FeatureMatrixOptions options;
    options.sample_rate = trial % 2 == 0 ? 1.0 : 0.4;
    options.seed = 7 + trial;
    const std::string key = core::FeatureMatrixCacheKey(
        "prop", selection, *views_or, registry, options);

    FeatureMatrixCache cache(FeatureMatrixCacheOptions{});
    auto build = [&]() {
      return FeatureMatrix::Build(&table, *views_or, selection, &registry,
                                  options);
    };
    auto canonical = cache.GetOrBuild(key, build);
    ASSERT_TRUE(canonical.ok()) << canonical.status().ToString();
    auto hit = cache.GetOrBuild(key, build);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(canonical->get(), hit->get());

    auto fresh = build();
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ((*hit)->raw().data(), fresh->raw().data()) << "trial "
                                                         << trial;

    // Session A refines its COW copy; session B and the canonical matrix
    // must keep the pre-refinement bits.
    FeatureMatrix session_a = **hit;
    FeatureMatrix session_b = **hit;
    std::vector<size_t> rows;
    for (size_t i = 0; i < std::min<size_t>(4, session_a.num_views()); ++i) {
      rows.push_back(rng.NextBounded(session_a.num_views()));
    }
    ASSERT_TRUE(session_a.RefineRows(rows).ok());
    EXPECT_EQ(session_b.raw().data(), (*canonical)->raw().data());
    EXPECT_EQ((*canonical)->raw().data(), fresh->raw().data());
    EXPECT_TRUE(session_b.SharesStateWith(**canonical));
    if (options.sample_rate < 1.0) {
      EXPECT_FALSE(session_a.SharesStateWith(session_b));
    }
  }
}

TEST(FeatureMatrixCacheTest, SingleFlightUnderConcurrentMisses) {
  auto world = core::testutil::MakeMiniWorld();
  FeatureMatrixCache cache(FeatureMatrixCacheOptions{});
  std::atomic<int> builder_calls{0};
  const int kThreads = 8;

  auto build = [&]() -> vs::Result<FeatureMatrix> {
    ++builder_calls;
    // Widen the window so every other thread reaches the inflight wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    FeatureMatrixOptions options;
    return FeatureMatrix::Build(world.table.get(), world.views,
                                world.query, world.registry.get(), options);
  };

  std::vector<std::shared_ptr<const FeatureMatrix>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = cache.GetOrBuild("shared", build);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      results[t] = *result;
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(builder_calls.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  const FeatureMatrixCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflight_waits,
            static_cast<uint64_t>(kThreads - 1));
}

TEST(FeatureMatrixCacheTest, FakeClockTtlExpiry) {
  auto world = core::testutil::MakeMiniWorld();
  FakeClock clock(1'000'000);
  FeatureMatrixCacheOptions options;
  options.ttl_seconds = 10.0;
  options.clock = &clock;
  FeatureMatrixCache cache(options);
  CountingBuilder builder(world);

  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());
  clock.AdvanceSeconds(5.0);
  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());  // hit, touch
  EXPECT_EQ(cache.entries(), 1u);

  // 11 idle seconds later, any lookup expires "a" first.
  clock.AdvanceSeconds(11.0);
  ASSERT_TRUE(cache.GetOrBuild("b", std::ref(builder)).ok());
  EXPECT_EQ(cache.entries(), 1u);
  const FeatureMatrixCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);  // "a" then "b"
  EXPECT_EQ(stats.hits, 1u);

  // "a" was expired, so it rebuilds.
  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());
  EXPECT_EQ(builder.calls.load(), 3);
}

TEST(FeatureMatrixCacheTest, LruEvictionUnderEntryBudget) {
  auto world = core::testutil::MakeMiniWorld();
  FakeClock clock;
  FeatureMatrixCacheOptions options;
  options.max_entries = 2;
  options.clock = &clock;
  FeatureMatrixCache cache(options);
  CountingBuilder builder(world);

  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());
  clock.AdvanceSeconds(1.0);
  ASSERT_TRUE(cache.GetOrBuild("b", std::ref(builder)).ok());
  clock.AdvanceSeconds(1.0);
  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());  // touch "a"
  clock.AdvanceSeconds(1.0);
  // "b" is now least recently used and must be the victim.
  ASSERT_TRUE(cache.GetOrBuild("c", std::ref(builder)).ok());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());  // still hot
  EXPECT_EQ(builder.calls.load(), 3);                          // a, b, c
  ASSERT_TRUE(cache.GetOrBuild("b", std::ref(builder)).ok());  // rebuilt
  EXPECT_EQ(builder.calls.load(), 4);
}

TEST(FeatureMatrixCacheTest, ByteBudgetEvictionKeepsBytesBounded) {
  auto world = core::testutil::MakeMiniWorld();
  CountingBuilder probe(world);
  auto probe_matrix = probe();
  ASSERT_TRUE(probe_matrix.ok());
  const size_t one_matrix = probe_matrix->ApproxBytes();

  FakeClock clock;
  FeatureMatrixCacheOptions options;
  options.max_bytes = one_matrix * 2;  // room for two, not three
  options.clock = &clock;
  FeatureMatrixCache cache(options);
  CountingBuilder builder(world);

  for (const char* key : {"a", "b", "c"}) {
    ASSERT_TRUE(cache.GetOrBuild(key, std::ref(builder)).ok());
    clock.AdvanceSeconds(1.0);
  }
  EXPECT_LE(cache.bytes(), options.max_bytes);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(FeatureMatrixCacheTest, BuildFailureDoesNotPoisonKey) {
  auto world = core::testutil::MakeMiniWorld();
  FeatureMatrixCache cache(FeatureMatrixCacheOptions{});
  CountingBuilder builder(world);

  fault::FaultInjector injector(99);
  injector.SetSchedule("fmcache.build_fail", {1});
  fault::ScopedFaultInjector installed(&injector);

  auto failed = cache.GetOrBuild("k", std::ref(builder));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(builder.calls.load(), 0);  // fault fires before the builder
  EXPECT_EQ(cache.entries(), 0u);

  // The key is retryable: the next lookup builds and caches normally.
  auto retried = cache.GetOrBuild("k", std::ref(builder));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(builder.calls.load(), 1);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(FeatureMatrixCacheTest, BuildFailureMidSingleFlightDoesNotWedge) {
  auto world = core::testutil::MakeMiniWorld();
  FeatureMatrixCache cache(FeatureMatrixCacheOptions{});
  const int kThreads = 6;

  fault::FaultInjector injector(99);
  // The first leader's build fails; whichever waiter retakes leadership
  // succeeds, so every thread must come back with an answer.
  injector.SetSchedule("fmcache.build_fail", {1});
  fault::ScopedFaultInjector installed(&injector);

  std::atomic<int> builder_calls{0};
  auto build = [&]() -> vs::Result<FeatureMatrix> {
    ++builder_calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    FeatureMatrixOptions options;
    return FeatureMatrix::Build(world.table.get(), world.views,
                                world.query, world.registry.get(), options);
  };

  std::atomic<int> ok_count{0};
  std::atomic<int> failed_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto result = cache.GetOrBuild("k", build);
      if (result.ok()) {
        ++ok_count;
      } else {
        ++failed_count;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Exactly the faulted leader observes the failure; nobody deadlocks.
  EXPECT_EQ(failed_count.load(), 1);
  EXPECT_EQ(ok_count.load(), kThreads - 1);
  EXPECT_EQ(cache.entries(), 1u);
  // The canonical build ran at most a handful of times (leader retries),
  // never once per thread.
  EXPECT_GE(builder_calls.load(), 1);
  EXPECT_LE(builder_calls.load(), 2);
}

TEST(FeatureMatrixCacheTest, EvictDeferFaultNeverLoopsForever) {
  auto world = core::testutil::MakeMiniWorld();
  FakeClock clock;
  FeatureMatrixCacheOptions options;
  options.max_entries = 1;
  options.clock = &clock;
  FeatureMatrixCache cache(options);
  CountingBuilder builder(world);

  fault::FaultInjector injector(7);
  injector.SetProbability("fmcache.evict_defer", 1.0);
  fault::ScopedFaultInjector installed(&injector);

  ASSERT_TRUE(cache.GetOrBuild("a", std::ref(builder)).ok());
  clock.AdvanceSeconds(1.0);
  // Over budget, but every victim defers: the insert must still return
  // (temporarily holding 2 entries) instead of spinning.
  ASSERT_TRUE(cache.GetOrBuild("b", std::ref(builder)).ok());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // With the fault cleared the next insert shrinks back to budget.
  injector.ClearAll();
  clock.AdvanceSeconds(1.0);
  ASSERT_TRUE(cache.GetOrBuild("c", std::ref(builder)).ok());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(FeatureMatrixCacheTest, DisabledCacheBuildsPrivately) {
  auto world = core::testutil::MakeMiniWorld();
  FeatureMatrixCacheOptions options;
  options.max_entries = 0;
  FeatureMatrixCache cache(options);
  CountingBuilder builder(world);
  EXPECT_FALSE(cache.enabled());

  auto first = cache.GetOrBuild("k", std::ref(builder));
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild("k", std::ref(builder));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builder.calls.load(), 2);
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(FeatureMatrixCacheTest, EvictIdleAndClearKeepHandlesAlive) {
  auto world = core::testutil::MakeMiniWorld();
  FakeClock clock;
  FeatureMatrixCacheOptions options;
  options.clock = &clock;
  FeatureMatrixCache cache(options);
  CountingBuilder builder(world);

  auto held = cache.GetOrBuild("a", std::ref(builder));
  ASSERT_TRUE(held.ok());
  clock.AdvanceSeconds(100.0);
  ASSERT_TRUE(cache.GetOrBuild("b", std::ref(builder)).ok());

  EXPECT_EQ(cache.EvictIdleOlderThan(50.0), 1u);  // only "a" is idle
  EXPECT_EQ(cache.entries(), 1u);
  // The evicted matrix stays valid through the session's shared_ptr.
  EXPECT_GT((*held)->num_views(), 0u);
  EXPECT_TRUE(std::isfinite((*held)->raw()(0, 0)));

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

}  // namespace
}  // namespace vs::serve
