#include "serve/session_manager.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"

namespace vs::serve {
namespace {

/// Writes a small deterministic table once per process and returns its path.
const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 11;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "serve_mgr_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

SessionManagerOptions SmallOptions() {
  SessionManagerOptions options;
  options.max_sessions = 8;
  options.session_ttl_seconds = 3600;  // tests evict explicitly
  return options;
}

CreateSpec SmallSpec() {
  CreateSpec spec;
  spec.options.k = 3;
  spec.options.seed = 5;
  return spec;
}

/// Labels \p n batches of views alternately positive/negative.
void LabelSome(SessionManager& manager, const std::string& id, int n) {
  for (int i = 0; i < n; ++i) {
    auto batch = manager.Next(id);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_FALSE(batch->views.empty());
    auto labeled =
        manager.Label(id, batch->views[0], i % 2 == 0 ? 1.0 : 0.0);
    ASSERT_TRUE(labeled.ok()) << labeled.status().ToString();
  }
}

TEST(SessionManagerTest, LifecycleCreateNextLabelTopKDelete) {
  SessionManager manager(SmallOptions(), TestTablePath());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->id.empty());
  EXPECT_EQ(info->k, 3);
  EXPECT_EQ(info->num_labeled, 0u);
  EXPECT_TRUE(info->cold_start);
  EXPECT_GT(info->num_views, 0u);
  EXPECT_EQ(manager.active_sessions(), 1u);

  LabelSome(manager, info->id, 6);
  auto after = manager.Info(info->id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->num_labeled, 6u);

  auto topk = manager.TopK(info->id);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  EXPECT_EQ(topk->views.size(), 3u);
  EXPECT_EQ(topk->view_ids.size(), 3u);
  EXPECT_EQ(topk->scores.size(), 3u);

  EXPECT_TRUE(manager.Delete(info->id).ok());
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_TRUE(manager.Next(info->id).status().IsNotFound());
}

TEST(SessionManagerTest, UnknownIdsAreNotFound) {
  SessionManager manager(SmallOptions(), TestTablePath());
  EXPECT_TRUE(manager.Next("nope").status().IsNotFound());
  EXPECT_TRUE(manager.Label("nope", 0, 1.0).status().IsNotFound());
  EXPECT_TRUE(manager.TopK("nope").status().IsNotFound());
  EXPECT_TRUE(manager.Info("nope").status().IsNotFound());
  EXPECT_TRUE(manager.Delete("nope").IsNotFound());
}

TEST(SessionManagerTest, InvalidSpecsRejected) {
  SessionManager manager(SmallOptions(), TestTablePath());
  CreateSpec bad_k = SmallSpec();
  bad_k.options.k = 0;
  EXPECT_TRUE(manager.Create(bad_k).status().IsInvalidArgument());

  CreateSpec huge_k = SmallSpec();
  huge_k.options.k = 100000;
  EXPECT_TRUE(manager.Create(huge_k).status().IsInvalidArgument());

  CreateSpec bad_filter = SmallSpec();
  bad_filter.filter = "no_such_column > 5";
  EXPECT_FALSE(manager.Create(bad_filter).ok());

  CreateSpec bad_table = SmallSpec();
  bad_table.table_path = "/does/not/exist.vst";
  EXPECT_FALSE(manager.Create(bad_table).ok());
}

TEST(SessionManagerTest, SessionCapIsResourceExhausted) {
  SessionManagerOptions options = SmallOptions();
  options.max_sessions = 1;
  SessionManager manager(options, TestTablePath());
  auto first = manager.Create(SmallSpec());
  ASSERT_TRUE(first.ok());
  auto second = manager.Create(SmallSpec());
  EXPECT_TRUE(second.status().IsResourceExhausted());
  // Freeing the slot lets creation succeed again.
  ASSERT_TRUE(manager.Delete(first->id).ok());
  EXPECT_TRUE(manager.Create(SmallSpec()).ok());
}

TEST(SessionManagerTest, TableCacheIsShared) {
  SessionManager manager(SmallOptions(), TestTablePath());
  ASSERT_TRUE(manager.Create(SmallSpec()).ok());
  ASSERT_TRUE(manager.Create(SmallSpec()).ok());
  ASSERT_TRUE(manager.Create(SmallSpec()).ok());
  EXPECT_EQ(manager.cached_tables(), 1u);
  EXPECT_EQ(manager.active_sessions(), 3u);
}

TEST(SessionManagerTest, PreloadFailsFastOnBadTable) {
  SessionManager manager(SmallOptions(), "/does/not/exist.vst");
  EXPECT_FALSE(manager.PreloadDefaultTable().ok());
}

TEST(SessionManagerTest, EvictAndRestoreRoundTrips) {
  SessionManagerOptions options = SmallOptions();
  options.spill_dir = ::testing::TempDir() + "serve_mgr_spill";
  SessionManager manager(options, TestTablePath());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  LabelSome(manager, info->id, 6);
  auto topk_before = manager.TopK(info->id);
  ASSERT_TRUE(topk_before.ok());

  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.evicted_sessions(), 1u);

  // Any access transparently restores: same top-k, same label count.
  auto topk_after = manager.TopK(info->id);
  ASSERT_TRUE(topk_after.ok()) << topk_after.status().ToString();
  EXPECT_EQ(topk_after->views, topk_before->views);
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(manager.evicted_sessions(), 0u);

  auto restored_info = manager.Info(info->id);
  ASSERT_TRUE(restored_info.ok());
  EXPECT_EQ(restored_info->num_labeled, 6u);

  // The restored session keeps accepting labels.
  LabelSome(manager, info->id, 2);
  auto final_info = manager.Info(info->id);
  ASSERT_TRUE(final_info.ok());
  EXPECT_EQ(final_info->num_labeled, 8u);
}

TEST(SessionManagerTest, ConcurrentRestoresOfOneSessionAllSucceed) {
  // Many threads race to restore the same evicted session: the winner
  // inserts it and unlinks the spill file; losers must be handed the live
  // session rather than an IOError from the vanished file.
  SessionManagerOptions options = SmallOptions();
  options.spill_dir = ::testing::TempDir() + "serve_mgr_spill_race";
  SessionManager manager(options, TestTablePath());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  LabelSome(manager, info->id, 4);

  for (int round = 0; round < 4; ++round) {
    ASSERT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&manager, &failures, &info] {
        auto topk = manager.TopK(info->id);
        if (!topk.ok()) failures.fetch_add(1);
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "round " << round;
    EXPECT_EQ(manager.active_sessions(), 1u);
  }
}

TEST(SessionManagerTest, EvictWithoutSpillDirDropsForGood) {
  SessionManager manager(SmallOptions(), TestTablePath());  // no spill_dir
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  EXPECT_EQ(manager.evicted_sessions(), 0u);
  EXPECT_TRUE(manager.Next(info->id).status().IsNotFound());
}

TEST(SessionManagerTest, DeleteWorksOnSpilledSessions) {
  SessionManagerOptions options = SmallOptions();
  options.spill_dir = ::testing::TempDir() + "serve_mgr_spill2";
  SessionManager manager(options, TestTablePath());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  LabelSome(manager, info->id, 2);
  ASSERT_EQ(manager.EvictIdleOlderThan(0.0), 1u);
  EXPECT_TRUE(manager.Delete(info->id).ok());
  EXPECT_EQ(manager.evicted_sessions(), 0u);
  EXPECT_TRUE(manager.TopK(info->id).status().IsNotFound());
}

TEST(SessionManagerTest, RecentSessionsSurviveTtlSweep) {
  SessionManager manager(SmallOptions(), TestTablePath());
  auto info = manager.Create(SmallSpec());
  ASSERT_TRUE(info.ok());
  // A generous idle threshold must not evict a just-used session.
  EXPECT_EQ(manager.EvictIdleOlderThan(3600.0), 0u);
  EXPECT_EQ(manager.active_sessions(), 1u);
}

}  // namespace
}  // namespace vs::serve
