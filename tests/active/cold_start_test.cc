#include "active/cold_start.h"

#include <gtest/gtest.h>

namespace vs::active {
namespace {

/// 4 views x 2 features; view 1 tops feature 0, view 3 tops feature 1.
ml::Matrix TestFeatures() {
  return ml::Matrix{{0.1, 0.2}, {0.9, 0.1}, {0.3, 0.5}, {0.2, 0.8}};
}

TEST(ColdStartTest, SweepsFeatureToppersInOrder) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  vs::Rng rng(1);
  std::vector<size_t> unlabeled = {0, 1, 2, 3};

  auto first = policy.SelectNext(unlabeled, &rng);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);  // argmax of feature 0

  auto second = policy.SelectNext(unlabeled, &rng);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 3u);  // argmax of feature 1
}

TEST(ColdStartTest, SkipsLabeledViews) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  vs::Rng rng(2);
  std::vector<size_t> unlabeled = {0, 2, 3};  // view 1 already labeled
  auto pick = policy.SelectNext(unlabeled, &rng);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 2u);  // next-best on feature 0
}

TEST(ColdStartTest, DoneAfterBothClassesObserved) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  EXPECT_FALSE(policy.Done());
  policy.ReportLabel(0.9);  // positive
  EXPECT_FALSE(policy.Done());
  policy.ReportLabel(0.8);  // still only positive
  EXPECT_FALSE(policy.Done());
  policy.ReportLabel(0.1);  // negative
  EXPECT_TRUE(policy.Done());
}

TEST(ColdStartTest, ThresholdIsConfigurable) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features, 0.8);
  policy.ReportLabel(0.7);  // below 0.8 -> negative
  policy.ReportLabel(0.85);
  EXPECT_TRUE(policy.Done());
}

TEST(ColdStartTest, FallsBackToRandomAfterFeatureSweep) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  vs::Rng rng(3);
  std::vector<size_t> unlabeled = {0, 1, 2, 3};
  // Exhaust the two feature columns.
  ASSERT_TRUE(policy.SelectNext(unlabeled, &rng).ok());
  ASSERT_TRUE(policy.SelectNext(unlabeled, &rng).ok());
  EXPECT_TRUE(policy.ExhaustedFeatureSweep());
  // Subsequent picks are random but valid.
  for (int i = 0; i < 20; ++i) {
    auto pick = policy.SelectNext(unlabeled, &rng);
    ASSERT_TRUE(pick.ok());
    EXPECT_LT(*pick, 4u);
  }
}

TEST(ColdStartTest, ErrorsOnEmptyPool) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  vs::Rng rng(4);
  std::vector<size_t> empty;
  auto r = policy.SelectNext(empty, &rng);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(ColdStartTest, ErrorsOnOutOfRangeIndex) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  vs::Rng rng(5);
  std::vector<size_t> bad = {99};
  EXPECT_FALSE(policy.SelectNext(bad, &rng).ok());
}

TEST(ColdStartTest, ErrorsOnNullRng) {
  ml::Matrix features = TestFeatures();
  ColdStartPolicy policy(&features);
  std::vector<size_t> unlabeled = {0};
  EXPECT_FALSE(policy.SelectNext(unlabeled, nullptr).ok());
}

}  // namespace
}  // namespace vs::active
