#include "active/strategy.h"

#include <gtest/gtest.h>

#include "active/committee.h"
#include "active/entropy.h"
#include "active/margin.h"
#include "active/random_strategy.h"
#include "active/uncertainty.h"

namespace vs::active {
namespace {

/// Pool of 5 one-feature views with feature values 0.0, 0.25, ..., 1.0.
class StrategyTestFixture : public ::testing::Test {
 protected:
  StrategyTestFixture() : features_(5, 1), rng_(7) {
    for (size_t i = 0; i < 5; ++i) {
      features_(i, 0) = 0.25 * static_cast<double>(i);
    }
    unlabeled_ = {0, 1, 2, 3, 4};
  }

  QueryContext MakeContext() {
    QueryContext ctx;
    ctx.features = &features_;
    ctx.unlabeled = &unlabeled_;
    ctx.labeled = &labeled_;
    ctx.labels = &labels_;
    ctx.uncertainty_model = &uncertainty_;
    ctx.utility_model = &utility_;
    ctx.rng = &rng_;
    return ctx;
  }

  /// Trains the uncertainty model so p(y=1) increases with the feature and
  /// crosses 0.5 near feature value 0.5 (pool row 2).
  void TrainUncertaintyModel() {
    ml::Matrix x = {{0.0}, {0.25}, {0.75}, {1.0}};
    ml::Vector y = {0.0, 0.0, 1.0, 1.0};
    ASSERT_TRUE(uncertainty_.Fit(x, y).ok());
  }

  void TrainUtilityModel() {
    ml::Matrix x = {{0.0}, {1.0}};
    ASSERT_TRUE(utility_.Fit(x, {0.0, 1.0}).ok());
  }

  ml::Matrix features_;
  std::vector<size_t> unlabeled_;
  std::vector<size_t> labeled_;
  std::vector<double> labels_;
  ml::LogisticRegression uncertainty_;
  ml::LinearRegression utility_;
  vs::Rng rng_;
};

TEST_F(StrategyTestFixture, ValidateContextCatchesProblems) {
  QueryContext ctx = MakeContext();
  EXPECT_TRUE(ValidateContext(ctx).ok());

  QueryContext no_features = ctx;
  no_features.features = nullptr;
  EXPECT_FALSE(ValidateContext(no_features).ok());

  std::vector<size_t> empty;
  QueryContext no_candidates = ctx;
  no_candidates.unlabeled = &empty;
  EXPECT_FALSE(ValidateContext(no_candidates).ok());

  std::vector<size_t> oob = {99};
  QueryContext bad_index = ctx;
  bad_index.unlabeled = &oob;
  EXPECT_FALSE(ValidateContext(bad_index).ok());
}

TEST_F(StrategyTestFixture, RandomChoicePicksFromCandidates) {
  QueryContext ctx = MakeContext();
  for (int i = 0; i < 50; ++i) {
    auto pick = RandomChoice(ctx);
    ASSERT_TRUE(pick.ok());
    EXPECT_LT(*pick, 5u);
  }
}

TEST_F(StrategyTestFixture, LeastConfidencePicksClosestToHalf) {
  TrainUncertaintyModel();
  LeastConfidenceStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 2u);  // feature 0.5 is the decision boundary
}

TEST_F(StrategyTestFixture, LeastConfidenceFallsBackToRandomWhenUnfitted) {
  LeastConfidenceStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 5u);
}

TEST_F(StrategyTestFixture, LeastConfidenceRespectsCandidateSubset) {
  TrainUncertaintyModel();
  unlabeled_ = {0, 4};  // boundary view 2 not available
  LeastConfidenceStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_TRUE(*pick == 0 || *pick == 4);
}

TEST_F(StrategyTestFixture, MarginAgreesWithLeastConfidenceOnBinary) {
  TrainUncertaintyModel();
  LeastConfidenceStrategy lc;
  MarginStrategy margin;
  EXPECT_EQ(*lc.SelectNext(MakeContext()), *margin.SelectNext(MakeContext()));
}

TEST_F(StrategyTestFixture, EntropyAgreesWithLeastConfidenceOnBinary) {
  TrainUncertaintyModel();
  LeastConfidenceStrategy lc;
  EntropyStrategy entropy;
  EXPECT_EQ(*lc.SelectNext(MakeContext()),
            *entropy.SelectNext(MakeContext()));
}

TEST_F(StrategyTestFixture, GreedyPicksHighestPredictedUtility) {
  TrainUtilityModel();
  GreedyUtilityStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 4u);  // largest feature value
}

TEST_F(StrategyTestFixture, GreedyFallsBackWhenUnfitted) {
  GreedyUtilityStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 5u);
}

TEST_F(StrategyTestFixture, CommitteeNeedsBothClassesElseRandom) {
  QueryByCommitteeStrategy strategy;
  labeled_ = {0, 1};
  labels_ = {0.9, 0.8};  // both positive
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 5u);
}

TEST_F(StrategyTestFixture, CommitteeSelectsWithBothClasses) {
  QueryByCommitteeStrategy strategy;
  labeled_ = {0, 1, 3, 4};
  labels_ = {0.0, 0.1, 0.9, 1.0};
  unlabeled_ = {2};
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 2u);
}

TEST_F(StrategyTestFixture, CommitteeRejectsMisalignedLabels) {
  QueryByCommitteeStrategy strategy;
  labeled_ = {0, 1};
  labels_ = {0.5};  // misaligned
  EXPECT_FALSE(strategy.SelectNext(MakeContext()).ok());
}

TEST(StrategyFactoryTest, MakesEveryKnownStrategy) {
  for (const std::string& name : AllStrategyNames()) {
    auto strategy = MakeStrategy(name);
    ASSERT_TRUE(strategy.ok()) << name;
    EXPECT_EQ((*strategy)->name(), name);
  }
}

TEST(StrategyFactoryTest, UnknownNameRejected) {
  auto r = MakeStrategy("bogus");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(StrategyFactoryTest, CanonicalListHasSevenStrategies) {
  EXPECT_EQ(AllStrategyNames().size(), 7u);
}

}  // namespace
}  // namespace vs::active
