#include "active/density.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vs::active {
namespace {

class DensityTest : public ::testing::Test {
 protected:
  DensityTest() : features_(6, 1), rng_(5) {
    // A tight cluster near 0.5 plus one outlier at exactly 0.5 equidistant
    // from nothing: rows 0-4 cluster in [0.45, 0.55], row 5 is far away
    // but equally uncertain.
    features_(0, 0) = 0.45;
    features_(1, 0) = 0.48;
    features_(2, 0) = 0.50;
    features_(3, 0) = 0.52;
    features_(4, 0) = 0.55;
    features_(5, 0) = 0.50;  // placeholder, adjusted in tests
    unlabeled_ = {0, 1, 2, 3, 4, 5};
  }

  QueryContext MakeContext() {
    QueryContext ctx;
    ctx.features = &features_;
    ctx.unlabeled = &unlabeled_;
    ctx.labeled = &labeled_;
    ctx.labels = &labels_;
    ctx.uncertainty_model = &model_;
    ctx.rng = &rng_;
    return ctx;
  }

  void TrainModel() {
    ml::Matrix x = {{0.0}, {0.2}, {0.8}, {1.0}};
    ml::Vector y = {0.0, 0.0, 1.0, 1.0};
    ASSERT_TRUE(model_.Fit(x, y).ok());
  }

  ml::Matrix features_;
  std::vector<size_t> unlabeled_;
  std::vector<size_t> labeled_;
  std::vector<double> labels_;
  ml::LogisticRegression model_;
  vs::Rng rng_;
};

TEST_F(DensityTest, FallsBackToRandomWhenUnfitted) {
  DensityWeightedStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 6u);
}

TEST_F(DensityTest, PrefersDenseUncertainViewOverOutlier) {
  TrainModel();
  // Make row 5 as uncertain as row 2 (both at the 0.5 boundary) but far
  // from everything in a second feature... single feature: move row 5 to
  // the boundary but isolate it is impossible in 1-D; instead widen to
  // 2-D.
  ml::Matrix features(6, 2);
  for (size_t i = 0; i < 6; ++i) {
    features(i, 0) = features_(i, 0);
    features(i, 1) = i == 5 ? 10.0 : 0.0;  // outlier on the 2nd axis
  }
  features(5, 0) = 0.50;
  ml::Matrix x = {{0.0, 0.0}, {0.2, 0.0}, {0.8, 0.0}, {1.0, 0.0}};
  ml::Vector y = {0.0, 0.0, 1.0, 1.0};
  ml::LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());

  QueryContext ctx = MakeContext();
  ctx.features = &features;
  ctx.uncertainty_model = &model;
  DensityWeightedStrategy strategy;
  auto pick = strategy.SelectNext(ctx);
  ASSERT_TRUE(pick.ok());
  // Rows 2 and 5 have identical uncertainty, but 5 is the outlier: the
  // density weighting must avoid it.
  EXPECT_NE(*pick, 5u);
}

TEST_F(DensityTest, BetaZeroReducesToLeastConfidence) {
  TrainModel();
  DensityWeightedStrategy plain(0.0);
  auto pick = plain.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  // With beta = 0 the choice is the |p - 0.5| minimizer among candidates.
  double best_gap = 1e9;
  size_t expected = 0;
  for (size_t idx : unlabeled_) {
    const double p = *model_.PredictProba(features_.Row(idx));
    const double gap = std::fabs(p - 0.5);
    if (gap < best_gap) {
      best_gap = gap;
      expected = idx;
    }
  }
  EXPECT_EQ(*pick, expected);
}

TEST_F(DensityTest, RespectsCandidateSubset) {
  TrainModel();
  unlabeled_ = {0, 4};
  DensityWeightedStrategy strategy;
  auto pick = strategy.SelectNext(MakeContext());
  ASSERT_TRUE(pick.ok());
  EXPECT_TRUE(*pick == 0 || *pick == 4);
}

TEST_F(DensityTest, NameAndFactory) {
  DensityWeightedStrategy strategy;
  EXPECT_EQ(strategy.name(), "density");
  auto made = MakeStrategy("density");
  ASSERT_TRUE(made.ok());
  EXPECT_EQ((*made)->name(), "density");
}

}  // namespace
}  // namespace vs::active
