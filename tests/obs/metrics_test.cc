#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace vs::obs {
namespace {

TEST(Counter, IncrementAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.count", "a counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.5);
  g->Add(-1.25);
  EXPECT_DOUBLE_EQ(g->value(), 2.25);
}

TEST(Histogram, BucketsSumAndOverflow) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket le=1
  h->Observe(1.0);    // le=1 (bounds are inclusive upper bounds)
  h->Observe(5.0);    // le=10
  h->Observe(1000.0); // +Inf overflow
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 1006.5);
  MetricsSnapshot snap = registry.SnapshotAll();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  ASSERT_EQ(hs.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hs.counts[0], 2u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 0u);
  EXPECT_EQ(hs.counts[3], 1u);
}

TEST(Histogram, ConcurrentObservationsCountExactly) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.chist", {0.25, 0.5, 0.75});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<double>(t % 4) / 4.0 + 0.1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, HandlesAreIdempotentByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same.name", "first help wins");
  Counter* b = registry.GetCounter("same.name", "ignored");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("same.hist", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("same.hist", {9.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);  // first registration's bounds win
}

TEST(MetricsRegistry, DisabledUpdatesAreNoOps) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("off.count");
  Gauge* g = registry.GetGauge("off.gauge");
  Histogram* h = registry.GetHistogram("off.hist", {1.0});
  registry.set_enabled(false);
  c->Increment(7);
  g->Set(9.0);
  h->Observe(0.5);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  registry.set_enabled(true);
  c->Increment(7);
  EXPECT_EQ(c->value(), 7u);
}

TEST(MetricsRegistry, SnapshotIsDeterministicAndNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zz.last")->Increment(2);
  registry.GetCounter("aa.first")->Increment(1);
  registry.GetGauge("mid.gauge")->Set(0.5);
  const MetricsSnapshot s1 = registry.SnapshotAll();
  const MetricsSnapshot s2 = registry.SnapshotAll();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].name, "aa.first");
  EXPECT_EQ(s1.counters[1].name, "zz.last");
  EXPECT_EQ(ToJson(s1), ToJson(s2));
  EXPECT_EQ(ToPrometheusText(s1), ToPrometheusText(s2));
}

TEST(Exporters, JsonContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("exp.count", "help")->Increment(3);
  registry.GetGauge("exp.gauge")->Set(1.5);
  registry.GetHistogram("exp.hist", {1.0, 2.0})->Observe(1.5);
  const std::string json = ToJson(registry.SnapshotAll());
  EXPECT_NE(json.find("\"exp.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exp.gauge\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exp.hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
}

TEST(Exporters, PrometheusRenamesDotsAndAccumulatesBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("prom.hist", {1.0, 2.0}, "hist help");
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);
  const std::string text = ToPrometheusText(registry.SnapshotAll());
  EXPECT_NE(text.find("# TYPE prom_hist histogram"), std::string::npos)
      << text;
  // Cumulative counts: le=1 -> 1, le=2 -> 2, +Inf -> 3.
  EXPECT_NE(text.find("prom_hist_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_hist_bucket{le=\"2\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_hist_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_hist_count 3"), std::string::npos) << text;
}

TEST(Exporters, PrometheusEscapesHelpText) {
  MetricsRegistry registry;
  registry.GetCounter("esc.count", "line one\nline two \\ done")
      ->Increment();
  const std::string text = ToPrometheusText(registry.SnapshotAll());
  // The newline and backslash are escaped inside the HELP line...
  EXPECT_NE(text.find("# HELP esc_count line one\\nline two \\\\ done"),
            std::string::npos)
      << text;
  // ...so no physical line of the exposition starts with stray help text
  // (an unescaped newline would make "line two" a malformed sample line).
  EXPECT_EQ(text.find("\nline two"), std::string::npos) << text;
}

TEST(Exporters, PrometheusHistogramBucketsAreCumulativeMonotone) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("mono.hist", {1.0, 2.0, 4.0, 8.0});
  // Deliberately uneven fill, including empty interior buckets.
  h->Observe(0.5);
  h->Observe(0.9);
  h->Observe(3.0);
  h->Observe(100.0);
  h->Observe(200.0);
  h->Observe(300.0);
  const MetricsSnapshot snapshot = registry.SnapshotAll();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& hs = snapshot.histograms[0];
  // The snapshot stores per-bucket counts; the exporter accumulates.
  const std::string text = ToPrometheusText(snapshot);
  uint64_t cumulative = 0;
  std::vector<uint64_t> expected;
  for (uint64_t count : hs.counts) {
    cumulative += count;
    expected.push_back(cumulative);
  }
  EXPECT_NE(text.find("mono_hist_bucket{le=\"1\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mono_hist_bucket{le=\"2\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mono_hist_bucket{le=\"4\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mono_hist_bucket{le=\"8\"} 3"), std::string::npos)
      << text;
  // Each exported cumulative value is the running sum (never decreases).
  for (size_t i = 1; i < expected.size(); ++i) {
    EXPECT_GE(expected[i], expected[i - 1]);
  }
}

TEST(Exporters, PrometheusHistogramInfBucketEqualsCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("inf.hist", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  h->Observe(500.0);
  const std::string text = ToPrometheusText(registry.SnapshotAll());
  EXPECT_NE(text.find("inf_hist_bucket{le=\"+Inf\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("inf_hist_count 4"), std::string::npos) << text;
}

TEST(Histogram, BoundaryValuesLandInInclusiveUpperBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("edge.hist", {1.0, 2.0});
  // Bounds are inclusive upper bounds (Observe places v where v <= bound):
  // 1.0 lands in le=1, the next representable double above 1.0 in le=2,
  // 2.0 in le=2, and just above 2.0 overflows to +Inf.
  h->Observe(1.0);
  h->Observe(std::nextafter(1.0, 2.0));
  h->Observe(2.0);
  h->Observe(std::nextafter(2.0, 3.0));
  const MetricsSnapshot snapshot = registry.SnapshotAll();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& hs = snapshot.histograms[0];
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 1u);  // exactly 1.0
  EXPECT_EQ(hs.counts[1], 2u);  // (1.0, 2.0]
  EXPECT_EQ(hs.counts[2], 1u);  // (2.0, +Inf)
}

TEST(Buckets, GeneratorsProduceIncreasingBounds) {
  const auto exp = ExponentialBuckets(1e-6, 10.0, 5);
  ASSERT_EQ(exp.size(), 5u);
  const auto lin = LinearBuckets(0.0, 0.25, 5);
  ASSERT_EQ(lin.size(), 5u);
  for (size_t i = 1; i < exp.size(); ++i) EXPECT_GT(exp[i], exp[i - 1]);
  for (size_t i = 1; i < lin.size(); ++i) EXPECT_GT(lin[i], lin[i - 1]);
  const auto latency = DefaultLatencyBuckets();
  ASSERT_FALSE(latency.empty());
  EXPECT_LT(latency.front(), 1e-5);
  EXPECT_GT(latency.back(), 10.0);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace vs::obs
