#include "obs/request_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

namespace vs::obs {
namespace {

TEST(RequestContext, NoContextInstalledByDefault) {
  EXPECT_EQ(CurrentRequestContext(), nullptr);
}

TEST(RequestContext, StageTimerIsInertWithoutContext) {
  // The disabled-path contract: no context installed, no crash, nothing
  // recorded anywhere a later context could see.
  { StageTimer timer("session_manager.label"); }
  EXPECT_EQ(CurrentRequestContext(), nullptr);
}

TEST(RequestContext, ScopedInstallRestoresPrevious) {
  RequestContext outer("id-outer", "GET", "/a");
  RequestContext inner("id-inner", "GET", "/b");
  {
    ScopedRequestContext scoped_outer(&outer);
    EXPECT_EQ(CurrentRequestContext(), &outer);
    {
      ScopedRequestContext scoped_inner(&inner);
      EXPECT_EQ(CurrentRequestContext(), &inner);
    }
    EXPECT_EQ(CurrentRequestContext(), &outer);
  }
  EXPECT_EQ(CurrentRequestContext(), nullptr);
}

TEST(RequestContext, ContextIsThreadLocal) {
  RequestContext context("id", "GET", "/x");
  ScopedRequestContext scoped(&context);
  ASSERT_EQ(CurrentRequestContext(), &context);
  std::thread other([] { EXPECT_EQ(CurrentRequestContext(), nullptr); });
  other.join();
}

TEST(RequestContext, StageTimerRecordsIntoCurrentContext) {
  RequestContext context("id", "POST", "/sessions");
  {
    ScopedRequestContext scoped(&context);
    StageTimer timer("http.dispatch");
    EXPECT_STREQ(context.current_stage(), "http.dispatch");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(context.current_stage(), nullptr);
  const std::vector<StageRecord> stages = context.stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_STREQ(stages[0].stage, "http.dispatch");
  EXPECT_GE(stages[0].start_us, 0);
  EXPECT_GT(stages[0].duration_us, 0);
}

TEST(RequestContext, NestedStagesRestoreParentAndRecordBoth) {
  RequestContext context("id", "POST", "/sessions/s/label");
  {
    ScopedRequestContext scoped(&context);
    StageTimer outer("session_manager.label");
    {
      StageTimer inner("durability.wal_append");
      EXPECT_STREQ(context.current_stage(), "durability.wal_append");
    }
    // The parent stage is current again once the nested span closes.
    EXPECT_STREQ(context.current_stage(), "session_manager.label");
  }
  const std::vector<StageRecord> stages = context.stages();
  ASSERT_EQ(stages.size(), 2u);
  // Completion order: the inner span closes first.
  EXPECT_STREQ(stages[0].stage, "durability.wal_append");
  EXPECT_STREQ(stages[1].stage, "session_manager.label");
  // The outer span's duration includes the inner one.
  EXPECT_GE(stages[1].duration_us, stages[0].duration_us);
}

TEST(RequestContext, EndpointIsSettableAndReadable) {
  RequestContext context("id", "GET", "/sessions/s/next");
  EXPECT_EQ(context.endpoint(), "");
  context.set_endpoint("next");
  EXPECT_EQ(context.endpoint(), "next");
}

TEST(InflightRegistry, RegisterSnapshotUnregister) {
  InflightRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  auto context =
      std::make_shared<RequestContext>("req-7", "GET", "/sessions/s/topk");
  registry.Register(context);
  EXPECT_EQ(registry.size(), 1u);

  std::vector<InflightRequest> rows = registry.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].id, "req-7");
  EXPECT_EQ(rows[0].method, "GET");
  EXPECT_EQ(rows[0].path, "/sessions/s/topk");
  EXPECT_EQ(rows[0].endpoint, "-");  // not yet dispatched
  EXPECT_GE(rows[0].age_seconds, 0.0);

  context->set_endpoint("topk");
  context->set_current_stage("session_manager.topk");
  rows = registry.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].endpoint, "topk");
  EXPECT_STREQ(rows[0].stage, "session_manager.topk");

  registry.Unregister(context.get());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(InflightRegistry, SnapshotFromAnotherThreadSeesLiveStage) {
  // The /statusz use case: one thread serves (and is mid-stage), another
  // thread snapshots.
  InflightRegistry registry;
  auto context = std::make_shared<RequestContext>("req-9", "POST", "/x");
  registry.Register(context);
  context->set_current_stage("fmcache.build");
  std::thread reader([&registry] {
    std::vector<InflightRequest> rows = registry.Snapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_STREQ(rows[0].stage, "fmcache.build");
  });
  reader.join();
  registry.Unregister(context.get());
}

}  // namespace
}  // namespace vs::obs
