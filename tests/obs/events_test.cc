#include "obs/events.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "../core/core_test_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "core/refinement.h"
#include "core/seeker.h"

namespace vs::obs {
namespace {

TEST(Event, SerializesFieldsInInsertionOrder) {
  Event e("demo");
  e.SetInt("a", 3)
      .SetNum("b", 0.5)
      .SetStr("c", "x\"y")
      .SetBool("d", true)
      .SetIntList("e", {1, 2})
      .SetNumList("f", {0.25});
  EXPECT_EQ(e.type(), "demo");
  EXPECT_EQ(e.ToJson(),
            "{\"type\":\"demo\",\"a\":3,\"b\":0.5,\"c\":\"x\\\"y\","
            "\"d\":true,\"e\":[1,2],\"f\":[0.25]}");
}

TEST(JsonlFileSinkTest, StampsSeqAndTimestampPerLine) {
  const std::string path =
      ::testing::TempDir() + "/vs_events_sink_test.jsonl";
  {
    auto sink = JsonlFileSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    Event a("first");
    a.SetInt("v", 1);
    (*sink)->Emit(a);
    Event b("second");
    (*sink)->Emit(b);
    (*sink)->Flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  const std::string content(buf, n);
  const auto lines = Split(content, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"seq\":0,\"t_us\":", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("\"type\":\"first\",\"v\":1}"),
            std::string::npos) << lines[0];
  EXPECT_EQ(lines[1].rfind("{\"seq\":1,\"t_us\":", 0), 0u) << lines[1];
}

// --- Scripted deterministic session --------------------------------------

/// Labels views by a fixed rule of their own (normalized) features, so the
/// whole session is a pure function of the seed.
double ScriptedLabel(const core::FeatureMatrix& matrix, size_t view) {
  return matrix.NormalizedRow(view)[0] >= 0.5 ? 0.9 : 0.1;
}

/// Runs `iterations` labeling rounds against `seeker`, recommending after
/// each, and returns the final top-k.
std::vector<size_t> RunScriptedSession(core::ViewSeeker* seeker,
                                       const core::FeatureMatrix& matrix,
                                       int iterations) {
  std::vector<size_t> topk;
  for (int i = 0; i < iterations; ++i) {
    auto queries = seeker->NextQueries();
    EXPECT_TRUE(queries.ok()) << queries.status().ToString();
    for (size_t q : *queries) {
      EXPECT_TRUE(seeker->SubmitLabel(q, ScriptedLabel(matrix, q)).ok());
    }
    auto rec = seeker->RecommendTopK();
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    topk = *rec;
  }
  return topk;
}

core::ViewSeeker MakeScriptedSeeker(const core::FeatureMatrix* matrix,
                                    EventSink* sink) {
  core::ViewSeekerOptions options;
  options.k = 3;
  options.seed = 20240807;
  auto seeker = core::ViewSeeker::Make(matrix, options);
  EXPECT_TRUE(seeker.ok());
  seeker->SetEventSink(sink);
  return std::move(*seeker);
}

/// Top-level keys of a brace-less JSON fragment, in order.
std::vector<std::string> ExtractKeys(const std::string& fields_json) {
  std::vector<std::string> keys;
  int bracket_depth = 0;
  bool in_string = false;
  std::string current;
  for (size_t i = 0; i < fields_json.size(); ++i) {
    const char c = fields_json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        // A key is a top-level string immediately followed by ':'.
        if (bracket_depth == 0 && i + 1 < fields_json.size() &&
            fields_json[i + 1] == ':') {
          keys.push_back(current);
        }
      } else {
        current += c;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current.clear();
    } else if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
    }
  }
  return keys;
}

std::string JoinKeys(const std::vector<std::string>& keys) {
  return Join(keys, " ");
}

TEST(SessionJournal, GoldenEventSchemaFromScriptedSession) {
  auto world = core::testutil::MakeMiniWorld();
  VectorEventSink sink;
  core::ViewSeeker seeker = MakeScriptedSeeker(world.matrix.get(), &sink);
  RunScriptedSession(&seeker, *world.matrix, 6);

  const auto events = sink.events();
  ASSERT_GT(events.size(), 10u);

  // The journal's schema: per event type, the exact field set and order.
  EXPECT_EQ(events[0].type(), "session_start");
  EXPECT_EQ(JoinKeys(ExtractKeys(events[0].fields_json())),
            "type k strategy views_per_iteration positive_threshold seed "
            "num_views num_features num_labeled");
  bool saw_cold_pick = false;
  bool saw_query = false;
  bool saw_label = false;
  bool saw_refit = false;
  bool saw_topk = false;
  for (const Event& e : events) {
    if (e.type() == "cold_start_pick") {
      saw_cold_pick = true;
      EXPECT_EQ(JoinKeys(ExtractKeys(e.fields_json())),
                "type iteration view view_id");
    } else if (e.type() == "query_issued") {
      saw_query = true;
      EXPECT_EQ(JoinKeys(ExtractKeys(e.fields_json())),
                "type iteration view view_id phase");
    } else if (e.type() == "label_received") {
      saw_label = true;
      EXPECT_EQ(JoinKeys(ExtractKeys(e.fields_json())),
                "type view label num_labeled");
    } else if (e.type() == "estimator_refit") {
      saw_refit = true;
      EXPECT_EQ(JoinKeys(ExtractKeys(e.fields_json())),
                "type num_labels coefficients intercept "
                "uncertainty_fitted");
    } else if (e.type() == "topk_change") {
      saw_topk = true;
      EXPECT_EQ(JoinKeys(ExtractKeys(e.fields_json())),
                "type num_labeled topk");
    }
  }
  EXPECT_TRUE(saw_cold_pick);
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_label);
  EXPECT_TRUE(saw_refit);
  EXPECT_TRUE(saw_topk);
}

TEST(SessionJournal, ScriptedSessionJournalIsDeterministic) {
  auto world = core::testutil::MakeMiniWorld();
  VectorEventSink first;
  VectorEventSink second;
  {
    core::ViewSeeker seeker = MakeScriptedSeeker(world.matrix.get(), &first);
    RunScriptedSession(&seeker, *world.matrix, 6);
  }
  {
    core::ViewSeeker seeker =
        MakeScriptedSeeker(world.matrix.get(), &second);
    RunScriptedSession(&seeker, *world.matrix, 6);
  }
  const auto a = first.events();
  const auto b = second.events();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fields_json(), b[i].fields_json()) << "event " << i;
  }
}

TEST(SessionJournal, RefinementPassEventUnderUnitDeadline) {
  auto world = core::testutil::MakeMiniWorld(/*sample_rate=*/0.5);
  ASSERT_FALSE(world.matrix->AllExact());
  VectorEventSink sink;
  core::IncrementalRefiner refiner(world.matrix.get());
  refiner.SetEventSink(&sink);
  // Budget exactly two rows of work: deterministic rows_refined and full
  // deadline utilization.
  Deadline deadline =
      Deadline::AfterUnits(2 * world.matrix->RefineCostPerRow());
  auto stats = refiner.RefineBatch({}, &deadline);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_refined, 2);
  EXPECT_DOUBLE_EQ(stats->deadline_utilization, 1.0);

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type(), "refinement_pass");
  EXPECT_EQ(JoinKeys(ExtractKeys(events[0].fields_json())),
            "type rows_refined rows_pruned deadline_utilization all_exact");
  EXPECT_NE(events[0].fields_json().find("\"rows_refined\":2"),
            std::string::npos);
  EXPECT_NE(events[0].fields_json().find("\"deadline_utilization\":1"),
            std::string::npos);
}

// --- Replay: refit events reproduce the live top-k ------------------------

/// Pulls `"key":[...]` number lists / scalars out of a refit event.
std::vector<double> ParseNumList(const std::string& json,
                                 const std::string& key) {
  const std::string marker = "\"" + key + "\":[";
  const size_t start = json.find(marker);
  EXPECT_NE(start, std::string::npos) << json;
  const size_t open = start + marker.size();
  const size_t close = json.find(']', open);
  std::vector<double> values;
  for (const std::string& tok :
       Split(json.substr(open, close - open), ',')) {
    values.push_back(*ParseDouble(tok));
  }
  return values;
}

double ParseNumField(const std::string& json, const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  const size_t start = json.find(marker);
  EXPECT_NE(start, std::string::npos) << json;
  size_t end = start + marker.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  return *ParseDouble(json.substr(start + marker.size(),
                                  end - start - marker.size()));
}

TEST(SessionJournal, RefitEventsReplayToSameTopK) {
  auto world = core::testutil::MakeMiniWorld();
  VectorEventSink sink;
  core::ViewSeeker seeker = MakeScriptedSeeker(world.matrix.get(), &sink);
  const std::vector<size_t> live_topk =
      RunScriptedSession(&seeker, *world.matrix, 8);
  ASSERT_FALSE(live_topk.empty());

  // The last estimator_refit carries the final model; applying it to the
  // normalized feature matrix must reproduce the live recommendation.
  std::string last_refit;
  for (const Event& e : sink.events()) {
    if (e.type() == "estimator_refit") last_refit = e.fields_json();
  }
  ASSERT_FALSE(last_refit.empty());
  const std::vector<double> coefficients =
      ParseNumList(last_refit, "coefficients");
  const double intercept = ParseNumField(last_refit, "intercept");
  ASSERT_EQ(coefficients.size(), world.matrix->num_features());

  std::vector<double> scores(world.matrix->num_views(), 0.0);
  for (size_t v = 0; v < world.matrix->num_views(); ++v) {
    const ml::Vector row = world.matrix->NormalizedRow(v);
    double s = intercept;
    for (size_t j = 0; j < row.size(); ++j) s += coefficients[j] * row[j];
    scores[v] = s;
  }
  EXPECT_EQ(core::TopKIndices(scores, live_topk.size()), live_topk);
}

}  // namespace
}  // namespace vs::obs
