#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vs::obs {
namespace {

TraceEvent MakeEvent(const std::string& name, int64_t start_us) {
  TraceEvent e;
  e.name = name;
  e.start_us = start_us;
  e.duration_us = 1;
  e.thread_id = CurrentThreadId();
  return e;
}

TEST(TraceCollector, RecordsAndSnapshotsInOrder) {
  TraceCollector collector(8);
  collector.Record(MakeEvent("a", 1));
  collector.Record(MakeEvent("b", 2));
  const auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceCollector, RingOverflowDropsOldestFirst) {
  TraceCollector collector(3);
  for (int i = 0; i < 5; ++i) {
    collector.Record(MakeEvent("e" + std::to_string(i), i));
  }
  EXPECT_EQ(collector.size(), 3u);
  EXPECT_EQ(collector.dropped(), 2u);
  const auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // The two oldest (e0, e1) were overwritten; the rest stay ordered.
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
}

TEST(TraceCollector, ClearResetsRetainedEvents) {
  TraceCollector collector(4);
  collector.Record(MakeEvent("x", 1));
  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(ScopedSpan, RecordsNestedParentage) {
  TraceCollector collector(16);
  {
    ScopedSpan outer("outer", &collector);
    ASSERT_NE(outer.id(), 0u);
    {
      ScopedSpan inner("inner", &collector);
      EXPECT_NE(inner.id(), outer.id());
    }
  }
  const auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on destruction: inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
}

TEST(ScopedSpan, SiblingsShareTheParent) {
  TraceCollector collector(16);
  {
    ScopedSpan outer("outer", &collector);
    { ScopedSpan a("a", &collector); }
    { ScopedSpan b("b", &collector); }
  }
  const auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[0].parent_id, events[2].id);
  EXPECT_EQ(events[1].parent_id, events[2].id);
}

TEST(ScopedSpan, DisabledCollectorRecordsNothing) {
  TraceCollector collector(16);
  collector.set_enabled(false);
  {
    ScopedSpan span("ignored", &collector);
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(collector.size(), 0u);
}

TEST(ScopedSpan, ThreadsGetDistinctThreadIds) {
  TraceCollector collector(16);
  { ScopedSpan span("main-thread", &collector); }
  std::thread other([&collector] {
    ScopedSpan span("other-thread", &collector);
  });
  other.join();
  const auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
  // A span on a new thread has no parent from the main thread.
  EXPECT_EQ(events[1].parent_id, 0u);
}

TEST(ChromeTrace, JsonContainsCompleteEvents) {
  TraceCollector collector(16);
  {
    ScopedSpan outer("Build", &collector);
    { ScopedSpan inner("Scan", &collector); }
  }
  const std::string json = collector.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"Build\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"Scan\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":"), std::string::npos) << json;
  // Valid JSON object braces at both ends.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ChromeTrace, ConcurrentSpansAllLand) {
  TraceCollector collector(4096);
  constexpr int kThreads = 4;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("work", &collector);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collector.size(),
            static_cast<size_t>(kThreads) * kSpans);
  EXPECT_EQ(collector.dropped(), 0u);
}

}  // namespace
}  // namespace vs::obs
