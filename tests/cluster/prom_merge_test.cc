#include "cluster/prom_merge.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace vs::cluster {
namespace {

/// True iff `line` appears exactly once in `text` as a full line.
int CountLine(const std::string& text, const std::string& line) {
  int count = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (text.compare(start, end - start, line) == 0) ++count;
    if (end == text.size()) break;
    start = end + 1;
  }
  return count;
}

TEST(PromMergeTest, EmptyInput) {
  EXPECT_EQ(MergePrometheusExpositions({}), "");
  EXPECT_EQ(MergePrometheusExpositions({""}), "");
}

TEST(PromMergeTest, SingleExpositionPassesThroughSemantically) {
  const std::string page =
      "# HELP serve_requests total\n"
      "# TYPE serve_requests counter\n"
      "serve_requests 7\n";
  const std::string merged = MergePrometheusExpositions({page});
  EXPECT_EQ(CountLine(merged, "# TYPE serve_requests counter"), 1);
  EXPECT_EQ(CountLine(merged, "serve_requests 7"), 1);
}

TEST(PromMergeTest, SumsIdenticalSeriesAcrossShards) {
  const std::string a =
      "# HELP serve_requests total\n"
      "# TYPE serve_requests counter\n"
      "serve_requests 7\n";
  const std::string b =
      "# HELP serve_requests total\n"
      "# TYPE serve_requests counter\n"
      "serve_requests 5\n";
  const std::string merged = MergePrometheusExpositions({a, b});
  // One family header (duplicate TYPE lines fail promcheck), one summed
  // sample.
  EXPECT_EQ(CountLine(merged, "# TYPE serve_requests counter"), 1);
  EXPECT_EQ(CountLine(merged, "serve_requests 12"), 1);
  EXPECT_EQ(CountLine(merged, "serve_requests 7"), 0);
}

TEST(PromMergeTest, DistinctLabelSetsStaySeparate) {
  const std::string a =
      "# TYPE http_responses counter\n"
      "http_responses{code=\"200\"} 3\n";
  const std::string b =
      "# TYPE http_responses counter\n"
      "http_responses{code=\"200\"} 4\n"
      "http_responses{code=\"503\"} 1\n";
  const std::string merged = MergePrometheusExpositions({a, b});
  EXPECT_EQ(CountLine(merged, "http_responses{code=\"200\"} 7"), 1);
  EXPECT_EQ(CountLine(merged, "http_responses{code=\"503\"} 1"), 1);
}

/// Same binary on every shard means same bucket bounds, so bucket-wise
/// summation preserves cumulativity — the promcheck invariant.
TEST(PromMergeTest, HistogramsStayCumulative) {
  const std::string a =
      "# TYPE latency histogram\n"
      "latency_bucket{le=\"0.1\"} 2\n"
      "latency_bucket{le=\"1\"} 5\n"
      "latency_bucket{le=\"+Inf\"} 6\n"
      "latency_sum 3.5\n"
      "latency_count 6\n";
  const std::string b =
      "# TYPE latency histogram\n"
      "latency_bucket{le=\"0.1\"} 1\n"
      "latency_bucket{le=\"1\"} 1\n"
      "latency_bucket{le=\"+Inf\"} 4\n"
      "latency_sum 9.25\n"
      "latency_count 4\n";
  const std::string merged = MergePrometheusExpositions({a, b});
  EXPECT_EQ(CountLine(merged, "latency_bucket{le=\"0.1\"} 3"), 1);
  EXPECT_EQ(CountLine(merged, "latency_bucket{le=\"1\"} 6"), 1);
  EXPECT_EQ(CountLine(merged, "latency_bucket{le=\"+Inf\"} 10"), 1);
  EXPECT_EQ(CountLine(merged, "latency_sum 12.75"), 1);
  EXPECT_EQ(CountLine(merged, "latency_count 10"), 1);
  EXPECT_EQ(CountLine(merged, "# TYPE latency histogram"), 1);
  // _bucket/_sum/_count fold into the base family — no synthetic
  // families with their own headers.
  EXPECT_EQ(CountLine(merged, "# TYPE latency_bucket histogram"), 0);
}

TEST(PromMergeTest, BuildInfoDedupesInsteadOfSumming) {
  const std::string page =
      "# TYPE viewseeker_build_info gauge\n"
      "viewseeker_build_info{version=\"1.0.0\"} 1\n";
  const std::string merged = MergePrometheusExpositions({page, page, page});
  EXPECT_EQ(CountLine(merged, "viewseeker_build_info{version=\"1.0.0\"} 1"),
            1);
}

TEST(PromMergeTest, FirstHelpWins) {
  const std::string a =
      "# HELP m first help\n"
      "# TYPE m counter\n"
      "m 1\n";
  const std::string b =
      "# HELP m second help\n"
      "# TYPE m counter\n"
      "m 1\n";
  const std::string merged = MergePrometheusExpositions({a, b});
  EXPECT_EQ(CountLine(merged, "# HELP m first help"), 1);
  EXPECT_EQ(CountLine(merged, "# HELP m second help"), 0);
  EXPECT_EQ(CountLine(merged, "m 2"), 1);
}

TEST(PromMergeTest, FamiliesOnlyInOneShardSurvive) {
  const std::string a =
      "# TYPE only_a counter\n"
      "only_a 1\n";
  const std::string b =
      "# TYPE only_b counter\n"
      "only_b 2\n";
  const std::string merged = MergePrometheusExpositions({a, b});
  EXPECT_EQ(CountLine(merged, "only_a 1"), 1);
  EXPECT_EQ(CountLine(merged, "only_b 2"), 1);
}

TEST(PromMergeTest, LabelValuesMayContainBraces) {
  // The label-block scanner must not split on a '}' inside a quoted
  // value.
  const std::string page =
      "# TYPE weird counter\n"
      "weird{q=\"a}b\"} 2\n";
  const std::string merged = MergePrometheusExpositions({page, page});
  EXPECT_EQ(CountLine(merged, "weird{q=\"a}b\"} 4"), 1);
}

TEST(PromMergeTest, UnparseableLinesPassThrough) {
  const std::string page =
      "# TYPE good counter\n"
      "good 1\n"
      "this is not a sample line\n";
  const std::string merged = MergePrometheusExpositions({page});
  EXPECT_EQ(CountLine(merged, "good 1"), 1);
  EXPECT_EQ(CountLine(merged, "this is not a sample line"), 1);
}

}  // namespace
}  // namespace vs::cluster
