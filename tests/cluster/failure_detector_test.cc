#include "cluster/failure_detector.h"

#include <gtest/gtest.h>

namespace vs::cluster {
namespace {

TEST(FailureDetectorTest, StartsHealthy) {
  FailureDetector detector(FailureDetectorOptions{3});
  EXPECT_FALSE(detector.ejected());
  EXPECT_EQ(detector.ejections(), 0u);
  EXPECT_EQ(detector.consecutive_failures(), 0);
}

TEST(FailureDetectorTest, EjectsAfterConsecutiveMisses) {
  FailureDetector detector(FailureDetectorOptions{3});
  EXPECT_FALSE(detector.RecordFailure());
  EXPECT_FALSE(detector.RecordFailure());
  EXPECT_FALSE(detector.ejected());
  // The third consecutive miss is the ejection transition — exactly once.
  EXPECT_TRUE(detector.RecordFailure());
  EXPECT_TRUE(detector.ejected());
  EXPECT_EQ(detector.ejections(), 1u);
  // Further misses while ejected are not new transitions.
  EXPECT_FALSE(detector.RecordFailure());
  EXPECT_EQ(detector.ejections(), 1u);
}

TEST(FailureDetectorTest, SuccessResetsTheStreak) {
  FailureDetector detector(FailureDetectorOptions{3});
  detector.RecordFailure();
  detector.RecordFailure();
  EXPECT_FALSE(detector.RecordSuccess());  // healthy -> healthy: no event
  EXPECT_EQ(detector.consecutive_failures(), 0);
  // The streak restarts from zero; two more misses do not eject.
  detector.RecordFailure();
  detector.RecordFailure();
  EXPECT_FALSE(detector.ejected());
}

TEST(FailureDetectorTest, ReadmitsOnFirstSuccess) {
  FailureDetector detector(FailureDetectorOptions{2});
  detector.RecordFailure();
  EXPECT_TRUE(detector.RecordFailure());
  ASSERT_TRUE(detector.ejected());
  // First success after ejection is the re-admission transition.
  EXPECT_TRUE(detector.RecordSuccess());
  EXPECT_FALSE(detector.ejected());
  EXPECT_EQ(detector.readmissions(), 1u);
  EXPECT_FALSE(detector.RecordSuccess());
  EXPECT_EQ(detector.readmissions(), 1u);
}

TEST(FailureDetectorTest, FlappingCountsEveryTransition) {
  FailureDetector detector(FailureDetectorOptions{1});
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(detector.RecordFailure());
    EXPECT_TRUE(detector.RecordSuccess());
  }
  EXPECT_EQ(detector.ejections(), 3u);
  EXPECT_EQ(detector.readmissions(), 3u);
}

TEST(FailureDetectorTest, ClampsEjectAfterToAtLeastOne) {
  FailureDetector detector(FailureDetectorOptions{0});
  EXPECT_TRUE(detector.RecordFailure());
  EXPECT_TRUE(detector.ejected());
}

}  // namespace
}  // namespace vs::cluster
