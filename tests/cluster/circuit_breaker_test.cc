/// Unit tests for the per-shard overload breaker and the router-global
/// retry budget — the two pieces that keep retries from amplifying an
/// overload (docs/ARCHITECTURE.md "Overload & degradation").  The breaker
/// runs against a FakeClock, so the open-window and half-open probe
/// transitions are exercised without sleeping.

#include "cluster/circuit_breaker.h"

#include <gtest/gtest.h>

#include "cluster/retry_budget.h"
#include "common/clock.h"

namespace vs::cluster {
namespace {

CircuitBreakerOptions Options(const FakeClock* clock) {
  CircuitBreakerOptions options;
  options.trip_after = 3;
  options.open_seconds = 1.0;
  options.clock = clock;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreakerTest, SparseFailuresNeverTrip) {
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  // trip_after = 3: two failures, a success, two more failures — the
  // success resets the consecutive streak, so the breaker stays closed.
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, ConsecutiveFailuresOpenOnce) {
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  // Only the opening transition reports true (the caller counts opens).
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.RecordFailure());  // already open: no new transition
  EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceSeconds(0.5);
  EXPECT_FALSE(breaker.Allow());  // still inside the open window
  clock.AdvanceSeconds(0.6);
  EXPECT_TRUE(breaker.Allow());  // the probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // second request waits for the probe
  EXPECT_EQ(breaker.probes(), 1u);
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceSeconds(1.1);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndProbesAgain) {
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceSeconds(1.1);
  ASSERT_TRUE(breaker.Allow());
  EXPECT_TRUE(breaker.RecordFailure());  // failed probe = a fresh open
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.opens(), 2u);
  clock.AdvanceSeconds(1.1);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.probes(), 2u);
}

TEST(CircuitBreakerTest, SuccessWhileOpenDoesNotClose) {
  // A late success from a request dispatched before the trip must not
  // short-circuit the open window — only a half-open probe may close.
  FakeClock clock(1'000'000);
  CircuitBreaker breaker(Options(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

TEST(RetryBudgetTest, StartsFullAndBoundsBurst) {
  RetryBudgetOptions options;
  options.max_tokens = 3.0;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
  EXPECT_EQ(budget.withdrawals(), 3u);
  EXPECT_EQ(budget.suppressed(), 1u);
}

TEST(RetryBudgetTest, SuccessesRefillAtDepositRate) {
  RetryBudgetOptions options;
  options.max_tokens = 2.0;
  // 0.25 is exact in binary, so the "four successes buy one retry"
  // boundary below is deterministic.
  options.deposit_per_success = 0.25;
  RetryBudget budget(options);
  while (budget.TryWithdraw()) {
  }
  for (int i = 0; i < 3; ++i) budget.RecordSuccess();
  EXPECT_FALSE(budget.TryWithdraw());
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, DepositsCapAtMaxTokens) {
  RetryBudgetOptions options;
  options.max_tokens = 2.0;
  options.deposit_per_success = 1.0;
  RetryBudget budget(options);
  for (int i = 0; i < 100; ++i) budget.RecordSuccess();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

}  // namespace
}  // namespace vs::cluster
