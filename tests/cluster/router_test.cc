/// In-process cluster: N real workers (SessionManager + ServeApp +
/// HttpServer on ephemeral ports) behind one ClusterRouter, driven
/// through ClusterRouter::Handle.  Covers placement determinism, id and
/// shard stamping, aggregation, live migration (happy path, under
/// injected durability faults, and under concurrent traffic), and the
/// failure detector's ejection/re-admission cycle.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include <gtest/gtest.h>

#include "cluster/router_app.h"
#include "common/string_util.h"
#include "data/generator.h"
#include "data/io.h"
#include "serve/app.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "testing/fault_injection.h"

namespace vs::cluster {
namespace {

using serve::HttpRequest;
using serve::HttpResponse;

const std::string& TestTablePath() {
  static const std::string path = [] {
    data::DiabetesOptions options;
    options.num_rows = 400;
    options.seed = 41;
    data::Table table = *data::GenerateDiabetes(options);
    std::string file = ::testing::TempDir() + "cluster_router_test.vst";
    EXPECT_TRUE(data::WriteTableFile(table, file).ok());
    return file;
  }();
  return path;
}

HttpRequest Req(std::string method, const std::string& target,
                std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = target;
  const size_t q = target.find('?');
  request.path = q == std::string::npos ? target : target.substr(0, q);
  request.query = q == std::string::npos ? "" : target.substr(q + 1);
  request.body = std::move(body);
  return request;
}

const std::string* Header(const HttpResponse& response,
                          const std::string& name) {
  for (const auto& [key, value] : response.extra_headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

/// One worker: durable manager + app + real HTTP server.
struct Worker {
  std::unique_ptr<serve::SessionManager> manager;
  std::unique_ptr<serve::ServeApp> app;
  std::unique_ptr<serve::HttpServer> server;
  std::string name;
  std::string durability_dir;

  void Start(const std::string& shard_name, int port = 0) {
    name = shard_name;
    if (manager == nullptr) {
      serve::SessionManagerOptions options;
      options.max_sessions = 16;
      options.session_ttl_seconds = 3600;
      options.durability_dir =
          ::testing::TempDir() + "vs_router_test_" + shard_name + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
      // A previous run's sessions would collide with this run's
      // deterministic router-minted ids.
      std::filesystem::remove_all(options.durability_dir);
      durability_dir = options.durability_dir;
      options.durability_fsync = false;
      manager = std::make_unique<serve::SessionManager>(options,
                                                        TestTablePath());
      ASSERT_TRUE(manager->RecoverFromDisk().ok());
      serve::ServeAppOptions app_options;
      app_options.shard_name = shard_name;
      app = std::make_unique<serve::ServeApp>(manager.get(), app_options);
    }
    serve::HttpServerOptions server_options;
    server_options.port = port;
    server_options.worker_threads = 2;
    server = std::make_unique<serve::HttpServer>(
        server_options, [this](const HttpRequest& request) {
          return app->Handle(request);
        });
    ASSERT_TRUE(server->Start().ok());
  }

  /// Simulates a crash + restart: drops every piece of in-memory state
  /// and rebuilds strictly from the durability dir, on the same port.
  void Recover() {
    const int port = server->port();
    server->Stop();
    server.reset();
    app.reset();
    manager.reset();
    serve::SessionManagerOptions options;
    options.max_sessions = 16;
    options.session_ttl_seconds = 3600;
    options.durability_dir = durability_dir;
    options.durability_fsync = false;
    manager =
        std::make_unique<serve::SessionManager>(options, TestTablePath());
    ASSERT_TRUE(manager->RecoverFromDisk().ok());
    serve::ServeAppOptions app_options;
    app_options.shard_name = name;
    app = std::make_unique<serve::ServeApp>(manager.get(), app_options);
    serve::HttpServerOptions server_options;
    server_options.port = port;
    server_options.worker_threads = 2;
    server = std::make_unique<serve::HttpServer>(
        server_options, [this](const HttpRequest& request) {
          return app->Handle(request);
        });
    ASSERT_TRUE(server->Start().ok());
  }
};

class RouterTest : public ::testing::Test {
 protected:
  void StartCluster(size_t num_workers) {
    workers_.resize(num_workers);
    ClusterRouterOptions options;
    for (size_t i = 0; i < num_workers; ++i) {
      const std::string name = StrFormat("shard%zu", i);
      workers_[i] = std::make_unique<Worker>();
      workers_[i]->Start(name);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      options.shards.push_back(
          {name, "127.0.0.1", workers_[i]->server->port()});
    }
    options.probe_interval_seconds = 0.0;  // tests drive ProbeNow()
    options.eject_after = 2;
    options.forward_attempts = 8;  // create re-placement under ejection
    options.retry_backoff_seconds = 0.01;
    options.forward_timeout_seconds = 5.0;
    options.migrate_hold_seconds = 5.0;
    router_ = std::make_unique<ClusterRouter>(options);
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Stop();
    for (auto& worker : workers_) {
      if (worker != nullptr && worker->server != nullptr) {
        worker->server->Stop();
      }
    }
  }

  Worker& WorkerNamed(const std::string& name) {
    for (auto& worker : workers_) {
      if (worker->name == name) return *worker;
    }
    ADD_FAILURE() << "no worker " << name;
    return *workers_[0];
  }

  /// Creates a session through the router; returns its id.
  std::string CreateSession() {
    HttpResponse created =
        router_->Handle(Req("POST", "/sessions", "{\"k\":3,\"seed\":5}"));
    EXPECT_EQ(created.status, 201) << created.body;
    auto parsed = serve::JsonValue::Parse(created.body);
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? parsed->GetString("id", "") : "";
  }

  /// Labels `n` next-views through the router; expects every ack.
  void LabelSome(const std::string& id, int n) {
    for (int i = 0; i < n; ++i) {
      HttpResponse next =
          router_->Handle(Req("GET", "/sessions/" + id + "/next"));
      ASSERT_EQ(next.status, 200) << next.body;
      auto parsed = serve::JsonValue::Parse(next.body);
      ASSERT_TRUE(parsed.ok());
      const serve::JsonValue* views = parsed->Find("views");
      ASSERT_NE(views, nullptr);
      ASSERT_FALSE(views->array().empty());
      const double view = views->array()[0].GetNumber("view", -1);
      ASSERT_GE(view, 0);
      HttpResponse labeled = router_->Handle(
          Req("POST", "/sessions/" + id + "/label",
              StrFormat("{\"view\":%.0f,\"label\":%d}", view, i % 2)));
      ASSERT_EQ(labeled.status, 200) << labeled.body;
    }
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ClusterRouter> router_;
};

TEST(RouterStartTest, ValidatesShardList) {
  {
    ClusterRouter router(ClusterRouterOptions{});
    EXPECT_TRUE(router.Start().IsInvalidArgument());
  }
  {
    ClusterRouterOptions options;
    options.shards = {{"a", "127.0.0.1", 1}, {"a", "127.0.0.1", 2}};
    options.probe_interval_seconds = 0.0;
    ClusterRouter router(options);
    EXPECT_FALSE(router.Start().ok());
  }
  {
    ClusterRouterOptions options;
    options.shards = {{"bad name!", "127.0.0.1", 1}};
    options.probe_interval_seconds = 0.0;
    ClusterRouter router(options);
    EXPECT_TRUE(router.Start().IsInvalidArgument());
  }
  {
    ClusterRouterOptions options;
    options.shards = {{"a", "127.0.0.1", 0}};
    options.probe_interval_seconds = 0.0;
    ClusterRouter router(options);
    EXPECT_TRUE(router.Start().IsInvalidArgument());
  }
}

TEST_F(RouterTest, CreatePlacesByRingAndStampsHeaders) {
  StartCluster(2);
  HttpResponse created = router_->Handle(
      Req("POST", "/sessions", "{\"k\":3,\"seed\":5}"));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string id =
      serve::JsonValue::Parse(created.body)->GetString("id", "");
  ASSERT_FALSE(id.empty());

  const std::string* shard = Header(created, "X-Shard");
  ASSERT_NE(shard, nullptr);
  auto owner = router_->ShardForSession(id);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*shard, *owner);
  // The session exists on exactly the worker the ring names.
  for (auto& worker : workers_) {
    EXPECT_EQ(worker->manager->Info(id).ok(), worker->name == *owner);
  }
  // Router-generated ids get a rt- request id; client ids pass through.
  EXPECT_NE(Header(created, "X-Request-Id"), nullptr);
  HttpRequest with_id = Req("GET", "/sessions/" + id + "/topk");
  with_id.headers.emplace_back("x-request-id", "client-7");
  HttpResponse topk = router_->Handle(with_id);
  const std::string* echoed = Header(topk, "X-Request-Id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "client-7");
}

TEST_F(RouterTest, FullProtocolFlowsThroughOneShard) {
  StartCluster(3);
  const std::string id = CreateSession();
  ASSERT_FALSE(id.empty());
  const std::string owner = *router_->ShardForSession(id);

  LabelSome(id, 3);
  for (const char* endpoint : {"/next", "/topk", "/labels", ""}) {
    HttpResponse response = router_->Handle(
        Req("GET", "/sessions/" + id + std::string(endpoint)));
    EXPECT_EQ(response.status, 200) << endpoint << ": " << response.body;
    const std::string* shard = Header(response, "X-Shard");
    ASSERT_NE(shard, nullptr) << endpoint;
    EXPECT_EQ(*shard, owner) << endpoint;
  }
  HttpResponse deleted = router_->Handle(Req("DELETE", "/sessions/" + id));
  EXPECT_EQ(deleted.status, 200) << deleted.body;
  HttpResponse gone =
      router_->Handle(Req("GET", "/sessions/" + id + "/topk"));
  EXPECT_EQ(gone.status, 404);
}

TEST_F(RouterTest, UnknownRoutesAnswer404WithRequestId) {
  StartCluster(1);
  HttpResponse response = router_->Handle(Req("GET", "/no/such/route"));
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(Header(response, "X-Request-Id"), nullptr);
}

TEST_F(RouterTest, AggregatesHealthzMetricsStatusz) {
  StartCluster(2);
  CreateSession();

  HttpResponse healthz = router_->Handle(Req("GET", "/healthz"));
  ASSERT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos)
      << healthz.body;
  EXPECT_NE(healthz.body.find("\"name\":\"shard0\""), std::string::npos);
  EXPECT_NE(healthz.body.find("\"name\":\"shard1\""), std::string::npos);

  HttpResponse metrics = router_->Handle(Req("GET", "/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("cluster_requests_forwarded"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("serve_requests"), std::string::npos);
  // The merge must leave exactly one TYPE header per family even though
  // several expositions contributed it (duplicates fail promcheck).
  const std::string type_line = "# TYPE cluster_requests_forwarded counter";
  size_t first = metrics.body.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(metrics.body.find(type_line, first + 1), std::string::npos);

  HttpResponse statusz = router_->Handle(Req("GET", "/statusz"));
  ASSERT_EQ(statusz.status, 200);
  for (const char* field :
       {"\"role\":\"router\"", "\"ring_points\"", "\"migrations\"",
        "\"shards\"", "\"overrides\"", "\"ejected\":false"}) {
    EXPECT_NE(statusz.body.find(field), std::string::npos)
        << "statusz missing " << field << ": " << statusz.body;
  }
}

TEST_F(RouterTest, MigrationMovesSessionByteIdentically) {
  StartCluster(2);
  const std::string id = CreateSession();
  ASSERT_FALSE(id.empty());
  LabelSome(id, 4);
  const std::string from = *router_->ShardForSession(id);
  const std::string to = from == "shard0" ? "shard1" : "shard0";

  HttpResponse topk_before =
      router_->Handle(Req("GET", "/sessions/" + id + "/topk"));
  HttpResponse labels_before =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));
  ASSERT_EQ(topk_before.status, 200);

  HttpResponse migrated = router_->Handle(Req(
      "POST", "/admin/migrate",
      StrFormat("{\"session\":\"%s\",\"to\":\"%s\"}", id.c_str(),
                to.c_str())));
  ASSERT_EQ(migrated.status, 200) << migrated.body;
  EXPECT_NE(migrated.body.find("\"migrated\":true"), std::string::npos);
  EXPECT_EQ(router_->migrations(), 1u);

  // Routing flipped; the data is byte-for-byte the same session.
  EXPECT_EQ(*router_->ShardForSession(id), to);
  HttpResponse topk_after =
      router_->Handle(Req("GET", "/sessions/" + id + "/topk"));
  HttpResponse labels_after =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));
  EXPECT_EQ(topk_after.status, 200);
  EXPECT_EQ(topk_after.body, topk_before.body);
  EXPECT_EQ(labels_after.body, labels_before.body);
  const std::string* shard = Header(topk_after, "X-Shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(*shard, to);

  // Exactly one copy: gone from the source worker, live on the target.
  EXPECT_FALSE(WorkerNamed(from).manager->Info(id).ok());
  EXPECT_TRUE(WorkerNamed(to).manager->Info(id).ok());

  // The migrated session keeps serving the full protocol.
  LabelSome(id, 1);

  // Migrating back to the ring-natural home clears the override.
  HttpResponse back = router_->Handle(Req(
      "POST", "/admin/migrate",
      StrFormat("{\"session\":\"%s\",\"to\":\"%s\"}", id.c_str(),
                from.c_str())));
  ASSERT_EQ(back.status, 200) << back.body;
  EXPECT_EQ(*router_->ShardForSession(id), from);
  HttpResponse statusz = router_->Handle(Req("GET", "/statusz"));
  EXPECT_NE(statusz.body.find("\"overrides\":{}"), std::string::npos)
      << statusz.body;
}

TEST_F(RouterTest, MigrateValidatesInput) {
  StartCluster(2);
  const std::string id = CreateSession();
  const std::string owner = *router_->ShardForSession(id);

  HttpResponse no_body = router_->Handle(Req("POST", "/admin/migrate"));
  EXPECT_EQ(no_body.status, 400);
  HttpResponse bad_shard = router_->Handle(
      Req("POST", "/admin/migrate",
          StrFormat("{\"session\":\"%s\",\"to\":\"nope\"}", id.c_str())));
  EXPECT_EQ(bad_shard.status, 404);
  // A session no shard has: the export 404s and the migration aborts.
  const std::string ghost_home = *router_->ShardForSession("ghost");
  HttpResponse missing = router_->Handle(
      Req("POST", "/admin/migrate",
          StrFormat("{\"session\":\"ghost\",\"to\":\"%s\"}",
                    ghost_home == "shard0" ? "shard1" : "shard0")));
  EXPECT_EQ(missing.status, 404) << missing.body;
  HttpResponse same_place = router_->Handle(
      Req("POST", "/admin/migrate",
          StrFormat("{\"session\":\"%s\",\"to\":\"%s\"}", id.c_str(),
                    owner.c_str())));
  EXPECT_EQ(same_place.status, 200);
  EXPECT_NE(same_place.body.find("\"migrated\":false"), std::string::npos);
  EXPECT_EQ(router_->migrations(), 0u);
  EXPECT_EQ(router_->migration_failures(), 1u);  // the ghost attempt
}

/// Export-side fault: the source worker cannot persist the envelope it
/// is about to hand out, so the migration aborts with the session fully
/// intact and still served from its original shard.
TEST_F(RouterTest, ExportFaultAbortsMigrationSessionStays) {
  StartCluster(2);
  const std::string id = CreateSession();
  LabelSome(id, 3);
  const std::string from = *router_->ShardForSession(id);
  const std::string to = from == "shard0" ? "shard1" : "shard0";
  HttpResponse labels_before =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));

  {
    fault::FaultInjector injector(11);
    fault::ScopedFaultInjector installed(&injector);
    injector.SetSchedule("snapshot.rename_fail", {1});  // export persist
    HttpResponse migrated = router_->Handle(Req(
        "POST", "/admin/migrate",
        StrFormat("{\"session\":\"%s\",\"to\":\"%s\"}", id.c_str(),
                  to.c_str())));
    EXPECT_GE(migrated.status, 500) << migrated.body;
  }
  EXPECT_EQ(router_->migrations(), 0u);
  EXPECT_EQ(router_->migration_failures(), 1u);

  // Exactly one copy, on the source; every acked label recovered.
  EXPECT_TRUE(WorkerNamed(from).manager->Info(id).ok());
  EXPECT_FALSE(WorkerNamed(to).manager->Info(id).ok());
  EXPECT_EQ(*router_->ShardForSession(id), from);
  HttpResponse labels_after =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));
  EXPECT_EQ(labels_after.status, 200);
  EXPECT_EQ(labels_after.body, labels_before.body);
  // And the gate is released: the session keeps taking new labels.
  LabelSome(id, 1);
}

/// Import-side fault: the target cannot persist, unwinds completely, and
/// the router leaves routing pointed at the source — available on
/// exactly one shard throughout.
TEST_F(RouterTest, ImportFaultUnwindsTargetSessionStays) {
  StartCluster(2);
  const std::string id = CreateSession();
  LabelSome(id, 3);
  const std::string from = *router_->ShardForSession(id);
  const std::string to = from == "shard0" ? "shard1" : "shard0";
  HttpResponse labels_before =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));

  {
    fault::FaultInjector injector(11);
    fault::ScopedFaultInjector installed(&injector);
    // Hit 1 is the export-side persist (allowed); hit 2 is the target's
    // import persist — that one fails.
    injector.SetSchedule("snapshot.rename_fail", {2});
    HttpResponse migrated = router_->Handle(Req(
        "POST", "/admin/migrate",
        StrFormat("{\"session\":\"%s\",\"to\":\"%s\"}", id.c_str(),
                  to.c_str())));
    EXPECT_GE(migrated.status, 500) << migrated.body;
  }
  EXPECT_EQ(router_->migrations(), 0u);
  EXPECT_EQ(router_->migration_failures(), 1u);
  EXPECT_TRUE(WorkerNamed(from).manager->Info(id).ok());
  EXPECT_FALSE(WorkerNamed(to).manager->Info(id).ok());
  EXPECT_EQ(*router_->ShardForSession(id), from);
  HttpResponse labels_after =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));
  EXPECT_EQ(labels_after.body, labels_before.body);
}

///// Durability faults on the label path: a failed WAL append falls back
/// to a full snapshot rotation, so killing only the journal still acks.
/// With both paths armed no durable route remains — the write must fail
/// loudly and previously acked labels stay: acked ⊆ recovered, under
/// the router.
TEST_F(RouterTest, WalFaultFailsNewLabelsKeepsAckedOnes) {
  StartCluster(2);
  const std::string id = CreateSession();
  LabelSome(id, 2);
  HttpResponse labels_before =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));

  {
    fault::FaultInjector injector(13);
    fault::ScopedFaultInjector installed(&injector);
    injector.SetProbability("wal.append_fail", 1.0);
    injector.SetProbability("snapshot.rename_fail", 1.0);
    HttpResponse labeled = router_->Handle(
        Req("POST", "/sessions/" + id + "/label",
            "{\"view\":99,\"label\":1}"));
    EXPECT_GE(labeled.status, 500) << labeled.body;
  }
  // The failed write is indeterminate in memory by design; durability is
  // the contract that matters.  Crash-restart the owner (in-memory state
  // dropped, recovery strictly from disk) and confirm exactly the acked
  // labels came back.
  Worker& owner = WorkerNamed(*router_->ShardForSession(id));
  owner.Recover();
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  HttpResponse recovered =
      router_->Handle(Req("GET", "/sessions/" + id + "/labels"));
  EXPECT_EQ(recovered.status, 200);
  EXPECT_EQ(recovered.body, labels_before.body);
}

/// Concurrent reads during a migration never see a 5xx — they hold at
/// the router's session gate and complete after the flip.
TEST_F(RouterTest, NoServerErrorsDuringMigration) {
  StartCluster(2);
  const std::string id = CreateSession();
  LabelSome(id, 2);
  const std::string from = *router_->ShardForSession(id);
  const std::string to = from == "shard0" ? "shard1" : "shard0";

  std::atomic<bool> stop{false};
  std::atomic<int> bad_status{0};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      HttpResponse response =
          router_->Handle(Req("GET", "/sessions/" + id + "/topk"));
      ++reads;
      if (response.status != 200) {
        bad_status.store(response.status);
        return;
      }
    }
  });
  HttpResponse migrated = router_->Handle(Req(
      "POST", "/admin/migrate",
      StrFormat("{\"session\":\"%s\",\"to\":\"%s\"}", id.c_str(),
                to.c_str())));
  stop.store(true);
  reader.join();
  ASSERT_EQ(migrated.status, 200) << migrated.body;
  EXPECT_EQ(bad_status.load(), 0)
      << "reader saw HTTP " << bad_status.load() << " during migration";
  EXPECT_GT(reads.load(), 0u);
}

TEST_F(RouterTest, EjectionAndReadmissionCycle) {
  StartCluster(2);
  // Find (or mint) a session owned by shard1 so its loss is observable.
  std::string victim;
  for (int i = 0; i < 64 && victim.empty(); ++i) {
    const std::string id = CreateSession();
    if (*router_->ShardForSession(id) == "shard1") victim = id;
  }
  ASSERT_FALSE(victim.empty()) << "ring never placed a session on shard1";

  Worker& worker = WorkerNamed("shard1");
  const int port = worker.server->port();
  worker.server->Stop();
  // eject_after=2: the first miss is not an ejection, the second is.
  router_->ProbeNow();
  EXPECT_FALSE(router_->ShardEjected("shard1"));
  router_->ProbeNow();
  EXPECT_TRUE(router_->ShardEjected("shard1"));

  // Requests owned by the ejected shard answer 503 without a dial;
  // the healthy shard keeps serving; healthz degrades.
  HttpResponse rejected =
      router_->Handle(Req("GET", "/sessions/" + victim));
  EXPECT_EQ(rejected.status, 503) << rejected.body;
  HttpResponse healthz = router_->Handle(Req("GET", "/healthz"));
  EXPECT_NE(healthz.body.find("\"status\":\"degraded\""),
            std::string::npos)
      << healthz.body;
  HttpResponse statusz = router_->Handle(Req("GET", "/statusz"));
  EXPECT_NE(statusz.body.find("\"ejected\":true"), std::string::npos);

  // Restart the worker on the same port (sessions intact in memory —
  // same manager) and probe: first success re-admits.
  worker.Start("shard1", port);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  router_->ProbeNow();
  EXPECT_FALSE(router_->ShardEjected("shard1"));
  HttpResponse recovered =
      router_->Handle(Req("GET", "/sessions/" + victim));
  EXPECT_EQ(recovered.status, 200) << recovered.body;
}

}  // namespace
}  // namespace vs::cluster
