#include "cluster/hash_ring.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace vs::cluster {
namespace {

/// A pool of session-id-shaped keys, seeded and deterministic.
std::vector<std::string> Keys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(StrFormat("c%04zx%08zx", i % 17, i * 2654435761u));
  }
  return keys;
}

HashRing RingOf(const std::vector<std::string>& shards,
                int virtual_nodes = 128) {
  HashRing ring(HashRingOptions{virtual_nodes});
  for (const std::string& shard : shards) {
    EXPECT_TRUE(ring.AddShard(shard).ok()) << shard;
  }
  return ring;
}

TEST(HashKey64Test, MatchesFnv1aReferenceVectors) {
  // Published FNV-1a 64 vectors; placement stability across platforms
  // rests on these.
  EXPECT_EQ(HashKey64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(HashKey64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(HashKey64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashRingTest, EmptyRingFailsPrecondition) {
  HashRing ring;
  auto shard = ring.ShardFor("anything");
  ASSERT_FALSE(shard.ok());
  EXPECT_TRUE(shard.status().IsFailedPrecondition());
}

TEST(HashRingTest, RejectsDuplicateAndUnknownShards) {
  HashRing ring;
  ASSERT_TRUE(ring.AddShard("a").ok());
  EXPECT_FALSE(ring.AddShard("a").ok());
  EXPECT_FALSE(ring.RemoveShard("b").ok());
  ASSERT_TRUE(ring.RemoveShard("a").ok());
  EXPECT_TRUE(ring.shards().empty());
  EXPECT_EQ(ring.num_points(), 0u);
}

TEST(HashRingTest, PlacementIsDeterministic) {
  const auto keys = Keys(500);
  HashRing a = RingOf({"shard0", "shard1", "shard2", "shard3"});
  HashRing b = RingOf({"shard0", "shard1", "shard2", "shard3"});
  for (const std::string& key : keys) {
    EXPECT_EQ(*a.ShardFor(key), *b.ShardFor(key)) << key;
  }
}

TEST(HashRingTest, PlacementIndependentOfInsertionOrder) {
  const auto keys = Keys(500);
  HashRing forward = RingOf({"alpha", "beta", "gamma", "delta"});
  HashRing reverse = RingOf({"delta", "gamma", "beta", "alpha"});
  for (const std::string& key : keys) {
    EXPECT_EQ(*forward.ShardFor(key), *reverse.ShardFor(key)) << key;
  }
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring = RingOf({"only"});
  for (const std::string& key : Keys(50)) {
    EXPECT_EQ(*ring.ShardFor(key), "only");
  }
}

/// The consistency property the router's caches depend on: adding one
/// shard to N reassigns roughly 1/(N+1) of the keys and never more than
/// 2/N of them; every reassigned key moves *to* the new shard.
TEST(HashRingTest, JoinRemapsBoundedFraction) {
  const auto keys = Keys(4000);
  const std::vector<std::string> base = {"s0", "s1", "s2", "s3"};
  HashRing before = RingOf(base);
  std::vector<std::string> grown = base;
  grown.push_back("s4");
  HashRing after = RingOf(grown);

  size_t moved = 0;
  for (const std::string& key : keys) {
    const std::string from = *before.ShardFor(key);
    const std::string to = *after.ShardFor(key);
    if (from != to) {
      ++moved;
      EXPECT_EQ(to, "s4") << "key moved between pre-existing shards: "
                          << key << " " << from << " -> " << to;
    }
  }
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  // Expected ~1/5; 2/N = 0.5 is the hard bound from ISSUE acceptance.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(fraction, 2.0 / static_cast<double>(base.size()))
      << moved << " of " << keys.size() << " keys moved";
}

/// Removing a shard only remaps the keys it owned.
TEST(HashRingTest, LeaveRemapsOnlyTheLeaversKeys) {
  const auto keys = Keys(4000);
  const std::vector<std::string> base = {"s0", "s1", "s2", "s3"};
  HashRing before = RingOf(base);
  HashRing after = RingOf(base);
  ASSERT_TRUE(after.RemoveShard("s2").ok());

  size_t moved = 0;
  for (const std::string& key : keys) {
    const std::string from = *before.ShardFor(key);
    const std::string to = *after.ShardFor(key);
    if (from == "s2") {
      EXPECT_NE(to, "s2");
      ++moved;
    } else {
      EXPECT_EQ(from, to) << "non-owner key remapped: " << key;
    }
  }
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(moved, 0u);
  EXPECT_LE(fraction, 2.0 / static_cast<double>(base.size()));
}

/// Re-adding a removed shard restores the original placement exactly —
/// this is why ejection keeps arcs in place: keys come home.
TEST(HashRingTest, RemoveThenReAddRestoresPlacement) {
  const auto keys = Keys(1000);
  HashRing stable = RingOf({"s0", "s1", "s2"});
  HashRing churned = RingOf({"s0", "s1", "s2"});
  ASSERT_TRUE(churned.RemoveShard("s1").ok());
  ASSERT_TRUE(churned.AddShard("s1").ok());
  for (const std::string& key : keys) {
    EXPECT_EQ(*stable.ShardFor(key), *churned.ShardFor(key)) << key;
  }
}

/// With 128 virtual nodes the worst shard's key share stays within 20%
/// of fair share (the number the default in HashRingOptions promises).
TEST(HashRingTest, VirtualNodesBalanceLoad) {
  const auto keys = Keys(20000);
  const std::vector<std::string> shards = {"s0", "s1", "s2", "s3"};
  HashRing ring = RingOf(shards, 128);
  std::map<std::string, size_t> counts;
  for (const std::string& key : keys) ++counts[*ring.ShardFor(key)];
  ASSERT_EQ(counts.size(), shards.size()) << "some shard got no keys";
  const double fair =
      static_cast<double>(keys.size()) / static_cast<double>(shards.size());
  for (const auto& [shard, count] : counts) {
    const double deviation =
        (static_cast<double>(count) - fair) / fair;
    EXPECT_LT(deviation, 0.20) << shard << " owns " << count
                               << " keys, fair share " << fair;
    EXPECT_GT(deviation, -0.20) << shard << " owns " << count
                                << " keys, fair share " << fair;
  }
}

TEST(HashRingTest, NumPointsCountsVirtualNodes) {
  HashRing ring = RingOf({"a", "b"}, 64);
  EXPECT_EQ(ring.num_points(), 128u);
}

}  // namespace
}  // namespace vs::cluster
