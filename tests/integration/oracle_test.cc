/// Oracle and robustness tests: vectorized operators checked against
/// naive row-at-a-time reimplementations on randomized inputs, plus
/// corruption/fuzz robustness of the parsers and the binary format.

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/csv.h"
#include "data/generator.h"
#include "data/groupby.h"
#include "data/io.h"
#include "data/predicate.h"
#include "data/query.h"
#include "ml/linear_regression.h"
#include "stats/distance.h"

namespace vs {
namespace {

// ---------------------------------------------------------------------------
// Predicate oracle: SelectRows vs a naive per-row evaluator.

data::Table RandomTable(uint64_t seed, size_t rows) {
  auto schema = *data::Schema::Make({
      {"cat", data::DataType::kString, data::FieldRole::kDimension},
      {"num", data::DataType::kDouble, data::FieldRole::kMeasure},
      {"count", data::DataType::kInt64, data::FieldRole::kMeasure},
  });
  data::TableBuilder b(schema);
  Rng rng(seed);
  const char* labels[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    data::Value cat = rng.NextBernoulli(0.1)
                          ? data::Value()
                          : data::Value(labels[rng.NextBounded(4)]);
    data::Value num = rng.NextBernoulli(0.1)
                          ? data::Value()
                          : data::Value(rng.NextDouble() * 10.0);
    data::Value count = rng.NextBernoulli(0.1)
                            ? data::Value()
                            : data::Value(rng.NextInt64(-5, 5));
    EXPECT_TRUE(b.AppendRow({cat, num, count}).ok());
  }
  return *b.Build();
}

/// Naive evaluation of the same predicate semantics row by row.
bool NaiveCompare(const data::Value& cell, data::CompareOp op,
                  const data::Value& literal) {
  if (cell.is_null()) return false;
  const int cmp = cell.Compare(literal);
  switch (op) {
    case data::CompareOp::kEq:
      return cmp == 0;
    case data::CompareOp::kNe:
      return cmp != 0;
    case data::CompareOp::kLt:
      return cmp < 0;
    case data::CompareOp::kLe:
      return cmp <= 0;
    case data::CompareOp::kGt:
      return cmp > 0;
    case data::CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

class PredicateOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateOracle, VectorizedMatchesNaive) {
  data::Table t = RandomTable(GetParam(), 300);
  Rng rng(GetParam() ^ 0xf00dULL);
  const char* labels[] = {"a", "b", "c", "d", "zz"};

  for (int trial = 0; trial < 20; ++trial) {
    // Random leaf: categorical or numeric comparison.
    const auto op = static_cast<data::CompareOp>(rng.NextBounded(6));
    const bool categorical = rng.NextBernoulli(0.5);
    std::string column = categorical ? "cat" : (rng.NextBernoulli(0.5)
                                                    ? "num"
                                                    : "count");
    data::Value literal =
        categorical ? data::Value(labels[rng.NextBounded(5)])
                    : data::Value(rng.NextDouble() * 10.0 - 1.0);
    auto predicate = data::Compare(column, op, literal);

    auto fast = data::SelectRows(t, predicate);
    ASSERT_TRUE(fast.ok());
    data::SelectionVector naive;
    const size_t col = *t.schema().FieldIndex(column);
    for (uint32_t r = 0; r < t.num_rows(); ++r) {
      if (NaiveCompare(t.GetValue(r, col), op, literal)) {
        naive.push_back(r);
      }
    }
    EXPECT_EQ(*fast, naive)
        << column << " " << data::CompareOpName(op) << " "
        << literal.ToString();
  }
}

TEST_P(PredicateOracle, BooleanCombinatorsMatchSetAlgebra) {
  data::Table t = RandomTable(GetParam() + 500, 200);
  auto p1 = data::Compare("num", data::CompareOp::kGe, data::Value(5.0));
  auto p2 = data::Compare("cat", data::CompareOp::kEq, data::Value("a"));

  auto s1 = *data::SelectRows(t, p1);
  auto s2 = *data::SelectRows(t, p2);
  auto s_and = *data::SelectRows(t, data::And({p1, p2}));
  auto s_or = *data::SelectRows(t, data::Or({p1, p2}));
  auto s_not1 = *data::SelectRows(t, data::Not(p1));

  // AND = intersection, OR = union, NOT = complement.
  data::SelectionVector expected_and;
  std::set_intersection(s1.begin(), s1.end(), s2.begin(), s2.end(),
                        std::back_inserter(expected_and));
  EXPECT_EQ(s_and, expected_and);

  data::SelectionVector expected_or;
  std::set_union(s1.begin(), s1.end(), s2.begin(), s2.end(),
                 std::back_inserter(expected_or));
  EXPECT_EQ(s_or, expected_or);

  EXPECT_EQ(s1.size() + s_not1.size(), t.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateOracle,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Group-by oracle: executor vs naive per-row accumulation.

class GroupByOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupByOracle, ExecutorMatchesNaive) {
  data::Table t = RandomTable(GetParam() + 1000, 400);
  data::GroupByExecutor executor(&t);
  const auto* cat = *t.CategoricalColumnByName("cat");
  const size_t num_col = *t.schema().FieldIndex("num");

  for (data::AggregateFunction f : data::AllAggregateFunctions()) {
    auto fast = executor.Execute({"cat", "num", f, 0}, nullptr);
    ASSERT_TRUE(fast.ok());
    std::vector<data::AggregateAccumulator> naive(cat->cardinality());
    for (uint32_t r = 0; r < t.num_rows(); ++r) {
      if (cat->IsNull(r)) continue;
      data::Value v = t.GetValue(r, num_col);
      if (v.is_null()) continue;
      naive[cat->code(r)].Add(v.dbl());
    }
    for (size_t g = 0; g < naive.size(); ++g) {
      EXPECT_NEAR(fast->values[g], naive[g].Finalize(f), 1e-9)
          << data::AggregateFunctionName(f) << " group " << g;
      EXPECT_EQ(fast->counts[g], naive[g].count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByOracle,
                         ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// EMD oracle: the prefix-sum formula vs a naive sequential-transport
// simulation (optimal in 1-D).

TEST(EmdOracle, PrefixFormulaMatchesSequentialTransport) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t bins = 2 + rng.NextBounded(8);
    std::vector<double> p(bins);
    std::vector<double> q(bins);
    double ps = 0.0;
    double qs = 0.0;
    for (size_t i = 0; i < bins; ++i) {
      p[i] = rng.NextDouble();
      q[i] = rng.NextDouble();
      ps += p[i];
      qs += q[i];
    }
    for (size_t i = 0; i < bins; ++i) {
      p[i] /= ps;
      q[i] /= qs;
    }
    // Naive: sweep left to right, carrying surplus/deficit one step at a
    // time; each carried unit costs 1 per step (optimal in 1-D).
    double cost = 0.0;
    double carry = 0.0;
    for (size_t i = 0; i < bins; ++i) {
      carry += p[i] - q[i];
      cost += std::fabs(carry);
    }
    auto emd = stats::EarthMoversDistance(stats::Distribution{p},
                                          stats::Distribution{q});
    ASSERT_TRUE(emd.ok());
    EXPECT_NEAR(*emd, cost, 1e-12);
  }
}

TEST(EmdOracle, ZeroPaddingInvariance) {
  stats::Distribution p{{0.2, 0.5, 0.3}};
  stats::Distribution q{{0.6, 0.1, 0.3}};
  stats::Distribution p_pad{{0.0, 0.2, 0.5, 0.3, 0.0}};
  stats::Distribution q_pad{{0.0, 0.6, 0.1, 0.3, 0.0}};
  EXPECT_NEAR(*stats::EarthMoversDistance(p, q),
              *stats::EarthMoversDistance(p_pad, q_pad), 1e-12);
}

// ---------------------------------------------------------------------------
// Robustness: corrupted binary tables and fuzzed CSV must never crash.

TEST(CorruptionRobustness, RandomByteFlipsNeverCrashTableIo) {
  data::DiabetesOptions options;
  options.num_rows = 200;
  auto t = data::GenerateDiabetes(options);
  std::string bytes = *data::SerializeTable(*t);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(corrupted.size());
      corrupted[pos] = static_cast<char>(rng.NextBounded(256));
    }
    auto result = data::DeserializeTable(corrupted);  // ok or error, no UB
    if (result.ok()) {
      EXPECT_LE(result->num_rows(), 1000u);
    }
  }
}

TEST(CorruptionRobustness, FuzzedSqlNeverCrashes) {
  Rng rng(7);
  const char* tokens[] = {"SELECT", "FROM",  "WHERE", "GROUP", "BY",
                          "AND",    "IN",    "BETWEEN", "BINS", "SUM",
                          "(",      ")",     ",",     "=",     "<=",
                          "'x'",    "3.5",   "-2",    "col",   "*",
                          "<>",     "''",    "1e999", "."};
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    const size_t len = 1 + rng.NextBounded(15);
    for (size_t i = 0; i < len; ++i) {
      sql += tokens[rng.NextBounded(sizeof(tokens) / sizeof(tokens[0]))];
      sql += ' ';
    }
    auto result = data::ParseQuery(sql);  // must return, not crash
    (void)result;
    auto filter = data::ParseFilter(sql);
    (void)filter;
  }
}

TEST(CorruptionRobustness, FuzzedCsvNeverCrashes) {
  Rng rng(5);
  const char alphabet[] = "abc,\"\n\r0129.-x\t;'";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.NextBounded(sizeof(alphabet) - 1)];
    }
    auto result = data::ReadCsv(text, {});  // must return, not crash
    (void)result;
  }
}

// ---------------------------------------------------------------------------
// Order invariance: the utility estimator fit does not depend on label
// arrival order.

TEST(OrderInvariance, LinearFitIsPermutationInvariant) {
  Rng rng(11);
  const size_t n = 24;
  ml::Matrix x(n, 4);
  ml::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) x(i, j) = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  ml::LinearRegression forward;
  ASSERT_TRUE(forward.Fit(x, y).ok());

  auto perm = rng.Permutation(n);
  ml::Matrix x2(n, 4);
  ml::Vector y2(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) x2(i, j) = x(perm[i], j);
    y2[i] = y[perm[i]];
  }
  ml::LinearRegression shuffled;
  ASSERT_TRUE(shuffled.Fit(x2, y2).ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(forward.coefficients()[j], shuffled.coefficients()[j],
                1e-9);
  }
  EXPECT_NEAR(forward.intercept(), shuffled.intercept(), 1e-9);
}

}  // namespace
}  // namespace vs
