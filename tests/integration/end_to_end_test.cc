/// End-to-end integration tests: the full pipeline — generator → query →
/// view enumeration → feature matrix → interactive session → metrics — on
/// down-scaled versions of the paper's DIAB and SYN testbeds.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/ideal_utility.h"
#include "core/metrics.h"
#include "core/recommender.h"
#include "core/seeker.h"
#include "core/simulated_user.h"
#include "data/generator.h"
#include "data/predicate.h"
#include "data/query.h"

namespace vs::core {
namespace {

/// Down-scaled DIAB: 4000 rows, full 280-view space.
class DiabEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DiabetesOptions options;
    options.num_rows = 4000;
    options.seed = 11;
    table_ = new data::Table(*data::GenerateDiabetes(options));
    // Query: a hypercube-ish subset (~a few % of the data).
    query_ = new data::SelectionVector(*data::SelectRows(
        *table_,
        data::And({data::Compare("gender", data::CompareOp::kEq,
                                 data::Value("Female")),
                   data::Compare("admission_type", data::CompareOp::kEq,
                                 data::Value("Emergency"))})));
    registry_ = new UtilityFeatureRegistry(UtilityFeatureRegistry::Default());
    auto views = *EnumerateViews(*table_, {});
    matrix_ = new FeatureMatrix(*FeatureMatrix::Build(
        table_, views, *query_, registry_, FeatureMatrixOptions{}));
  }

  static void TearDownTestSuite() {
    delete matrix_;
    delete registry_;
    delete query_;
    delete table_;
    matrix_ = nullptr;
    registry_ = nullptr;
    query_ = nullptr;
    table_ = nullptr;
  }

  static data::Table* table_;
  static data::SelectionVector* query_;
  static UtilityFeatureRegistry* registry_;
  static FeatureMatrix* matrix_;
};

data::Table* DiabEndToEnd::table_ = nullptr;
data::SelectionVector* DiabEndToEnd::query_ = nullptr;
UtilityFeatureRegistry* DiabEndToEnd::registry_ = nullptr;
FeatureMatrix* DiabEndToEnd::matrix_ = nullptr;

TEST_F(DiabEndToEnd, ViewSpaceMatchesTable1) {
  EXPECT_EQ(matrix_->num_views(), 280u);
  EXPECT_EQ(matrix_->num_features(), 8u);
}

TEST_F(DiabEndToEnd, QuerySubsetIsProperNonEmptySubset) {
  EXPECT_GT(query_->size(), 0u);
  EXPECT_LT(query_->size(), table_->num_rows());
}

TEST_F(DiabEndToEnd, SessionConvergesForSingleComponentIdeals) {
  ExperimentConfig config;
  config.k = 5;
  config.max_labels = 60;
  config.seed = 1;
  for (const auto& ideal : Table2PresetsWithComponents(1)) {
    auto r = RunSimulatedSession(*matrix_, nullptr, ideal, config);
    ASSERT_TRUE(r.ok()) << ideal.name();
    EXPECT_TRUE(r->reached_target) << ideal.name();
    EXPECT_LE(r->labels_to_target, 60) << ideal.name();
  }
}

TEST_F(DiabEndToEnd, SessionConvergesForACompositeIdeal) {
  ExperimentConfig config;
  config.k = 5;
  config.max_labels = 80;
  config.seed = 2;
  auto r = RunSimulatedSession(*matrix_, nullptr, Table2Presets()[6],
                               config);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->final_precision, 0.8);
}

TEST_F(DiabEndToEnd, SeekerBeatsSingleFeatureBaselinesOnCompositeIdeal) {
  // Experiment 2 in miniature (UF 11 = 0.3 EMD + 0.3 KL + 0.4 Accuracy):
  // converged ViewSeeker precision must exceed the best fixed-feature
  // baseline.
  const IdealUtilityFunction ideal = Table2Presets()[10];
  auto user = SimulatedUser::Make(&matrix_->normalized(), ideal);
  ASSERT_TRUE(user.ok());
  std::vector<double> scores(user->true_scores().begin(),
                             user->true_scores().end());
  const auto ideal_topk = TopKIndices(scores, 5);

  double best_baseline = 0.0;
  for (size_t f = 0; f < matrix_->num_features(); ++f) {
    auto rec = RecommendByFeature(*matrix_, f, 5);
    ASSERT_TRUE(rec.ok());
    best_baseline =
        std::max(best_baseline, *TopKPrecision(*rec, ideal_topk));
  }

  ExperimentConfig config;
  config.k = 5;
  config.max_labels = 100;
  config.seed = 5;
  auto r = RunSimulatedSession(*matrix_, nullptr, ideal, config);
  ASSERT_TRUE(r.ok());
  // On this down-scaled instance a single feature can tie (features are
  // correlated at small n); the seeker must reach full precision and never
  // lose to a fixed baseline.  The full-scale gap is bench_fig5's job.
  EXPECT_DOUBLE_EQ(r->final_precision, 1.0);
  EXPECT_GE(r->final_precision, best_baseline);
}

TEST_F(DiabEndToEnd, SqlFrontEndAgreesWithViewPipeline) {
  // The SQL front end and the executor must agree on a view's aggregates.
  auto sql = data::RunSql(
      *table_,
      "SELECT AVG(num_medications) FROM diab GROUP BY age_group");
  ASSERT_TRUE(sql.ok());
  data::GroupByExecutor executor(table_);
  auto direct = executor.Execute(
      {"age_group", "num_medications", data::AggregateFunction::kAvg, 0},
      nullptr);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(sql->values.size(), direct->values.size());
  for (size_t b = 0; b < sql->values.size(); ++b) {
    EXPECT_DOUBLE_EQ(sql->values[b], direct->values[b]);
  }
}

TEST(SynEndToEnd, BinnedNumericPipelineWorks) {
  data::SyntheticOptions options;
  options.num_rows = 20000;
  options.seed = 21;
  auto table = data::GenerateSynthetic(options);
  ASSERT_TRUE(table.ok());
  auto query = data::SelectRows(
      *table, data::And({data::Between("d0", 0.0, 0.2),
                         data::Between("d1", 0.0, 0.3)}));
  ASSERT_TRUE(query.ok());
  ASSERT_GT(query->size(), 0u);

  ViewEnumerationOptions enum_options;
  enum_options.numeric_bin_configs = {3, 4};
  auto views = EnumerateViews(*table, enum_options);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 250u);

  auto registry = UtilityFeatureRegistry::Default();
  auto matrix = FeatureMatrix::Build(&*table, *views, *query, &registry,
                                     FeatureMatrixOptions{});
  ASSERT_TRUE(matrix.ok());

  ExperimentConfig config;
  config.k = 5;
  config.max_labels = 80;
  config.seed = 9;
  auto r = RunSimulatedSession(*matrix, nullptr, Table2Presets()[1],
                               config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reached_target);
}

TEST(OptimizationEndToEnd, RefinementConvergesToExactRecommendations) {
  data::DiabetesOptions options;
  options.num_rows = 2000;
  options.seed = 31;
  auto table = data::GenerateDiabetes(options);
  ASSERT_TRUE(table.ok());
  auto query = data::SelectRows(
      *table, data::Compare("race", data::CompareOp::kEq,
                            data::Value("Caucasian")));
  ASSERT_TRUE(query.ok());
  auto views = *EnumerateViews(*table, {});
  auto registry = UtilityFeatureRegistry::Default();

  auto exact = FeatureMatrix::Build(&*table, views, *query, &registry,
                                    FeatureMatrixOptions{});
  ASSERT_TRUE(exact.ok());
  FeatureMatrixOptions rough_options;
  rough_options.sample_rate = 0.1;
  rough_options.seed = 71;
  auto rough = FeatureMatrix::Build(&*table, views, *query, &registry,
                                    rough_options);
  ASSERT_TRUE(rough.ok());

  ExperimentConfig config;
  config.k = 5;
  config.max_labels = 120;
  config.seed = 13;
  config.stop_on_ud_zero = true;
  config.refine = true;
  config.refine_views_per_iteration = 20;
  auto r = RunSimulatedSession(*exact, &*rough, Table2Presets()[1], config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reached_target);
  EXPECT_NEAR(r->final_ud, 0.0, 1e-9);
}

}  // namespace
}  // namespace vs::core
