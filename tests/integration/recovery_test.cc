/// Weight-recovery validation: after a converged session, the learned
/// view utility estimator should not merely rank views correctly — its
/// coefficients should recover the hidden u* weights themselves (up to the
/// user's normalization scale).  This is the strongest statement of the
/// paper's claim that ViewSeeker "discovers the utility function".

#include <cmath>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/seeker.h"
#include "core/simulated_user.h"
#include "core/utility_features.h"
#include "data/generator.h"
#include "data/predicate.h"

namespace vs::core {
namespace {

class WeightRecovery : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    data::DiabetesOptions options;
    options.num_rows = 3000;
    options.seed = 77;
    table_ = new data::Table(*data::GenerateDiabetes(options));
    query_ = new data::SelectionVector(*data::SelectRows(
        *table_, data::Compare("age_group", data::CompareOp::kEq,
                               data::Value("[70+)"))));
    registry_ = new UtilityFeatureRegistry(UtilityFeatureRegistry::Default());
    auto views = *EnumerateViews(*table_, {});
    matrix_ = new FeatureMatrix(*FeatureMatrix::Build(
        table_, views, *query_, registry_, FeatureMatrixOptions{}));
  }

  static void TearDownTestSuite() {
    delete matrix_;
    delete registry_;
    delete query_;
    delete table_;
  }

  static data::Table* table_;
  static data::SelectionVector* query_;
  static UtilityFeatureRegistry* registry_;
  static FeatureMatrix* matrix_;
};

data::Table* WeightRecovery::table_ = nullptr;
data::SelectionVector* WeightRecovery::query_ = nullptr;
UtilityFeatureRegistry* WeightRecovery::registry_ = nullptr;
FeatureMatrix* WeightRecovery::matrix_ = nullptr;

TEST_P(WeightRecovery, LearnedCoefficientsMatchHiddenWeights) {
  const auto presets = Table2Presets();
  const IdealUtilityFunction& ideal =
      presets[static_cast<size_t>(GetParam())];

  // Run a session with plenty of labels so the fit is well-determined.
  auto user = SimulatedUser::Make(&matrix_->normalized(), ideal);
  ASSERT_TRUE(user.ok());
  ViewSeekerOptions options;
  options.k = 5;
  options.seed = 13;
  auto seeker = ViewSeeker::Make(matrix_, options);
  ASSERT_TRUE(seeker.ok());
  for (int i = 0; i < 40 && seeker->num_unlabeled() > 0; ++i) {
    auto q = seeker->NextQueries();
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(seeker->SubmitLabel((*q)[0], *user->Label((*q)[0])).ok());
  }

  // The simulated user labels with u*(v) / max(u*), so the learned
  // coefficients should equal weights / max(u*).  Normalize both to sum 1
  // before comparing (Table 2 weights are non-negative and sum to 1).
  const ml::Vector& learned = seeker->utility_estimator().model().coefficients();
  double learned_sum = 0.0;
  for (double c : learned) learned_sum += std::max(c, 0.0);
  ASSERT_GT(learned_sum, 0.0);
  for (size_t j = 0; j < learned.size(); ++j) {
    const double normalized = std::max(learned[j], 0.0) / learned_sum;
    EXPECT_NEAR(normalized, ideal.weights()[j], 0.05)
        << ideal.name() << " feature "
        << UtilityFeatureName(static_cast<UtilityFeature>(j));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, WeightRecovery,
                         ::testing::Range(0, 11));

TEST(TrendFeatureTest, DetectsOppositeTrends) {
  auto trend = MakeTrendFeature();
  ViewMaterialization view;
  view.target_dist = stats::Distribution{{0.4, 0.3, 0.2, 0.1}};     // falling
  view.reference_dist = stats::Distribution{{0.1, 0.2, 0.3, 0.4}};  // rising
  auto opposite = trend(view);
  ASSERT_TRUE(opposite.ok());

  view.target_dist = stats::Distribution{{0.1, 0.2, 0.3, 0.4}};
  auto same = trend(view);
  ASSERT_TRUE(same.ok());
  EXPECT_GT(*opposite, *same);
  EXPECT_NEAR(*same, 0.0, 1e-12);
}

TEST(TrendFeatureTest, FlatDistributionsHaveZeroTrend) {
  auto trend = MakeTrendFeature();
  ViewMaterialization view;
  view.target_dist = stats::Distribution{{0.25, 0.25, 0.25, 0.25}};
  view.reference_dist = stats::Distribution{{0.25, 0.25, 0.25, 0.25}};
  auto r = trend(view);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.0, 1e-12);
}

TEST(TrendFeatureTest, RegistersAlongsideBuiltins) {
  auto registry = UtilityFeatureRegistry::Default();
  ASSERT_TRUE(registry.Register("TREND", MakeTrendFeature()).ok());
  EXPECT_EQ(registry.size(), 9u);
  EXPECT_EQ(*registry.IndexOf("TREND"), 8u);
}

}  // namespace
}  // namespace vs::core
