/// Property-based tests: parameterized sweeps (TEST_P) asserting the
/// system's invariants across wide input ranges rather than single
/// examples.

#include <cmath>

#include <gtest/gtest.h>

#include "active/strategy.h"
#include "common/random.h"
#include "core/experiment.h"
#include "core/ideal_utility.h"
#include "core/metrics.h"
#include "data/generator.h"
#include "data/groupby.h"
#include "data/predicate.h"
#include "data/sampler.h"
#include "stats/distance.h"
#include "stats/histogram.h"

namespace vs {
namespace {

// ---------------------------------------------------------------------------
// Distribution/distance properties over random inputs.

class DistanceProperty : public ::testing::TestWithParam<uint64_t> {};

stats::Distribution RandomDistribution(Rng* rng, size_t bins) {
  std::vector<double> v(bins);
  double total = 0.0;
  for (double& x : v) {
    x = rng->NextDouble() + 1e-6;
    total += x;
  }
  for (double& x : v) x /= total;
  return stats::Distribution{std::move(v)};
}

TEST_P(DistanceProperty, IdentityNonNegativityAndBounds) {
  Rng rng(GetParam());
  const size_t bins = 2 + rng.NextBounded(10);
  auto p = RandomDistribution(&rng, bins);
  auto q = RandomDistribution(&rng, bins);
  for (stats::DistanceKind kind : stats::AllDistanceKinds()) {
    const double d_pq = *stats::Distance(kind, p, q);
    const double d_pp = *stats::Distance(kind, p, p);
    EXPECT_GE(d_pq, 0.0) << stats::DistanceKindName(kind);
    EXPECT_NEAR(d_pp, 0.0, 1e-9) << stats::DistanceKindName(kind);
  }
  // Range bounds: L1 <= 2, MAX_DIFF <= 1, EMD <= bins-1.
  EXPECT_LE(*stats::L1Distance(p, q), 2.0 + 1e-12);
  EXPECT_LE(*stats::MaxDiff(p, q), 1.0 + 1e-12);
  EXPECT_LE(*stats::EarthMoversDistance(p, q),
            static_cast<double>(bins - 1) + 1e-12);
}

TEST_P(DistanceProperty, EmdDominatesHalfL1) {
  // For adjacent-bin ground distance, EMD >= L1/2 always holds.
  Rng rng(GetParam() ^ 0xabcdULL);
  const size_t bins = 2 + rng.NextBounded(8);
  auto p = RandomDistribution(&rng, bins);
  auto q = RandomDistribution(&rng, bins);
  EXPECT_GE(*stats::EarthMoversDistance(p, q) + 1e-12,
            *stats::L1Distance(p, q) / 2.0);
}

TEST_P(DistanceProperty, NormalizePreservesRatios) {
  Rng rng(GetParam() ^ 0x1234ULL);
  const size_t bins = 2 + rng.NextBounded(6);
  std::vector<double> raw(bins);
  for (double& x : raw) x = rng.NextDouble() * 100.0 + 0.1;
  auto d = stats::Normalize(raw);
  ASSERT_TRUE(d.ok());
  // Ratios between bins must be preserved by Eq. 5.
  for (size_t i = 1; i < bins; ++i) {
    EXPECT_NEAR(d->p[i] / d->p[0], raw[i] / raw[0], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceProperty,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Group-by partition properties: bins partition the selection.

class GroupByProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroupByProperty, CountsPartitionSelection) {
  data::DiabetesOptions options;
  options.num_rows = 1000;
  options.seed = static_cast<uint64_t>(GetParam());
  auto table = data::GenerateDiabetes(options);
  ASSERT_TRUE(table.ok());
  Rng rng(GetParam());
  auto selection = data::BernoulliSample(table->num_rows(), 0.3, &rng);

  data::GroupByExecutor executor(&*table);
  for (const char* dim : {"gender", "race", "age_group"}) {
    auto r = executor.Execute(
        {dim, "time_in_hospital", data::AggregateFunction::kCount, 0},
        &selection);
    ASSERT_TRUE(r.ok());
    int64_t total = 0;
    for (int64_t c : r->counts) total += c;
    // No nulls in generated data: bins exactly partition the selection.
    EXPECT_EQ(total, static_cast<int64_t>(selection.size())) << dim;
  }
}

TEST_P(GroupByProperty, SumDecomposesOverBins) {
  data::SyntheticOptions options;
  options.num_rows = 2000;
  options.seed = static_cast<uint64_t>(GetParam()) + 100;
  auto table = data::GenerateSynthetic(options);
  ASSERT_TRUE(table.ok());
  data::GroupByExecutor executor(&*table);
  auto r = executor.Execute(
      {"d0", "m0", data::AggregateFunction::kSum, 4}, nullptr);
  ASSERT_TRUE(r.ok());
  double total = 0.0;
  for (double v : r->values) total += v;
  // Direct sum over the column.
  const auto* m0 = *table->DoubleColumnByName("m0");
  double expected = 0.0;
  for (double v : m0->data()) expected += v;
  EXPECT_NEAR(total, expected, 1e-6);
}

TEST_P(GroupByProperty, AvgIsBetweenMinAndMax) {
  data::SyntheticOptions options;
  options.num_rows = 500;
  options.seed = static_cast<uint64_t>(GetParam()) + 200;
  auto table = data::GenerateSynthetic(options);
  data::GroupByExecutor executor(&*table);
  auto avg = executor.Execute({"d1", "m2", data::AggregateFunction::kAvg, 3},
                              nullptr);
  auto lo = executor.Execute({"d1", "m2", data::AggregateFunction::kMin, 3},
                             nullptr);
  auto hi = executor.Execute({"d1", "m2", data::AggregateFunction::kMax, 3},
                             nullptr);
  ASSERT_TRUE(avg.ok() && lo.ok() && hi.ok());
  for (size_t b = 0; b < avg->num_bins(); ++b) {
    if (avg->counts[b] == 0) continue;
    EXPECT_GE(avg->values[b], lo->values[b] - 1e-12);
    EXPECT_LE(avg->values[b], hi->values[b] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Sampler statistical properties across rates.

class SamplerProperty : public ::testing::TestWithParam<double> {};

TEST_P(SamplerProperty, BernoulliRateWithinTolerance) {
  const double rate = GetParam();
  Rng rng(static_cast<uint64_t>(rate * 1000) + 7);
  const size_t n = 50000;
  auto sel = data::BernoulliSample(n, rate, &rng);
  EXPECT_NEAR(static_cast<double>(sel.size()) / n, rate, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplerProperty,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5,
                                           0.75, 0.9));

// ---------------------------------------------------------------------------
// Metric invariants across random score vectors.

class MetricsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsProperty, PrecisionAndUdConsistency) {
  Rng rng(GetParam());
  const size_t n = 10 + rng.NextBounded(40);
  std::vector<double> scores(n);
  for (double& s : scores) s = rng.NextDouble();
  const size_t k = 1 + rng.NextBounded(n / 2);

  auto ideal = core::TopKIndices(scores, k);
  // UD of the ideal set against itself is 0; precision 1.
  EXPECT_DOUBLE_EQ(*core::TopKPrecision(ideal, ideal), 1.0);
  EXPECT_DOUBLE_EQ(*core::UtilityDistance(scores, ideal, ideal), 0.0);

  // Any other same-size set: UD >= 0, precision in [0, 1].
  std::vector<size_t> other;
  for (size_t i = 0; i < k; ++i) other.push_back((i * 7 + 3) % n);
  const double precision = *core::TopKPrecision(other, ideal);
  EXPECT_GE(precision, 0.0);
  EXPECT_LE(precision, 1.0);
  EXPECT_GE(*core::UtilityDistance(scores, other, ideal), 0.0);
}

TEST_P(MetricsProperty, PerfectPrecisionImpliesZeroUd) {
  Rng rng(GetParam() ^ 0x77ULL);
  const size_t n = 20;
  std::vector<double> scores(n);
  for (double& s : scores) s = rng.NextDouble();
  auto ideal = core::TopKIndices(scores, 5);
  std::vector<size_t> shuffled = ideal;
  std::swap(shuffled[0], shuffled[4]);
  EXPECT_DOUBLE_EQ(*core::TopKPrecision(shuffled, ideal), 1.0);
  EXPECT_NEAR(*core::UtilityDistance(scores, shuffled, ideal), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Range<uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Session-level property: convergence holds across every Table 2 preset.

class SessionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SessionProperty, EveryTable2PresetConvergesOnDiabMini) {
  static data::Table* table = [] {
    data::DiabetesOptions options;
    options.num_rows = 1500;
    options.seed = 5;
    return new data::Table(*data::GenerateDiabetes(options));
  }();
  static data::SelectionVector* query = [] {
    return new data::SelectionVector(*data::SelectRows(
        *table, data::Compare("gender", data::CompareOp::kEq,
                              data::Value("Female"))));
  }();
  static core::UtilityFeatureRegistry* registry = [] {
    return new core::UtilityFeatureRegistry(
        core::UtilityFeatureRegistry::Default());
  }();
  static core::FeatureMatrix* matrix = [] {
    auto views = *core::EnumerateViews(*table, {});
    return new core::FeatureMatrix(*core::FeatureMatrix::Build(
        table, views, *query, registry, core::FeatureMatrixOptions{}));
  }();

  const auto presets = core::Table2Presets();
  const auto& ideal = presets[static_cast<size_t>(GetParam())];
  core::ExperimentConfig config;
  config.k = 5;
  config.max_labels = 120;
  config.seed = 17;
  auto r = core::RunSimulatedSession(*matrix, nullptr, ideal, config);
  ASSERT_TRUE(r.ok()) << ideal.name();
  EXPECT_GE(r->final_precision, 0.8) << ideal.name();
}

INSTANTIATE_TEST_SUITE_P(AllPresets, SessionProperty,
                         ::testing::Range(0, 11));

// ---------------------------------------------------------------------------
// Every query strategy must drive a session to convergence on a
// realizable ideal utility function.

class StrategySessionProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(StrategySessionProperty, ConvergesOnDiabMini) {
  static data::Table* table = [] {
    data::DiabetesOptions options;
    options.num_rows = 1200;
    options.seed = 21;
    return new data::Table(*data::GenerateDiabetes(options));
  }();
  static core::UtilityFeatureRegistry* registry = [] {
    return new core::UtilityFeatureRegistry(
        core::UtilityFeatureRegistry::Default());
  }();
  static core::FeatureMatrix* matrix = [] {
    auto query = *data::SelectRows(
        *table, data::Compare("race", data::CompareOp::kEq,
                              data::Value("Hispanic")));
    auto views = *core::EnumerateViews(*table, {});
    return new core::FeatureMatrix(*core::FeatureMatrix::Build(
        table, views, query, registry, core::FeatureMatrixOptions{}));
  }();

  core::ExperimentConfig config;
  config.k = 5;
  config.strategy = GetParam();
  config.max_labels = 120;
  config.seed = 7;
  auto r = core::RunSimulatedSession(*matrix, nullptr,
                                     core::Table2Presets()[3], config);
  ASSERT_TRUE(r.ok()) << GetParam();
  EXPECT_TRUE(r->reached_target) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySessionProperty,
    ::testing::ValuesIn(vs::active::AllStrategyNames()));

}  // namespace
}  // namespace vs
