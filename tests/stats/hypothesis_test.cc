#include "stats/hypothesis.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vs::stats {
namespace {

Distribution Uniform(size_t n) {
  Distribution d;
  d.p.assign(n, 1.0 / static_cast<double>(n));
  return d;
}

TEST(ChiSquareGofTest, PerfectFitHasHighPValue) {
  // Observed exactly proportional to expected: statistic 0, p = 1.
  auto r = ChiSquareGoodnessOfFit({25, 25, 25, 25}, Uniform(4));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 0.0, 1e-12);
  EXPECT_NEAR(r->p_value, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->dof, 3.0);
}

TEST(ChiSquareGofTest, ExtremeDeviationHasLowPValue) {
  auto r = ChiSquareGoodnessOfFit({100, 0, 0, 0}, Uniform(4));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->statistic, 100.0);
  EXPECT_LT(r->p_value, 1e-10);
}

TEST(ChiSquareGofTest, KnownStatistic) {
  // Observed {30, 20}, expected uniform over 50: chi2 = (5^2/25)*2 = 2.
  auto r = ChiSquareGoodnessOfFit({30, 20}, Uniform(2));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->dof, 1.0);
  // p = P(chi2_1 > 2) ~ 0.1573.
  EXPECT_NEAR(r->p_value, 0.1573, 1e-3);
}

TEST(ChiSquareGofTest, MoreExtremeMeansSmallerP) {
  double prev = 1.1;
  for (int64_t shift : {0, 5, 10, 20}) {
    auto r = ChiSquareGoodnessOfFit({50 + shift, 50 - shift}, Uniform(2));
    ASSERT_TRUE(r.ok());
    EXPECT_LT(r->p_value, prev);
    prev = r->p_value;
  }
}

TEST(ChiSquareGofTest, ZeroExpectedMassWithObservedIsPZero) {
  Distribution expected{{1.0, 0.0}};
  auto r = ChiSquareGoodnessOfFit({5, 5}, expected, 1e-12);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->p_value, 0.0);
}

TEST(ChiSquareGofTest, ErrorsOnBadInputs) {
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1, 2}, Uniform(3)).ok());  // length
  EXPECT_FALSE(ChiSquareGoodnessOfFit({}, Uniform(0)).ok());      // empty
  EXPECT_FALSE(ChiSquareGoodnessOfFit({-1, 2}, Uniform(2)).ok()); // negative
  auto zero_total = ChiSquareGoodnessOfFit({0, 0}, Uniform(2));
  EXPECT_FALSE(zero_total.ok());
  EXPECT_TRUE(zero_total.status().IsFailedPrecondition());
}

TEST(ChiSquareGofTest, SingleEffectiveBinIsFailedPrecondition) {
  Distribution expected{{1.0}};
  auto r = ChiSquareGoodnessOfFit({10}, expected);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(ChiSquareGofTest, CalibrationUnderNull) {
  // Sampling from the null: p-values should exceed 0.05 about 95% of the
  // time.
  vs::Rng rng(99);
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<int64_t> counts(4, 0);
    for (int i = 0; i < 400; ++i) ++counts[rng.NextBounded(4)];
    auto r = ChiSquareGoodnessOfFit(counts, Uniform(4));
    ASSERT_TRUE(r.ok());
    if (r->p_value < 0.05) ++rejections;
  }
  EXPECT_NEAR(static_cast<double>(rejections) / trials, 0.05, 0.04);
}

TEST(OneBinZTest, CenteredProportionHasHighP) {
  auto r = OneBinZTest(50, 100, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 0.0, 1e-12);
  EXPECT_NEAR(r->p_value, 1.0, 1e-12);
}

TEST(OneBinZTest, KnownZScore) {
  // phat = 0.6, p0 = 0.5, n = 100: z = 0.1 / sqrt(0.25/100) = 2.
  auto r = OneBinZTest(60, 100, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 2.0, 1e-12);
  EXPECT_NEAR(r->p_value, 0.0455, 1e-3);
}

TEST(OneBinZTest, SymmetricInDirection) {
  auto hi = OneBinZTest(70, 100, 0.5);
  auto lo = OneBinZTest(30, 100, 0.5);
  EXPECT_NEAR(hi->p_value, lo->p_value, 1e-12);
}

TEST(OneBinZTest, InvalidInputs) {
  EXPECT_FALSE(OneBinZTest(5, 0, 0.5).ok());
  EXPECT_FALSE(OneBinZTest(-1, 10, 0.5).ok());
  EXPECT_FALSE(OneBinZTest(11, 10, 0.5).ok());
  EXPECT_FALSE(OneBinZTest(5, 10, 0.0).ok());
  EXPECT_FALSE(OneBinZTest(5, 10, 1.0).ok());
}

}  // namespace
}  // namespace vs::stats
