#include "stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vs::stats {
namespace {

TEST(GammaTest, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(*RegularizedGammaP(a, x) + *RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(*RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(*RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(*RegularizedGammaP(1.0, 700.0), 1.0, 1e-12);
}

TEST(GammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(*RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 10.0; x += 0.3) {
    const double p = *RegularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GammaTest, InvalidArguments) {
  EXPECT_FALSE(RegularizedGammaP(0.0, 1.0).ok());
  EXPECT_FALSE(RegularizedGammaP(-1.0, 1.0).ok());
  EXPECT_FALSE(RegularizedGammaP(1.0, -0.5).ok());
  EXPECT_FALSE(RegularizedGammaQ(0.0, 1.0).ok());
}

TEST(ChiSquareTest, KnownQuantiles) {
  // Standard chi-square table values: P(X <= x) for given dof.
  // dof=1, x=3.841 -> CDF ~ 0.95
  EXPECT_NEAR(*ChiSquareCdf(3.841, 1.0), 0.95, 1e-3);
  // dof=2, x=5.991 -> 0.95
  EXPECT_NEAR(*ChiSquareCdf(5.991, 2.0), 0.95, 1e-3);
  // dof=5, x=11.070 -> 0.95
  EXPECT_NEAR(*ChiSquareCdf(11.070, 5.0), 0.95, 1e-3);
  // dof=10, x=18.307 -> 0.95
  EXPECT_NEAR(*ChiSquareCdf(18.307, 10.0), 0.95, 1e-3);
}

TEST(ChiSquareTest, ChiSquare2DofIsExponential) {
  // With dof=2 the chi-square CDF is 1 - e^{-x/2}.
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(*ChiSquareCdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquareTest, SfComplementsCdf) {
  EXPECT_NEAR(*ChiSquareSf(4.2, 3.0) + *ChiSquareCdf(4.2, 3.0), 1.0, 1e-12);
}

TEST(ChiSquareTest, NegativeXClamps) {
  EXPECT_DOUBLE_EQ(*ChiSquareCdf(-1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(*ChiSquareSf(-1.0, 2.0), 1.0);
}

TEST(ChiSquareTest, InvalidDof) {
  EXPECT_FALSE(ChiSquareCdf(1.0, 0.0).ok());
  EXPECT_FALSE(ChiSquareSf(1.0, -2.0).ok());
}

TEST(NormalTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447461, 1e-8);
}

TEST(NormalTest, SfComplementsCdf) {
  for (double x : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
    EXPECT_NEAR(NormalCdf(x) + NormalSf(x), 1.0, 1e-12);
  }
}

TEST(NormalTest, TailAccuracy) {
  // Sf(6) ~ 9.87e-10; direct 1-CDF would lose precision.
  EXPECT_NEAR(NormalSf(6.0) / 9.865876e-10, 1.0, 1e-4);
}

TEST(NormalTest, Symmetry) {
  for (double x : {0.3, 1.7, 2.9}) {
    EXPECT_NEAR(NormalCdf(-x), NormalSf(x), 1e-14);
  }
}

}  // namespace
}  // namespace vs::stats
