#include "stats/distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace vs::stats {
namespace {

Distribution D(std::vector<double> p) { return Distribution{std::move(p)}; }

TEST(DistanceTest, IdenticalDistributionsHaveZeroDistance) {
  Distribution p = D({0.25, 0.25, 0.5});
  for (DistanceKind kind : AllDistanceKinds()) {
    auto d = Distance(kind, p, p);
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR(*d, 0.0, 1e-9) << DistanceKindName(kind);
  }
}

TEST(DistanceTest, L1KnownValue) {
  EXPECT_DOUBLE_EQ(*L1Distance(D({1.0, 0.0}), D({0.0, 1.0})), 2.0);
  EXPECT_DOUBLE_EQ(*L1Distance(D({0.5, 0.5}), D({0.25, 0.75})), 0.5);
}

TEST(DistanceTest, L2KnownValue) {
  EXPECT_DOUBLE_EQ(*L2Distance(D({1.0, 0.0}), D({0.0, 1.0})),
                   std::sqrt(2.0));
}

TEST(DistanceTest, MaxDiffKnownValue) {
  EXPECT_DOUBLE_EQ(*MaxDiff(D({0.5, 0.3, 0.2}), D({0.1, 0.3, 0.6})), 0.4);
}

TEST(DistanceTest, EmdKnownValues) {
  // Moving all mass one bin over costs 1.
  EXPECT_DOUBLE_EQ(*EarthMoversDistance(D({1.0, 0.0}), D({0.0, 1.0})), 1.0);
  // Two bins over costs 2.
  EXPECT_DOUBLE_EQ(
      *EarthMoversDistance(D({1.0, 0.0, 0.0}), D({0.0, 0.0, 1.0})), 2.0);
  // Half the mass one bin over costs 0.5.
  EXPECT_DOUBLE_EQ(*EarthMoversDistance(D({1.0, 0.0}), D({0.5, 0.5})), 0.5);
}

TEST(DistanceTest, KlIsAsymmetric) {
  Distribution p = D({0.9, 0.1});
  Distribution q = D({0.5, 0.5});
  double pq = *KlDivergence(p, q, 0.0);
  double qp = *KlDivergence(q, p, 0.0);
  EXPECT_NE(pq, qp);
  EXPECT_GT(pq, 0.0);
  EXPECT_GT(qp, 0.0);
}

TEST(DistanceTest, KlKnownValue) {
  // D(p||q) with p = (1/2,1/2), q = (1/4,3/4):
  // 0.5*ln(2) + 0.5*ln(2/3)
  const double expected = 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0);
  EXPECT_NEAR(*KlDivergence(D({0.5, 0.5}), D({0.25, 0.75}), 0.0), expected,
              1e-12);
}

TEST(DistanceTest, KlSmoothingHandlesZeroReferenceMass) {
  Distribution p = D({0.5, 0.5});
  Distribution q = D({1.0, 0.0});
  // Unsmoothed: undefined (error).
  EXPECT_FALSE(KlDivergence(p, q, 0.0).ok());
  // Smoothed: finite.
  auto smoothed = KlDivergence(p, q, 1e-6);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_TRUE(std::isfinite(*smoothed));
  EXPECT_GT(*smoothed, 0.0);
}

TEST(DistanceTest, SymmetricDistancesAreSymmetric) {
  vs::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> pv(4);
    std::vector<double> qv(4);
    double ps = 0.0;
    double qs = 0.0;
    for (int i = 0; i < 4; ++i) {
      pv[i] = rng.NextDouble() + 0.01;
      qv[i] = rng.NextDouble() + 0.01;
      ps += pv[i];
      qs += qv[i];
    }
    for (int i = 0; i < 4; ++i) {
      pv[i] /= ps;
      qv[i] /= qs;
    }
    Distribution p = D(pv);
    Distribution q = D(qv);
    for (DistanceKind kind :
         {DistanceKind::kEMD, DistanceKind::kL1, DistanceKind::kL2,
          DistanceKind::kMaxDiff}) {
      EXPECT_NEAR(*Distance(kind, p, q), *Distance(kind, q, p), 1e-12)
          << DistanceKindName(kind);
    }
  }
}

TEST(DistanceTest, NonNegativity) {
  vs::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> pv(5);
    std::vector<double> qv(5);
    double ps = 0.0;
    double qs = 0.0;
    for (int i = 0; i < 5; ++i) {
      pv[i] = rng.NextDouble();
      qv[i] = rng.NextDouble();
      ps += pv[i];
      qs += qv[i];
    }
    for (int i = 0; i < 5; ++i) {
      pv[i] /= ps;
      qv[i] /= qs;
    }
    for (DistanceKind kind : AllDistanceKinds()) {
      EXPECT_GE(*Distance(kind, D(pv), D(qv)), 0.0)
          << DistanceKindName(kind);
    }
  }
}

TEST(DistanceTest, TriangleInequalityForMetrics) {
  vs::Rng rng(11);
  auto random_dist = [&rng]() {
    std::vector<double> v(4);
    double s = 0.0;
    for (double& x : v) {
      x = rng.NextDouble() + 0.01;
      s += x;
    }
    for (double& x : v) x /= s;
    return D(v);
  };
  for (int trial = 0; trial < 30; ++trial) {
    Distribution a = random_dist();
    Distribution b = random_dist();
    Distribution c = random_dist();
    for (DistanceKind kind :
         {DistanceKind::kEMD, DistanceKind::kL1, DistanceKind::kL2,
          DistanceKind::kMaxDiff}) {
      const double ab = *Distance(kind, a, b);
      const double bc = *Distance(kind, b, c);
      const double ac = *Distance(kind, a, c);
      EXPECT_LE(ac, ab + bc + 1e-12) << DistanceKindName(kind);
    }
  }
}

TEST(DistanceTest, MaxDiffBoundsL2BoundsL1) {
  // For any p, q: max_diff <= L2 <= L1.
  Distribution p = D({0.7, 0.2, 0.1});
  Distribution q = D({0.2, 0.3, 0.5});
  const double l1 = *L1Distance(p, q);
  const double l2 = *L2Distance(p, q);
  const double md = *MaxDiff(p, q);
  EXPECT_LE(md, l2 + 1e-12);
  EXPECT_LE(l2, l1 + 1e-12);
}

TEST(DistanceTest, ShapeMismatchRejected) {
  Distribution p = D({0.5, 0.5});
  Distribution q = D({1.0});
  for (DistanceKind kind : AllDistanceKinds()) {
    EXPECT_FALSE(Distance(kind, p, q).ok()) << DistanceKindName(kind);
  }
}

TEST(DistanceTest, EmptyDistributionsRejected) {
  Distribution e = D({});
  EXPECT_FALSE(L1Distance(e, e).ok());
}

TEST(DistanceTest, BadSmoothingRejected) {
  Distribution p = D({0.5, 0.5});
  EXPECT_FALSE(KlDivergence(p, p, -0.1).ok());
  EXPECT_FALSE(KlDivergence(p, p, 1.0).ok());
}

TEST(DistanceKindTest, NamesRoundTrip) {
  for (DistanceKind kind : AllDistanceKinds()) {
    auto parsed = ParseDistanceKind(DistanceKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseDistanceKind("hellinger").ok());
}

}  // namespace
}  // namespace vs::stats
