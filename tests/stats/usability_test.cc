#include "stats/usability.h"

#include <gtest/gtest.h>

namespace vs::stats {
namespace {

TEST(UsabilityTest, FewerOccupiedBinsIsMoreUsable) {
  EXPECT_DOUBLE_EQ(UsabilityFromCounts({10, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(UsabilityFromCounts({5, 5, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(UsabilityFromCounts({1, 1, 1, 1}), 0.25);
}

TEST(UsabilityTest, AllEmptyClampsToOne) {
  EXPECT_DOUBLE_EQ(UsabilityFromCounts({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(UsabilityFromCounts({}), 1.0);
}

TEST(UsabilityTest, MonotoneInOccupancy) {
  double prev = 2.0;
  for (int occupied = 1; occupied <= 8; ++occupied) {
    std::vector<int64_t> counts(8, 0);
    for (int i = 0; i < occupied; ++i) counts[i] = 1;
    const double u = UsabilityFromCounts(counts);
    EXPECT_LT(u, prev);
    prev = u;
  }
}

BinMoments MakeMoments(std::vector<std::vector<double>> bins) {
  BinMoments m;
  for (const auto& bin : bins) {
    double sum = 0.0;
    double sumsq = 0.0;
    for (double v : bin) {
      sum += v;
      sumsq += v * v;
    }
    m.sum.push_back(sum);
    m.sumsq.push_back(sumsq);
    m.count.push_back(static_cast<int64_t>(bin.size()));
  }
  return m;
}

TEST(WithinBinSseTest, ZeroWhenBinsAreConstant) {
  auto m = MakeMoments({{3.0, 3.0, 3.0}, {7.0, 7.0}});
  EXPECT_NEAR(*WithinBinSse(m), 0.0, 1e-12);
}

TEST(WithinBinSseTest, KnownValue) {
  // Bin {1, 3}: mean 2, SSE 2.  Bin {10}: SSE 0.
  auto m = MakeMoments({{1.0, 3.0}, {10.0}});
  EXPECT_NEAR(*WithinBinSse(m), 2.0, 1e-12);
}

TEST(WithinBinSseTest, EmptyBinsContributeNothing) {
  auto m = MakeMoments({{}, {2.0, 4.0}, {}});
  EXPECT_NEAR(*WithinBinSse(m), 2.0, 1e-12);
}

TEST(WithinBinSseTest, MismatchedArraysRejected) {
  BinMoments m;
  m.sum = {1.0};
  m.sumsq = {1.0, 2.0};
  m.count = {1};
  EXPECT_FALSE(WithinBinSse(m).ok());
}

TEST(AccuracyTest, PerfectGroupingScoresOne) {
  // Bins perfectly separate the values: within-bin variance 0.
  auto m = MakeMoments({{1.0, 1.0}, {5.0, 5.0}});
  EXPECT_NEAR(*AccuracyFromMoments(m), 1.0, 1e-12);
}

TEST(AccuracyTest, UselessGroupingScoresLow) {
  // Both bins contain the same spread: grouping explains nothing.
  auto m = MakeMoments({{0.0, 10.0}, {0.0, 10.0}});
  EXPECT_NEAR(*AccuracyFromMoments(m), 0.0, 1e-12);
}

TEST(AccuracyTest, IntermediateGrouping) {
  // Bins {1,2} and {8,9}: SST = 2*(4.5^2 + 3.5^2)... compute R^2 directly.
  auto m = MakeMoments({{1.0, 2.0}, {8.0, 9.0}});
  const double accuracy = *AccuracyFromMoments(m);
  EXPECT_GT(accuracy, 0.9);
  EXPECT_LT(accuracy, 1.0);
}

TEST(AccuracyTest, DegenerateCasesScoreOne) {
  // No rows at all.
  auto empty = MakeMoments({{}, {}});
  EXPECT_DOUBLE_EQ(*AccuracyFromMoments(empty), 1.0);
  // All values identical (SST = 0).
  auto constant = MakeMoments({{2.0, 2.0}, {2.0}});
  EXPECT_DOUBLE_EQ(*AccuracyFromMoments(constant), 1.0);
}

TEST(AccuracyTest, AlwaysInUnitInterval) {
  auto m = MakeMoments({{1.0, 9.0, 4.0}, {2.0, 2.5}, {100.0}});
  const double a = *AccuracyFromMoments(m);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

}  // namespace
}  // namespace vs::stats
