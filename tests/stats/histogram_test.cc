#include "stats/histogram.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace vs::stats {
namespace {

TEST(NormalizeTest, BasicEq5) {
  auto d = Normalize({1.0, 3.0, 4.0, 2.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->p[0], 0.1);
  EXPECT_DOUBLE_EQ(d->p[1], 0.3);
  EXPECT_DOUBLE_EQ(d->p[2], 0.4);
  EXPECT_DOUBLE_EQ(d->p[3], 0.2);
  EXPECT_TRUE(IsValidDistribution(*d));
}

TEST(NormalizeTest, SumsToOneForArbitraryInput) {
  auto d = Normalize({0.013, 7.0, 123.456, 1e-9, 42.0});
  ASSERT_TRUE(d.ok());
  double total = 0.0;
  for (double p : d->p) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NormalizeTest, AllZerosBecomesUniform) {
  auto d = Normalize({0.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(d.ok());
  for (double p : d->p) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(NormalizeTest, NegativeValuesShifted) {
  // Values {-1, 0, 1} shift to {0, 1, 2} -> {0, 1/3, 2/3}.
  auto d = Normalize({-1.0, 0.0, 1.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->p[0], 0.0);
  EXPECT_NEAR(d->p[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(d->p[2], 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(IsValidDistribution(*d));
}

TEST(NormalizeTest, AllEqualNegativesBecomeUniform) {
  auto d = Normalize({-2.0, -2.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->p[0], 0.5);
  EXPECT_DOUBLE_EQ(d->p[1], 0.5);
}

TEST(NormalizeTest, SingleBin) {
  auto d = Normalize({5.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->p[0], 1.0);
}

TEST(NormalizeTest, EmptyIsError) {
  EXPECT_FALSE(Normalize({}).ok());
}

TEST(NormalizeTest, NonFiniteIsError) {
  EXPECT_FALSE(Normalize({1.0, std::numeric_limits<double>::infinity()}).ok());
  EXPECT_FALSE(Normalize({std::nan(""), 1.0}).ok());
}

TEST(IsValidDistributionTest, DetectsViolations) {
  Distribution good{{0.5, 0.5}};
  EXPECT_TRUE(IsValidDistribution(good));
  Distribution not_summing{{0.5, 0.4}};
  EXPECT_FALSE(IsValidDistribution(not_summing));
  Distribution negative{{1.5, -0.5}};
  EXPECT_FALSE(IsValidDistribution(negative));
}

TEST(IsValidDistributionTest, ToleranceRespected) {
  Distribution close{{0.5, 0.5 + 1e-10}};
  EXPECT_TRUE(IsValidDistribution(close, 1e-9));
  EXPECT_FALSE(IsValidDistribution(close, 1e-12));
}

}  // namespace
}  // namespace vs::stats
