#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace vs::stats {
namespace {

TEST(RunningStatsTest, EmptyState) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  vs::Rng rng(3);
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextGaussian() * 3.0 + 1.0;
    (i < 200 ? a : b).Add(v);
    whole.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  a.Add(1.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStatsTest, NumericalStabilityWithLargeOffset) {
  // Naive sum-of-squares would catastrophically cancel here.
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(MeanVarianceTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(*Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(*Variance({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(*Variance({0.0, 2.0}), 1.0);
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_FALSE(Variance({}).ok());
}

TEST(SseTest, KnownValuesAndErrors) {
  EXPECT_DOUBLE_EQ(*SumSquaredError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(*SumSquaredError({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_FALSE(SumSquaredError({1.0}, {1.0, 2.0}).ok());
  EXPECT_DOUBLE_EQ(*SumSquaredError({}, {}), 0.0);
}

}  // namespace
}  // namespace vs::stats
