#include "ml/linear_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace vs::ml {
namespace {

TEST(LinearRegressionTest, RecoversExactLinearFunction) {
  // y = 1.5 + 2*x0 - 3*x1, noise-free.
  vs::Rng rng(1);
  Matrix x(50, 2);
  Vector y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = 1.5 + 2.0 * x(i, 0) - 3.0 * x(i, 1);
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.intercept(), 1.5, 1e-4);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-4);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 1e-4);
}

TEST(LinearRegressionTest, PredictMatchesManualEvaluation) {
  LinearRegression model;
  model.SetParameters({2.0, -1.0}, 0.5);
  auto p = model.Predict({3.0, 4.0});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.5 + 6.0 - 4.0);
}

TEST(LinearRegressionTest, PredictBatchMatchesPredict) {
  vs::Rng rng(2);
  Matrix x(10, 3);
  Vector y(10);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto batch = model.PredictBatch(x);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR((*batch)[i], *model.Predict(x.Row(i)), 1e-12);
  }
}

TEST(LinearRegressionTest, SingleLabelFitsWithRidge) {
  // The cold-start regime: 1 example, 8 features.  Ridge keeps this
  // solvable.
  Matrix x(1, 8);
  for (size_t j = 0; j < 8; ++j) x(0, j) = 0.1 * static_cast<double>(j);
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, {0.7}).ok());
  auto p = model.Predict(x.Row(0));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.7, 1e-6);
}

TEST(LinearRegressionTest, InterceptNotShrunkByRidge) {
  // Targets offset by a large constant; with centering the intercept must
  // absorb it fully even under strong ridge.
  LinearRegressionOptions options;
  options.l2 = 100.0;
  Matrix x = {{0.0}, {1.0}, {2.0}, {3.0}};
  Vector y = {1000.0, 1000.0, 1000.0, 1000.0};
  LinearRegression model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(*model.Predict({1.5}), 1000.0, 1e-9);
}

TEST(LinearRegressionTest, NoInterceptOption) {
  LinearRegressionOptions options;
  options.fit_intercept = false;
  Matrix x = {{1.0}, {2.0}, {3.0}};
  Vector y = {2.0, 4.0, 6.0};
  LinearRegression model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(model.intercept(), 0.0);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-6);
}

TEST(LinearRegressionTest, NonnegativeConstraintActivates) {
  // True relationship has a negative weight; constrained fit must clamp it
  // to zero.
  vs::Rng rng(3);
  Matrix x(100, 2);
  Vector y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = 2.0 * x(i, 0) - 1.0 * x(i, 1);
  }
  LinearRegressionOptions options;
  options.nonnegative = true;
  LinearRegression model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GE(model.coefficients()[0], 0.0);
  EXPECT_GE(model.coefficients()[1], 0.0);
  EXPECT_NEAR(model.coefficients()[1], 0.0, 1e-9);
  EXPECT_GT(model.coefficients()[0], 1.0);
}

TEST(LinearRegressionTest, NonnegativeKeepsPositiveSolutionUnchanged) {
  vs::Rng rng(4);
  Matrix x(80, 2);
  Vector y(80);
  for (size_t i = 0; i < 80; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = 0.4 * x(i, 0) + 0.6 * x(i, 1);
  }
  LinearRegressionOptions options;
  options.nonnegative = true;
  LinearRegression model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.coefficients()[0], 0.4, 1e-3);
  EXPECT_NEAR(model.coefficients()[1], 0.6, 1e-3);
}

TEST(LinearRegressionTest, ErrorsOnBadInputs) {
  LinearRegression model;
  EXPECT_FALSE(model.Fit(Matrix(), {}).ok());
  EXPECT_FALSE(model.Fit(Matrix(2, 1), {1.0}).ok());
  EXPECT_FALSE(model.fitted());
  EXPECT_FALSE(model.Predict({1.0}).ok());
  EXPECT_FALSE(model.PredictBatch(Matrix(1, 1)).ok());

  LinearRegressionOptions bad;
  bad.l2 = -1.0;
  LinearRegression bad_model(bad);
  EXPECT_FALSE(bad_model.Fit(Matrix(1, 1), {1.0}).ok());
}

TEST(LinearRegressionTest, WidthMismatchAfterFit) {
  Matrix x = {{1.0, 2.0}};
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, {1.0}).ok());
  EXPECT_FALSE(model.Predict({1.0}).ok());
  EXPECT_FALSE(model.PredictBatch(Matrix(1, 3)).ok());
}

TEST(LinearRegressionTest, RefitReplacesModel) {
  Matrix x1 = {{1.0}, {2.0}};
  Matrix x2 = {{1.0}, {2.0}};
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x1, {1.0, 2.0}).ok());
  const double before = *model.Predict({1.5});
  ASSERT_TRUE(model.Fit(x2, {10.0, 20.0}).ok());
  const double after = *model.Predict({1.5});
  EXPECT_NEAR(after, 10.0 * before, 1e-6);
}

TEST(LinearRegressionTest, NoisyFitIsClose) {
  vs::Rng rng(5);
  Matrix x(500, 1);
  Vector y(500);
  for (size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.NextDouble() * 10.0;
    y[i] = 3.0 * x(i, 0) + 1.0 + 0.1 * rng.NextGaussian();
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.coefficients()[0], 3.0, 0.02);
  EXPECT_NEAR(model.intercept(), 1.0, 0.05);
}

}  // namespace
}  // namespace vs::ml
