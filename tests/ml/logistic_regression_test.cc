#include "ml/logistic_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace vs::ml {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(0.0), 0.5);
  EXPECT_NEAR(LogisticRegression::Sigmoid(2.0), 0.88079707797788, 1e-12);
  EXPECT_NEAR(LogisticRegression::Sigmoid(-2.0),
              1.0 - LogisticRegression::Sigmoid(2.0), 1e-12);
  // Extreme inputs must not overflow.
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(-1000.0), 0.0);
}

TEST(LogisticRegressionTest, SeparatesLinearlySeparableData) {
  Matrix x(20, 1);
  Vector y(20);
  for (size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i) / 20.0;
    y[i] = i < 10 ? 0.0 : 1.0;
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(*model.PredictProba({0.05}), 0.5);
  EXPECT_GT(*model.PredictProba({0.95}), 0.5);
}

TEST(LogisticRegressionTest, RecoversGenerativeModel) {
  // Labels drawn from sigmoid(2x - 1): fitted probabilities should track.
  vs::Rng rng(7);
  const size_t n = 5000;
  Matrix x(n, 1);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.NextDouble() * 4.0 - 2.0;
    const double p = LogisticRegression::Sigmoid(2.0 * x(i, 0) - 1.0);
    y[i] = rng.NextBernoulli(p) ? 1.0 : 0.0;
  }
  LogisticRegressionOptions options;
  options.l2 = 1e-6;
  LogisticRegression model(options);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.3);
  EXPECT_NEAR(model.intercept(), -1.0, 0.3);
}

TEST(LogisticRegressionTest, SeparableDataStaysBounded) {
  // Perfect separation: without regularization weights diverge; with L2
  // they must stay finite.
  Matrix x = {{0.0}, {0.1}, {0.9}, {1.0}};
  Vector y = {0.0, 0.0, 1.0, 1.0};
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_TRUE(std::isfinite(model.coefficients()[0]));
  EXPECT_TRUE(std::isfinite(model.intercept()));
  EXPECT_LT(std::fabs(model.coefficients()[0]), 1e4);
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  vs::Rng rng(9);
  Matrix x(50, 3);
  Vector y(50);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextGaussian();
    y[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto probs = model.PredictProbaBatch(x);
  ASSERT_TRUE(probs.ok());
  for (double p : *probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, BatchMatchesSingle) {
  Matrix x = {{0.2, 0.8}, {0.9, 0.1}, {0.5, 0.5}, {0.1, 0.2}};
  Vector y = {0.0, 1.0, 1.0, 0.0};
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto batch = model.PredictProbaBatch(x);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR((*batch)[i], *model.PredictProba(x.Row(i)), 1e-12);
  }
}

TEST(LogisticRegressionTest, TwoExampleColdStartCase) {
  // The smallest fit ViewSeeker performs: one positive, one negative.
  Matrix x(2, 8);
  for (size_t j = 0; j < 8; ++j) {
    x(0, j) = 0.9;
    x(1, j) = 0.1;
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, {1.0, 0.0}).ok());
  EXPECT_GT(*model.PredictProba(x.Row(0)), 0.5);
  EXPECT_LT(*model.PredictProba(x.Row(1)), 0.5);
}

TEST(LogisticRegressionTest, RejectsNonBinaryLabels) {
  Matrix x = {{1.0}, {2.0}};
  LogisticRegression model;
  EXPECT_FALSE(model.Fit(x, {0.0, 0.7}).ok());
  EXPECT_FALSE(model.fitted());
}

TEST(LogisticRegressionTest, RejectsBadShapesAndOptions) {
  LogisticRegression model;
  EXPECT_FALSE(model.Fit(Matrix(), {}).ok());
  EXPECT_FALSE(model.Fit(Matrix(2, 1), {1.0}).ok());
  LogisticRegressionOptions bad;
  bad.l2 = 0.0;
  LogisticRegression bad_model(bad);
  EXPECT_FALSE(bad_model.Fit(Matrix(1, 1), {1.0}).ok());
  EXPECT_FALSE(model.PredictProba({1.0}).ok());  // unfitted
}

TEST(LogisticRegressionTest, NoInterceptOption) {
  LogisticRegressionOptions options;
  options.fit_intercept = false;
  Matrix x = {{-1.0}, {1.0}};
  LogisticRegression model(options);
  ASSERT_TRUE(model.Fit(x, {0.0, 1.0}).ok());
  EXPECT_DOUBLE_EQ(model.intercept(), 0.0);
  EXPECT_NEAR(*model.PredictProba({0.0}), 0.5, 1e-9);
}

TEST(LogisticRegressionTest, StrongerL2ShrinksWeights) {
  Matrix x = {{0.0}, {0.2}, {0.8}, {1.0}};
  Vector y = {0.0, 0.0, 1.0, 1.0};
  LogisticRegressionOptions weak;
  weak.l2 = 1e-3;
  LogisticRegressionOptions strong;
  strong.l2 = 10.0;
  LogisticRegression weak_model(weak);
  LogisticRegression strong_model(strong);
  ASSERT_TRUE(weak_model.Fit(x, y).ok());
  ASSERT_TRUE(strong_model.Fit(x, y).ok());
  EXPECT_LT(std::fabs(strong_model.coefficients()[0]),
            std::fabs(weak_model.coefficients()[0]));
}

}  // namespace
}  // namespace vs::ml
