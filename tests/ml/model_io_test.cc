#include "ml/model_io.h"

#include <gtest/gtest.h>

namespace vs::ml {
namespace {

TEST(ModelIoTest, LinearRoundTrip) {
  LinearRegression model;
  model.SetParameters({0.25, -1.5, 3.0}, 0.125);
  auto text = SerializeLinear(model);
  ASSERT_TRUE(text.ok());
  auto back = DeserializeLinear(*text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->coefficients(), model.coefficients());
  EXPECT_DOUBLE_EQ(back->intercept(), model.intercept());
  EXPECT_TRUE(back->fitted());
}

TEST(ModelIoTest, LogisticRoundTrip) {
  LogisticRegression model;
  model.SetParameters({1.0e-17, 2.5}, -0.75);
  auto text = SerializeLogistic(model);
  ASSERT_TRUE(text.ok());
  auto back = DeserializeLogistic(*text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->coefficients(), model.coefficients());
  EXPECT_DOUBLE_EQ(back->intercept(), model.intercept());
}

TEST(ModelIoTest, RoundTripPreservesExactDoubles) {
  // %.17g must preserve bit-exact values.
  LinearRegression model;
  model.SetParameters({1.0 / 3.0, 0.1, 1e-300}, 2.0 / 7.0);
  auto back = DeserializeLinear(*SerializeLinear(model));
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back->coefficients()[i], model.coefficients()[i]);
  }
  EXPECT_EQ(back->intercept(), model.intercept());
}

TEST(ModelIoTest, UnfittedModelCannotSerialize) {
  LinearRegression linear;
  EXPECT_FALSE(SerializeLinear(linear).ok());
  LogisticRegression logistic;
  EXPECT_FALSE(SerializeLogistic(logistic).ok());
}

TEST(ModelIoTest, KindMismatchRejected) {
  LinearRegression model;
  model.SetParameters({1.0}, 0.0);
  auto text = SerializeLinear(model);
  EXPECT_FALSE(DeserializeLogistic(*text).ok());
}

TEST(ModelIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializeLinear("").ok());
  EXPECT_FALSE(DeserializeLinear("garbage\n\n\n\n\n").ok());
  EXPECT_FALSE(DeserializeLinear(
                   "viewseeker-model v1\nkind: linear\nintercept: x\n"
                   "coefficients: 1\n1.0\n")
                   .ok());
  EXPECT_FALSE(DeserializeLinear(
                   "viewseeker-model v1\nkind: linear\nintercept: 0\n"
                   "coefficients: 3\n1.0 2.0\n")
                   .ok());  // count mismatch
}

TEST(ModelIoTest, ZeroCoefficientModel) {
  LinearRegression model;
  model.SetParameters({}, 4.5);
  auto text = SerializeLinear(model);
  ASSERT_TRUE(text.ok());
  auto back = DeserializeLinear(*text);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->coefficients().empty());
  EXPECT_DOUBLE_EQ(back->intercept(), 4.5);
}

}  // namespace
}  // namespace vs::ml
