#include "ml/cross_validation.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace vs::ml {
namespace {

TEST(KFoldSplitTest, PartitionsEveryIndexExactlyOnce) {
  vs::Rng rng(1);
  auto folds = KFoldSplit(17, 4, &rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 4u);
  std::multiset<size_t> seen;
  for (const Fold& fold : *folds) {
    seen.insert(fold.validation.begin(), fold.validation.end());
    EXPECT_EQ(fold.train.size() + fold.validation.size(), 17u);
  }
  EXPECT_EQ(seen.size(), 17u);
  for (size_t i = 0; i < 17; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
}

TEST(KFoldSplitTest, FoldSizesDifferByAtMostOne) {
  vs::Rng rng(2);
  auto folds = KFoldSplit(10, 3, &rng);
  ASSERT_TRUE(folds.ok());
  size_t lo = 99;
  size_t hi = 0;
  for (const Fold& fold : *folds) {
    lo = std::min(lo, fold.validation.size());
    hi = std::max(hi, fold.validation.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(KFoldSplitTest, TrainAndValidationDisjoint) {
  vs::Rng rng(3);
  auto folds = KFoldSplit(20, 5, &rng);
  ASSERT_TRUE(folds.ok());
  for (const Fold& fold : *folds) {
    std::set<size_t> train(fold.train.begin(), fold.train.end());
    for (size_t v : fold.validation) {
      EXPECT_EQ(train.count(v), 0u);
    }
  }
}

TEST(KFoldSplitTest, Validation) {
  vs::Rng rng(4);
  EXPECT_FALSE(KFoldSplit(10, 1, &rng).ok());
  EXPECT_FALSE(KFoldSplit(3, 4, &rng).ok());
  EXPECT_FALSE(KFoldSplit(10, 3, nullptr).ok());
}

TEST(CrossValidateLinearTest, CleanLinearDataHasTinyMse) {
  vs::Rng rng(5);
  Matrix x(40, 2);
  Vector y(40);
  for (size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = 2.0 * x(i, 0) - x(i, 1) + 0.5;
  }
  auto mse = CrossValidateLinear(x, y, {}, 4, &rng);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 1e-6);
}

TEST(CrossValidateLinearTest, NoisyDataHasPositiveMse) {
  vs::Rng rng(6);
  Matrix x(40, 1);
  Vector y(40);
  for (size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.NextDouble();
    y[i] = x(i, 0) + rng.NextGaussian();
  }
  auto mse = CrossValidateLinear(x, y, {}, 4, &rng);
  ASSERT_TRUE(mse.ok());
  EXPECT_GT(*mse, 0.1);
}

TEST(SelectRidgeStrengthTest, PrefersStrongRegularizationForPureNoise) {
  // With random targets and many features, heavy shrinkage validates best.
  vs::Rng rng(7);
  Matrix x(30, 8);
  Vector y(30);
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = 0; j < 8; ++j) x(i, j) = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  auto l2 = SelectRidgeStrength(x, y, {1e-8, 100.0}, 3, &rng);
  ASSERT_TRUE(l2.ok());
  EXPECT_DOUBLE_EQ(*l2, 100.0);
}

TEST(SelectRidgeStrengthTest, PrefersWeakRegularizationForCleanSignal) {
  vs::Rng rng(8);
  Matrix x(60, 2);
  Vector y(60);
  for (size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = 3.0 * x(i, 0) + x(i, 1);
  }
  auto l2 = SelectRidgeStrength(x, y, {1e-8, 100.0}, 4, &rng);
  ASSERT_TRUE(l2.ok());
  EXPECT_DOUBLE_EQ(*l2, 1e-8);
}

TEST(SelectRidgeStrengthTest, TooFewExamplesFallsBack) {
  vs::Rng rng(9);
  Matrix x(3, 1);
  Vector y = {1.0, 2.0, 3.0};
  auto l2 = SelectRidgeStrength(x, y, {0.5, 5.0}, 3, &rng);
  ASSERT_TRUE(l2.ok());
  EXPECT_DOUBLE_EQ(*l2, 0.5);
}

TEST(SelectRidgeStrengthTest, EmptyCandidatesRejected) {
  vs::Rng rng(10);
  Matrix x(10, 1);
  Vector y(10, 0.0);
  EXPECT_FALSE(SelectRidgeStrength(x, y, {}, 3, &rng).ok());
}

}  // namespace
}  // namespace vs::ml
