#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace vs::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowExtraction) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.Row(1), (Vector{3.0, 4.0}));
}

TEST(MatrixTest, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ((*c)(0, 0), 19.0);
  EXPECT_DOUBLE_EQ((*c)(0, 1), 22.0);
  EXPECT_DOUBLE_EQ((*c)(1, 0), 43.0);
  EXPECT_DOUBLE_EQ((*c)(1, 1), 50.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  auto c = MatMul(a, Matrix::Identity(2));
  ASSERT_TRUE(c.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ((*c)(i, j), a(i, j));
    }
  }
}

TEST(MatMulTest, ShapeMismatchRejected) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_FALSE(MatMul(a, b).ok());
}

TEST(MatVecTest, KnownProduct) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  auto y = MatVec(a, {1.0, 1.0});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, (Vector{3.0, 7.0}));
}

TEST(MatVecTest, ShapeMismatchRejected) {
  Matrix a(2, 3);
  EXPECT_FALSE(MatVec(a, {1.0, 2.0}).ok());
}

TEST(GramTest, MatchesExplicitProduct) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix g = Gram(a);
  auto expected = MatMul(a.Transposed(), a);
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), (*expected)(i, j), 1e-12);
    }
  }
}

TEST(GramTest, IsSymmetric) {
  Matrix a = {{1.0, -2.0, 0.5}, {0.0, 3.0, 1.0}};
  Matrix g = Gram(a);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(TransposeVecTest, KnownValue) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  auto r = TransposeVec(a, {1.0, 2.0});  // A^T y
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Vector{7.0, 10.0}));
}

TEST(DotNormTest, Basics) {
  EXPECT_DOUBLE_EQ(*Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_FALSE(Dot({1.0}, {1.0, 2.0}).ok());
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(Norm({}), 0.0);
}

}  // namespace
}  // namespace vs::ml
