#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace vs::ml {
namespace {

TEST(MseMaeTest, KnownValues) {
  EXPECT_DOUBLE_EQ(*MeanSquaredError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(*MeanSquaredError({0.0, 0.0}, {1.0, 3.0}), 5.0);
  EXPECT_DOUBLE_EQ(*MeanAbsoluteError({0.0, 0.0}, {1.0, -3.0}), 2.0);
}

TEST(MseMaeTest, Validation) {
  EXPECT_FALSE(MeanSquaredError({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MeanSquaredError({}, {}).ok());
  EXPECT_FALSE(MeanAbsoluteError({}, {}).ok());
}

TEST(RSquaredTest, PerfectFitIsOne) {
  EXPECT_DOUBLE_EQ(*RSquared({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 1.0);
}

TEST(RSquaredTest, MeanPredictorIsZero) {
  EXPECT_NEAR(*RSquared({1.0, 2.0, 3.0}, {2.0, 2.0, 2.0}), 0.0, 1e-12);
}

TEST(RSquaredTest, WorseThanMeanIsNegative) {
  auto r2 = RSquared({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0});
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(*r2, 0.0);
}

TEST(RSquaredTest, ConstantTruth) {
  EXPECT_DOUBLE_EQ(*RSquared({2.0, 2.0}, {2.0, 2.0}), 1.0);
  auto undefined = RSquared({2.0, 2.0}, {1.0, 3.0});
  EXPECT_FALSE(undefined.ok());
  EXPECT_TRUE(undefined.status().IsFailedPrecondition());
}

TEST(BinaryAccuracyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(
      *BinaryAccuracy({1.0, 0.0, 1.0, 0.0}, {0.9, 0.1, 0.2, 0.8}), 0.5);
  EXPECT_DOUBLE_EQ(
      *BinaryAccuracy({1.0, 0.0}, {0.6, 0.4}), 1.0);
}

TEST(BinaryAccuracyTest, ThresholdMatters) {
  Vector truth = {1.0, 0.0};
  Vector probs = {0.7, 0.6};
  EXPECT_DOUBLE_EQ(*BinaryAccuracy(truth, probs, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(*BinaryAccuracy(truth, probs, 0.65), 1.0);
}

TEST(RocAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(
      *RocAuc({0.0, 0.0, 1.0, 1.0}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(RocAucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(
      *RocAuc({0.0, 0.0, 1.0, 1.0}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  EXPECT_DOUBLE_EQ(*RocAuc({0.0, 1.0}, {0.5, 0.5}), 0.5);
}

TEST(RocAucTest, KnownMixedValue) {
  // Positives at 0.8 and 0.3; negatives at 0.5 and 0.1.
  // Pairs: (0.8>0.5) 1, (0.8>0.1) 1, (0.3<0.5) 0, (0.3>0.1) 1 -> 3/4.
  EXPECT_DOUBLE_EQ(
      *RocAuc({1.0, 1.0, 0.0, 0.0}, {0.8, 0.3, 0.5, 0.1}), 0.75);
}

TEST(RocAucTest, Validation) {
  EXPECT_FALSE(RocAuc({1.0, 1.0}, {0.5, 0.6}).ok());  // one class
  EXPECT_FALSE(RocAuc({0.5, 1.0}, {0.5, 0.6}).ok());  // non-binary truth
  EXPECT_FALSE(RocAuc({1.0}, {0.5, 0.6}).ok());       // length mismatch
}

}  // namespace
}  // namespace vs::ml
