#include "ml/solve.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace vs::ml {
namespace {

TEST(CholeskySolveTest, KnownSystem) {
  Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  auto x = CholeskySolve(a, {8.0, 7.0});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  EXPECT_NEAR(4.0 * (*x)[0] + 2.0 * (*x)[1], 8.0, 1e-12);
  EXPECT_NEAR(2.0 * (*x)[0] + 3.0 * (*x)[1], 7.0, 1e-12);
}

TEST(CholeskySolveTest, IdentityReturnsRhs) {
  auto x = CholeskySolve(Matrix::Identity(3), {1.0, -2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, (Vector{1.0, -2.0, 3.0}));
}

TEST(CholeskySolveTest, RandomSpdSystems) {
  vs::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 5;
    // A = B^T B + I is SPD.
    Matrix b(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b(i, j) = rng.NextGaussian();
    }
    Matrix a = Gram(b);
    for (size_t i = 0; i < n; ++i) a(i, i) += 1.0;
    Vector x_true(n);
    for (double& v : x_true) v = rng.NextGaussian();
    auto rhs = MatVec(a, x_true);
    ASSERT_TRUE(rhs.ok());
    auto x = CholeskySolve(a, *rhs);
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
    }
  }
}

TEST(CholeskySolveTest, RejectsNonSpd) {
  Matrix not_spd = {{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  auto r = CholeskySolve(not_spd, {1.0, 1.0});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(CholeskySolveTest, RejectsShapeErrors) {
  EXPECT_FALSE(CholeskySolve(Matrix(2, 3), {1.0, 2.0}).ok());
  EXPECT_FALSE(CholeskySolve(Matrix::Identity(2), {1.0}).ok());
}

TEST(SpdInverseTest, InverseTimesOriginalIsIdentity) {
  Matrix a = {{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  auto inv = SpdInverse(a);
  ASSERT_TRUE(inv.ok());
  auto prod = MatMul(a, *inv);
  ASSERT_TRUE(prod.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR((*prod)(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(QrLeastSquaresTest, ExactSystem) {
  Matrix a = {{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  // y = 2 + 3x exactly.
  auto x = QrLeastSquares(a, {5.0, 8.0, 11.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(QrLeastSquaresTest, OverdeterminedMinimizesResidual) {
  // Line fit through noisy points; QR answer must match normal equations.
  Matrix a = {{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  Vector y = {1.1, 1.9, 3.2, 3.8};
  auto qr = QrLeastSquares(a, y);
  ASSERT_TRUE(qr.ok());
  auto ridge = RidgeNormalEquations(a, y, 0.0);
  ASSERT_TRUE(ridge.ok());
  EXPECT_NEAR((*qr)[0], (*ridge)[0], 1e-8);
  EXPECT_NEAR((*qr)[1], (*ridge)[1], 1e-8);
}

TEST(QrLeastSquaresTest, RejectsUnderdetermined) {
  EXPECT_FALSE(QrLeastSquares(Matrix(2, 3), {1.0, 2.0}).ok());
}

TEST(QrLeastSquaresTest, RejectsRankDeficient) {
  Matrix a = {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};  // col2 = 2*col1
  auto r = QrLeastSquares(a, {1.0, 2.0, 3.0});
  EXPECT_FALSE(r.ok());
}

TEST(RidgeTest, ZeroPenaltyRecoversExactFit) {
  Matrix x = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  Vector w_true = {2.0, -1.0};
  auto y = MatVec(x, w_true);
  auto w = RidgeNormalEquations(x, *y, 0.0);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 2.0, 1e-10);
  EXPECT_NEAR((*w)[1], -1.0, 1e-10);
}

TEST(RidgeTest, PenaltyShrinksWeights) {
  Matrix x = {{1.0}, {2.0}, {3.0}};
  Vector y = {2.0, 4.0, 6.0};
  double prev = 1e300;
  for (double l2 : {0.0, 1.0, 10.0, 100.0}) {
    auto w = RidgeNormalEquations(x, y, l2);
    ASSERT_TRUE(w.ok());
    EXPECT_LT(std::fabs((*w)[0]), prev + 1e-12);
    prev = std::fabs((*w)[0]);
  }
}

TEST(RidgeTest, PositivePenaltySolvesRankDeficient) {
  Matrix x = {{1.0, 2.0}, {2.0, 4.0}};  // rank 1
  auto w = RidgeNormalEquations(x, {1.0, 2.0}, 1e-3);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(std::isfinite((*w)[0]));
  EXPECT_TRUE(std::isfinite((*w)[1]));
}

TEST(RidgeTest, InvalidInputsRejected) {
  Matrix x = {{1.0}};
  EXPECT_FALSE(RidgeNormalEquations(x, {1.0}, -1.0).ok());
  EXPECT_FALSE(RidgeNormalEquations(x, {1.0, 2.0}, 0.0).ok());
  EXPECT_FALSE(RidgeNormalEquations(Matrix(), {}, 0.0).ok());
}

}  // namespace
}  // namespace vs::ml
