#include "ml/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vs::ml {
namespace {

Matrix SampleData() {
  return Matrix{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}};
}

TEST(StandardScalerTest, TransformHasZeroMeanUnitVariance) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(SampleData()).ok());
  auto t = scaler.Transform(SampleData());
  ASSERT_TRUE(t.ok());
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < 4; ++i) mean += (*t)(i, j);
    mean /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    double var = 0.0;
    for (size_t i = 0; i < 4; ++i) var += (*t)(i, j) * (*t)(i, j);
    var /= 4.0;
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardScalerTest, ConstantColumnPassesThrough) {
  Matrix data = {{5.0}, {5.0}, {5.0}};
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data).ok());
  auto t = scaler.Transform(data);
  ASSERT_TRUE(t.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*t)(i, 0), 0.0);  // (5-5)/1
  }
}

TEST(StandardScalerTest, TransformRowMatchesMatrix) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(SampleData()).ok());
  Vector row = {2.0, 20.0};
  ASSERT_TRUE(scaler.TransformRow(&row).ok());
  auto full = scaler.Transform(SampleData());
  EXPECT_NEAR(row[0], (*full)(1, 0), 1e-12);
  EXPECT_NEAR(row[1], (*full)(1, 1), 1e-12);
}

TEST(StandardScalerTest, UnfittedAndMismatchedErrors) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.Transform(SampleData()).ok());
  Vector row = {1.0};
  EXPECT_FALSE(scaler.TransformRow(&row).ok());
  ASSERT_TRUE(scaler.Fit(SampleData()).ok());
  EXPECT_FALSE(scaler.Transform(Matrix(2, 3)).ok());
  EXPECT_FALSE(scaler.Fit(Matrix()).ok());
}

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(SampleData()).ok());
  auto t = scaler.Transform(SampleData());
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((*t)(3, 0), 1.0);
  EXPECT_NEAR((*t)(1, 1), 1.0 / 3.0, 1e-12);
}

TEST(MinMaxScalerTest, ConstantColumnMapsToZero) {
  Matrix data = {{7.0}, {7.0}};
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(data).ok());
  auto t = scaler.Transform(data);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((*t)(1, 0), 0.0);
}

TEST(MinMaxScalerTest, OutOfRangeRowsClampToUnitInterval) {
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(SampleData()).ok());
  Vector row = {100.0, -100.0};
  ASSERT_TRUE(scaler.TransformRow(&row).ok());
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(MinMaxScalerTest, UnfittedErrors) {
  MinMaxScaler scaler;
  EXPECT_FALSE(scaler.Transform(SampleData()).ok());
  EXPECT_FALSE(scaler.Fit(Matrix()).ok());
}

TEST(MinMaxScalerTest, ParametersInspectable) {
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(SampleData()).ok());
  EXPECT_DOUBLE_EQ(scaler.min()[0], 1.0);
  EXPECT_DOUBLE_EQ(scaler.max()[0], 4.0);
  EXPECT_DOUBLE_EQ(scaler.min()[1], 10.0);
  EXPECT_DOUBLE_EQ(scaler.max()[1], 40.0);
}

}  // namespace
}  // namespace vs::ml
