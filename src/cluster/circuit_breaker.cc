#include "cluster/circuit_breaker.h"

#include <algorithm>

namespace vs::cluster {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()) {
  options_.trip_after = std::max(1, options_.trip_after);
  options_.open_seconds = std::max(0.0, options_.open_seconds);
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const int64_t cooldown_us =
          static_cast<int64_t>(options_.open_seconds * 1e6);
      if (clock_->NowMicros() - opened_at_us_ < cooldown_us) return false;
      state_ = BreakerState::kHalfOpen;
      probe_inflight_ = true;
      ++probes_;
      return true;  // this caller is the probe
    }
    case BreakerState::kHalfOpen:
      if (probe_inflight_) return false;  // one probe at a time
      probe_inflight_ = true;
      ++probes_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_errors_ = 0;
  probe_inflight_ = false;
  // A success closes a half-open breaker; it is also accepted while the
  // breaker is open (an in-flight request from before the trip finishing
  // well) but does not close it — only the designated probe does that,
  // which is what the half-open path is.
  if (state_ == BreakerState::kHalfOpen) state_ = BreakerState::kClosed;
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_inflight_ = false;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to open for another full cool-down.
    state_ = BreakerState::kOpen;
    opened_at_us_ = clock_->NowMicros();
    consecutive_errors_ = 0;
    ++opens_;
    return true;
  }
  if (state_ == BreakerState::kOpen) return false;
  if (++consecutive_errors_ >= options_.trip_after) {
    state_ = BreakerState::kOpen;
    opened_at_us_ = clock_->NowMicros();
    consecutive_errors_ = 0;
    ++opens_;
    return true;
  }
  return false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

std::uint64_t CircuitBreaker::probes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_;
}

}  // namespace vs::cluster
