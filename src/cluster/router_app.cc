#include "cluster/router_app.h"

#include <algorithm>
#include <chrono>

#include "cluster/prom_merge.h"
#include "common/string_util.h"
#include "serve/app.h"
#include "serve/json.h"

namespace vs::cluster {

namespace {

using serve::HttpRequest;
using serve::HttpResponse;

/// Cached handles into the default registry (amortized registration).
struct RouterMetrics {
  obs::Counter* forwarded;
  obs::Counter* forward_errors;
  obs::Counter* forward_retries;
  obs::Counter* retries_503;
  obs::Counter* rejected_unavailable;
  obs::Counter* ejections;
  obs::Counter* readmissions;
  obs::Counter* migrations;
  obs::Counter* migration_failures;
  obs::Counter* breaker_opens;
  obs::Counter* breaker_rejects;
  obs::Counter* retries_suppressed;
  obs::Counter* deadline_rejects;
  obs::Gauge* retry_budget_tokens;

  static const RouterMetrics& Get() {
    static const RouterMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      return RouterMetrics{
          r.GetCounter("cluster.requests_forwarded",
                       "requests forwarded to workers"),
          r.GetCounter("cluster.forward_errors",
                       "forwards that failed at the transport (502)"),
          r.GetCounter("cluster.forward_retries",
                       "backoff retries taken against workers"),
          r.GetCounter("cluster.retries_503",
                       "creates re-placed after a worker shed them"),
          r.GetCounter("cluster.rejected_unavailable",
                       "requests refused because the owning shard is "
                       "ejected"),
          r.GetCounter("cluster.shard_ejections",
                       "workers ejected by the failure detector"),
          r.GetCounter("cluster.shard_readmissions",
                       "ejected workers re-admitted by a probe"),
          r.GetCounter("cluster.migrations", "sessions migrated"),
          r.GetCounter("cluster.migration_failures",
                       "migrations aborted with the session left on its "
                       "source shard"),
          r.GetCounter("cluster.breaker_opens",
                       "circuit-breaker trip transitions"),
          r.GetCounter("cluster.breaker_rejects",
                       "requests refused because the owning shard's "
                       "breaker is open"),
          r.GetCounter("cluster.retries_suppressed",
                       "retries refused by the global retry budget"),
          r.GetCounter("cluster.deadline_rejects",
                       "requests answered 504 because their deadline was "
                       "already spent"),
          r.GetGauge("cluster.retry_budget_tokens",
                     "tokens left in the global retry budget"),
      };
    }();
    return m;
  }
};

/// Shard names appear inside metric names, so the ring alphabet is the
/// session-id alphabet (serve::ValidSessionId) — the metrics exporter
/// folds '.' and '-' to '_'.
bool ValidShardName(const std::string& name) {
  return serve::ValidSessionId(name);
}

std::string ForwardTarget(const HttpRequest& request) {
  if (request.query.empty()) return request.path;
  return request.path + "?" + request.query;
}

HttpResponse JsonOk(std::string body, int status = 200) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

double DecrementedDeadlineMs(double deadline_ms, double elapsed_ms) {
  if (deadline_ms <= 0.0) return 0.0;
  const double left = deadline_ms - std::max(0.0, elapsed_ms);
  return left > 0.0 ? left : 0.0;
}

ClusterRouter::ClusterRouter(ClusterRouterOptions options)
    : options_(std::move(options)),
      ring_(HashRingOptions{std::max(1, options_.virtual_nodes)}),
      id_rng_(options_.seed),
      retry_budget_(options_.retry_budget) {
  RouterMetrics::Get().retry_budget_tokens->Set(retry_budget_.tokens());
}

ClusterRouter::~ClusterRouter() { Stop(); }

vs::Status ClusterRouter::Start() {
  if (started_) return vs::Status::FailedPrecondition("router already started");
  if (options_.shards.empty()) {
    return vs::Status::InvalidArgument("router needs at least one shard");
  }
  auto& registry = obs::MetricsRegistry::Default();
  for (const ShardAddress& address : options_.shards) {
    if (!ValidShardName(address.name)) {
      return vs::Status::InvalidArgument("invalid shard name: " +
                                         address.name);
    }
    if (address.port <= 0 || address.port > 65535) {
      return vs::Status::InvalidArgument(
          StrFormat("shard %s: bad port %d", address.name.c_str(),
                    address.port));
    }
    VS_RETURN_IF_ERROR(ring_.AddShard(address.name));
    auto shard = std::make_unique<Shard>(
        address, FailureDetectorOptions{std::max(1, options_.eject_after)},
        options_.breaker);
    shard->requests = registry.GetCounter(
        "cluster.shard_requests." + address.name,
        "requests forwarded to one shard");
    shard->forward_seconds = registry.GetHistogram(
        "cluster.forward_seconds." + address.name,
        obs::DefaultLatencyBuckets(), "forward latency to one shard");
    shard->up = registry.GetGauge("cluster.shard_up." + address.name,
                                  "1 = shard serving, 0 = ejected");
    shard->up->Set(1.0);
    shards_.push_back(std::move(shard));
  }
  started_ = true;
  // One synchronous sweep so a worker that is already down is ejectable
  // before the first real request (with eject_after > 1 it still takes
  // that many sweeps — by design, one flaky probe must not eject).
  ProbeNow();
  if (options_.probe_interval_seconds > 0.0) {
    prober_ = std::thread([this] { ProbeLoop(); });
  }
  return vs::Status::OK();
}

void ClusterRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    stop_prober_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

ClusterRouter::Shard* ClusterRouter::FindShard(const std::string& name) {
  for (const auto& shard : shards_) {
    if (shard->address.name == name) return shard.get();
  }
  return nullptr;
}

const ClusterRouter::Shard* ClusterRouter::FindShard(
    const std::string& name) const {
  for (const auto& shard : shards_) {
    if (shard->address.name == name) return shard.get();
  }
  return nullptr;
}

std::string ClusterRouter::NewSessionId() {
  std::lock_guard<std::mutex> lock(id_mu_);
  return StrFormat("c%04llx%08llx",
                   static_cast<unsigned long long>(++id_counter_),
                   static_cast<unsigned long long>(id_rng_.NextUint64() &
                                                   0xffffffffULL));
}

std::string ClusterRouter::RequestId(const HttpRequest& request) {
  // Same contract as the workers (serve/app.cc): the client's id when it
  // is well-formed, a generated one otherwise — and the same id is then
  // forwarded, so one id names the request end-to-end.
  if (const std::string* header = request.FindHeader("x-request-id")) {
    std::string id = serve::SanitizeRequestId(*header);
    if (!id.empty()) return id;
  }
  const uint64_t seq =
      request_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  return StrFormat("rt-%llu", static_cast<unsigned long long>(seq));
}

vs::Result<std::string> ClusterRouter::ShardForSession(
    const std::string& id) const {
  {
    std::lock_guard<std::mutex> lock(override_mu_);
    auto it = overrides_.find(id);
    if (it != overrides_.end()) return it->second;
  }
  return ring_.ShardFor(id);
}

bool ClusterRouter::ShardEjected(const std::string& name) const {
  const Shard* shard = FindShard(name);
  return shard == nullptr ? true : shard->detector.ejected();
}

BreakerState ClusterRouter::ShardBreakerState(const std::string& name) const {
  const Shard* shard = FindShard(name);
  return shard == nullptr ? BreakerState::kOpen : shard->breaker.state();
}

ClusterRouter::ForwardOutcome ClusterRouter::Exchange(
    Shard& shard, std::string_view method, std::string_view target,
    std::string_view body, const std::string& request_id, bool retry_503,
    const RequestBudget* budget, bool data_path) {
  std::unique_ptr<serve::HttpClient> client;
  {
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    if (!shard.pool.empty()) {
      client = std::move(shard.pool.back());
      shard.pool.pop_back();
    }
  }
  if (client == nullptr) {
    client = std::make_unique<serve::HttpClient>(
        shard.address.host, shard.address.port,
        options_.forward_timeout_seconds);
  }
  const RouterMetrics& m = RouterMetrics::Get();
  serve::RetryOptions retry;
  retry.max_attempts = retry_503 ? std::max(1, options_.forward_attempts) : 1;
  retry.initial_backoff_seconds = options_.retry_backoff_seconds;
  retry.max_backoff_seconds =
      std::max(options_.retry_backoff_seconds, 1.0);
  retry.deadline_seconds = options_.forward_timeout_seconds;
  retry.retry_503 = retry_503;
  if (retry.max_attempts > 1) {
    // Every backoff retry spends a token from the router-global budget;
    // a dry bucket degrades this exchange to a single attempt.
    retry.retry_gate = [this, &m] {
      if (retry_budget_.TryWithdraw()) return true;
      m.retries_suppressed->Increment();
      return false;
    };
  }
  std::vector<std::pair<std::string, std::string>> headers = {
      {"X-Request-Id", request_id}};
  if (budget != nullptr && budget->has_deadline()) {
    // The worker receives what is *left* of the client's budget after
    // this hop — the decrement that makes multi-hop deadlines honest.
    const double remaining_ms = budget->remaining_ms();
    headers.emplace_back("X-Deadline-Ms",
                         StrFormat("%.3f", remaining_ms));
    retry.deadline_seconds =
        std::min(retry.deadline_seconds, remaining_ms * 1e-3);
  }
  client->set_retry_options(retry);
  const uint64_t retries_before = client->backoff_retries();

  Stopwatch watch;
  ForwardOutcome out;
  out.response = client->Request(method, target, body, headers);
  out.seconds = watch.ElapsedSeconds();

  m.forwarded->Increment();
  shard.requests->Increment();
  shard.forward_seconds->Observe(out.seconds);
  m.forward_retries->Increment(client->backoff_retries() - retries_before);

  // Any HTTP response — including an error status — proves the worker is
  // alive; only a transport failure feeds the miss streak.
  if (out.response.ok()) {
    if (shard.detector.RecordSuccess()) m.readmissions->Increment();
    shard.up->Set(1.0);
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    shard.pool.push_back(std::move(client));  // keep-alive for reuse
  } else {
    if (shard.detector.RecordFailure()) m.ejections->Increment();
    shard.up->Set(shard.detector.ejected() ? 0.0 : 1.0);
    // The connection is suspect; drop it and dial fresh next time.
  }

  // Only client traffic feeds the breaker and the retry budget: a worker
  // whose /healthz still answers 200 must not mask a failing data path,
  // and probe successes must not mint retry tokens.
  if (data_path) {
    const bool server_error =
        !out.response.ok() || out.response->status >= 500;
    if (server_error) {
      if (shard.breaker.RecordFailure()) m.breaker_opens->Increment();
    } else {
      shard.breaker.RecordSuccess();
      retry_budget_.RecordSuccess();
    }
    m.retry_budget_tokens->Set(retry_budget_.tokens());
  }
  return out;
}

HttpResponse ClusterRouter::ForwardToShard(Shard& shard,
                                           const HttpRequest& request,
                                           const std::string& request_id,
                                           bool retry_503,
                                           const RequestBudget* budget) {
  ForwardOutcome out = Exchange(shard, request.method,
                                ForwardTarget(request), request.body,
                                request_id, retry_503, budget,
                                /*data_path=*/true);
  if (!out.response.ok()) {
    RouterMetrics::Get().forward_errors->Increment();
    return serve::JsonErrorResponse(
        502, "BadGateway",
        StrFormat("shard %s unreachable: %s", shard.address.name.c_str(),
                  out.response.status().message().c_str()));
  }
  HttpResponse response;
  response.status = out.response->status;
  response.body = std::move(out.response->body);
  if (const std::string* type = out.response->FindHeader("content-type")) {
    response.content_type = *type;
  }
  if (const std::string* stages =
          out.response->FindHeader("x-request-stages")) {
    response.extra_headers.emplace_back("X-Request-Stages", *stages);
  }
  if (const std::string* quality = out.response->FindHeader("x-quality")) {
    // Brownout marker: clients behind the router still learn the answer
    // was served from a partially refined matrix.
    response.extra_headers.emplace_back("X-Quality", *quality);
  }
  if (const std::string* echoed =
          out.response->FindHeader("x-deadline-budget-ms")) {
    // The worker echoes the deadline it received; copying it through
    // makes the router's hop decrement observable at the client.
    response.extra_headers.emplace_back("X-Deadline-Budget-Ms", *echoed);
  }
  // Stamped by the router, not copied: the worker only knows its name
  // when launched with --shard-name, and the router's view of who served
  // the request is the one debugging needs.
  response.extra_headers.emplace_back("X-Shard", shard.address.name);
  return response;
}

vs::Status ClusterRouter::EnterSession(const std::string& id) {
  std::unique_lock<std::mutex> lock(gate_mu_);
  auto it = gates_.find(id);
  if (it != gates_.end() && it->second.migrating) {
    // Hold instead of failing: the handoff takes milliseconds, the
    // client never sees it (acceptance: no 5xx during migration).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                std::max(0.0, options_.migrate_hold_seconds)));
    const bool drained = gate_cv_.wait_until(lock, deadline, [&] {
      auto g = gates_.find(id);
      return g == gates_.end() || !g->second.migrating;
    });
    if (!drained) {
      return vs::Status::Aborted("session handoff in progress: " + id);
    }
  }
  ++gates_[id].inflight;
  return vs::Status::OK();
}

void ClusterRouter::ExitSession(const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    auto it = gates_.find(id);
    if (it != gates_.end()) {
      if (--it->second.inflight <= 0 && !it->second.migrating) {
        gates_.erase(it);
      }
    }
  }
  gate_cv_.notify_all();
}

vs::Status ClusterRouter::BeginMigrate(const std::string& id) {
  std::unique_lock<std::mutex> lock(gate_mu_);
  SessionGate& gate = gates_[id];  // std::map: reference stays valid
  if (gate.migrating) {
    return vs::Status::AlreadyExists("migration already in progress: " + id);
  }
  gate.migrating = true;  // newcomers now hold in EnterSession
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(0.0, options_.migrate_hold_seconds)));
  const bool drained = gate_cv_.wait_until(
      lock, deadline, [&gate] { return gate.inflight == 0; });
  if (!drained) {
    gate.migrating = false;
    if (gate.inflight <= 0) gates_.erase(id);
    lock.unlock();
    gate_cv_.notify_all();
    return vs::Status::TimedOut("in-flight requests did not drain: " + id);
  }
  return vs::Status::OK();
}

void ClusterRouter::EndMigrate(const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    auto it = gates_.find(id);
    if (it != gates_.end()) {
      it->second.migrating = false;
      if (it->second.inflight <= 0) gates_.erase(it);
    }
  }
  gate_cv_.notify_all();
}

HttpResponse ClusterRouter::HandleCreate(const HttpRequest& request,
                                         const std::string& request_id,
                                         const RequestBudget& budget) {
  const RouterMetrics& m = RouterMetrics::Get();
  const int attempts = std::max(1, options_.forward_attempts);
  HttpResponse last = serve::JsonErrorResponse(
      503, "Unavailable", "no shard accepted the session");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (budget.expired()) {
      deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
      m.deadline_rejects->Increment();
      return serve::JsonErrorResponse(
          504, "TimedOut", "deadline spent before a shard accepted");
    }
    // Re-rolls spend from the global retry budget: the first attempt is
    // always free, but a saturated cluster must not be hammered with
    // fresh placements for the same create.
    if (attempt > 0 && !retry_budget_.TryWithdraw()) {
      m.retries_suppressed->Increment();
      break;
    }
    // The router owns placement: it mints the id, the ring names the
    // owner, and the worker is told the id via ?id=.  A failed attempt
    // re-rolls a *fresh* id — new placement, very likely a different
    // shard — which is safe because a failed create acknowledged
    // nothing a client could reference.
    const std::string session_id = NewSessionId();
    vs::Result<std::string> owner = ring_.ShardFor(session_id);
    if (!owner.ok()) return serve::ErrorResponseFor(owner.status());
    Shard* shard = FindShard(*owner);
    if (shard->detector.ejected()) {
      m.rejected_unavailable->Increment();
      last = serve::JsonErrorResponse(
          503, "Unavailable",
          StrFormat("shard %s is ejected", owner->c_str()));
      continue;
    }
    if (!shard->breaker.Allow()) {
      m.breaker_rejects->Increment();
      last = serve::JsonErrorResponse(
          503, "Unavailable",
          StrFormat("shard %s breaker open", owner->c_str()));
      last.extra_headers.emplace_back(
          "Retry-After", StrFormat("%.3f", options_.breaker.open_seconds));
      continue;
    }
    std::string target = "/sessions?";
    if (!request.query.empty()) target += request.query + "&";
    target += "id=" + session_id;
    ForwardOutcome out = Exchange(*shard, "POST", target, request.body,
                                  request_id, /*retry_503=*/false, &budget,
                                  /*data_path=*/true);
    if (!out.response.ok()) {
      m.forward_errors->Increment();
      last = serve::JsonErrorResponse(
          502, "BadGateway",
          StrFormat("shard %s unreachable: %s", owner->c_str(),
                    out.response.status().message().c_str()));
      continue;
    }
    if (out.response->status == 503 && attempt + 1 < attempts) {
      m.retries_503->Increment();
      continue;
    }
    HttpResponse response;
    response.status = out.response->status;
    response.body = std::move(out.response->body);
    if (const std::string* type = out.response->FindHeader("content-type")) {
      response.content_type = *type;
    }
    if (const std::string* quality = out.response->FindHeader("x-quality")) {
      response.extra_headers.emplace_back("X-Quality", *quality);
    }
    if (const std::string* echoed =
            out.response->FindHeader("x-deadline-budget-ms")) {
      response.extra_headers.emplace_back("X-Deadline-Budget-Ms", *echoed);
    }
    response.extra_headers.emplace_back("X-Shard", shard->address.name);
    return response;
  }
  return last;
}

HttpResponse ClusterRouter::HandleSession(const HttpRequest& request,
                                          const std::string& session_id,
                                          const std::string& request_id,
                                          const RequestBudget& budget) {
  if (budget.expired()) {
    // The budget may have been spent holding at a migration gate — check
    // before entering so an expired request never dials a worker.
    deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
    RouterMetrics::Get().deadline_rejects->Increment();
    return serve::JsonErrorResponse(
        504, "TimedOut", "deadline spent before forwarding");
  }
  const vs::Status entered = EnterSession(session_id);
  if (!entered.ok()) return serve::ErrorResponseFor(entered);
  HttpResponse response;
  vs::Result<std::string> owner = ShardForSession(session_id);
  if (!owner.ok()) {
    response = serve::ErrorResponseFor(owner.status());
  } else {
    Shard* shard = FindShard(*owner);
    if (shard->detector.ejected()) {
      RouterMetrics::Get().rejected_unavailable->Increment();
      response = serve::JsonErrorResponse(
          503, "Unavailable",
          StrFormat("shard %s is ejected", owner->c_str()));
    } else if (budget.expired()) {
      deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
      RouterMetrics::Get().deadline_rejects->Increment();
      response = serve::JsonErrorResponse(
          504, "TimedOut", "deadline spent before forwarding");
    } else if (!shard->breaker.Allow()) {
      RouterMetrics::Get().breaker_rejects->Increment();
      response = serve::JsonErrorResponse(
          503, "Unavailable",
          StrFormat("shard %s breaker open", owner->c_str()));
      response.extra_headers.emplace_back(
          "Retry-After", StrFormat("%.3f", options_.breaker.open_seconds));
    } else {
      const bool idempotent =
          request.method == "GET" || request.method == "DELETE";
      response =
          ForwardToShard(*shard, request, request_id, idempotent, &budget);
      if (request.method == "DELETE" && response.status == 200) {
        std::lock_guard<std::mutex> lock(override_mu_);
        overrides_.erase(session_id);
      }
    }
  }
  ExitSession(session_id);
  return response;
}

HttpResponse ClusterRouter::HandleMigrate(const HttpRequest& request,
                                          const std::string& request_id) {
  vs::Result<serve::JsonValue> body = serve::JsonValue::Parse(
      Trim(request.body).empty() ? "{}" : request.body);
  if (!body.ok() || !body->is_object()) {
    return serve::JsonErrorResponse(400, "InvalidArgument",
                                    "body must be a JSON object");
  }
  vs::Result<std::string> session = body->RequiredString("session");
  if (!session.ok()) return serve::ErrorResponseFor(session.status());
  vs::Result<std::string> to = body->RequiredString("to");
  if (!to.ok()) return serve::ErrorResponseFor(to.status());
  if (!serve::ValidSessionId(*session)) {
    return serve::JsonErrorResponse(400, "InvalidArgument",
                                    "invalid session id: " + *session);
  }
  Shard* target = FindShard(*to);
  if (target == nullptr) {
    return serve::JsonErrorResponse(404, "NotFound", "unknown shard: " + *to);
  }
  vs::Result<std::string> from = ShardForSession(*session);
  if (!from.ok()) return serve::ErrorResponseFor(from.status());
  if (*from == *to) {
    return JsonOk(StrFormat(
        "{\"session\":%s,\"from\":%s,\"to\":%s,\"migrated\":false,"
        "\"reason\":\"already placed on target\"}\n",
        serve::JsonQuote(*session).c_str(), serve::JsonQuote(*from).c_str(),
        serve::JsonQuote(*to).c_str()));
  }
  Shard* source = FindShard(*from);
  if (target->detector.ejected()) {
    return serve::JsonErrorResponse(409, "FailedPrecondition",
                                    "target shard is ejected: " + *to);
  }

  // Drain: in-flight requests for this session finish, new ones hold at
  // the gate until EndMigrate — the client sees latency, never an error.
  const vs::Status drained = BeginMigrate(*session);
  if (!drained.ok()) return serve::ErrorResponseFor(drained);
  const RouterMetrics& m = RouterMetrics::Get();
  auto fail = [&](const vs::Status& status) {
    EndMigrate(*session);
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    m.migration_failures->Increment();
    return serve::ErrorResponseFor(status);
  };

  // 1. Export on the source.  The worker persists the exact envelope it
  //    hands back before answering, so a snapshot-path fault
  //    (snapshot.rename_fail) aborts here with the session untouched.
  ForwardOutcome exported =
      Exchange(*source, "GET", "/admin/sessions/" + *session + "/export",
               "", request_id, /*retry_503=*/true);
  if (!exported.response.ok()) {
    return fail(vs::Status::IOError(
        StrFormat("export from %s failed: %s", from->c_str(),
                  exported.response.status().message().c_str())));
  }
  if (exported.response->status != 200) {
    if (exported.response->status == 404) {
      return fail(vs::Status::NotFound("no such session: " + *session));
    }
    return fail(vs::Status::Internal(
        StrFormat("export from %s answered HTTP %d", from->c_str(),
                  exported.response->status)));
  }
  vs::Result<serve::JsonValue> export_body =
      serve::JsonValue::Parse(exported.response->body);
  if (!export_body.ok()) return fail(export_body.status());
  vs::Result<std::string> envelope = export_body->RequiredString("envelope");
  if (!envelope.ok()) return fail(envelope.status());

  // 2. Import the bytes verbatim on the target (all-or-nothing there).
  ForwardOutcome imported = Exchange(
      *target, "POST", "/admin/sessions/" + *session + "/import",
      "{\"envelope\":" + serve::JsonQuote(*envelope) + "}", request_id,
      /*retry_503=*/false);
  if (!imported.response.ok()) {
    return fail(vs::Status::IOError(
        StrFormat("import to %s failed: %s", to->c_str(),
                  imported.response.status().message().c_str())));
  }
  if (imported.response->status != 201) {
    return fail(vs::Status::Internal(
        StrFormat("import to %s answered HTTP %d: %s", to->c_str(),
                  imported.response->status,
                  imported.response->body.c_str())));
  }

  // 3. Flip routing.  From here the target copy is authoritative.
  {
    std::lock_guard<std::mutex> lock(override_mu_);
    vs::Result<std::string> natural = ring_.ShardFor(*session);
    if (natural.ok() && *natural == *to) {
      overrides_.erase(*session);  // migrated back to its ring home
    } else {
      overrides_[*session] = *to;
    }
  }

  // 4. Delete the source copy.  A failure here is not a failed
  //    migration — routing already moved — it leaves an unreferenced
  //    copy on the source that a later DELETE or operator sweep clears.
  ForwardOutcome deleted =
      Exchange(*source, "DELETE", "/sessions/" + *session, "", request_id,
               /*retry_503=*/true);
  const bool source_deleted =
      deleted.response.ok() && deleted.response->status == 200;

  EndMigrate(*session);
  migrations_.fetch_add(1, std::memory_order_relaxed);
  m.migrations->Increment();
  return JsonOk(StrFormat(
      "{\"session\":%s,\"from\":%s,\"to\":%s,\"migrated\":true,"
      "\"source_deleted\":%s}\n",
      serve::JsonQuote(*session).c_str(), serve::JsonQuote(*from).c_str(),
      serve::JsonQuote(*to).c_str(), source_deleted ? "true" : "false"));
}

HttpResponse ClusterRouter::AggregateHealthz() {
  std::string shards_json = "[";
  bool all_healthy = true;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (i > 0) shards_json += ",";
    bool healthy = false;
    std::string body = "null";
    if (!shard.detector.ejected()) {
      ForwardOutcome out = Exchange(shard, "GET", "/healthz", "",
                                    "router-healthz", /*retry_503=*/false);
      if (out.response.ok() && out.response->status == 200) {
        healthy = true;
        body = Trim(out.response->body);  // a JSON object, embed verbatim
      }
    }
    all_healthy = all_healthy && healthy;
    shards_json += StrFormat(
        "{\"name\":%s,\"healthy\":%s,\"ejected\":%s,\"healthz\":%s}",
        serve::JsonQuote(shard.address.name).c_str(),
        healthy ? "true" : "false",
        shard.detector.ejected() ? "true" : "false", body.c_str());
  }
  shards_json += "]";
  return JsonOk(StrFormat(
      "{\"status\":%s,\"role\":\"router\",\"num_shards\":%zu,"
      "\"shards\":%s,\"uptime_seconds\":%.3f}\n",
      all_healthy ? "\"ok\"" : "\"degraded\"", shards_.size(),
      shards_json.c_str(), uptime_.ElapsedSeconds()));
}

HttpResponse ClusterRouter::AggregateMetrics() {
  std::vector<std::string> expositions;
  // The router's own series first, so its HELP/TYPE text wins for the
  // cluster.* families (workers never emit those).
  expositions.push_back(
      obs::ToPrometheusText(obs::MetricsRegistry::Default().SnapshotAll()));
  for (const auto& shard : shards_) {
    if (shard->detector.ejected()) continue;
    ForwardOutcome out = Exchange(*shard, "GET", "/metrics", "",
                                  "router-metrics", /*retry_503=*/false);
    if (out.response.ok() && out.response->status == 200) {
      expositions.push_back(std::move(out.response->body));
    }
  }
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = MergePrometheusExpositions(expositions);
  return response;
}

HttpResponse ClusterRouter::AggregateStatusz() {
  std::string out = "{\"role\":\"router\"";
  out += StrFormat(",\"uptime_seconds\":%.3f", uptime_.ElapsedSeconds());
  out += ",\"config\":" + (options_.config_json.empty()
                               ? std::string("{}")
                               : options_.config_json);
  out += StrFormat(",\"ring_points\":%zu", ring_.num_points());
  out += StrFormat(",\"migrations\":%llu,\"migration_failures\":%llu",
                   static_cast<unsigned long long>(migrations()),
                   static_cast<unsigned long long>(migration_failures()));
  out += StrFormat(",\"deadline_rejects\":%llu",
                   static_cast<unsigned long long>(deadline_rejects()));
  out += StrFormat(
      ",\"retry_budget\":{\"tokens\":%.2f,\"withdrawals\":%llu,"
      "\"suppressed\":%llu}",
      retry_budget_.tokens(),
      static_cast<unsigned long long>(retry_budget_.withdrawals()),
      static_cast<unsigned long long>(retry_budget_.suppressed()));

  out += ",\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (i > 0) out += ",";
    std::string statusz = "null";
    if (!shard.detector.ejected()) {
      ForwardOutcome fetched = Exchange(shard, "GET", "/statusz", "",
                                        "router-statusz",
                                        /*retry_503=*/false);
      if (fetched.response.ok() && fetched.response->status == 200) {
        statusz = Trim(fetched.response->body);
      }
    }
    out += StrFormat(
        "{\"name\":%s,\"host\":%s,\"port\":%d,\"ejected\":%s,"
        "\"consecutive_failures\":%d,\"ejections\":%llu,"
        "\"readmissions\":%llu,\"breaker\":%s,\"breaker_opens\":%llu,"
        "\"breaker_probes\":%llu,\"statusz\":%s}",
        serve::JsonQuote(shard.address.name).c_str(),
        serve::JsonQuote(shard.address.host).c_str(), shard.address.port,
        shard.detector.ejected() ? "true" : "false",
        shard.detector.consecutive_failures(),
        static_cast<unsigned long long>(shard.detector.ejections()),
        static_cast<unsigned long long>(shard.detector.readmissions()),
        serve::JsonQuote(BreakerStateName(shard.breaker.state())).c_str(),
        static_cast<unsigned long long>(shard.breaker.opens()),
        static_cast<unsigned long long>(shard.breaker.probes()),
        statusz.c_str());
  }
  out += "]";

  out += ",\"overrides\":{";
  {
    std::lock_guard<std::mutex> lock(override_mu_);
    bool first = true;
    for (const auto& [session, shard] : overrides_) {
      if (!first) out += ",";
      first = false;
      out += serve::JsonQuote(session) + ":" + serve::JsonQuote(shard);
    }
  }
  out += "}}\n";
  return JsonOk(std::move(out));
}

HttpResponse ClusterRouter::Handle(const HttpRequest& request) {
  const std::string request_id = RequestId(request);
  RequestBudget budget;
  if (const std::string* header = request.FindHeader("x-deadline-ms")) {
    vs::Result<double> parsed = ParseDouble(Trim(*header));
    if (parsed.ok() && *parsed > 0.0) budget.deadline_ms = *parsed;
  }
  HttpResponse response;
  if (request.path == "/healthz" && request.method == "GET") {
    response = AggregateHealthz();
  } else if (request.path == "/metrics" && request.method == "GET") {
    response = AggregateMetrics();
  } else if (request.path == "/statusz" && request.method == "GET") {
    response = AggregateStatusz();
  } else if (request.path == "/admin/migrate" && request.method == "POST") {
    response = HandleMigrate(request, request_id);
  } else if (request.path == "/sessions" && request.method == "POST") {
    response = HandleCreate(request, request_id, budget);
  } else if (StartsWith(request.path, "/sessions/")) {
    const size_t start = std::string_view("/sessions/").size();
    const size_t slash = request.path.find('/', start);
    const std::string session_id =
        slash == std::string::npos
            ? request.path.substr(start)
            : request.path.substr(start, slash - start);
    if (session_id.empty()) {
      response = serve::JsonErrorResponse(404, "NotFound",
                                          "no route: " + request.path);
    } else {
      response = HandleSession(request, session_id, request_id, budget);
    }
  } else {
    response = serve::JsonErrorResponse(404, "NotFound",
                                        "no route: " + request.path);
  }
  // One id end-to-end: the router stamps the same id it forwarded.
  response.extra_headers.emplace_back("X-Request-Id", request_id);
  return response;
}

void ClusterRouter::ProbeShard(Shard& shard) {
  // Exchange feeds the detector; a 200 healthz (or any HTTP answer)
  // clears the streak and re-admits an ejected worker.
  Exchange(shard, "GET", "/healthz", "", "router-probe",
           /*retry_503=*/false);
}

void ClusterRouter::ProbeNow() {
  for (const auto& shard : shards_) ProbeShard(*shard);
}

void ClusterRouter::ProbeLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      std::max(0.05, options_.probe_interval_seconds)));
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!stop_prober_) {
    if (prober_cv_.wait_for(lock, interval,
                            [this] { return stop_prober_; })) {
      return;
    }
    lock.unlock();
    ProbeNow();
    lock.lock();
  }
}

}  // namespace vs::cluster
