#ifndef VS_CLUSTER_HASH_RING_H_
#define VS_CLUSTER_HASH_RING_H_

/// \file hash_ring.h
/// \brief Consistent-hash ring mapping session ids onto shard names.
///
/// The router places every session by hashing its id onto a ring of
/// virtual nodes (each shard owns `virtual_nodes` points, hashed from
/// "name#i").  Two properties make this the right structure for session
/// routing:
///
///  - *Stability*: adding or removing one shard out of N only remaps the
///    keys whose ring arcs the change touches — about 1/N of them, and
///    never more than the points the joining/leaving shard owns — so a
///    scale-out event does not cold-start every shard's caches.  (The
///    MQO-style win of routing overlapping sessions to the same worker,
///    see docs/ARCHITECTURE.md "Cluster topology".)
///  - *Determinism*: placement is a pure function of (shard set,
///    virtual_nodes, key), so any router replica — or a test — computes
///    the same assignment without coordination.
///
/// Not thread-safe: the router builds the ring at startup and treats it
/// as immutable while serving; membership *health* is tracked separately
/// (failure_detector.h) so an ejected shard keeps its arcs and its keys
/// come back to it on re-admission rather than rehashing the world.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace vs::cluster {

/// FNV-1a 64-bit.  Stable across platforms/builds (placement must agree
/// between router, tests and any future router replica), cheap, and good
/// enough dispersion for ring points once each shard contributes many
/// virtual nodes.
std::uint64_t HashKey64(std::string_view key);

struct HashRingOptions {
  /// Ring points per shard.  More points = better balance (stddev of
  /// arc share shrinks like 1/sqrt(virtual_nodes)) at the cost of a
  /// larger sorted array.  128 keeps worst-case shard load within ~20%
  /// of fair share for small clusters (pinned by hash_ring_test.cc).
  int virtual_nodes = 128;
};

class HashRing {
 public:
  explicit HashRing(HashRingOptions options = {});

  /// Adds a shard's virtual nodes.  Duplicate names are rejected.
  Status AddShard(std::string_view name);

  /// Removes a shard and its points.  Unknown names are rejected.
  Status RemoveShard(std::string_view name);

  /// Shard owning `key`: the first ring point clockwise from
  /// HashKey64(key), wrapping at the top.  FailedPrecondition when the
  /// ring is empty.
  Result<std::string> ShardFor(std::string_view key) const;

  const std::vector<std::string>& shards() const { return shards_; }
  size_t num_points() const { return points_.size(); }

 private:
  void Rebuild();

  HashRingOptions options_;
  std::vector<std::string> shards_;
  /// Sorted (point hash, shard index) pairs; lookup is one upper_bound.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace vs::cluster

#endif  // VS_CLUSTER_HASH_RING_H_
