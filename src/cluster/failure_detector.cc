#include "cluster/failure_detector.h"

namespace vs::cluster {

FailureDetector::FailureDetector(FailureDetectorOptions options)
    : options_(options) {
  if (options_.eject_after < 1) options_.eject_after = 1;
}

bool FailureDetector::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (!ejected_) return false;
  ejected_ = false;
  ++readmissions_;
  return true;
}

bool FailureDetector::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (ejected_ || consecutive_failures_ < options_.eject_after) return false;
  ejected_ = true;
  ++ejections_;
  return true;
}

bool FailureDetector::ejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ejected_;
}

std::uint64_t FailureDetector::ejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ejections_;
}

std::uint64_t FailureDetector::readmissions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return readmissions_;
}

int FailureDetector::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace vs::cluster
