#include "cluster/hash_ring.h"

#include <algorithm>

#include "common/string_util.h"

namespace vs::cluster {

std::uint64_t HashKey64(std::string_view key) {
  // FNV-1a, 64-bit offset basis / prime.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// FNV-1a alone scatters short, similar keys ("s0#17", "s0#18") badly —
/// measured per-shard load can be 2x fair share at 128 virtual nodes.
/// A 64-bit finalizer (Murmur3's fmix64: fixed xor-shift-multiply, no
/// data-dependent state) avalanches every input bit across the word, and
/// the balance test tightens to the promised 20%.  Applied identically
/// to ring points and lookup keys, so placement stays a pure,
/// platform-stable function.
std::uint64_t RingPosition(std::string_view key) {
  std::uint64_t h = HashKey64(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

HashRing::HashRing(HashRingOptions options) : options_(options) {
  if (options_.virtual_nodes < 1) options_.virtual_nodes = 1;
}

Status HashRing::AddShard(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("hash ring: empty shard name");
  }
  for (const auto& existing : shards_) {
    if (existing == name) {
      return Status::AlreadyExists(
          StrFormat("hash ring: duplicate shard '%s'", existing.c_str()));
    }
  }
  shards_.emplace_back(name);
  Rebuild();
  return Status::OK();
}

Status HashRing::RemoveShard(std::string_view name) {
  auto it = std::find(shards_.begin(), shards_.end(), name);
  if (it == shards_.end()) {
    return Status::NotFound(StrFormat("hash ring: unknown shard '%s'",
                                      std::string(name).c_str()));
  }
  shards_.erase(it);
  Rebuild();
  return Status::OK();
}

void HashRing::Rebuild() {
  points_.clear();
  points_.reserve(shards_.size() *
                  static_cast<size_t>(options_.virtual_nodes));
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    for (int i = 0; i < options_.virtual_nodes; ++i) {
      const std::string point_key =
          StrFormat("%s#%d", shards_[s].c_str(), i);
      points_.emplace_back(RingPosition(point_key), s);
    }
  }
  // Ties on the hash value are broken by shard index so the ring order —
  // and therefore placement — is independent of insertion order.
  std::sort(points_.begin(), points_.end());
}

Result<std::string> HashRing::ShardFor(std::string_view key) const {
  if (points_.empty()) {
    return Status::FailedPrecondition("hash ring: no shards");
  }
  const std::uint64_t h = RingPosition(key);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t value, const std::pair<std::uint64_t, std::uint32_t>&
             point) { return value < point.first; });
  if (it == points_.end()) it = points_.begin();  // Wrap past the top.
  return shards_[it->second];
}

}  // namespace vs::cluster
