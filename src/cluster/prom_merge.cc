#include "cluster/prom_merge.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string_view>

#include "common/string_util.h"

namespace vs::cluster {
namespace {

struct Family {
  std::string name;
  std::string help_line;  // Verbatim "# HELP ..." (first shard wins).
  std::string type_line;  // Verbatim "# TYPE ..." (first shard wins).
  /// Series keys ("name" or "name{labels}") in first-appearance order,
  /// which preserves each shard's sorted histogram-bucket emission.
  std::vector<std::string> order;
  std::map<std::string, double> values;
};

/// Splits a sample line into (series key, value text).  The series key
/// ends after the label block's closing '}' — found with quote and
/// backslash awareness, since a '}' may legally appear inside a quoted
/// label value — or at the first space for label-less samples.  Returns
/// false for lines this parser can't shape (passed through verbatim so
/// promcheck sees them).
bool SplitSample(const std::string& line, std::string* key,
                 std::string* value_text) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ' &&
         line[i] != '\t') {
    ++i;
  }
  if (i == 0 || i == line.size()) return false;
  if (line[i] == '{') {
    bool in_quotes = false;
    ++i;
    while (i < line.size()) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '\\' && i + 1 < line.size()) {
          ++i;  // Skip the escaped character.
        } else if (c == '"') {
          in_quotes = false;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == '}') {
        break;
      }
      ++i;
    }
    if (i >= line.size()) return false;  // Unterminated label block.
    ++i;  // Past '}'.
  }
  *key = line.substr(0, i);
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i == line.size()) return false;  // No value.
  *value_text = line.substr(i);
  // The value must parse as a float for summing to be meaningful.
  char* end = nullptr;
  std::strtod(value_text->c_str(), &end);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  return end != nullptr && *end == '\0';
}

/// Metric name portion of a series key (text before '{' or whole key).
std::string_view SeriesName(std::string_view key) {
  const size_t brace = key.find('{');
  return brace == std::string_view::npos ? key : key.substr(0, brace);
}

/// Second whitespace-separated token of "# HELP name ..." / "# TYPE
/// name ..." comment lines; empty when the line doesn't have one.
std::string CommentMetricName(const std::string& line, size_t prefix_len) {
  size_t start = prefix_len;
  while (start < line.size() && line[start] == ' ') ++start;
  size_t end = start;
  while (end < line.size() && line[end] != ' ') ++end;
  return line.substr(start, end - start);
}

std::string FormatValue(double value) {
  if (std::isfinite(value) && value == static_cast<double>(
                                           static_cast<std::int64_t>(value)) &&
      std::fabs(value) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.17g", value);
}

}  // namespace

std::string MergePrometheusExpositions(
    const std::vector<std::string>& expositions) {
  std::vector<Family> families;
  std::map<std::string, size_t> family_index;
  std::vector<std::string> raw_lines;  // Unparseable; surfaced verbatim.

  auto family_for = [&](std::string_view name) -> Family& {
    auto [it, inserted] =
        family_index.emplace(std::string(name), families.size());
    if (inserted) {
      families.emplace_back();
      families.back().name = std::string(name);
    }
    return families[it->second];
  };

  // A histogram/summary sample like foo_bucket belongs to family foo when
  // foo has been declared; otherwise the suffixed name is its own family.
  auto family_for_sample = [&](std::string_view name) -> Family& {
    if (family_index.count(std::string(name)) > 0) return family_for(name);
    for (std::string_view suffix :
         {std::string_view("_bucket"), std::string_view("_sum"),
          std::string_view("_count")}) {
      if (name.size() > suffix.size() &&
          name.substr(name.size() - suffix.size()) == suffix) {
        const std::string_view base =
            name.substr(0, name.size() - suffix.size());
        if (family_index.count(std::string(base)) > 0) {
          return family_for(base);
        }
      }
    }
    return family_for(name);
  };

  for (const std::string& page : expositions) {
    size_t pos = 0;
    while (pos <= page.size()) {
      size_t eol = page.find('\n', pos);
      if (eol == std::string::npos) eol = page.size();
      std::string line = page.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0) {
        Family& fam = family_for(CommentMetricName(line, 7));
        if (fam.help_line.empty()) fam.help_line = line;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        Family& fam = family_for(CommentMetricName(line, 7));
        if (fam.type_line.empty()) fam.type_line = line;
        continue;
      }
      if (line[0] == '#') continue;  // Other comments add nothing.
      std::string key, value_text;
      if (!SplitSample(line, &key, &value_text)) {
        raw_lines.push_back(line);
        continue;
      }
      Family& fam = family_for_sample(SeriesName(key));
      auto [it, inserted] = fam.values.emplace(key, 0.0);
      if (inserted) fam.order.push_back(key);
      if (fam.name == "viewseeker_build_info") {
        // One build-info gauge per binary; N shards of the same build
        // still describe one build, so dedupe at 1 instead of summing.
        it->second = 1.0;
      } else {
        it->second += std::strtod(value_text.c_str(), nullptr);
      }
    }
  }

  std::string out;
  for (const Family& fam : families) {
    if (!fam.help_line.empty()) {
      out += fam.help_line;
      out += '\n';
    }
    if (!fam.type_line.empty()) {
      out += fam.type_line;
      out += '\n';
    }
    for (const std::string& key : fam.order) {
      out += key;
      out += ' ';
      out += FormatValue(fam.values.at(key));
      out += '\n';
    }
  }
  for (const std::string& line : raw_lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace vs::cluster
