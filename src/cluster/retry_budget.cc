#include "cluster/retry_budget.h"

#include <algorithm>

namespace vs::cluster {

RetryBudget::RetryBudget(RetryBudgetOptions options) : options_(options) {
  options_.max_tokens = std::max(0.0, options_.max_tokens);
  options_.deposit_per_success = std::max(0.0, options_.deposit_per_success);
  tokens_ = options_.max_tokens;  // start full: a cold cluster may retry
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(options_.max_tokens,
                     tokens_ + options_.deposit_per_success);
}

bool RetryBudget::TryWithdraw() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++withdrawals_;
    return true;
  }
  ++suppressed_;
  return false;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

std::uint64_t RetryBudget::withdrawals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return withdrawals_;
}

std::uint64_t RetryBudget::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace vs::cluster
