#ifndef VS_CLUSTER_FAILURE_DETECTOR_H_
#define VS_CLUSTER_FAILURE_DETECTOR_H_

/// \file failure_detector.h
/// \brief Per-shard consecutive-miss failure detector.
///
/// The router keeps one of these per worker and feeds it two signals:
/// health-probe outcomes from the background checker thread and forward
/// outcomes from the data path (a request that reached the worker and
/// got any HTTP response counts as a success; a transport error counts
/// as a failure).  The policy is deliberately simple and *clock-free* —
/// `eject_after` consecutive failures ejects the shard, one success
/// re-admits it — which makes it a pure state machine the tests can
/// drive without sleeps, and leaves cadence entirely to the caller's
/// probe loop.
///
/// Ejection is advisory: the ring (hash_ring.h) keeps the shard's arcs,
/// the router just refuses to forward to it (503 to the client) while
/// probes keep running, so a bounced worker gets its exact key range
/// back on re-admission with caches and durable sessions intact.
///
/// Thread-safe; data path and probe thread record concurrently.

#include <cstdint>
#include <mutex>

namespace vs::cluster {

struct FailureDetectorOptions {
  /// Consecutive failures before ejection.  >= 1.
  int eject_after = 3;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorOptions options = {});

  /// Probe or forward succeeded: clears the miss streak; if the shard
  /// was ejected, re-admits it.  Returns true on that transition (the
  /// caller bumps its re-admission metric — the transition decision is
  /// made under the detector's lock, so callers never double-count).
  bool RecordSuccess();

  /// Probe or forward hit a transport failure: extends the streak and
  /// ejects at the threshold.  Returns true on the ejection transition.
  bool RecordFailure();

  bool ejected() const;

  /// Lifetime transition counts (for cluster.shard_ejections /
  /// cluster.shard_readmissions metrics and /statusz).
  std::uint64_t ejections() const;
  std::uint64_t readmissions() const;
  int consecutive_failures() const;

 private:
  FailureDetectorOptions options_;
  mutable std::mutex mu_;
  int consecutive_failures_ = 0;
  bool ejected_ = false;
  std::uint64_t ejections_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace vs::cluster

#endif  // VS_CLUSTER_FAILURE_DETECTOR_H_
