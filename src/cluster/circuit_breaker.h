#ifndef VS_CLUSTER_CIRCUIT_BREAKER_H_
#define VS_CLUSTER_CIRCUIT_BREAKER_H_

/// \file circuit_breaker.h
/// \brief Per-shard overload circuit breaker (closed / open / half-open).
///
/// Complements the failure detector (failure_detector.h), which watches
/// *liveness*: a transport error feeds the detector, but a worker that
/// answers 500s is "alive" to the detector while actively struggling.
/// The breaker watches *health under load* — HTTP-level server errors —
/// and trips before the router piles more traffic onto a shard that is
/// answering but failing:
///
///   closed    — traffic flows; `trip_after` consecutive server errors
///               opens the breaker.
///   open      — Allow() refuses everything (the router answers 503 with
///               `Retry-After` and never dials) until `open_seconds` of
///               cool-down elapse.
///   half-open — exactly one request is admitted as a probe.  Its
///               success closes the breaker; its failure re-opens it for
///               another full cool-down.
///
/// Distinct from ejection by design: an ejected shard is presumed *down*
/// (probes re-admit it), an open breaker means the shard is *up but
/// overloaded* (letting it drain is the cure).  The two compose — the
/// router checks ejection first, then the breaker.
///
/// Pure state machine over an injectable Clock; the tests drive it with
/// a FakeClock and zero sleeps.  Thread-safe.

#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace vs::cluster {

struct CircuitBreakerOptions {
  /// Consecutive server-error completions before the breaker opens.
  int trip_after = 5;
  /// Cool-down before an open breaker admits its half-open probe.
  double open_seconds = 1.0;
  /// Time source; nullptr = real clock.
  const Clock* clock = nullptr;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Renders a state for /statusz ("closed" / "open" / "half_open").
const char* BreakerStateName(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// May a request pass right now?  In the open state this returns false
  /// until the cool-down elapses, then transitions to half-open and
  /// admits exactly one caller (the probe); subsequent callers are
  /// refused until that probe completes via RecordSuccess/RecordFailure.
  bool Allow();

  /// The shard answered with a non-server-error status: clears the error
  /// streak; a half-open probe success closes the breaker.
  void RecordSuccess();

  /// The shard answered a server error (or the transport failed while
  /// the breaker was probing): extends the streak, opens at the
  /// threshold, and re-opens a half-open breaker.  Returns true on a
  /// transition into the open state (the caller bumps its metric; the
  /// decision is made under the breaker's lock so it never double-counts).
  bool RecordFailure();

  BreakerState state() const;

  /// Lifetime transition counts for /statusz.
  std::uint64_t opens() const;
  std::uint64_t probes() const;

 private:
  CircuitBreakerOptions options_;
  const Clock* clock_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_errors_ = 0;
  int64_t opened_at_us_ = 0;
  bool probe_inflight_ = false;
  std::uint64_t opens_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace vs::cluster

#endif  // VS_CLUSTER_CIRCUIT_BREAKER_H_
