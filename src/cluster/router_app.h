#ifndef VS_CLUSTER_ROUTER_APP_H_
#define VS_CLUSTER_ROUTER_APP_H_

/// \file router_app.h
/// \brief The cluster front-end: consistent-hash session routing over N
/// `viewseeker serve` workers, with health checking and live migration.
///
/// One ClusterRouter is the handler behind a `viewseeker route` process
/// (or an in-process HttpServer in tests).  Responsibilities:
///
///  * *Placement*: the router generates every session id itself, hashes
///    it onto the ring (hash_ring.h) and creates the session on the
///    owning worker via `POST /sessions?id=<id>` — so subsequent
///    requests for the id route statelessly by re-hashing.  Sessions the
///    ring maps elsewhere after a migration are tracked in an override
///    map (in-memory; a router restart forgets overrides, so operators
///    should migrate back or restart workers too — see
///    docs/ARCHITECTURE.md "Cluster topology").
///  * *Forwarding*: the full session wire protocol passes through with
///    one request id end-to-end (client's sanitized `X-Request-Id`, or
///    a generated `rt-<n>`) and an `X-Shard` header stamped on every
///    response naming the worker that served it.  Idempotent methods
///    (GET/DELETE) retry transport failures *and* 503 sheds with
///    backoff; creates retry with a *fresh* id, which re-rolls the
///    placement onto another shard — a failed create acked nothing, so
///    this is safe.  Non-idempotent forwards (label) are never retried.
///  * *Health*: a background prober sweeps `/healthz` on every worker;
///    a consecutive-miss failure detector (failure_detector.h) ejects a
///    worker after `eject_after` misses and re-admits it on the first
///    successful probe.  Requests owned by an ejected worker answer 503
///    without a connection attempt.
///  * *Aggregation*: the router's own `/healthz`, `/metrics` (merged
///    exposition, prom_merge.h) and `/statusz` summarize the cluster.
///  * *Migration*: `POST /admin/migrate {"session","to"}` drains the
///    session's in-flight requests at the router (new ones hold, bounded
///    by migrate_hold_seconds), exports the session on its current
///    worker through the durable snapshot path, imports the bytes
///    verbatim on the target, flips the override, then deletes the
///    source copy.  Any failure before the flip leaves the session
///    exactly where it was; the client sees held requests complete
///    normally, never a 5xx caused by the handoff.
///
/// Overload resilience (docs/ARCHITECTURE.md "Overload & degradation"):
///
///  * *Deadline propagation*: a client `X-Deadline-Ms` header is parsed
///    at arrival, decremented by the router's own elapsed time at every
///    hop (DecrementedDeadlineMs), and forwarded to the worker as the
///    *remaining* budget.  A request whose budget is already spent is
///    answered 504 without dialing the worker.
///  * *Circuit breakers*: each shard carries a CircuitBreaker fed by
///    data-path forward outcomes (HTTP 5xx = failure).  An open breaker
///    answers 503 + `Retry-After` without a connection attempt and
///    half-open probing lets one request test recovery — distinct from
///    detector ejection, which tracks transport-level liveness.
///  * *Retry budget*: one RetryBudget gates every retry the router takes
///    (client backoff retries, idempotent 503 re-forwards, create
///    re-placements).  When the bucket is dry, first attempts still pass
///    but retry amplification drops to 1x.
///
/// Exported metrics (default registry, prefix `cluster.`):
///   cluster.requests_forwarded      counter, forwards attempted
///   cluster.forward_errors          counter, forwards that answered 502
///   cluster.forward_retries         counter, backoff retries taken
///   cluster.retries_503             counter, create re-placements after
///                                   a worker shed the create with 503
///   cluster.rejected_unavailable    counter, 503s for ejected shards
///   cluster.shard_ejections         counter, detector ejection events
///   cluster.shard_readmissions      counter, detector re-admissions
///   cluster.migrations              counter, completed migrations
///   cluster.migration_failures      counter, aborted migrations
///   cluster.breaker_opens           counter, breaker trip transitions
///   cluster.breaker_rejects         counter, 503s for open breakers
///   cluster.retries_suppressed      counter, retries the budget refused
///   cluster.deadline_rejects        counter, 504s for spent deadlines
///   cluster.retry_budget_tokens     gauge, tokens left in the budget
///   cluster.shard_requests.<name>   counter, forwards per shard
///   cluster.forward_seconds.<name>  histogram, forward latency
///   cluster.shard_up.<name>         gauge, 1 = serving, 0 = ejected

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/circuit_breaker.h"
#include "cluster/failure_detector.h"
#include "cluster/hash_ring.h"
#include "cluster/retry_budget.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/http.h"

namespace vs::cluster {

/// Remaining deadline budget after spending \p elapsed_ms at this hop:
/// `max(0, deadline_ms - elapsed_ms)`.  A zero/negative \p deadline_ms
/// means "no deadline" and maps to 0 ("none") — callers must check
/// has-deadline before interpreting the result as "expired".
double DecrementedDeadlineMs(double deadline_ms, double elapsed_ms);

struct ShardAddress {
  std::string name;  ///< [A-Za-z0-9._-], unique; appears in metric names
  std::string host = "127.0.0.1";
  int port = 0;
};

struct ClusterRouterOptions {
  std::vector<ShardAddress> shards;
  int virtual_nodes = 128;
  /// Consecutive probe/forward misses before a worker is ejected.
  int eject_after = 3;
  /// Background health-probe cadence; <= 0 disables the thread (tests
  /// drive ProbeNow() explicitly).
  double probe_interval_seconds = 1.0;
  /// Socket timeout for one worker exchange (forward or probe).
  double forward_timeout_seconds = 10.0;
  /// Attempt budget for retryable forwards and for create re-placement.
  int forward_attempts = 3;
  double retry_backoff_seconds = 0.05;
  /// Longest a request for a migrating session is held at the router
  /// (and the longest a migrate waits for in-flight drain).
  double migrate_hold_seconds = 10.0;
  /// Per-shard overload breaker (circuit_breaker.h); trips on HTTP 5xx
  /// from the data path, distinct from detector ejection.
  CircuitBreakerOptions breaker;
  /// Router-global retry budget (retry_budget.h) gating backoff retries,
  /// idempotent 503 re-forwards and create re-placements.
  RetryBudgetOptions retry_budget;
  /// Rendered verbatim in /statusz ("{}" when empty).
  std::string config_json;
  /// Session-id generation salt.
  uint64_t seed = 0xc105;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(ClusterRouterOptions options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Validates the shard list, builds the ring, runs one synchronous
  /// probe sweep (so /healthz is meaningful immediately) and starts the
  /// background prober.  Fails on empty/duplicate/invalid shard names.
  vs::Status Start();
  /// Stops the prober.  Idempotent; the destructor calls it.
  void Stop();

  /// Transport entry point (give this to an HttpServer).
  serve::HttpResponse Handle(const serve::HttpRequest& request);

  /// \name Introspection (tests, /statusz).
  /// @{
  /// Where a session routes right now (override map, then ring).
  vs::Result<std::string> ShardForSession(const std::string& id) const;
  bool ShardEjected(const std::string& name) const;
  /// Breaker state for a shard (kOpen for unknown names — nothing routes
  /// there anyway).
  BreakerState ShardBreakerState(const std::string& name) const;
  const RetryBudget& retry_budget() const { return retry_budget_; }
  uint64_t deadline_rejects() const {
    return deadline_rejects_.load(std::memory_order_relaxed);
  }
  /// One synchronous probe sweep over all shards.
  void ProbeNow();
  uint64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }
  uint64_t migration_failures() const {
    return migration_failures_.load(std::memory_order_relaxed);
  }
  /// @}

 private:
  struct Shard {
    Shard(ShardAddress addr, FailureDetectorOptions detector_options,
          CircuitBreakerOptions breaker_options)
        : address(std::move(addr)),
          detector(detector_options),
          breaker(breaker_options) {}

    ShardAddress address;
    FailureDetector detector;
    CircuitBreaker breaker;
    /// Idle keep-alive connections to this worker (HttpClient is
    /// single-connection and not thread-safe, so concurrent forwards
    /// each borrow one and return it after the exchange).
    std::mutex pool_mu;
    std::vector<std::unique_ptr<serve::HttpClient>> pool;
    obs::Counter* requests = nullptr;
    obs::Histogram* forward_seconds = nullptr;
    obs::Gauge* up = nullptr;
  };

  /// Per-session hold state during migration.  An entry exists only
  /// while a migration is running or requests are in flight.
  struct SessionGate {
    int inflight = 0;
    bool migrating = false;
  };

  /// Result of one worker exchange.
  struct ForwardOutcome {
    vs::Result<serve::ClientResponse> response =
        vs::Status::Internal("no exchange attempted");
    double seconds = 0.0;
  };

  /// Per-request deadline budget, decremented by this hop's elapsed time
  /// (see DecrementedDeadlineMs).  deadline_ms == 0 means "none".
  struct RequestBudget {
    double deadline_ms = 0.0;
    Stopwatch elapsed;

    bool has_deadline() const { return deadline_ms > 0.0; }
    double remaining_ms() const {
      return DecrementedDeadlineMs(deadline_ms,
                                   elapsed.ElapsedSeconds() * 1e3);
    }
    bool expired() const { return has_deadline() && remaining_ms() <= 0.0; }
  };

  Shard* FindShard(const std::string& name);
  const Shard* FindShard(const std::string& name) const;

  std::string NewSessionId();
  std::string RequestId(const serve::HttpRequest& request);

  /// Borrow-a-connection exchange with `shard`; feeds the detector and
  /// per-shard metrics.  `retry_503` selects the idempotent policy.
  /// `budget` (nullable) forwards the remaining deadline as X-Deadline-Ms
  /// and caps the retry deadline.  `data_path` = this exchange carries
  /// client traffic: its outcome feeds the shard's circuit breaker and
  /// the global retry budget (probes and aggregation stay out so a
  /// healthy /healthz cannot mask a failing data path).
  ForwardOutcome Exchange(Shard& shard, std::string_view method,
                          std::string_view target, std::string_view body,
                          const std::string& request_id, bool retry_503,
                          const RequestBudget* budget = nullptr,
                          bool data_path = false);

  /// Exchange + render: maps transport failure to 502 and stamps
  /// X-Request-Id / X-Shard / X-Request-Stages.
  serve::HttpResponse ForwardToShard(Shard& shard,
                                     const serve::HttpRequest& request,
                                     const std::string& request_id,
                                     bool retry_503,
                                     const RequestBudget* budget);

  serve::HttpResponse HandleCreate(const serve::HttpRequest& request,
                                   const std::string& request_id,
                                   const RequestBudget& budget);
  serve::HttpResponse HandleSession(const serve::HttpRequest& request,
                                    const std::string& session_id,
                                    const std::string& request_id,
                                    const RequestBudget& budget);
  serve::HttpResponse HandleMigrate(const serve::HttpRequest& request,
                                    const std::string& request_id);
  serve::HttpResponse AggregateHealthz();
  serve::HttpResponse AggregateMetrics();
  serve::HttpResponse AggregateStatusz();

  /// Blocks while `id` is migrating (bounded); registers the request.
  vs::Status EnterSession(const std::string& id);
  void ExitSession(const std::string& id);
  /// Marks `id` migrating and waits for in-flight drain (bounded).
  vs::Status BeginMigrate(const std::string& id);
  void EndMigrate(const std::string& id);

  void ProbeShard(Shard& shard);
  void ProbeLoop();

  ClusterRouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Stopwatch uptime_;

  mutable std::mutex override_mu_;
  std::map<std::string, std::string> overrides_;  ///< session -> shard

  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::map<std::string, SessionGate> gates_;

  std::mutex id_mu_;
  uint64_t id_counter_ = 0;
  Rng id_rng_;

  std::atomic<uint64_t> request_sequence_{0};
  std::atomic<uint64_t> migrations_{0};
  std::atomic<uint64_t> migration_failures_{0};
  std::atomic<uint64_t> deadline_rejects_{0};
  RetryBudget retry_budget_;

  std::thread prober_;
  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool stop_prober_ = false;
  bool started_ = false;
};

}  // namespace vs::cluster

#endif  // VS_CLUSTER_ROUTER_APP_H_
