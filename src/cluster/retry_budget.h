#ifndef VS_CLUSTER_RETRY_BUDGET_H_
#define VS_CLUSTER_RETRY_BUDGET_H_

/// \file retry_budget.h
/// \brief Router-global retry budget (token bucket fed by successes).
///
/// Per-request retry loops amplify overload: when every forward starts
/// failing, N attempts per request multiplies offered load by N exactly
/// when the cluster can least afford it.  The budget caps the *global*
/// retry rate instead of the per-request attempt count: every successful
/// forward deposits a fraction of a token, every retry (backoff retry,
/// 503 re-forward, or create re-placement) withdraws a whole one, and
/// when the bucket is dry retries are suppressed — first attempts always
/// pass, so the budget degrades retry amplification to 1x without
/// shedding fresh work.
///
/// With `deposit_per_success = 0.1`, retries are bounded to ~10% of the
/// success rate in steady state, plus the `max_tokens` burst.
///
/// Clock-free (deposits come from traffic, not time) and thread-safe.

#include <cstdint>
#include <mutex>

namespace vs::cluster {

struct RetryBudgetOptions {
  /// Bucket capacity (burst of retries tolerated from a cold start; the
  /// bucket also starts full).
  double max_tokens = 10.0;
  /// Tokens deposited per successful forward.
  double deposit_per_success = 0.1;
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// A forward completed successfully: deposit, capped at max_tokens.
  void RecordSuccess();

  /// Called before taking a retry.  True = one token withdrawn, proceed;
  /// false = bucket dry, the caller must give up with what it has (the
  /// suppression is counted for cluster.retries_suppressed).
  bool TryWithdraw();

  double tokens() const;
  std::uint64_t withdrawals() const;
  std::uint64_t suppressed() const;

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mu_;
  double tokens_;
  std::uint64_t withdrawals_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace vs::cluster

#endif  // VS_CLUSTER_RETRY_BUDGET_H_
