#ifndef VS_CLUSTER_PROM_MERGE_H_
#define VS_CLUSTER_PROM_MERGE_H_

/// \file prom_merge.h
/// \brief Merge N workers' Prometheus expositions into one valid page.
///
/// The router's /metrics scrapes every live shard and must present one
/// exposition that still passes tools/promcheck: one HELP/TYPE per
/// metric family (duplicate TYPE lines are an error there), samples
/// grouped under their family, histogram buckets cumulative.  Since all
/// shards run the same binary, identical series keys (name + label set)
/// describe the same thing, so the merge is:
///
///  - families keyed by metric name; first shard's HELP/TYPE wins,
///  - samples with the same (name, labels) key are *summed* — counters
///    and histogram bucket/sum/count lines add across shards, and
///    histograms stay cumulative because every shard uses the same
///    bucket bounds (same binary),
///  - `viewseeker_build_info` is deduplicated at value 1 instead of
///    summed (a build-info gauge reading "4" would be nonsense),
///  - family order = order of first appearance, sample order within a
///    family = order of first appearance (preserves each exposition's
///    sorted bucket order).
///
/// Gauges are also summed; for the worker gauges this aggregates (total
/// sessions across the cluster, total cache bytes), which is the number
/// an operator wants at the router level.  Per-shard views stay
/// available on each worker's own /metrics.

#include <string>
#include <vector>

namespace vs::cluster {

/// `expositions` are full text/plain pages as served by workers.
/// Malformed lines are passed through verbatim (promcheck will flag
/// them at the aggregate, which is what we want — aggregation must not
/// mask a worker emitting garbage).
std::string MergePrometheusExpositions(
    const std::vector<std::string>& expositions);

}  // namespace vs::cluster

#endif  // VS_CLUSTER_PROM_MERGE_H_
