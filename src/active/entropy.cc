#include "active/entropy.h"

#include <cmath>

namespace vs::active {

namespace {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

}  // namespace

vs::Result<size_t> EntropyStrategy::SelectNext(const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  if (ctx.uncertainty_model == nullptr || !ctx.uncertainty_model->fitted()) {
    return RandomChoice(ctx);
  }
  size_t best = (*ctx.unlabeled)[0];
  double best_entropy = -1.0;
  for (size_t idx : *ctx.unlabeled) {
    VS_ASSIGN_OR_RETURN(
        double p, ctx.uncertainty_model->PredictProba(ctx.features->Row(idx)));
    const double h = BinaryEntropy(p);
    if (h > best_entropy) {
      best_entropy = h;
      best = idx;
    }
  }
  return best;
}

}  // namespace vs::active
