#ifndef VS_ACTIVE_COMMITTEE_H_
#define VS_ACTIVE_COMMITTEE_H_

/// \file committee.h
/// \brief Query-by-committee (Seung, Opper & Sompolinsky [24]): train an
/// ensemble of uncertainty estimators on bootstrap resamples of the
/// labeled set and query the view they disagree on most (variance of the
/// predicted probabilities).  Cited as related work by the paper; included
/// for the strategy ablation bench.

#include "active/strategy.h"

namespace vs::active {

/// \brief Bootstrap-ensemble disagreement sampling.
class QueryByCommitteeStrategy final : public QueryStrategy {
 public:
  /// \p committee_size members, each trained on a bootstrap resample of
  /// the labeled views (labels thresholded at 0.5).
  explicit QueryByCommitteeStrategy(int committee_size = 5)
      : committee_size_(committee_size) {}

  std::string name() const override { return "committee"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;

 private:
  int committee_size_;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_COMMITTEE_H_
