#include "active/cold_start.h"

namespace vs::active {

ColdStartPolicy::ColdStartPolicy(const ml::Matrix* features,
                                 double positive_threshold)
    : features_(features), positive_threshold_(positive_threshold) {}

vs::Result<size_t> ColdStartPolicy::SelectNext(
    const std::vector<size_t>& unlabeled, vs::Rng* rng) {
  if (features_ == nullptr || rng == nullptr) {
    return vs::Status::InvalidArgument(
        "cold start requires features and rng");
  }
  if (unlabeled.empty()) {
    return vs::Status::FailedPrecondition("no unlabeled views remain");
  }
  if (next_feature_ < features_->cols()) {
    const size_t col = next_feature_++;
    size_t best = unlabeled[0];
    double best_value = -std::numeric_limits<double>::infinity();
    for (size_t idx : unlabeled) {
      if (idx >= features_->rows()) {
        return vs::Status::OutOfRange("unlabeled index out of range");
      }
      const double v = (*features_)(idx, col);
      if (v > best_value) {
        best_value = v;
        best = idx;
      }
    }
    return best;
  }
  // Feature sweep exhausted without both classes: random sampling.
  return unlabeled[rng->NextBounded(unlabeled.size())];
}

void ColdStartPolicy::ReportLabel(double label) {
  if (label >= positive_threshold_) {
    has_positive_ = true;
  } else {
    has_negative_ = true;
  }
}

}  // namespace vs::active
