#ifndef VS_ACTIVE_DENSITY_H_
#define VS_ACTIVE_DENSITY_H_

/// \file density.h
/// \brief Information-density weighted uncertainty sampling (Settles &
/// Craven [23]): plain uncertainty sampling can chase outliers whose
/// labels generalize to nothing; weighting each candidate's uncertainty by
/// its average similarity to the rest of the pool prefers views that are
/// both uncertain *and* representative.
///
///   score(x) = u_lc(x) * (mean_x' sim(x, x'))^beta,
///   sim(a, b) = 1 / (1 + ||a - b||_2)

#include "active/strategy.h"

namespace vs::active {

/// \brief Density-weighted least-confidence query selection.
class DensityWeightedStrategy final : public QueryStrategy {
 public:
  /// \p beta controls the density weighting strength (0 reduces to plain
  /// least confidence).
  explicit DensityWeightedStrategy(double beta = 1.0) : beta_(beta) {}

  std::string name() const override { return "density"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;

 private:
  double beta_;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_DENSITY_H_
