#include "active/density.h"

#include <cmath>

namespace vs::active {

vs::Result<size_t> DensityWeightedStrategy::SelectNext(
    const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  if (ctx.uncertainty_model == nullptr || !ctx.uncertainty_model->fitted()) {
    return RandomChoice(ctx);
  }
  const ml::Matrix& features = *ctx.features;
  const size_t d = features.cols();

  // Density over the whole pool (labeled + unlabeled): the pool mean is a
  // sufficient proxy pivot would be cheaper, but the pool here is small
  // (hundreds of views), so the exact O(|candidates| * |pool|) pass is
  // fine and exact.
  size_t best = (*ctx.unlabeled)[0];
  double best_score = -1.0;
  for (size_t idx : *ctx.unlabeled) {
    VS_ASSIGN_OR_RETURN(
        double p, ctx.uncertainty_model->PredictProba(features.Row(idx)));
    const double uncertainty = 1.0 - std::fabs(2.0 * p - 1.0);

    double total_sim = 0.0;
    const double* row = features.RowPtr(idx);
    for (size_t other = 0; other < features.rows(); ++other) {
      if (other == idx) continue;
      const double* other_row = features.RowPtr(other);
      double dist2 = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = row[j] - other_row[j];
        dist2 += diff * diff;
      }
      total_sim += 1.0 / (1.0 + std::sqrt(dist2));
    }
    const double density =
        features.rows() > 1
            ? total_sim / static_cast<double>(features.rows() - 1)
            : 1.0;
    const double score = uncertainty * std::pow(density, beta_);
    if (score > best_score) {
      best_score = score;
      best = idx;
    }
  }
  return best;
}

}  // namespace vs::active
