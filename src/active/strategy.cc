#include "active/strategy.h"

#include "active/committee.h"
#include "active/density.h"
#include "active/entropy.h"
#include "active/margin.h"
#include "active/random_strategy.h"
#include "active/uncertainty.h"

namespace vs::active {

vs::Result<std::unique_ptr<QueryStrategy>> MakeStrategy(
    const std::string& name) {
  if (name == "uncertainty") {
    return std::unique_ptr<QueryStrategy>(new LeastConfidenceStrategy());
  }
  if (name == "random") {
    return std::unique_ptr<QueryStrategy>(new RandomStrategy());
  }
  if (name == "margin") {
    return std::unique_ptr<QueryStrategy>(new MarginStrategy());
  }
  if (name == "entropy") {
    return std::unique_ptr<QueryStrategy>(new EntropyStrategy());
  }
  if (name == "committee") {
    return std::unique_ptr<QueryStrategy>(new QueryByCommitteeStrategy());
  }
  if (name == "greedy") {
    return std::unique_ptr<QueryStrategy>(new GreedyUtilityStrategy());
  }
  if (name == "density") {
    return std::unique_ptr<QueryStrategy>(new DensityWeightedStrategy());
  }
  return vs::Status::NotFound("unknown query strategy: " + name);
}

std::vector<std::string> AllStrategyNames() {
  return {"uncertainty", "random", "margin", "entropy", "committee",
          "greedy", "density"};
}

}  // namespace vs::active
