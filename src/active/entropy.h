#ifndef VS_ACTIVE_ENTROPY_H_
#define VS_ACTIVE_ENTROPY_H_

/// \file entropy.h
/// \brief Entropy sampling: query the example whose predictive class
/// distribution has maximum Shannon entropy.  Binary entropy
/// H(p) = -p log p - (1-p) log(1-p) peaks at p = 0.5, so for the binary
/// uncertainty estimator the ranking again coincides with least
/// confidence; see margin.h for why the implementation is kept separate.

#include "active/strategy.h"

namespace vs::active {

/// \brief Maximum-entropy query selection.
class EntropyStrategy final : public QueryStrategy {
 public:
  std::string name() const override { return "entropy"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_ENTROPY_H_
