#include "active/margin.h"

#include <cmath>

namespace vs::active {

vs::Result<size_t> MarginStrategy::SelectNext(const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  if (ctx.uncertainty_model == nullptr || !ctx.uncertainty_model->fitted()) {
    return RandomChoice(ctx);
  }
  size_t best = (*ctx.unlabeled)[0];
  double best_margin = std::numeric_limits<double>::infinity();
  for (size_t idx : *ctx.unlabeled) {
    VS_ASSIGN_OR_RETURN(
        double p, ctx.uncertainty_model->PredictProba(ctx.features->Row(idx)));
    const double margin = std::fabs(2.0 * p - 1.0);
    if (margin < best_margin) {
      best_margin = margin;
      best = idx;
    }
  }
  return best;
}

}  // namespace vs::active
