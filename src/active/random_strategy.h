#ifndef VS_ACTIVE_RANDOM_STRATEGY_H_
#define VS_ACTIVE_RANDOM_STRATEGY_H_

/// \file random_strategy.h
/// \brief Uniform random query selection — the paper's fallback when the
/// cold-start sweep finds no signal, and the natural lower baseline for
/// the strategy ablation.

#include "active/strategy.h"

namespace vs::active {

/// \brief Queries a uniformly random unlabeled view.
class RandomStrategy final : public QueryStrategy {
 public:
  std::string name() const override { return "random"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_RANDOM_STRATEGY_H_
