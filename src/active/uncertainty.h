#ifndef VS_ACTIVE_UNCERTAINTY_H_
#define VS_ACTIVE_UNCERTAINTY_H_

/// \file uncertainty.h
/// \brief Least-confidence uncertainty sampling (Lewis & Gale [14]) — the
/// paper's query strategy (Eq. 6/7): query the view whose predicted
/// interesting-probability is closest to 0.5.  Also hosts the greedy
/// exploitation baseline used by the strategy ablation.

#include "active/strategy.h"

namespace vs::active {

/// \brief The paper's strategy: argmax of u_lc(x) = 1 - p(ŷ|x), i.e. the
/// unlabeled view with p(y=1|x) closest to 0.5.  Falls back to uniform
/// random while the uncertainty estimator is unfitted.
class LeastConfidenceStrategy final : public QueryStrategy {
 public:
  std::string name() const override { return "uncertainty"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;
};

/// \brief Pure exploitation baseline: query the unlabeled view with the
/// highest predicted *utility* under the current view utility estimator.
/// Prone to confirmation bias; included to show why ViewSeeker queries by
/// uncertainty instead.
class GreedyUtilityStrategy final : public QueryStrategy {
 public:
  std::string name() const override { return "greedy"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_UNCERTAINTY_H_
