#ifndef VS_ACTIVE_COLD_START_H_
#define VS_ACTIVE_COLD_START_H_

/// \file cold_start.h
/// \brief The paper's cold-start policy (§3.2): until the labeled set
/// contains both a positive and a negative view (the uncertainty estimator
/// needs both classes), propose the top-ranked unlabeled view under each
/// utility feature in turn; if a full sweep over all features yields no
/// signal, fall back to uniform random sampling.

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "ml/matrix.h"

namespace vs::active {

/// \brief Stateful cold-start selector.
class ColdStartPolicy {
 public:
  /// \p features: pool feature matrix (not owned; must outlive the policy).
  /// \p positive_threshold: labels >= threshold count as positive,
  /// < threshold as negative.
  explicit ColdStartPolicy(const ml::Matrix* features,
                           double positive_threshold = 0.5);

  /// Picks the next view: the unlabeled view maximizing the current
  /// feature column, advancing to the next feature per call; uniform
  /// random once every feature has been tried.
  vs::Result<size_t> SelectNext(const std::vector<size_t>& unlabeled,
                                vs::Rng* rng);

  /// Reports the user's label for the previously selected view.
  void ReportLabel(double label);

  /// True once both a positive and a negative label have been observed.
  bool Done() const { return has_positive_ && has_negative_; }

  /// True once the policy has exhausted the per-feature sweep and is
  /// sampling randomly.
  bool ExhaustedFeatureSweep() const {
    return next_feature_ >= features_->cols();
  }

 private:
  const ml::Matrix* features_;
  double positive_threshold_;
  size_t next_feature_ = 0;
  bool has_positive_ = false;
  bool has_negative_ = false;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_COLD_START_H_
