#include "active/uncertainty.h"

#include <cmath>

namespace vs::active {

vs::Status ValidateContext(const QueryContext& ctx) {
  if (ctx.features == nullptr || ctx.unlabeled == nullptr ||
      ctx.rng == nullptr) {
    return vs::Status::InvalidArgument(
        "QueryContext requires features, unlabeled set, and rng");
  }
  if (ctx.unlabeled->empty()) {
    return vs::Status::FailedPrecondition("no unlabeled views remain");
  }
  for (size_t idx : *ctx.unlabeled) {
    if (idx >= ctx.features->rows()) {
      return vs::Status::OutOfRange("unlabeled index out of range");
    }
  }
  return vs::Status::OK();
}

vs::Result<size_t> RandomChoice(const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  const size_t pick = ctx.rng->NextBounded(ctx.unlabeled->size());
  return (*ctx.unlabeled)[pick];
}

vs::Result<size_t> LeastConfidenceStrategy::SelectNext(
    const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  if (ctx.uncertainty_model == nullptr || !ctx.uncertainty_model->fitted()) {
    return RandomChoice(ctx);
  }
  size_t best = (*ctx.unlabeled)[0];
  double best_gap = std::numeric_limits<double>::infinity();
  for (size_t idx : *ctx.unlabeled) {
    VS_ASSIGN_OR_RETURN(
        double p, ctx.uncertainty_model->PredictProba(ctx.features->Row(idx)));
    const double gap = std::fabs(p - 0.5);
    if (gap < best_gap) {
      best_gap = gap;
      best = idx;
    }
  }
  return best;
}

vs::Result<size_t> GreedyUtilityStrategy::SelectNext(const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  if (ctx.utility_model == nullptr || !ctx.utility_model->fitted()) {
    return RandomChoice(ctx);
  }
  size_t best = (*ctx.unlabeled)[0];
  double best_utility = -std::numeric_limits<double>::infinity();
  for (size_t idx : *ctx.unlabeled) {
    VS_ASSIGN_OR_RETURN(
        double u, ctx.utility_model->Predict(ctx.features->Row(idx)));
    if (u > best_utility) {
      best_utility = u;
      best = idx;
    }
  }
  return best;
}

}  // namespace vs::active
