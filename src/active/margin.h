#ifndef VS_ACTIVE_MARGIN_H_
#define VS_ACTIVE_MARGIN_H_

/// \file margin.h
/// \brief Margin sampling: query the example with the smallest margin
/// between the two most likely class probabilities.  For the binary
/// uncertainty estimator the margin is |p - (1-p)| = |2p - 1|, so the
/// *ranking* coincides with least confidence; the strategy is kept as a
/// separate implementation because the ablation bench verifies precisely
/// this equivalence (and because multi-class estimators would diverge).

#include "active/strategy.h"

namespace vs::active {

/// \brief Smallest-margin query selection.
class MarginStrategy final : public QueryStrategy {
 public:
  std::string name() const override { return "margin"; }
  vs::Result<size_t> SelectNext(const QueryContext& ctx) override;
};

}  // namespace vs::active

#endif  // VS_ACTIVE_MARGIN_H_
