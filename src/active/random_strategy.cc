#include "active/random_strategy.h"

namespace vs::active {

vs::Result<size_t> RandomStrategy::SelectNext(const QueryContext& ctx) {
  return RandomChoice(ctx);
}

}  // namespace vs::active
