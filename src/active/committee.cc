#include "active/committee.h"

#include <cmath>

namespace vs::active {

vs::Result<size_t> QueryByCommitteeStrategy::SelectNext(
    const QueryContext& ctx) {
  VS_RETURN_IF_ERROR(ValidateContext(ctx));
  if (ctx.labeled == nullptr || ctx.labels == nullptr ||
      ctx.labeled->size() != ctx.labels->size()) {
    return vs::Status::InvalidArgument(
        "committee strategy requires aligned labeled set and labels");
  }
  const size_t n_labeled = ctx.labeled->size();
  // Need both classes to train any member; otherwise explore randomly.
  bool has_pos = false;
  bool has_neg = false;
  for (double l : *ctx.labels) {
    if (l >= 0.5) has_pos = true;
    else has_neg = true;
  }
  if (n_labeled < 2 || !has_pos || !has_neg) {
    return RandomChoice(ctx);
  }

  const size_t d = ctx.features->cols();
  std::vector<ml::LogisticRegression> members;
  members.reserve(static_cast<size_t>(committee_size_));
  for (int m = 0; m < committee_size_; ++m) {
    // Bootstrap resample; retry a few times until it contains both classes.
    ml::Matrix x(n_labeled, d);
    ml::Vector y(n_labeled, 0.0);
    bool ok = false;
    for (int attempt = 0; attempt < 16 && !ok; ++attempt) {
      bool pos = false;
      bool neg = false;
      for (size_t i = 0; i < n_labeled; ++i) {
        const size_t pick = ctx.rng->NextBounded(n_labeled);
        const size_t row = (*ctx.labeled)[pick];
        for (size_t j = 0; j < d; ++j) x(i, j) = (*ctx.features)(row, j);
        y[i] = (*ctx.labels)[pick] >= 0.5 ? 1.0 : 0.0;
        (y[i] > 0.5 ? pos : neg) = true;
      }
      ok = pos && neg;
    }
    if (!ok) continue;
    ml::LogisticRegression member;
    if (member.Fit(x, y).ok()) {
      members.push_back(std::move(member));
    }
  }
  if (members.size() < 2) {
    return RandomChoice(ctx);
  }

  size_t best = (*ctx.unlabeled)[0];
  double best_disagreement = -1.0;
  for (size_t idx : *ctx.unlabeled) {
    const ml::Vector row = ctx.features->Row(idx);
    double mean = 0.0;
    std::vector<double> probs;
    probs.reserve(members.size());
    for (const auto& member : members) {
      VS_ASSIGN_OR_RETURN(double p, member.PredictProba(row));
      probs.push_back(p);
      mean += p;
    }
    mean /= static_cast<double>(probs.size());
    double var = 0.0;
    for (double p : probs) var += (p - mean) * (p - mean);
    var /= static_cast<double>(probs.size());
    if (var > best_disagreement) {
      best_disagreement = var;
      best = idx;
    }
  }
  return best;
}

}  // namespace vs::active
