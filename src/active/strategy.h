#ifndef VS_ACTIVE_STRATEGY_H_
#define VS_ACTIVE_STRATEGY_H_

/// \file strategy.h
/// \brief The active-learning query-strategy interface (Settles [22]):
/// given the current pool state, pick which unlabeled view the user should
/// label next.  The paper's ViewSeeker uses least-confidence uncertainty
/// sampling (uncertainty.h); the siblings exist for the strategy ablation
/// bench.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"

namespace vs::active {

/// \brief Pool state handed to a strategy on every query.
///
/// All pointers are non-owning and must outlive the call; models may be
/// unfitted (strategies fall back to uniform random in that case).
struct QueryContext {
  /// Feature matrix over the whole pool (one row per view).
  const ml::Matrix* features = nullptr;
  /// Row indices still unlabeled (candidates).
  const std::vector<size_t>* unlabeled = nullptr;
  /// Row indices already labeled.
  const std::vector<size_t>* labeled = nullptr;
  /// Raw user scores in [0, 1], aligned with `labeled`.
  const std::vector<double>* labels = nullptr;
  /// The uncertainty estimator (logistic), possibly unfitted.
  const ml::LogisticRegression* uncertainty_model = nullptr;
  /// The view utility estimator (linear), possibly unfitted.
  const ml::LinearRegression* utility_model = nullptr;
  /// Deterministic randomness source.
  vs::Rng* rng = nullptr;
};

/// \brief Interface implemented by every query strategy.
class QueryStrategy {
 public:
  virtual ~QueryStrategy() = default;

  /// Short stable identifier ("uncertainty", "random", ...).
  virtual std::string name() const = 0;

  /// Picks the pool row to label next from ctx.unlabeled; fails when the
  /// context is malformed or no candidates remain.
  virtual vs::Result<size_t> SelectNext(const QueryContext& ctx) = 0;
};

/// Validates the invariants every strategy relies on (non-null features,
/// rng, and a non-empty unlabeled set).
vs::Status ValidateContext(const QueryContext& ctx);

/// Uniform random choice among ctx.unlabeled (shared fallback).
vs::Result<size_t> RandomChoice(const QueryContext& ctx);

/// Factory by name: "uncertainty", "random", "margin", "entropy",
/// "committee", "greedy", "density".
vs::Result<std::unique_ptr<QueryStrategy>> MakeStrategy(
    const std::string& name);

/// Names accepted by MakeStrategy, in canonical order.
std::vector<std::string> AllStrategyNames();

}  // namespace vs::active

#endif  // VS_ACTIVE_STRATEGY_H_
