#include "common/options_util.h"

#include "common/string_util.h"

namespace vs {

Result<OptionMap> OptionMap::Parse(std::string_view spec) {
  OptionMap out;
  for (const std::string& segment : Split(spec, ';')) {
    std::string_view token = Trim(segment);
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("option segment missing '=': " +
                                     std::string(token));
    }
    std::string key(Trim(token.substr(0, eq)));
    std::string value(Trim(token.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument("option segment with empty key: " +
                                     std::string(token));
    }
    if (out.entries_.count(key) != 0) {
      return Status::AlreadyExists("duplicate option key: " + key);
    }
    out.entries_.emplace(std::move(key), std::move(value));
  }
  return out;
}

bool OptionMap::Has(const std::string& key) const {
  return entries_.count(key) != 0;
}

Result<std::string> OptionMap::GetString(const std::string& key,
                                         std::string default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  return it->second;
}

Result<int64_t> OptionMap::GetInt(const std::string& key,
                                  int64_t default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  return ParseInt64(it->second);
}

Result<double> OptionMap::GetDouble(const std::string& key,
                                    double default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  return ParseDouble(it->second);
}

Result<bool> OptionMap::GetBool(const std::string& key,
                                bool default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("not a boolean: " + it->second);
}

void OptionMap::Set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

std::string OptionMap::ToString() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace vs
