#ifndef VS_COMMON_OPTIONS_UTIL_H_
#define VS_COMMON_OPTIONS_UTIL_H_

/// \file options_util.h
/// \brief RocksDB-style option-string parsing: "k1=v1;k2=v2" into a typed
/// accessor, used so engines can be configured from a single string (handy
/// for CLI tools and tests).

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace vs {

/// \brief A parsed option map with typed, defaulted accessors.
class OptionMap {
 public:
  OptionMap() = default;

  /// Parses "key=value;key=value" (whitespace around tokens ignored; empty
  /// segments skipped).  Duplicate keys are rejected.
  static Result<OptionMap> Parse(std::string_view spec);

  /// True iff \p key was present in the spec.
  bool Has(const std::string& key) const;

  /// \name Typed accessors with defaults; a present-but-malformed value is
  /// an error, a missing key yields the default.
  /// @{
  Result<std::string> GetString(const std::string& key,
                                std::string default_value) const;
  Result<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  Result<double> GetDouble(const std::string& key,
                           double default_value) const;
  Result<bool> GetBool(const std::string& key, bool default_value) const;
  /// @}

  /// Inserts or overwrites a key.
  void Set(const std::string& key, std::string value);

  /// Number of entries.
  size_t size() const { return entries_.size(); }

  /// Serializes back into "k1=v1;k2=v2" with keys sorted.
  std::string ToString() const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace vs

#endif  // VS_COMMON_OPTIONS_UTIL_H_
