#ifndef VS_COMMON_RESULT_H_
#define VS_COMMON_RESULT_H_

/// \file result.h
/// \brief Result<T>: a value or a Status, in the spirit of arrow::Result.

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vs {

/// \brief Holds either a successfully computed T or the Status explaining
/// why the computation failed.
///
/// A Result constructed from a value is OK; a Result constructed from a
/// non-OK Status is an error.  Accessing the value of an error Result is a
/// programmer error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding \p value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK \p status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK Status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// \name Value access (requires ok()).
  /// @{
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  /// @}

  /// Returns the value, or \p fallback when this Result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace vs

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller of the enclosing function.
#define VS_ASSIGN_OR_RETURN(lhs, expr)                  \
  VS_ASSIGN_OR_RETURN_IMPL(                             \
      VS_RESULT_CONCAT_(_vs_result_, __LINE__), lhs, expr)

#define VS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)        \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define VS_RESULT_CONCAT_(a, b) VS_RESULT_CONCAT_IMPL_(a, b)
#define VS_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // VS_COMMON_RESULT_H_
