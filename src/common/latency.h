#ifndef VS_COMMON_LATENCY_H_
#define VS_COMMON_LATENCY_H_

/// \file latency.h
/// \brief Shared latency accounting: nearest-rank percentiles, the
/// "is this percentile meaningful" rule, and a recorder/summary pair.
///
/// Before this header existed, tools/loadgen.cc and serve/slo.cc each
/// carried their own copy of the nearest-rank index formula and the
/// defined-percentile rule; the workload runner (src/workload/) would have
/// been a third.  One definition here keeps client-side and server-side
/// reports comparable by construction:
///
///   * nearest-rank index: min(n-1, floor(p*(n-1) + 0.5)) over the sorted
///     samples — identical to what the loadgen always printed;
///   * defined rule: a percentile p is only meaningful with at least
///     1/(1-p) samples (p99 needs 100); below that the estimate is just
///     the max sample dressed up as a tail, so it reports as undefined;
///   * tail rule: the tail used for budget verdicts is p99 when defined,
///     else p50 — the rule serve::SloTracker applies.
///
/// Units: LatencyRecorder::Record takes seconds (what Stopwatch yields);
/// summaries are in milliseconds (what budgets are stated in).  The free
/// percentile helpers are unit-agnostic.

#include <cstddef>
#include <vector>

namespace vs {

/// Is a nearest-rank estimate of percentile \p p meaningful over
/// \p samples observations?  (p99 needs >= 100.)
bool LatencyPercentileDefined(size_t samples, double p);

/// Index of the nearest-rank percentile \p p over \p n sorted samples;
/// requires n > 0.
size_t LatencyPercentileIndex(size_t n, double p);

/// Nearest-rank percentile over ascending \p sorted values (any unit);
/// returns -1 when empty.  Does not apply the defined rule — callers that
/// want "n/a" below the sample floor check LatencyPercentileDefined first.
double LatencyPercentileSorted(const std::vector<double>& sorted, double p);

/// \brief Distribution summary of one endpoint's (or one run's) latencies,
/// in milliseconds.  Percentiles are -1 when undefined per the rule above.
struct LatencySummary {
  size_t count = 0;
  double p50_ms = -1.0;
  double p95_ms = -1.0;
  double p99_ms = -1.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  /// The budget the summary was taken against; 0 = none configured.
  double budget_ms = 0.0;
  /// Samples at or under the budget (meaningful only when budget_ms > 0).
  size_t within_budget = 0;

  /// Fraction of samples within the budget — the IDEBench
  /// %-of-ops-within-SLO metric.  1 when there is nothing to judge.
  double WithinFraction() const;

  /// The tail latency budget verdicts use: p99 when defined, else p50;
  /// -1 when neither is defined.
  double TailMs() const;

  /// False iff a budget is configured and TailMs() exceeds it.
  bool TailWithinBudget() const;
};

/// \brief Accumulates latency samples (seconds) and summarizes them in ms.
/// Not thread-safe; record per worker and Merge() at the end, the way the
/// load tools already aggregate per-user stats.
class LatencyRecorder {
 public:
  void Record(double seconds) { seconds_.push_back(seconds); }
  void Merge(const LatencyRecorder& other);

  size_t count() const { return seconds_.size(); }
  bool empty() const { return seconds_.empty(); }
  const std::vector<double>& seconds() const { return seconds_; }

  /// Summary against \p budget_ms (0 = no budget); sorts a copy.
  LatencySummary Summarize(double budget_ms = 0.0) const;

 private:
  std::vector<double> seconds_;
};

}  // namespace vs

#endif  // VS_COMMON_LATENCY_H_
