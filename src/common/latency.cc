#include "common/latency.h"

#include <algorithm>

namespace vs {

bool LatencyPercentileDefined(size_t samples, double p) {
  if (samples == 0) return false;
  return static_cast<double>(samples) * (1.0 - p) >= 1.0;
}

size_t LatencyPercentileIndex(size_t n, double p) {
  return std::min(n - 1,
                  static_cast<size_t>(p * static_cast<double>(n - 1) + 0.5));
}

double LatencyPercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return -1.0;
  return sorted[LatencyPercentileIndex(sorted.size(), p)];
}

double LatencySummary::WithinFraction() const {
  if (count == 0) return 1.0;
  return static_cast<double>(within_budget) / static_cast<double>(count);
}

double LatencySummary::TailMs() const {
  return p99_ms >= 0.0 ? p99_ms : p50_ms;
}

bool LatencySummary::TailWithinBudget() const {
  if (budget_ms <= 0.0) return true;
  const double tail = TailMs();
  return tail < 0.0 || tail <= budget_ms;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  seconds_.insert(seconds_.end(), other.seconds_.begin(),
                  other.seconds_.end());
}

LatencySummary LatencyRecorder::Summarize(double budget_ms) const {
  LatencySummary summary;
  summary.count = seconds_.size();
  summary.budget_ms = budget_ms;
  if (seconds_.empty()) return summary;

  std::vector<double> sorted = seconds_;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (const double s : sorted) sum += s;
  summary.mean_ms = sum / static_cast<double>(sorted.size()) * 1e3;
  summary.max_ms = sorted.back() * 1e3;
  if (LatencyPercentileDefined(sorted.size(), 0.50)) {
    summary.p50_ms = LatencyPercentileSorted(sorted, 0.50) * 1e3;
  }
  if (LatencyPercentileDefined(sorted.size(), 0.95)) {
    summary.p95_ms = LatencyPercentileSorted(sorted, 0.95) * 1e3;
  }
  if (LatencyPercentileDefined(sorted.size(), 0.99)) {
    summary.p99_ms = LatencyPercentileSorted(sorted, 0.99) * 1e3;
  }
  if (budget_ms > 0.0) {
    // sorted is ascending, so the within-budget count is the partition
    // point of (latency_ms <= budget).
    const double budget_seconds = budget_ms * 1e-3;
    summary.within_budget = static_cast<size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), budget_seconds) -
        sorted.begin());
  }
  return summary;
}

}  // namespace vs
