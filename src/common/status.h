#ifndef VS_COMMON_STATUS_H_
#define VS_COMMON_STATUS_H_

/// \file status.h
/// \brief RocksDB-style Status object used for error propagation.
///
/// ViewSeeker does not throw exceptions across public API boundaries.  Every
/// fallible operation returns a Status (or a Result<T>, see result.h) that
/// callers must inspect.  Status is cheap to copy for the OK case (no
/// allocation) and carries a code plus a human-readable message otherwise.

#include <string>
#include <string_view>
#include <utility>

namespace vs {

/// Machine-inspectable error category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kNotSupported = 7,
  kInternal = 8,
  kAborted = 9,
  kTimedOut = 10,
  kResourceExhausted = 11,
};

/// \brief Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code and, if not OK, a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// \name Category predicates.
  /// @{
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  /// @}

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace vs

/// Propagates a non-OK Status to the caller of the enclosing function.
#define VS_RETURN_IF_ERROR(expr)               \
  do {                                         \
    ::vs::Status _vs_status = (expr);          \
    if (!_vs_status.ok()) return _vs_status;   \
  } while (false)

#endif  // VS_COMMON_STATUS_H_
