#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace vs {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // inline mode
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  if (threads_.empty()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t n = end - begin;
  const size_t chunks = std::min(n, threads_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<size_t> next{begin};
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&, chunk_size] {
      while (true) {
        size_t start = next.fetch_add(chunk_size);
        if (start >= end) break;
        size_t stop = std::min(end, start + chunk_size);
        for (size_t i = start; i < stop; ++i) fn(i);
      }
    });
  }
  WaitIdle();
}

size_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? hc - 1 : 0;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vs
