#include "common/threadpool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "testing/fault_injection.h"

namespace vs {

namespace {

/// Cached handles into the default registry (amortized registration).
struct PoolMetrics {
  obs::Counter* tasks_completed;
  obs::Gauge* queue_depth;
  obs::Histogram* task_wait_seconds;
  obs::Histogram* task_run_seconds;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      return PoolMetrics{
          r.GetCounter("threadpool.tasks_completed",
                       "tasks finished across all pools"),
          r.GetGauge("threadpool.queue_depth",
                     "tasks waiting in the most recently active pool"),
          r.GetHistogram("threadpool.task_wait_seconds",
                         obs::DefaultLatencyBuckets(),
                         "enqueue-to-dequeue latency"),
          r.GetHistogram("threadpool.task_run_seconds",
                         obs::DefaultLatencyBuckets(),
                         "task execution time"),
      };
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(ThreadPoolOptions{num_threads, 0,
                                   QueueOverflowPolicy::kBlock}) {}

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : max_queue_(options.max_queue), overflow_(options.overflow) {
  PoolMetrics::Get();  // register the pool metrics eagerly
  threads_.reserve(options.num_threads);
  for (size_t i = 0; i < options.num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  cv_space_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::FinishTask(const Task& task, bool timed) {
  const PoolMetrics& m = PoolMetrics::Get();
  const bool observe = obs::MetricsRegistry::Default().enabled();
  if (observe && timed) {
    // enqueued was restarted at dequeue; it now holds the run time.
    m.task_run_seconds->Observe(task.enqueued.ElapsedSeconds());
  }
  tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  m.tasks_completed->Increment();
}

bool ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    Task t{std::move(task), Stopwatch()};
    t.fn();
    FinishTask(t, /*timed=*/true);
    return true;
  }
  // Injected overflow: behave exactly as a full kReject queue would, so
  // every Submit caller's shedding path is testable without real load.
  if (VS_FAULT("threadpool.submit_reject")) {
    tasks_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  size_t depth;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      if (overflow_ == QueueOverflowPolicy::kReject) {
        tasks_rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      cv_space_.wait(lock, [this] {
        return shutdown_ || queue_.size() < max_queue_;
      });
      if (shutdown_) {
        tasks_rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    queue_.push(Task{std::move(task), Stopwatch()});
    depth = queue_.size();
  }
  PoolMetrics::Get().queue_depth->Set(static_cast<double>(depth));
  cv_task_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WaitIdle() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  if (threads_.empty()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().tasks_completed->Increment();
    return;
  }
  const size_t n = end - begin;
  const size_t chunks = std::min(n, threads_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<size_t> next{begin};
  auto run_chunks = [&, chunk_size] {
    while (true) {
      size_t start = next.fetch_add(chunk_size);
      if (start >= end) break;
      size_t stop = std::min(end, start + chunk_size);
      for (size_t i = start; i < stop; ++i) fn(i);
    }
  };
  for (size_t c = 0; c < chunks; ++c) {
    // A kReject pool with a full queue drops the submission; run the
    // worker loop inline so every index is still covered.
    if (!Submit(run_chunks)) {
      run_chunks();
      break;  // inline loop drains the remaining range
    }
  }
  WaitIdle();
}

size_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? hc - 1 : 0;
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& m = PoolMetrics::Get();
  while (true) {
    Task task;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
      ++in_flight_;
    }
    if (max_queue_ > 0) cv_space_.notify_one();
    const bool observe = obs::MetricsRegistry::Default().enabled();
    if (observe) {
      m.queue_depth->Set(static_cast<double>(depth));
      m.task_wait_seconds->Observe(task.enqueued.ElapsedSeconds());
      task.enqueued.Restart();  // reuse as the run timer (see FinishTask)
    }
    task.fn();
    FinishTask(task, observe);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vs
