#ifndef VS_COMMON_LOGGING_H_
#define VS_COMMON_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging and assertion macros.
///
/// Logging defaults to kWarn so that library code stays quiet inside tests
/// and benchmarks; examples raise the level to kInfo for narration.

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace vs {

/// Severity of a log record.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide logger configuration (thread-safe).
class Logger {
 public:
  /// Receives fully formatted records that passed the level filter.
  using Sink = std::function<void(LogLevel, const std::string& message)>;

  /// Sets the minimum level that will be emitted.
  static void SetLevel(LogLevel level);

  /// Current minimum level.
  static LogLevel GetLevel();

  /// Redirects records to \p sink instead of stderr (tests capture output
  /// this way); an empty function restores the stderr default.  The sink
  /// receives the raw message — the "[LEVEL] " prefix and trailing newline
  /// are stderr-formatting concerns, not part of the record.
  static void SetSink(Sink sink);

  /// Emits one record if \p level >= the configured minimum: to the
  /// configured sink, or to stderr as one pre-formatted write (level
  /// prefix + message + newline in a single string, so concurrent records
  /// never interleave mid-line).
  static void Log(LogLevel level, const std::string& message);

  /// Name of \p level ("DEBUG", "INFO", "WARN", "ERROR").
  static const char* LevelName(LogLevel level);
};

namespace internal {

/// Stream-style log record builder used by the VS_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vs

/// Usage: VS_LOG(kInfo) << "loaded " << n << " rows";
#define VS_LOG(level) ::vs::internal::LogMessage(::vs::LogLevel::level)

/// Internal-invariant check: aborts with a message when violated.  Used for
/// programmer errors only; recoverable conditions return Status instead.
#define VS_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::vs::Logger::Log(::vs::LogLevel::kError,                           \
                        std::string("CHECK failed: " #cond " at ") +      \
                            __FILE__ + ":" + std::to_string(__LINE__));   \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // VS_COMMON_LOGGING_H_
