#include "common/clock.h"

#include <chrono>

namespace vs {

namespace {

/// The production time source: steady_clock, so never affected by NTP or
/// wall-clock adjustments.
class RealClock final : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock* Clock::Real() {
  // Leaked on purpose: handles taken at static-init time stay valid
  // through static destruction (same policy as MetricsRegistry::Default).
  static const RealClock* const kReal = new RealClock();
  return kReal;
}

}  // namespace vs
