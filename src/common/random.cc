#include "common/random.h"

#include <cassert>
#include <cmath>

namespace vs {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (s == 0.0) return NextBounded(n);
  // Inverse CDF over explicit weights; adequate for the modest n used by
  // dataset generators (attribute cardinalities).
  double total = 0.0;
  std::vector<double> w(n);
  for (uint64_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += w[i];
  }
  double u = NextDouble() * total;
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += w[i];
    if (u < acc) return i;
  }
  return n - 1;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() {
  // Derive a child seed from fresh output; xoshiro's jump polynomial would
  // be stronger but seed-derivation through SplitMix64 is sufficient for
  // experiment decorrelation.
  return Rng(NextUint64() ^ 0x9e3779b97f4a7c15ULL);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = NextBounded(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace vs
