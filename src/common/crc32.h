#ifndef VS_COMMON_CRC32_H_
#define VS_COMMON_CRC32_H_

/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the
/// checksum behind every durability artifact: session_io v2 trailers,
/// write-ahead journal record frames, and snapshot validation.
///
/// The call is chainable: pass the previous return value as \p crc to
/// checksum data arriving in pieces.  `Crc32("") == 0`, and the result
/// matches zlib's crc32() / `cksum -o3` for the same bytes, so artifacts
/// can be checked from the shell while debugging.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vs {

/// CRC-32 of \p size bytes at \p data, continuing from \p crc (0 starts a
/// fresh checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32(s.data(), s.size(), crc);
}

}  // namespace vs

#endif  // VS_COMMON_CRC32_H_
