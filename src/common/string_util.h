#ifndef VS_COMMON_STRING_UTIL_H_
#define VS_COMMON_STRING_UTIL_H_

/// \file string_util.h
/// \brief Small string helpers shared across modules (splitting, trimming,
/// joining, numeric parsing with error reporting, printf-style formatting).

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vs {

/// Splits \p s on \p delim; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// True iff \p s starts with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a whole string as int64; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a whole string as double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vs

#endif  // VS_COMMON_STRING_UTIL_H_
