#ifndef VS_COMMON_BUILD_INFO_H_
#define VS_COMMON_BUILD_INFO_H_

/// \file build_info.h
/// \brief Build provenance embedded at compile time (CMake configures
/// build_info.cc.in with `git describe` output, the compiler id and the
/// flags in effect).  Surfaces in `viewseeker serve --build-info`, the
/// `viewseeker_build_info` gauge on /metrics, and /statusz — so a metrics
/// scrape always says which binary produced it.

#include <string>

namespace vs {

struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string revision;    ///< `git describe --always --dirty`, or "unknown"
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< id + version ("GNU 12.2.0")
  std::string flags;       ///< CMAKE_CXX_FLAGS (may be empty)
};

/// The build this binary was produced by (static data, always available).
const BuildInfo& GetBuildInfo();

/// One-line human-readable rendering ("viewseeker 1.0.0 (abc1234, ...)").
std::string BuildInfoLine();

}  // namespace vs

#endif  // VS_COMMON_BUILD_INFO_H_
