#ifndef VS_COMMON_RANDOM_H_
#define VS_COMMON_RANDOM_H_

/// \file random.h
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component of ViewSeeker takes an explicit seed so that
/// experiments and tests are reproducible bit-for-bit across runs.  The
/// generator is xoshiro256** seeded via SplitMix64, a high-quality,
/// non-cryptographic PRNG that is much faster than std::mt19937_64 and has
/// well-defined cross-platform behaviour.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace vs {

/// \brief SplitMix64 — used to expand a single 64-bit seed into generator
/// state; also a fine standalone generator for hashing-style use.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** 1.0 by Blackman & Vigna; the repository-wide PRNG.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also drive
/// <random> distributions when needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(uint64_t seed = 0x5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// UniformRandomBitGenerator interface.
  result_type operator()() { return NextUint64(); }

  /// Next 64 random bits.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's rejection method;
  /// bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller, cached pair).
  double NextGaussian();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponential variate with rate lambda > 0.
  double NextExponential(double lambda);

  /// Zipf-distributed integer in [0, n) with exponent s >= 0 (s = 0 is
  /// uniform).  Uses the inverse-CDF over precomputable weights only for
  /// small n; callers needing large-n Zipf should precompute a table.
  uint64_t NextZipf(uint64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights;
  /// weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Derives an independent child generator (stream splitting): the child's
  /// sequence is decorrelated from this generator's continued output.
  Rng Split();

  /// Fisher-Yates shuffle of indices 0..n-1.
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace vs

#endif  // VS_COMMON_RANDOM_H_
