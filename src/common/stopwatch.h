#ifndef VS_COMMON_STOPWATCH_H_
#define VS_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// \brief Monotonic timing utilities: Stopwatch for measurement and Deadline
/// for time-budgeted loops (the paper's per-iteration time constraint t_l).

#include <chrono>
#include <cstdint>
#include <limits>

namespace vs {

/// \brief Measures elapsed wall-clock time from construction or Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction/Restart.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A time budget that work loops poll to honour the interactive time
/// constraint t_l.
///
/// A Deadline may be *wall-clock* (expires after a duration) or *work-unit*
/// (expires after a fixed number of Charge() calls).  The work-unit mode
/// makes the paper's optimization experiments deterministic and
/// hardware-independent, which is what the test suite uses; the benchmark
/// harness uses wall-clock mode to reproduce Figure 7.
class Deadline {
 public:
  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// A wall-clock deadline expiring \p seconds from now.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.has_wall_ = true;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  /// A work-unit deadline expiring after \p units calls to Charge().
  static Deadline AfterUnits(int64_t units) {
    Deadline d;
    d.has_units_ = true;
    d.units_left_ = units;
    return d;
  }

  /// A deadline bounded by both \p units work units and \p seconds of
  /// wall clock — whichever exhausts first.  Used by deadline-propagated
  /// refinement slices: the unit cap bounds per-request work, the wall
  /// cap honours the client's remaining budget.
  static Deadline AfterUnitsAndSeconds(int64_t units, double seconds) {
    Deadline d = AfterSeconds(seconds);
    d.has_units_ = true;
    d.units_left_ = units;
    return d;
  }

  /// Consumes \p n work units (no effect in wall-clock mode).
  void Charge(int64_t n = 1) {
    if (has_units_) units_left_ -= n;
  }

  /// True once the budget is exhausted.
  bool Expired() const {
    if (has_units_ && units_left_ <= 0) return true;
    if (has_wall_ && Clock::now() >= expiry_) return true;
    return false;
  }

  /// Remaining work units (work-unit mode only; 0 otherwise).
  int64_t UnitsLeft() const { return has_units_ ? units_left_ : 0; }

  /// Sentinel returned by RemainingUnits() when no unit budget applies.
  static constexpr int64_t kNoUnitLimit =
      std::numeric_limits<int64_t>::max();

  /// Remaining wall-clock budget in seconds: never negative, +infinity
  /// for Infinite() and work-unit deadlines (no wall-clock bound applies).
  /// Lets callers report deadline slack/utilization without knowing which
  /// mode constructed the deadline.
  double RemainingSeconds() const {
    if (!has_wall_) return std::numeric_limits<double>::infinity();
    const double left =
        std::chrono::duration<double>(expiry_ - Clock::now()).count();
    return left > 0.0 ? left : 0.0;
  }

  /// Remaining work-unit budget: never negative, kNoUnitLimit (the
  /// integer infinity sentinel) for Infinite() and wall-clock deadlines.
  int64_t RemainingUnits() const {
    if (!has_units_) return kNoUnitLimit;
    return units_left_ > 0 ? units_left_ : 0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Deadline() = default;

  bool has_wall_ = false;
  bool has_units_ = false;
  Clock::time_point expiry_{};
  int64_t units_left_ = 0;
};

}  // namespace vs

#endif  // VS_COMMON_STOPWATCH_H_
