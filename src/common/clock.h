#ifndef VS_COMMON_CLOCK_H_
#define VS_COMMON_CLOCK_H_

/// \file clock.h
/// \brief Injectable monotonic time source.
///
/// Components whose behaviour depends on elapsed time (session TTL
/// eviction, HTTP read/write deadlines) read time through a Clock* taken
/// from their options instead of calling std::chrono::steady_clock
/// directly.  Production code passes nullptr and gets the real clock;
/// tests inject a FakeClock and advance it explicitly, which turns every
/// "sleep until the timeout fires" test into a deterministic, instant one.
///
/// Clocks are monotonic and thread-safe; NowMicros() has no defined epoch
/// (callers may only compare values from the same clock).

#include <atomic>
#include <cstdint>

namespace vs {

/// \brief Abstract monotonic time source (microsecond resolution).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds; only differences are meaningful.
  virtual int64_t NowMicros() const = 0;

  /// Convenience: NowMicros() in seconds.
  double NowSeconds() const {
    return static_cast<double>(NowMicros()) * 1e-6;
  }

  /// The process-wide real (steady_clock) instance; never destroyed.
  static const Clock* Real();
};

/// \brief Manually advanced clock for deterministic tests.  Starts at
/// \p start_micros and only moves when Advance*/Set are called.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0) : now_us_(start_micros) {}

  int64_t NowMicros() const override {
    return now_us_.load(std::memory_order_relaxed);
  }

  void AdvanceMicros(int64_t micros) {
    now_us_.fetch_add(micros, std::memory_order_relaxed);
  }

  void AdvanceSeconds(double seconds) {
    AdvanceMicros(static_cast<int64_t>(seconds * 1e6));
  }

  void SetMicros(int64_t micros) {
    now_us_.store(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_us_;
};

}  // namespace vs

#endif  // VS_COMMON_CLOCK_H_
