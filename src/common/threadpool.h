#ifndef VS_COMMON_THREADPOOL_H_
#define VS_COMMON_THREADPOOL_H_

/// \file threadpool.h
/// \brief Fixed-size worker pool for embarrassingly parallel feature
/// computation.  On single-core machines the pool degrades to executing
/// tasks inline, which keeps behaviour deterministic there.
///
/// Observability: every pool feeds the process-wide obs::MetricsRegistry —
/// `threadpool.tasks_completed` (counter), `threadpool.queue_depth`
/// (gauge), and `threadpool.task_wait_seconds` / `threadpool.task_run_
/// seconds` (histograms) — and exposes queue_depth() / tasks_completed()
/// accessors for direct inspection in tests.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace vs {

/// What Submit() does when a bounded queue is at capacity.
enum class QueueOverflowPolicy {
  kBlock,   ///< wait for a worker to free a slot (default)
  kReject,  ///< return false immediately — the backpressure policy
};

/// \brief ThreadPool construction parameters.
struct ThreadPoolOptions {
  /// Worker count; 0 selects inline execution.
  size_t num_threads = 0;
  /// Maximum tasks waiting in the queue (excludes running tasks);
  /// 0 = unbounded.  Ignored in inline mode.
  size_t max_queue = 0;
  /// Applied only when max_queue > 0.
  QueueOverflowPolicy overflow = QueueOverflowPolicy::kBlock;
};

/// \brief A minimal fork-join thread pool.
///
/// Submit() enqueues tasks; WaitIdle() blocks until the queue is drained and
/// all workers are idle.  ParallelFor() is a convenience that blocks until a
/// range has been fully processed.  A bounded queue (ThreadPoolOptions::
/// max_queue) adds backpressure: Submit either blocks for space or rejects
/// the task per the overflow policy — the serve layer uses kReject to turn
/// overload into fast 503s instead of unbounded memory growth.
class ThreadPool {
 public:
  /// Creates a pool with \p num_threads workers and an unbounded queue.
  /// num_threads == 0 selects inline execution (no worker threads; Submit
  /// runs the task immediately).
  explicit ThreadPool(size_t num_threads);
  explicit ThreadPool(const ThreadPoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task for execution.  Returns true when the task was
  /// accepted (always, for unbounded or inline pools).  With a bounded
  /// queue at capacity, kBlock waits for space and kReject returns false
  /// without running the task; false is also returned when blocking was
  /// interrupted by pool shutdown.
  bool Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void WaitIdle();

  /// Runs fn(i) for i in [begin, end), partitioned across workers; blocks
  /// until complete.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Number of worker threads (0 for inline mode).
  size_t num_threads() const { return threads_.size(); }

  /// Tasks currently waiting in the queue (excludes running tasks; always
  /// 0 in inline mode).
  size_t queue_depth() const;

  /// Total tasks this pool has finished running (inline tasks included).
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

  /// Tasks rejected by a full bounded queue under kReject.
  uint64_t tasks_rejected() const {
    return tasks_rejected_.load(std::memory_order_relaxed);
  }

  /// Queue capacity (0 = unbounded).
  size_t max_queue() const { return max_queue_; }

  /// A sensible default worker count for this machine: hardware_concurrency
  /// minus one, and inline mode on single-core hosts.
  static size_t DefaultThreads();

 private:
  struct Task {
    std::function<void()> fn;
    Stopwatch enqueued;  ///< measures queue wait for the obs histogram
  };

  void WorkerLoop();
  void FinishTask(const Task& task, bool timed);

  std::vector<std::thread> threads_;
  std::queue<Task> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::condition_variable cv_space_;  ///< signalled on dequeue (bounded mode)
  size_t max_queue_ = 0;
  QueueOverflowPolicy overflow_ = QueueOverflowPolicy::kBlock;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<uint64_t> tasks_completed_{0};
  std::atomic<uint64_t> tasks_rejected_{0};
};

}  // namespace vs

#endif  // VS_COMMON_THREADPOOL_H_
