#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;
Logger::Sink& SinkSlot() {
  static Logger::Sink* sink = new Logger::Sink();
  return *sink;
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* Logger::LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  SinkSlot() = std::move(sink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  const Sink& sink = SinkSlot();
  if (sink) {
    sink(level, message);
    return;
  }
  // Format the whole record first so a single write hits the stream —
  // records from concurrent threads (or a forked child) cannot interleave
  // mid-line the way separate fprintf("%s]"), fprintf("%s\n") calls could.
  std::string record;
  record.reserve(message.size() + 16);
  record += '[';
  record += LevelName(level);
  record += "] ";
  record += message;
  record += '\n';
  std::fwrite(record.data(), 1, record.size(), stderr);
}

}  // namespace vs
