#include "common/crc32.h"

#include <array>

namespace vs {

namespace {

/// The classic reflected table, computed once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  const auto& table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace vs
