#include "data/query.h"

#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace vs::data {

namespace {

/// Token kinds produced by the lexer.
enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (upper-cased for keywords kept raw too),
                      // symbol, or string payload
  double number = 0.0;
  bool number_is_int = false;
  int64_t int_value = 0;
  size_t pos = 0;     // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  vs::Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                         input_[j] == '_')) {
          ++j;
        }
        t.kind = TokKind::kIdent;
        t.text = input_.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.') {
        size_t j = i;
        if (input_[j] == '-') ++j;
        bool has_dot = false;
        bool has_exp = false;
        while (j < n) {
          const char d = input_[j];
          if (std::isdigit(static_cast<unsigned char>(d))) {
            ++j;
          } else if (d == '.' && !has_dot && !has_exp) {
            has_dot = true;
            ++j;
          } else if ((d == 'e' || d == 'E') && !has_exp) {
            has_exp = true;
            ++j;
            if (j < n && (input_[j] == '+' || input_[j] == '-')) ++j;
          } else {
            break;
          }
        }
        const std::string text = input_.substr(i, j - i);
        auto parsed = vs::ParseDouble(text);
        if (!parsed.ok()) {
          return vs::Status::InvalidArgument(
              vs::StrFormat("bad number '%s' at offset %zu", text.c_str(), i));
        }
        t.kind = TokKind::kNumber;
        t.number = *parsed;
        if (!has_dot && !has_exp) {
          auto as_int = vs::ParseInt64(text);
          if (as_int.ok()) {
            t.number_is_int = true;
            t.int_value = *as_int;
          }
        }
        i = j;
      } else if (c == '\'') {
        size_t j = i + 1;
        std::string payload;
        while (j < n && input_[j] != '\'') payload += input_[j++];
        if (j >= n) {
          return vs::Status::InvalidArgument(vs::StrFormat(
              "unterminated string literal at offset %zu", i));
        }
        t.kind = TokKind::kString;
        t.text = std::move(payload);
        i = j + 1;
      } else {
        // multi-char symbols first
        static const char* kTwoChar[] = {"==", "!=", "<>", "<=", ">="};
        std::string two = input_.substr(i, 2);
        bool matched = false;
        for (const char* s : kTwoChar) {
          if (two == s) {
            t.kind = TokKind::kSymbol;
            t.text = two;
            i += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          if (std::string("=<>(),*").find(c) == std::string::npos) {
            return vs::Status::InvalidArgument(vs::StrFormat(
                "unexpected character '%c' at offset %zu", c, i));
          }
          t.kind = TokKind::kSymbol;
          t.text = std::string(1, c);
          ++i;
        }
      }
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.pos = n;
    out.push_back(end);
    return out;
  }

 private:
  const std::string& input_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  vs::Result<ParsedQuery> Parse() {
    ParsedQuery out;
    VS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    VS_ASSIGN_OR_RETURN(std::string func_name, ExpectIdent("function name"));
    VS_ASSIGN_OR_RETURN(out.query.spec.func,
                        ParseAggregateFunction(func_name));
    VS_RETURN_IF_ERROR(ExpectSymbol("("));
    if (PeekSymbol("*")) {
      return vs::Status::NotSupported(
          "COUNT(*) is not supported; name a measure, e.g. COUNT(m1)");
    }
    VS_ASSIGN_OR_RETURN(out.query.spec.measure, ExpectIdent("measure name"));
    VS_RETURN_IF_ERROR(ExpectSymbol(")"));
    VS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    VS_ASSIGN_OR_RETURN(out.table_name, ExpectIdent("table name"));

    if (AcceptKeyword("WHERE")) {
      std::vector<PredicatePtr> conds;
      do {
        VS_ASSIGN_OR_RETURN(PredicatePtr cond, ParseCondition());
        conds.push_back(std::move(cond));
      } while (AcceptKeyword("AND"));
      out.query.filter = conds.size() == 1 ? conds[0] : And(std::move(conds));
    }

    VS_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    VS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    VS_ASSIGN_OR_RETURN(out.query.spec.dimension,
                        ExpectIdent("dimension name"));
    if (AcceptKeyword("BINS")) {
      const Token& t = Peek();
      if (t.kind != TokKind::kNumber || !t.number_is_int ||
          t.int_value <= 0) {
        return Error("BINS requires a positive integer");
      }
      out.query.spec.num_bins = static_cast<int32_t>(t.int_value);
      Advance();
    }
    if (Peek().kind != TokKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return out;
  }

  /// Parses a standalone condition conjunction to end of input.
  vs::Result<PredicatePtr> ParseFilterOnly() {
    std::vector<PredicatePtr> conds;
    do {
      VS_ASSIGN_OR_RETURN(PredicatePtr cond, ParseCondition());
      conds.push_back(std::move(cond));
    } while (AcceptKeyword("AND"));
    if (Peek().kind != TokKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return conds.size() == 1 ? conds[0] : And(std::move(conds));
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  vs::Status Error(const std::string& what) const {
    return vs::Status::InvalidArgument(
        vs::StrFormat("%s at offset %zu", what.c_str(), Peek().pos));
  }

  bool AcceptKeyword(const std::string& kw) {
    const Token& t = Peek();
    if (t.kind == TokKind::kIdent && vs::ToLower(t.text) == vs::ToLower(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  vs::Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected keyword " + kw);
    return vs::Status::OK();
  }

  vs::Result<std::string> ExpectIdent(const std::string& what) {
    const Token& t = Peek();
    if (t.kind != TokKind::kIdent) {
      return Error("expected " + what);
    }
    std::string name = t.text;
    Advance();
    return name;
  }

  bool PeekSymbol(const std::string& sym) const {
    const Token& t = Peek();
    return t.kind == TokKind::kSymbol && t.text == sym;
  }

  vs::Status ExpectSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) return Error("expected '" + sym + "'");
    Advance();
    return vs::Status::OK();
  }

  vs::Result<Value> ExpectLiteral() {
    const Token& t = Peek();
    if (t.kind == TokKind::kNumber) {
      Value v = t.number_is_int ? Value(t.int_value) : Value(t.number);
      Advance();
      return v;
    }
    if (t.kind == TokKind::kString) {
      Value v(t.text);
      Advance();
      return v;
    }
    return Error("expected literal");
  }

  vs::Result<PredicatePtr> ParseCondition() {
    VS_ASSIGN_OR_RETURN(std::string column, ExpectIdent("column name"));

    if (AcceptKeyword("BETWEEN")) {
      const Token& lo_tok = Peek();
      if (lo_tok.kind != TokKind::kNumber) return Error("expected number");
      double lo = lo_tok.number;
      Advance();
      VS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      const Token& hi_tok = Peek();
      if (hi_tok.kind != TokKind::kNumber) return Error("expected number");
      double hi = hi_tok.number;
      Advance();
      return Between(std::move(column), lo, hi);
    }

    if (AcceptKeyword("IN")) {
      VS_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> values;
      while (true) {
        VS_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        values.push_back(std::move(v));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      VS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return InSet(std::move(column), std::move(values));
    }

    const Token& op_tok = Peek();
    if (op_tok.kind != TokKind::kSymbol) return Error("expected operator");
    CompareOp op;
    if (op_tok.text == "=" || op_tok.text == "==") {
      op = CompareOp::kEq;
    } else if (op_tok.text == "!=" || op_tok.text == "<>") {
      op = CompareOp::kNe;
    } else if (op_tok.text == "<") {
      op = CompareOp::kLt;
    } else if (op_tok.text == "<=") {
      op = CompareOp::kLe;
    } else if (op_tok.text == ">") {
      op = CompareOp::kGt;
    } else if (op_tok.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Error("unknown operator '" + op_tok.text + "'");
    }
    Advance();
    VS_ASSIGN_OR_RETURN(Value literal, ExpectLiteral());
    return Compare(std::move(column), op, std::move(literal));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

vs::Result<ParsedQuery> ParseQuery(const std::string& sql) {
  Lexer lexer(sql);
  VS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

vs::Result<PredicatePtr> ParseFilter(const std::string& conditions) {
  Lexer lexer(conditions);
  VS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseFilterOnly();
}

vs::Result<GroupByResult> RunSql(const Table& table, const std::string& sql) {
  VS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(sql));
  return ExecuteQuery(table, parsed.query);
}

}  // namespace vs::data
