#ifndef VS_DATA_GROUPBY_H_
#define VS_DATA_GROUPBY_H_

/// \file groupby.h
/// \brief The grouped-aggregation executor that materializes views.
///
/// A view in the paper is `SELECT a, f(m) FROM D[Q] GROUP BY a`.  The
/// executor is bound to one Table and derives *bin definitions* from the
/// full table — the dictionary for categorical dimensions, full-table
/// min/max for binned numeric dimensions — so that a target view (evaluated
/// over a selection) and its reference view (evaluated over all rows) share
/// identical, aligned bins.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/aggregate.h"
#include "data/table.h"

namespace vs::data {

/// \brief Description of one grouped aggregation.
struct GroupBySpec {
  std::string dimension;  ///< attribute grouped on
  std::string measure;    ///< attribute aggregated
  AggregateFunction func = AggregateFunction::kCount;
  /// 0 for categorical dimensions (one bin per dictionary label);
  /// > 0 for numeric dimensions (equi-width bins over full-table range).
  int32_t num_bins = 0;

  /// "AVG(m) GROUP BY a [4 bins]".
  std::string ToString() const;
};

/// \brief One materialized view: aggregate value and row count per bin.
///
/// Bins with no matching rows are present with value 0 / count 0 so target
/// and reference results always have the same shape.
struct GroupByResult {
  std::vector<std::string> bin_labels;  ///< label per bin, full-table order
  std::vector<double> values;           ///< finalized aggregate per bin
  std::vector<int64_t> counts;          ///< contributing rows per bin
  std::vector<double> sums;             ///< Σ measure per bin
  std::vector<double> sumsqs;           ///< Σ measure² per bin
  int64_t rows_seen = 0;                ///< input rows scanned

  size_t num_bins() const { return values.size(); }
};

/// \brief Execution-path knobs for GroupByExecutor.
struct GroupByExecutorOptions {
  /// Route Execute/ExecuteBatch through the typed aggregation kernel
  /// (data/groupby_kernel.h).  false keeps the original scalar fold — the
  /// reference oracle the differential kernel-equivalence tests compare
  /// against.  Serial kernel runs are bit-identical to the oracle.
  bool use_kernel = true;
  /// Dense-grid / hash-table crossover, forwarded to the kernel.
  int32_t dense_bins_max = 1 << 14;
  /// Kernel partial-aggregate workers; 0 or 1 = serial.
  size_t kernel_threads = 0;
};

/// \brief Executes GroupBySpecs against one table, with cached bin
/// definitions shared by all selections.
class GroupByExecutor {
 public:
  /// Binds to \p table (not owned; must outlive the executor).
  explicit GroupByExecutor(const Table* table,
                           const GroupByExecutorOptions& options = {});

  /// Runs \p spec over the rows in \p selection (nullptr = all rows).
  ///
  /// For COUNT the measure is still consulted for null-ness (SQL COUNT(m)
  /// semantics: null measures do not contribute).
  vs::Result<GroupByResult> Execute(const GroupBySpec& spec,
                                    const SelectionVector* selection) const;

  /// Number of bins \p spec will produce (dictionary cardinality or
  /// spec.num_bins).
  vs::Result<int32_t> NumBins(const GroupBySpec& spec) const;

  /// Populates the numeric-range cache for \p spec's dimension (no-op for
  /// categorical dimensions).  After every dimension used by a workload
  /// has been prewarmed, Execute() performs no cache writes and the
  /// executor may be shared by concurrent readers.
  vs::Status Prewarm(const GroupBySpec& spec) const;

  /// Shared-scan batch execution (SeeDB-style): runs every spec in
  /// \p specs — all of which must share \p specs[0]'s dimension and bin
  /// count — over a *single* pass of the input, amortizing the dimension
  /// decode across all (measure, function) combinations.  Results are in
  /// spec order and identical to per-spec Execute() calls.
  vs::Result<std::vector<GroupByResult>> ExecuteBatch(
      const std::vector<GroupBySpec>& specs,
      const SelectionVector* selection) const;

  /// The bound table.
  const Table& table() const { return *table_; }

  /// The execution-path options this executor was built with.
  const GroupByExecutorOptions& options() const { return options_; }

  /// Number of dimensions whose numeric range is cached — introspection
  /// for the prewarm contract ("no cache writes after prewarm"): once
  /// every dimension of a workload is prewarmed this value must not move
  /// under any Execute/ExecuteBatch mix.
  size_t num_cached_ranges() const { return range_cache_.size(); }

 private:
  struct NumericBinDef {
    double lo = 0.0;
    double width = 1.0;  // per-bin width; > 0
  };

  /// Full-table [min, max] for a numeric dimension, cached per column.
  vs::Result<NumericBinDef> NumericBins(const std::string& dimension,
                                        int32_t num_bins) const;

  /// The typed-kernel implementation behind ExecuteBatch (specs already
  /// validated to share dimension and bin count).
  vs::Result<std::vector<GroupByResult>> ExecuteBatchKernel(
      const std::vector<GroupBySpec>& specs,
      const SelectionVector* selection) const;

  const Table* table_;
  GroupByExecutorOptions options_;
  mutable std::unordered_map<std::string, std::pair<double, double>>
      range_cache_;  // dimension -> (min, max)
};

/// \brief A full aggregate query: optional filter + grouped aggregation.
struct AggregateQuery {
  GroupBySpec spec;
  /// Row filter; nullptr selects all rows.
  std::shared_ptr<const class Predicate> filter;
};

/// Executes \p query against \p table (filter, then group-by).
vs::Result<GroupByResult> ExecuteQuery(const Table& table,
                                       const AggregateQuery& query);

}  // namespace vs::data

#endif  // VS_DATA_GROUPBY_H_
