#include "data/groupby_kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "testing/fault_injection.h"

namespace vs::data {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rows decoded per staging block: the bin-index buffer stays L1-resident
/// while amortizing the per-measure dispatch branch over the block.
constexpr size_t kBlockRows = 4096;

/// Below this many rows per worker, extra threads only add merge cost.
constexpr size_t kMinRowsPerWorker = 16 * 1024;

/// Accumulator replication factor.  Low-cardinality dimensions funnel most
/// rows into a handful of popular bins, so a single grid serializes on the
/// floating-point add latency of the hot bin (`sums[b] += v` is a
/// loop-carried dependency).  Four independent lanes (row i feeds lane
/// i mod 4) turn that chain into four, merged once per range in fixed lane
/// order.  Counts/mins/maxs are unchanged by the split (integer adds and
/// min/max are associative); sums/sumsqs are reassociated, which is why
/// the kernel contract promises them within tolerance, not bit-identity.
constexpr size_t kAccumLanes = 4;

/// Lane replication is only worth its memory (lanes x bins x 40 B per
/// measure) while the grids stay cache-resident; above this bin count rows
/// spread out enough that chain collisions are rare anyway, and the 4x
/// footprint starts costing more in cache misses than it saves in chain
/// latency (measured: a 1024-bin dimension regressed ~2x at 4 lanes).
constexpr int32_t kLaneMaxBins = 256;

/// Below this many rows the chain-latency win cannot amortize the 4x grid
/// setup/merge, so the kernel keeps the serial accumulation order — which
/// also keeps small-table results (all the committed fixtures) bit-equal
/// to the scalar oracle, not merely within tolerance.
constexpr size_t kLaneMinRows = size_t{1} << 16;

}  // namespace

void KernelGrid::Reset(size_t num_bins) {
  counts.assign(num_bins, 0);
  sums.assign(num_bins, 0.0);
  sumsqs.assign(num_bins, 0.0);
  mins.assign(num_bins, kInf);
  maxs.assign(num_bins, -kInf);
}

size_t KernelGrid::AppendSlot() {
  counts.push_back(0);
  sums.push_back(0.0);
  sumsqs.push_back(0.0);
  mins.push_back(kInf);
  maxs.push_back(-kInf);
  return counts.size() - 1;
}

void KernelGrid::MergeFrom(const KernelGrid& other) {
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] += other.counts[b];
    sums[b] += other.sums[b];
    sumsqs[b] += other.sumsqs[b];
    if (other.mins[b] < mins[b]) mins[b] = other.mins[b];
    if (other.maxs[b] > maxs[b]) maxs[b] = other.maxs[b];
  }
}

namespace {

/// One measure column, resolved to its concrete type once per call.
struct TypedMeasure {
  const Int64Column* i64 = nullptr;
  const DoubleColumn* f64 = nullptr;
  bool has_nulls = false;
};

// ---------------------------------------------------------------------------
// Stage 1: decode the dimension of one block into bin indices (-1 = skip).
// ---------------------------------------------------------------------------

void StageCategorical(const int32_t* codes, uint32_t base,
                      const uint32_t* rows, size_t n, int32_t* bins) {
  // kNullCode is -1, the kernel's skip sentinel — codes pass through.
  if (rows == nullptr) {
    const int32_t* src = codes + base;
    for (size_t i = 0; i < n; ++i) bins[i] = src[i];
  } else {
    for (size_t i = 0; i < n; ++i) bins[i] = codes[rows[i]];
  }
}

template <typename ColT, bool kHasNulls, bool kContig>
void StageNumeric(const ColT* col, const KernelBinDef& def, int32_t nb,
                  uint32_t base, const uint32_t* rows, size_t n,
                  int32_t* bins) {
  const auto* data = col->data().data();
  const double lo = def.lo;
  const double width = def.width;
  for (size_t i = 0; i < n; ++i) {
    const size_t row = kContig ? base + i : rows[i];
    if (kHasNulls && col->IsNull(row)) {
      bins[i] = -1;
      continue;
    }
    // The exact arithmetic of the scalar path: bin assignment must be
    // bit-identical (no multiply-by-reciprocal, which can flip boundary
    // values into the neighboring bin).
    const double v = static_cast<double>(data[row]);
    int32_t b = static_cast<int32_t>((v - lo) / width);
    if (b < 0) b = 0;
    if (b >= nb) b = nb - 1;  // the full-table max lands in the last bin
    bins[i] = b;
  }
}

// ---------------------------------------------------------------------------
// Stage 2: fold one measure over a staged block into an SoA grid.  The
// same loop serves the dense path (bins index the full grid) and the hash
// path (bins have been translated to compact slots).
// ---------------------------------------------------------------------------

/// Raw accumulator pointers of one lane grid — keeps the hot loop free of
/// vector bookkeeping.
struct LanePtrs {
  int64_t* counts;
  double* sums;
  double* sumsqs;
  double* mins;
  double* maxs;
};

LanePtrs PtrsOf(KernelGrid& grid) {
  return {grid.counts.data(), grid.sums.data(), grid.sumsqs.data(),
          grid.mins.data(), grid.maxs.data()};
}

/// kNumLanes = 1 reproduces the scalar fold order bin-for-bin; 4 rotates
/// rows across replicated accumulator segments (slot b of lane l lives at
/// index b + l*stride of one wide grid) so popular bins carry four
/// independent floating-point dependency chains instead of one.  The
/// single-wide-grid layout keeps the hot loop at five base pointers plus
/// small integer offsets — separate per-lane grids would need 20 live
/// pointers and spill.
template <typename ColT, bool kHasNulls, bool kContig, size_t kNumLanes>
void AccumulateBlock(const ColT* col, const int32_t* bins, uint32_t base,
                     const uint32_t* rows, size_t n, const LanePtrs& g,
                     size_t stride) {
  const auto* data = col->data().data();
  size_t lane_off[kNumLanes];
  for (size_t l = 0; l < kNumLanes; ++l) lane_off[l] = l * stride;
  size_t i = 0;
  for (; i + kNumLanes <= n; i += kNumLanes) {
    // Constant-bound inner loop: unrolled with one statically-known lane
    // per slot.
    for (size_t l = 0; l < kNumLanes; ++l) {
      const size_t k = i + l;
      const int32_t b = bins[k];
      if (b < 0) continue;
      const size_t row = kContig ? base + k : rows[k];
      if (kHasNulls && col->IsNull(row)) continue;
      const double v = static_cast<double>(data[row]);
      const size_t idx = static_cast<size_t>(b) + lane_off[l];
      ++g.counts[idx];
      g.sums[idx] += v;
      g.sumsqs[idx] += v * v;
      if (v < g.mins[idx]) g.mins[idx] = v;
      if (v > g.maxs[idx]) g.maxs[idx] = v;
    }
  }
  for (; i < n; ++i) {
    const int32_t b = bins[i];
    if (b < 0) continue;
    const size_t row = kContig ? base + i : rows[i];
    if (kHasNulls && col->IsNull(row)) continue;
    const double v = static_cast<double>(data[row]);
    const size_t idx = static_cast<size_t>(b) + lane_off[i % kNumLanes];
    ++g.counts[idx];
    g.sums[idx] += v;
    g.sumsqs[idx] += v * v;
    if (v < g.mins[idx]) g.mins[idx] = v;
    if (v > g.maxs[idx]) g.maxs[idx] = v;
  }
}

template <bool kContig, size_t kNumLanes>
void AccumulateMeasure(const TypedMeasure& measure, const int32_t* bins,
                       uint32_t base, const uint32_t* rows, size_t n,
                       const LanePtrs& grid, size_t stride) {
  if (measure.i64 != nullptr) {
    if (measure.has_nulls) {
      AccumulateBlock<Int64Column, true, kContig, kNumLanes>(
          measure.i64, bins, base, rows, n, grid, stride);
    } else {
      AccumulateBlock<Int64Column, false, kContig, kNumLanes>(
          measure.i64, bins, base, rows, n, grid, stride);
    }
  } else {
    if (measure.has_nulls) {
      AccumulateBlock<DoubleColumn, true, kContig, kNumLanes>(
          measure.f64, bins, base, rows, n, grid, stride);
    } else {
      AccumulateBlock<DoubleColumn, false, kContig, kNumLanes>(
          measure.f64, bins, base, rows, n, grid, stride);
    }
  }
}

// ---------------------------------------------------------------------------
// Hash grouping: FNV-1a open-addressing map from bin id to compact slot.
// ---------------------------------------------------------------------------

uint64_t Fnv1aBin(int32_t bin) {
  uint64_t h = 1469598103934665603ULL;
  auto v = static_cast<uint32_t>(bin);
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Maps bin ids to dense slot indices; slots are appended to every
/// measure's compact grid on first sight of a bin.
class BinSlotTable {
 public:
  explicit BinSlotTable(std::vector<KernelGrid>* grids) : grids_(grids) {
    table_.assign(kInitialBuckets, -1);
  }

  int32_t SlotFor(int32_t bin) {
    size_t idx = Fnv1aBin(bin) & (table_.size() - 1);
    while (true) {
      const int32_t slot = table_[idx];
      if (slot < 0) return Insert(idx, bin);
      if (slot_bins_[static_cast<size_t>(slot)] == bin) return slot;
      idx = (idx + 1) & (table_.size() - 1);
    }
  }

  const std::vector<int32_t>& slot_bins() const { return slot_bins_; }

 private:
  static constexpr size_t kInitialBuckets = 1024;

  int32_t Insert(size_t idx, int32_t bin) {
    const auto slot = static_cast<int32_t>(slot_bins_.size());
    slot_bins_.push_back(bin);
    for (KernelGrid& grid : *grids_) grid.AppendSlot();
    table_[idx] = slot;
    // Grow at 70% load so probe chains stay short.
    if (slot_bins_.size() * 10 > table_.size() * 7) Rehash();
    return slot;
  }

  void Rehash() {
    std::vector<int32_t> grown(table_.size() * 2, -1);
    for (size_t s = 0; s < slot_bins_.size(); ++s) {
      size_t idx = Fnv1aBin(slot_bins_[s]) & (grown.size() - 1);
      while (grown[idx] >= 0) idx = (idx + 1) & (grown.size() - 1);
      grown[idx] = static_cast<int32_t>(s);
    }
    table_ = std::move(grown);
  }

  std::vector<int32_t> table_;      ///< bucket -> slot index, -1 empty
  std::vector<int32_t> slot_bins_;  ///< slot -> bin id
  std::vector<KernelGrid>* grids_;  ///< compact per-measure accumulators
};

// ---------------------------------------------------------------------------
// Per-range partial aggregation.
// ---------------------------------------------------------------------------

/// One worker's private accumulation state.  Dense mode: full-size grids.
/// Hash mode: a slot table plus compact grids sized by distinct bins seen.
/// When lane replication is on (dense, small bin count), grids[m] is a
/// *wide* grid of lane_stride * kAccumLanes slots; ReduceLanes folds it
/// back to lane_stride slots before any downstream merge.
struct Partial {
  std::vector<KernelGrid> grids;
  size_t lane_stride = 0;               ///< 0 = single-lane accumulation
  std::unique_ptr<BinSlotTable> slots;  // null = dense mode
};

/// Folds the replicated lane segments of each wide grid back into segment
/// 0, in fixed lane order so the result is deterministic, then truncates
/// the grid to its final bin count.
void ReduceLanes(Partial& partial) {
  if (partial.lane_stride == 0) return;
  const size_t nb = partial.lane_stride;
  for (KernelGrid& g : partial.grids) {
    for (size_t l = 1; l < kAccumLanes; ++l) {
      const size_t off = l * nb;
      for (size_t b = 0; b < nb; ++b) {
        g.counts[b] += g.counts[off + b];
        g.sums[b] += g.sums[off + b];
        g.sumsqs[b] += g.sumsqs[off + b];
        if (g.mins[off + b] < g.mins[b]) g.mins[b] = g.mins[off + b];
        if (g.maxs[off + b] > g.maxs[b]) g.maxs[b] = g.maxs[off + b];
      }
    }
    g.counts.resize(nb);
    g.sums.resize(nb);
    g.sumsqs.resize(nb);
    g.mins.resize(nb);
    g.maxs.resize(nb);
  }
  partial.lane_stride = 0;
}

/// Everything the block loop needs, shared (read-only) by all workers.
struct KernelInput {
  const CategoricalColumn* cat_dim = nullptr;
  const Int64Column* i64_dim = nullptr;
  const DoubleColumn* f64_dim = nullptr;
  bool dim_has_nulls = false;
  KernelBinDef bin_def;
  int32_t num_bins = 0;
  std::vector<TypedMeasure> measures;
  const uint32_t* sel = nullptr;  ///< selection data; nullptr = contiguous
};

void StageDimension(const KernelInput& in, uint32_t base,
                    const uint32_t* rows, size_t n, int32_t* bins) {
  if (in.cat_dim != nullptr) {
    StageCategorical(in.cat_dim->codes().data(), base, rows, n, bins);
  } else if (in.i64_dim != nullptr) {
    if (rows == nullptr) {
      if (in.dim_has_nulls) {
        StageNumeric<Int64Column, true, true>(in.i64_dim, in.bin_def,
                                              in.num_bins, base, rows, n,
                                              bins);
      } else {
        StageNumeric<Int64Column, false, true>(in.i64_dim, in.bin_def,
                                               in.num_bins, base, rows, n,
                                               bins);
      }
    } else {
      if (in.dim_has_nulls) {
        StageNumeric<Int64Column, true, false>(in.i64_dim, in.bin_def,
                                               in.num_bins, base, rows, n,
                                               bins);
      } else {
        StageNumeric<Int64Column, false, false>(in.i64_dim, in.bin_def,
                                                in.num_bins, base, rows, n,
                                                bins);
      }
    }
  } else {
    if (rows == nullptr) {
      if (in.dim_has_nulls) {
        StageNumeric<DoubleColumn, true, true>(in.f64_dim, in.bin_def,
                                               in.num_bins, base, rows, n,
                                               bins);
      } else {
        StageNumeric<DoubleColumn, false, true>(in.f64_dim, in.bin_def,
                                                in.num_bins, base, rows, n,
                                                bins);
      }
    } else {
      if (in.dim_has_nulls) {
        StageNumeric<DoubleColumn, true, false>(in.f64_dim, in.bin_def,
                                                in.num_bins, base, rows, n,
                                                bins);
      } else {
        StageNumeric<DoubleColumn, false, false>(in.f64_dim, in.bin_def,
                                                 in.num_bins, base, rows, n,
                                                 bins);
      }
    }
  }
}

/// Aggregates the domain positions [begin, end) — row ids when scanning
/// the whole table, selection indices otherwise — into \p partial.
void ProcessRange(const KernelInput& in, size_t begin, size_t end,
                  Partial& partial) {
  int32_t bins[kBlockRows];
  int32_t slot_ids[kBlockRows];
  const size_t stride = partial.lane_stride;
  // Contiguous categorical scans on the dense path read the code array
  // directly — codes already are bin indices (kNullCode = -1 = skip), so
  // the staging copy would be pure overhead.
  const bool direct_codes =
      in.cat_dim != nullptr && in.sel == nullptr && partial.slots == nullptr;
  for (size_t at = begin; at < end; at += kBlockRows) {
    const size_t n = std::min(kBlockRows, end - at);
    const auto base = static_cast<uint32_t>(at);
    const uint32_t* rows = in.sel == nullptr ? nullptr : in.sel + at;
    const int32_t* indices;
    if (direct_codes) {
      indices = in.cat_dim->codes().data() + at;
    } else {
      StageDimension(in, base, rows, n, bins);
      indices = bins;
      if (partial.slots != nullptr) {
        for (size_t i = 0; i < n; ++i) {
          slot_ids[i] = bins[i] < 0 ? -1 : partial.slots->SlotFor(bins[i]);
        }
        indices = slot_ids;
      }
    }
    for (size_t m = 0; m < in.measures.size(); ++m) {
      const LanePtrs grid = PtrsOf(partial.grids[m]);
      if (rows == nullptr) {
        if (stride != 0) {
          AccumulateMeasure<true, kAccumLanes>(in.measures[m], indices, base,
                                               rows, n, grid, stride);
        } else {
          AccumulateMeasure<true, 1>(in.measures[m], indices, base, rows, n,
                                     grid, 0);
        }
      } else {
        if (stride != 0) {
          AccumulateMeasure<false, kAccumLanes>(in.measures[m], indices, base,
                                                rows, n, grid, stride);
        } else {
          AccumulateMeasure<false, 1>(in.measures[m], indices, base, rows, n,
                                      grid, 0);
        }
      }
    }
  }
  ReduceLanes(partial);
}

/// Scatters a compact hash partial into the final dense grids.
void MergeCompact(const Partial& partial, std::vector<KernelGrid>& merged) {
  const std::vector<int32_t>& slot_bins = partial.slots->slot_bins();
  for (size_t m = 0; m < merged.size(); ++m) {
    const KernelGrid& compact = partial.grids[m];
    KernelGrid& out = merged[m];
    for (size_t s = 0; s < slot_bins.size(); ++s) {
      const auto b = static_cast<size_t>(slot_bins[s]);
      out.counts[b] += compact.counts[s];
      out.sums[b] += compact.sums[s];
      out.sumsqs[b] += compact.sumsqs[s];
      if (compact.mins[s] < out.mins[b]) out.mins[b] = compact.mins[s];
      if (compact.maxs[s] > out.maxs[b]) out.maxs[b] = compact.maxs[s];
    }
  }
}

}  // namespace

vs::Result<std::vector<KernelGrid>> GroupByKernelRun(
    const Column* dimension, const KernelBinDef* numeric_bins,
    int32_t num_bins, const std::vector<const Column*>& measures,
    const SelectionVector* selection, size_t table_rows,
    const GroupByKernelOptions& options) {
  if (num_bins < 0) {
    return vs::Status::InvalidArgument("kernel: negative bin count");
  }

  KernelInput in;
  in.num_bins = num_bins;
  in.cat_dim = dynamic_cast<const CategoricalColumn*>(dimension);
  if (in.cat_dim == nullptr) {
    if (numeric_bins == nullptr || numeric_bins->width <= 0.0) {
      return vs::Status::InvalidArgument(
          "kernel: numeric dimension requires a positive bin width");
    }
    in.bin_def = *numeric_bins;
    in.i64_dim = dynamic_cast<const Int64Column*>(dimension);
    in.f64_dim = dynamic_cast<const DoubleColumn*>(dimension);
    if (in.i64_dim == nullptr && in.f64_dim == nullptr) {
      return vs::Status::InvalidArgument(
          "kernel: dimension must be categorical or numeric");
    }
    in.dim_has_nulls = dimension->null_count() > 0;
  }

  in.measures.reserve(measures.size());
  for (const Column* column : measures) {
    TypedMeasure measure;
    measure.i64 = dynamic_cast<const Int64Column*>(column);
    measure.f64 = dynamic_cast<const DoubleColumn*>(column);
    if (measure.i64 == nullptr && measure.f64 == nullptr) {
      return vs::Status::InvalidArgument(
          "kernel: measures must be int64 or double columns");
    }
    measure.has_nulls = column->null_count() > 0;
    in.measures.push_back(measure);
  }

  if (selection != nullptr) {
    for (uint32_t r : *selection) {
      if (r >= table_rows) {
        return vs::Status::OutOfRange("selection row id out of range");
      }
    }
    in.sel = selection->data();
  }
  const size_t domain = selection != nullptr ? selection->size() : table_rows;

  const bool dense = num_bins <= options.dense_bins_max;
  std::vector<KernelGrid> merged(measures.size());
  for (KernelGrid& grid : merged) grid.Reset(static_cast<size_t>(num_bins));

  size_t workers = options.num_threads <= 1 ? 1 : options.num_threads;
  if (workers > 1) {
    // Don't split below the merge break-even point; the count stays a pure
    // function of (domain, options) so results are reproducible.
    workers = std::min(workers, std::max<size_t>(1, domain / kMinRowsPerWorker));
  }

  const bool lanes =
      dense && num_bins <= kLaneMaxBins && domain >= kLaneMinRows;
  auto make_partial = [&](bool owns_grid) {
    Partial partial;
    if (dense) {
      partial.grids.resize(measures.size());
      if (lanes) {
        partial.lane_stride = static_cast<size_t>(num_bins);
        for (KernelGrid& grid : partial.grids) {
          grid.Reset(static_cast<size_t>(num_bins) * kAccumLanes);
        }
      } else if (owns_grid) {
        for (KernelGrid& grid : partial.grids) {
          grid.Reset(static_cast<size_t>(num_bins));
        }
      }
    } else {
      partial.grids.resize(measures.size());
      partial.slots = std::make_unique<BinSlotTable>(&partial.grids);
    }
    return partial;
  };

  if (workers == 1) {
    Partial partial = make_partial(/*owns_grid=*/false);
    if (dense && !lanes) partial.grids = std::move(merged);
    ProcessRange(in, 0, domain, partial);
    if (VS_FAULT("kernel.partial_merge_fail")) {
      return vs::Status::Internal(
          "injected failure merging group-by partial aggregates");
    }
    if (dense) return std::move(partial.grids);
    MergeCompact(partial, merged);
    return merged;
  }

  // Contiguous range per worker, merged in range order below: for a fixed
  // worker count the result is deterministic regardless of scheduling.
  std::vector<Partial> partials;
  partials.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    partials.push_back(make_partial(/*owns_grid=*/true));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const size_t per_worker = (domain + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * per_worker;
    const size_t end = std::min(domain, begin + per_worker);
    if (begin >= end) break;
    threads.emplace_back(
        [&in, &partials, w, begin, end] { ProcessRange(in, begin, end, partials[w]); });
  }
  for (std::thread& thread : threads) thread.join();

  if (VS_FAULT("kernel.partial_merge_fail")) {
    return vs::Status::Internal(
        "injected failure merging group-by partial aggregates");
  }
  for (const Partial& partial : partials) {
    if (partial.slots != nullptr) {
      MergeCompact(partial, merged);
    } else {
      for (size_t m = 0; m < merged.size(); ++m) {
        merged[m].MergeFrom(partial.grids[m]);
      }
    }
  }
  return merged;
}

namespace {

template <typename ColT, bool kHasNulls>
std::pair<double, double> TypedMinMax(const ColT* col) {
  const auto* data = col->data().data();
  const size_t n = col->size();
  double lo[kAccumLanes];
  double hi[kAccumLanes];
  for (size_t l = 0; l < kAccumLanes; ++l) {
    lo[l] = kInf;
    hi[l] = -kInf;
  }
  size_t i = 0;
  for (; i + kAccumLanes <= n; i += kAccumLanes) {
    for (size_t l = 0; l < kAccumLanes; ++l) {
      const size_t row = i + l;
      if (kHasNulls && col->IsNull(row)) continue;
      const double v = static_cast<double>(data[row]);
      if (v < lo[l]) lo[l] = v;
      if (v > hi[l]) hi[l] = v;
    }
  }
  for (; i < n; ++i) {
    if (kHasNulls && col->IsNull(i)) continue;
    const double v = static_cast<double>(data[i]);
    if (v < lo[0]) lo[0] = v;
    if (v > hi[0]) hi[0] = v;
  }
  for (size_t l = 1; l < kAccumLanes; ++l) {
    if (lo[l] < lo[0]) lo[0] = lo[l];
    if (hi[l] > hi[0]) hi[0] = hi[l];
  }
  return {lo[0], hi[0]};
}

}  // namespace

vs::Result<std::pair<double, double>> KernelColumnRange(const Column* column) {
  const bool has_nulls = column->null_count() > 0;
  if (const auto* i64 = dynamic_cast<const Int64Column*>(column)) {
    return has_nulls ? TypedMinMax<Int64Column, true>(i64)
                     : TypedMinMax<Int64Column, false>(i64);
  }
  if (const auto* f64 = dynamic_cast<const DoubleColumn*>(column)) {
    return has_nulls ? TypedMinMax<DoubleColumn, true>(f64)
                     : TypedMinMax<DoubleColumn, false>(f64);
  }
  return vs::Status::InvalidArgument(
      "kernel: range scan requires an int64 or double column");
}

}  // namespace vs::data
