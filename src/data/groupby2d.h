#ifndef VS_DATA_GROUPBY2D_H_
#define VS_DATA_GROUPBY2D_H_

/// \file groupby2d.h
/// \brief Two-dimensional grouped aggregation — `SELECT a1, a2, f(m) ...
/// GROUP BY a1, a2` — the substrate for heatmap views (core/heatmap.h).
///
/// Exactly like the 1-D executor, cell definitions come from the *full*
/// table (dictionaries for categorical dimensions, full-table min/max for
/// binned numeric ones) so a target grid computed over a selection aligns
/// cell-for-cell with its reference grid.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/aggregate.h"
#include "data/table.h"

namespace vs::data {

/// \brief Description of one 2-D grouped aggregation.
struct GroupBy2DSpec {
  std::string row_dimension;
  std::string col_dimension;
  std::string measure;
  AggregateFunction func = AggregateFunction::kCount;
  /// 0 for categorical dimensions, > 0 = equi-width bin count.
  int32_t row_bins = 0;
  int32_t col_bins = 0;

  /// "AVG(m) GROUP BY a1 x a2".
  std::string ToString() const;
};

/// \brief One materialized grid: row-major values/counts over
/// (row bin, col bin) cells, including empty cells.
struct GroupBy2DResult {
  std::vector<std::string> row_labels;
  std::vector<std::string> col_labels;
  std::vector<double> values;   ///< row-major, rows x cols
  std::vector<int64_t> counts;  ///< row-major
  int64_t rows_seen = 0;

  size_t num_rows() const { return row_labels.size(); }
  size_t num_cols() const { return col_labels.size(); }
  size_t num_cells() const { return values.size(); }
  double value(size_t r, size_t c) const {
    return values[r * num_cols() + c];
  }
  int64_t count(size_t r, size_t c) const {
    return counts[r * num_cols() + c];
  }
};

/// Executes \p spec over the rows of \p selection (nullptr = all rows)
/// against \p table.
vs::Result<GroupBy2DResult> ExecuteGroupBy2D(
    const Table& table, const GroupBy2DSpec& spec,
    const SelectionVector* selection);

}  // namespace vs::data

#endif  // VS_DATA_GROUPBY2D_H_
