#include "data/generator.h"

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/string_util.h"

namespace vs::data {

vs::Result<Table> GenerateSynthetic(const SyntheticOptions& options) {
  if (options.num_dimensions <= 0 || options.num_measures <= 0) {
    return vs::Status::InvalidArgument(
        "num_dimensions and num_measures must be positive");
  }
  if (options.correlation < 0.0 || options.correlation > 1.0) {
    return vs::Status::InvalidArgument("correlation must be in [0, 1]");
  }
  vs::Rng rng(options.seed);

  const int A = options.num_dimensions;
  const int M = options.num_measures;
  std::vector<std::vector<double>> dims(A);
  std::vector<std::vector<double>> measures(M);
  for (auto& d : dims) d.reserve(options.num_rows);
  for (auto& m : measures) m.reserve(options.num_rows);

  // Per-measure sensitivity to each dimension, used only when
  // correlation > 0.
  std::vector<std::vector<double>> weight(M, std::vector<double>(A, 0.0));
  if (options.correlation > 0.0) {
    for (int j = 0; j < M; ++j) {
      for (int i = 0; i < A; ++i) weight[j][i] = rng.NextDouble();
    }
  }

  const double c = options.correlation;
  std::vector<double> dim_row(A);
  for (size_t r = 0; r < options.num_rows; ++r) {
    for (int i = 0; i < A; ++i) {
      dim_row[i] = rng.NextDouble();
      dims[i].push_back(dim_row[i]);
    }
    for (int j = 0; j < M; ++j) {
      double u = rng.NextDouble();
      if (c > 0.0) {
        double drive = 0.0;
        double norm = 0.0;
        for (int i = 0; i < A; ++i) {
          drive += weight[j][i] * dim_row[i];
          norm += weight[j][i];
        }
        if (norm > 0.0) drive /= norm;
        u = (1.0 - c) * u + c * drive;
      }
      measures[j].push_back(u);
    }
  }

  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  for (int i = 0; i < A; ++i) {
    fields.emplace_back("d" + std::to_string(i), DataType::kDouble,
                        FieldRole::kDimension);
    columns.push_back(std::make_shared<DoubleColumn>(std::move(dims[i])));
  }
  for (int j = 0; j < M; ++j) {
    fields.emplace_back("m" + std::to_string(j), DataType::kDouble,
                        FieldRole::kMeasure);
    columns.push_back(
        std::make_shared<DoubleColumn>(std::move(measures[j])));
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

namespace {

struct DimDef {
  const char* name;
  std::vector<std::string> levels;
};

std::vector<DimDef> DiabetesDimensions() {
  return {
      {"gender", {"Female", "Male"}},
      {"admission_type", {"Emergency", "Urgent", "Elective"}},
      {"age_group", {"[0-30)", "[30-50)", "[50-70)", "[70+)"}},
      {"insulin", {"No", "Down", "Steady", "Up"}},
      {"race", {"Caucasian", "AfricanAmerican", "Hispanic", "Asian", "Other"}},
      {"diag_group",
       {"Circulatory", "Respiratory", "Digestive", "Diabetes", "Injury",
        "Musculoskeletal"}},
      {"medical_specialty",
       {"InternalMedicine", "Cardiology", "Surgery", "FamilyPractice",
        "Emergency", "Orthopedics", "Nephrology", "Other"}},
  };
}

struct MeasureDef {
  const char* name;
  double base_mean;  ///< mean of the positive base distribution
  double noise;      ///< lognormal sigma of the per-row noise
};

std::vector<MeasureDef> DiabetesMeasures() {
  return {
      {"time_in_hospital", 4.5, 0.45},
      {"num_lab_procedures", 43.0, 0.30},
      {"num_procedures", 1.5, 0.60},
      {"num_medications", 16.0, 0.35},
      {"number_outpatient", 0.8, 0.90},
      {"number_emergency", 0.5, 1.00},
      {"number_inpatient", 0.9, 0.80},
      {"number_diagnoses", 7.4, 0.25},
  };
}

}  // namespace

std::vector<int32_t> DiabetesDimensionCardinalities() {
  std::vector<int32_t> out;
  for (const DimDef& d : DiabetesDimensions()) {
    out.push_back(static_cast<int32_t>(d.levels.size()));
  }
  return out;
}

vs::Result<Table> GenerateDiabetes(const DiabetesOptions& options) {
  if (options.effect_sigma < 0.0) {
    return vs::Status::InvalidArgument("effect_sigma must be >= 0");
  }
  vs::Rng rng(options.seed);
  const auto dim_defs = DiabetesDimensions();
  const auto measure_defs = DiabetesMeasures();
  const size_t A = dim_defs.size();
  const size_t M = measure_defs.size();

  // Zipf-skewed level frequencies per dimension (clinical data is skewed).
  std::vector<std::vector<double>> level_weights(A);
  for (size_t d = 0; d < A; ++d) {
    const size_t card = dim_defs[d].levels.size();
    level_weights[d].resize(card);
    for (size_t l = 0; l < card; ++l) {
      level_weights[d][l] = 1.0 / std::pow(static_cast<double>(l + 1), 0.7);
    }
  }

  // Multiplicative effect of each (dimension, level) on each measure, drawn
  // once: effect = exp(sigma * N(0,1)).  This is what makes query subsets
  // deviate from the reference distribution.
  std::vector<std::vector<std::vector<double>>> effect(A);
  for (size_t d = 0; d < A; ++d) {
    effect[d].resize(dim_defs[d].levels.size());
    for (auto& per_level : effect[d]) {
      per_level.resize(M);
      for (size_t m = 0; m < M; ++m) {
        per_level[m] = std::exp(options.effect_sigma * rng.NextGaussian());
      }
    }
  }

  // Build categorical dimension columns.
  std::vector<std::shared_ptr<CategoricalColumn>> dim_cols(A);
  for (size_t d = 0; d < A; ++d) {
    dim_cols[d] = std::make_shared<CategoricalColumn>();
    dim_cols[d]->Reserve(options.num_rows);
    for (const std::string& level : dim_defs[d].levels) {
      dim_cols[d]->InternLabel(level);
    }
  }
  std::vector<std::vector<double>> measure_data(M);
  for (auto& m : measure_data) m.reserve(options.num_rows);

  std::vector<int32_t> codes(A);
  for (size_t r = 0; r < options.num_rows; ++r) {
    for (size_t d = 0; d < A; ++d) {
      codes[d] =
          static_cast<int32_t>(rng.NextDiscrete(level_weights[d]));
      dim_cols[d]->AppendCode(codes[d]);
    }
    for (size_t m = 0; m < M; ++m) {
      double factor = 1.0;
      for (size_t d = 0; d < A; ++d) {
        factor *= effect[d][static_cast<size_t>(codes[d])][m];
      }
      const double noise =
          std::exp(measure_defs[m].noise * rng.NextGaussian());
      measure_data[m].push_back(measure_defs[m].base_mean * factor * noise);
    }
  }

  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  for (size_t d = 0; d < A; ++d) {
    fields.emplace_back(dim_defs[d].name, DataType::kString,
                        FieldRole::kDimension);
    columns.push_back(dim_cols[d]);
  }
  for (size_t m = 0; m < M; ++m) {
    fields.emplace_back(measure_defs[m].name, DataType::kDouble,
                        FieldRole::kMeasure);
    columns.push_back(
        std::make_shared<DoubleColumn>(std::move(measure_data[m])));
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

}  // namespace vs::data
