#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/random.h"
#include "common/string_util.h"
#include "data/io.h"

namespace vs::data {

vs::Result<Table> GenerateSynthetic(const SyntheticOptions& options) {
  if (options.num_dimensions <= 0 || options.num_measures <= 0) {
    return vs::Status::InvalidArgument(
        "num_dimensions and num_measures must be positive");
  }
  if (options.correlation < 0.0 || options.correlation > 1.0) {
    return vs::Status::InvalidArgument("correlation must be in [0, 1]");
  }
  vs::Rng rng(options.seed);

  const int A = options.num_dimensions;
  const int M = options.num_measures;
  std::vector<std::vector<double>> dims(A);
  std::vector<std::vector<double>> measures(M);
  for (auto& d : dims) d.reserve(options.num_rows);
  for (auto& m : measures) m.reserve(options.num_rows);

  // Per-measure sensitivity to each dimension, used only when
  // correlation > 0.
  std::vector<std::vector<double>> weight(M, std::vector<double>(A, 0.0));
  if (options.correlation > 0.0) {
    for (int j = 0; j < M; ++j) {
      for (int i = 0; i < A; ++i) weight[j][i] = rng.NextDouble();
    }
  }

  const double c = options.correlation;
  std::vector<double> dim_row(A);
  for (size_t r = 0; r < options.num_rows; ++r) {
    for (int i = 0; i < A; ++i) {
      dim_row[i] = rng.NextDouble();
      dims[i].push_back(dim_row[i]);
    }
    for (int j = 0; j < M; ++j) {
      double u = rng.NextDouble();
      if (c > 0.0) {
        double drive = 0.0;
        double norm = 0.0;
        for (int i = 0; i < A; ++i) {
          drive += weight[j][i] * dim_row[i];
          norm += weight[j][i];
        }
        if (norm > 0.0) drive /= norm;
        u = (1.0 - c) * u + c * drive;
      }
      measures[j].push_back(u);
    }
  }

  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  for (int i = 0; i < A; ++i) {
    fields.emplace_back("d" + std::to_string(i), DataType::kDouble,
                        FieldRole::kDimension);
    columns.push_back(std::make_shared<DoubleColumn>(std::move(dims[i])));
  }
  for (int j = 0; j < M; ++j) {
    fields.emplace_back("m" + std::to_string(j), DataType::kDouble,
                        FieldRole::kMeasure);
    columns.push_back(
        std::make_shared<DoubleColumn>(std::move(measures[j])));
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

namespace {

struct DimDef {
  const char* name;
  std::vector<std::string> levels;
};

std::vector<DimDef> DiabetesDimensions() {
  return {
      {"gender", {"Female", "Male"}},
      {"admission_type", {"Emergency", "Urgent", "Elective"}},
      {"age_group", {"[0-30)", "[30-50)", "[50-70)", "[70+)"}},
      {"insulin", {"No", "Down", "Steady", "Up"}},
      {"race", {"Caucasian", "AfricanAmerican", "Hispanic", "Asian", "Other"}},
      {"diag_group",
       {"Circulatory", "Respiratory", "Digestive", "Diabetes", "Injury",
        "Musculoskeletal"}},
      {"medical_specialty",
       {"InternalMedicine", "Cardiology", "Surgery", "FamilyPractice",
        "Emergency", "Orthopedics", "Nephrology", "Other"}},
  };
}

struct MeasureDef {
  const char* name;
  double base_mean;  ///< mean of the positive base distribution
  double noise;      ///< lognormal sigma of the per-row noise
};

std::vector<MeasureDef> DiabetesMeasures() {
  return {
      {"time_in_hospital", 4.5, 0.45},
      {"num_lab_procedures", 43.0, 0.30},
      {"num_procedures", 1.5, 0.60},
      {"num_medications", 16.0, 0.35},
      {"number_outpatient", 0.8, 0.90},
      {"number_emergency", 0.5, 1.00},
      {"number_inpatient", 0.9, 0.80},
      {"number_diagnoses", 7.4, 0.25},
  };
}

}  // namespace

std::vector<int32_t> DiabetesDimensionCardinalities() {
  std::vector<int32_t> out;
  for (const DimDef& d : DiabetesDimensions()) {
    out.push_back(static_cast<int32_t>(d.levels.size()));
  }
  return out;
}

vs::Result<Table> GenerateDiabetes(const DiabetesOptions& options) {
  if (options.effect_sigma < 0.0) {
    return vs::Status::InvalidArgument("effect_sigma must be >= 0");
  }
  vs::Rng rng(options.seed);
  const auto dim_defs = DiabetesDimensions();
  const auto measure_defs = DiabetesMeasures();
  const size_t A = dim_defs.size();
  const size_t M = measure_defs.size();

  // Zipf-skewed level frequencies per dimension (clinical data is skewed).
  std::vector<std::vector<double>> level_weights(A);
  for (size_t d = 0; d < A; ++d) {
    const size_t card = dim_defs[d].levels.size();
    level_weights[d].resize(card);
    for (size_t l = 0; l < card; ++l) {
      level_weights[d][l] = 1.0 / std::pow(static_cast<double>(l + 1), 0.7);
    }
  }

  // Multiplicative effect of each (dimension, level) on each measure, drawn
  // once: effect = exp(sigma * N(0,1)).  This is what makes query subsets
  // deviate from the reference distribution.
  std::vector<std::vector<std::vector<double>>> effect(A);
  for (size_t d = 0; d < A; ++d) {
    effect[d].resize(dim_defs[d].levels.size());
    for (auto& per_level : effect[d]) {
      per_level.resize(M);
      for (size_t m = 0; m < M; ++m) {
        per_level[m] = std::exp(options.effect_sigma * rng.NextGaussian());
      }
    }
  }

  // Build categorical dimension columns.
  std::vector<std::shared_ptr<CategoricalColumn>> dim_cols(A);
  for (size_t d = 0; d < A; ++d) {
    dim_cols[d] = std::make_shared<CategoricalColumn>();
    dim_cols[d]->Reserve(options.num_rows);
    for (const std::string& level : dim_defs[d].levels) {
      dim_cols[d]->InternLabel(level);
    }
  }
  std::vector<std::vector<double>> measure_data(M);
  for (auto& m : measure_data) m.reserve(options.num_rows);

  std::vector<int32_t> codes(A);
  for (size_t r = 0; r < options.num_rows; ++r) {
    for (size_t d = 0; d < A; ++d) {
      codes[d] =
          static_cast<int32_t>(rng.NextDiscrete(level_weights[d]));
      dim_cols[d]->AppendCode(codes[d]);
    }
    for (size_t m = 0; m < M; ++m) {
      double factor = 1.0;
      for (size_t d = 0; d < A; ++d) {
        factor *= effect[d][static_cast<size_t>(codes[d])][m];
      }
      const double noise =
          std::exp(measure_defs[m].noise * rng.NextGaussian());
      measure_data[m].push_back(measure_defs[m].base_mean * factor * noise);
    }
  }

  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  for (size_t d = 0; d < A; ++d) {
    fields.emplace_back(dim_defs[d].name, DataType::kString,
                        FieldRole::kDimension);
    columns.push_back(dim_cols[d]);
  }
  for (size_t m = 0; m < M; ++m) {
    fields.emplace_back(measure_defs[m].name, DataType::kDouble,
                        FieldRole::kMeasure);
    columns.push_back(
        std::make_shared<DoubleColumn>(std::move(measure_data[m])));
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

// ---- Large-scale testbed -------------------------------------------------

namespace {

/// Counter-based draw: a pure function of (seed, stream, counter), so any
/// cell of the dataset can be computed independently — the property that
/// makes chunked materialization trivially deterministic (chunk size can
/// never change the data) and lets measures re-derive the dimension codes
/// of their row without a sequential pass.
uint64_t HashDraw(uint64_t seed, uint64_t stream, uint64_t counter) {
  SplitMix64 outer(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  SplitMix64 inner(outer.Next() ^
                   (0xbf58476d1ce4e5b9ULL * (counter + 1)));
  return inner.Next();
}

/// Top 53 bits to a uniform double in [0, 1).
double U01(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Standard normal via Box–Muller over two counter-based uniforms.
double GaussDraw(uint64_t seed, uint64_t stream, uint64_t counter) {
  const double u1 =
      std::max(U01(HashDraw(seed, stream * 2, counter)), 1e-300);
  const double u2 = U01(HashDraw(seed, stream * 2 + 1, counter));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// Stream-id layout: disjoint ranges keep every column and every purpose
/// on an independent hash stream.
constexpr uint64_t kStreamCategorical = 0;     ///< + dim index
constexpr uint64_t kStreamNumeric = 1 << 10;   ///< + dim index
constexpr uint64_t kStreamMeasure = 2 << 10;   ///< + measure index
constexpr uint64_t kStreamEffect = 3 << 10;    ///< + dim * M + measure

/// Shared generation core: validated options plus the precomputed zipf
/// CDFs and (dimension level, measure) effect tables both the in-memory
/// builder and the streaming writer draw from.
class LargeScaleCore {
 public:
  static vs::Result<LargeScaleCore> Make(const LargeScaleOptions& options) {
    if (options.num_rows == 0 || options.num_rows > 200'000'000ULL) {
      return vs::Status::InvalidArgument(
          "num_rows must be in [1, 200000000]");
    }
    if (options.cardinalities.size() > 64 || options.num_numeric_dims > 64 ||
        options.num_measures > 64) {
      return vs::Status::InvalidArgument(
          "at most 64 columns of each kind");
    }
    if (options.cardinalities.empty() && options.num_numeric_dims <= 0) {
      return vs::Status::InvalidArgument("need at least one dimension");
    }
    if (options.num_numeric_dims < 0 || options.num_measures <= 0) {
      return vs::Status::InvalidArgument(
          "num_numeric_dims must be >= 0 and num_measures >= 1");
    }
    for (const int32_t card : options.cardinalities) {
      if (card < 2 || card > (1 << 20)) {
        return vs::Status::InvalidArgument(
            "each cardinality must be in [2, 1048576]");
      }
    }
    if (!(options.zipf_s >= 0.0 && options.zipf_s <= 10.0) ||
        !(options.measure_sigma >= 0.0 && options.measure_sigma <= 10.0) ||
        !(options.effect_sigma >= 0.0 && options.effect_sigma <= 10.0)) {
      return vs::Status::InvalidArgument(
          "zipf_s / measure_sigma / effect_sigma must be in [0, 10]");
    }
    if (options.chunk_rows == 0) {
      return vs::Status::InvalidArgument("chunk_rows must be positive");
    }
    return LargeScaleCore(options);
  }

  const LargeScaleOptions& options() const { return options_; }
  size_t num_categorical() const { return options_.cardinalities.size(); }
  size_t num_numeric() const {
    return static_cast<size_t>(options_.num_numeric_dims);
  }
  size_t num_measures() const {
    return static_cast<size_t>(options_.num_measures);
  }

  vs::Result<Schema> MakeSchema() const {
    std::vector<Field> fields;
    for (size_t d = 0; d < num_categorical(); ++d) {
      fields.emplace_back("g" + std::to_string(d), DataType::kString,
                          FieldRole::kDimension);
    }
    for (size_t d = 0; d < num_numeric(); ++d) {
      fields.emplace_back("d" + std::to_string(d), DataType::kDouble,
                          FieldRole::kDimension);
    }
    for (size_t m = 0; m < num_measures(); ++m) {
      fields.emplace_back("m" + std::to_string(m), DataType::kDouble,
                          FieldRole::kMeasure);
    }
    return Schema::Make(std::move(fields));
  }

  std::vector<std::string> Dictionary(size_t dim) const {
    const int32_t card = options_.cardinalities[dim];
    std::vector<std::string> labels;
    labels.reserve(static_cast<size_t>(card));
    for (int32_t level = 0; level < card; ++level) {
      labels.push_back(vs::StrFormat("g%zu_%d", dim, level));
    }
    return labels;
  }

  int32_t CatCode(size_t dim, uint64_t row) const {
    const double u =
        U01(HashDraw(options_.seed, kStreamCategorical + dim, row));
    const std::vector<double>& cdf = zipf_cdf_[dim];
    const size_t index = static_cast<size_t>(
        std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    return static_cast<int32_t>(std::min(index, cdf.size() - 1));
  }

  double NumericValue(size_t dim, uint64_t row) const {
    return U01(HashDraw(options_.seed, kStreamNumeric + dim, row));
  }

  double MeasureValue(size_t m, uint64_t row) const {
    double factor = 1.0;
    for (size_t d = 0; d < num_categorical(); ++d) {
      const auto code = static_cast<size_t>(CatCode(d, row));
      factor *= effect_[d][code * num_measures() + m];
    }
    const double noise = std::exp(
        options_.measure_sigma *
        GaussDraw(options_.seed, kStreamMeasure + m, row));
    return base_mean_[m] * factor * noise;
  }

  /// Normalized zipf level probabilities of dimension \p dim (tests pin
  /// observed frequencies against these).
  std::vector<double> LevelProbabilities(size_t dim) const {
    std::vector<double> probs = zipf_cdf_[dim];
    for (size_t l = probs.size() - 1; l > 0; --l) {
      probs[l] -= probs[l - 1];
    }
    return probs;
  }

 private:
  explicit LargeScaleCore(const LargeScaleOptions& options)
      : options_(options) {
    zipf_cdf_.resize(num_categorical());
    effect_.resize(num_categorical());
    for (size_t d = 0; d < num_categorical(); ++d) {
      const auto card = static_cast<size_t>(options_.cardinalities[d]);
      std::vector<double>& cdf = zipf_cdf_[d];
      cdf.resize(card);
      double total = 0.0;
      for (size_t l = 0; l < card; ++l) {
        total += 1.0 /
                 std::pow(static_cast<double>(l + 1), options_.zipf_s);
        cdf[l] = total;
      }
      for (double& c : cdf) c /= total;
      std::vector<double>& effects = effect_[d];
      effects.resize(card * num_measures());
      for (size_t l = 0; l < card; ++l) {
        for (size_t m = 0; m < num_measures(); ++m) {
          effects[l * num_measures() + m] = std::exp(
              options_.effect_sigma *
              GaussDraw(options_.seed,
                        kStreamEffect + d * num_measures() + m, l));
        }
      }
    }
    base_mean_.resize(num_measures());
    for (size_t m = 0; m < num_measures(); ++m) {
      base_mean_[m] = 5.0 * static_cast<double>(m + 1);
    }
  }

  LargeScaleOptions options_;
  std::vector<std::vector<double>> zipf_cdf_;  ///< per categorical dim
  std::vector<std::vector<double>> effect_;    ///< [dim][level * M + m]
  std::vector<double> base_mean_;              ///< per measure
};

}  // namespace

vs::Result<Table> GenerateLargeScale(const LargeScaleOptions& options) {
  VS_ASSIGN_OR_RETURN(LargeScaleCore core, LargeScaleCore::Make(options));
  const uint64_t rows = options.num_rows;

  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  for (size_t d = 0; d < core.num_categorical(); ++d) {
    auto col = std::make_shared<CategoricalColumn>();
    col->Reserve(rows);
    for (const std::string& label : core.Dictionary(d)) {
      col->InternLabel(label);
    }
    for (uint64_t r = 0; r < rows; ++r) {
      col->AppendCode(core.CatCode(d, r));
    }
    fields.emplace_back("g" + std::to_string(d), DataType::kString,
                        FieldRole::kDimension);
    columns.push_back(std::move(col));
  }
  for (size_t d = 0; d < core.num_numeric(); ++d) {
    std::vector<double> values(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      values[r] = core.NumericValue(d, r);
    }
    fields.emplace_back("d" + std::to_string(d), DataType::kDouble,
                        FieldRole::kDimension);
    columns.push_back(std::make_shared<DoubleColumn>(std::move(values)));
  }
  for (size_t m = 0; m < core.num_measures(); ++m) {
    std::vector<double> values(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      values[r] = core.MeasureValue(m, r);
    }
    fields.emplace_back("m" + std::to_string(m), DataType::kDouble,
                        FieldRole::kMeasure);
    columns.push_back(std::make_shared<DoubleColumn>(std::move(values)));
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

vs::Status GenerateLargeScaleToFile(const LargeScaleOptions& options,
                                    const std::string& path) {
  VS_ASSIGN_OR_RETURN(LargeScaleCore core, LargeScaleCore::Make(options));
  VS_ASSIGN_OR_RETURN(Schema schema, core.MakeSchema());
  VS_ASSIGN_OR_RETURN(auto writer,
                      TableStreamWriter::Open(path, schema,
                                              options.num_rows));
  const uint64_t rows = options.num_rows;
  const uint64_t chunk = options.chunk_rows;
  size_t column = 0;

  std::vector<int32_t> codes;
  for (size_t d = 0; d < core.num_categorical(); ++d) {
    const std::vector<std::string> dictionary = core.Dictionary(d);
    VS_RETURN_IF_ERROR(writer->BeginColumn(column++, &dictionary));
    for (uint64_t begin = 0; begin < rows; begin += chunk) {
      const uint64_t n = std::min(chunk, rows - begin);
      codes.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        codes[i] = core.CatCode(d, begin + i);
      }
      VS_RETURN_IF_ERROR(writer->AppendCodes(codes.data(), n));
    }
  }
  std::vector<double> values;
  for (size_t d = 0; d < core.num_numeric(); ++d) {
    VS_RETURN_IF_ERROR(writer->BeginColumn(column++, nullptr));
    for (uint64_t begin = 0; begin < rows; begin += chunk) {
      const uint64_t n = std::min(chunk, rows - begin);
      values.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        values[i] = core.NumericValue(d, begin + i);
      }
      VS_RETURN_IF_ERROR(writer->AppendDoubles(values.data(), n));
    }
  }
  for (size_t m = 0; m < core.num_measures(); ++m) {
    VS_RETURN_IF_ERROR(writer->BeginColumn(column++, nullptr));
    for (uint64_t begin = 0; begin < rows; begin += chunk) {
      const uint64_t n = std::min(chunk, rows - begin);
      values.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        values[i] = core.MeasureValue(m, begin + i);
      }
      VS_RETURN_IF_ERROR(writer->AppendDoubles(values.data(), n));
    }
  }
  return writer->Finish();
}

vs::Result<uint64_t> LargeScaleFileBytes(const LargeScaleOptions& options) {
  VS_ASSIGN_OR_RETURN(LargeScaleCore core, LargeScaleCore::Make(options));
  // Header: magic + version + num_rows + num_columns.
  uint64_t bytes = 4 + 4 + 8 + 4;
  const uint64_t rows = options.num_rows;
  for (size_t d = 0; d < core.num_categorical(); ++d) {
    const std::string name = "g" + std::to_string(d);
    bytes += 4 + name.size() + 3;  // name + type + role + has_nulls
    bytes += 4;                    // dictionary size
    for (const std::string& label : core.Dictionary(d)) {
      bytes += 4 + label.size();
    }
    bytes += rows * sizeof(int32_t);
  }
  for (size_t d = 0; d < core.num_numeric(); ++d) {
    bytes += 4 + ("d" + std::to_string(d)).size() + 3;
    bytes += rows * sizeof(double);
  }
  for (size_t m = 0; m < core.num_measures(); ++m) {
    bytes += 4 + ("m" + std::to_string(m)).size() + 3;
    bytes += rows * sizeof(double);
  }
  return bytes;
}

}  // namespace vs::data
