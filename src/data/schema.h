#ifndef VS_DATA_SCHEMA_H_
#define VS_DATA_SCHEMA_H_

/// \file schema.h
/// \brief Field and Schema descriptions for the multi-dimensional data model
/// of the paper: a relation is a set of *dimension* attributes A (grouped
/// on) and *measure* attributes M (aggregated), plus untagged extras.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/value.h"

namespace vs::data {

/// Analytical role of an attribute in the (A, M) data model.
enum class FieldRole : int {
  kDimension = 0,  ///< grouped on (categorical or binned numeric)
  kMeasure = 1,    ///< aggregated
  kOther = 2,      ///< ignored by view enumeration
};

/// Human-readable role name ("dimension", "measure", "other").
std::string FieldRoleName(FieldRole role);

/// \brief Name, physical type, and analytical role of one attribute.
struct Field {
  std::string name;
  DataType type = DataType::kNull;
  FieldRole role = FieldRole::kOther;

  Field() = default;
  Field(std::string n, DataType t, FieldRole r)
      : name(std::move(n)), type(t), role(r) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && role == other.role;
  }
};

/// \brief An ordered list of uniquely-named fields with O(1) name lookup.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails if names collide or are empty.
  static vs::Result<Schema> Make(std::vector<Field> fields);

  /// Number of fields.
  size_t num_fields() const { return fields_.size(); }

  /// Field at \p index (bounds-checked by assert).
  const Field& field(size_t index) const { return fields_[index]; }

  /// All fields, in order.
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named \p name, or error.
  vs::Result<size_t> FieldIndex(const std::string& name) const;

  /// True iff a field with \p name exists.
  bool HasField(const std::string& name) const;

  /// Indices of all fields with the given role, in schema order.
  std::vector<size_t> FieldsWithRole(FieldRole role) const;

  /// Names of all fields with the given role, in schema order.
  std::vector<std::string> NamesWithRole(FieldRole role) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// "name:type:role, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace vs::data

#endif  // VS_DATA_SCHEMA_H_
