#include "data/io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vs::data {

namespace {

constexpr char kMagic[4] = {'V', 'S', 'T', 'B'};
constexpr uint32_t kVersion = 1;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

/// Bounds-checked sequential reader over the serialized bytes.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  vs::Status Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      return vs::Status::InvalidArgument(vs::StrFormat(
          "truncated table data at offset %zu (need %zu more bytes)", pos_,
          n));
    }
    return vs::Status::OK();
  }

  vs::Result<uint8_t> GetU8() {
    VS_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  vs::Result<uint32_t> GetU32() {
    VS_RETURN_IF_ERROR(Need(4));
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  vs::Result<uint64_t> GetU64() {
    VS_RETURN_IF_ERROR(Need(8));
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  vs::Result<std::string> GetString(size_t n) {
    VS_RETURN_IF_ERROR(Need(n));
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  vs::Status GetBytes(void* dst, size_t n) {
    VS_RETURN_IF_ERROR(Need(n));
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return vs::Status::OK();
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

vs::Result<std::string> SerializeTable(const Table& table) {
  std::string out;
  out.append(kMagic, 4);
  PutU32(&out, kVersion);
  PutU64(&out, table.num_rows());
  PutU32(&out, static_cast<uint32_t>(table.num_columns()));

  const size_t rows = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& field = table.schema().field(c);
    PutU32(&out, static_cast<uint32_t>(field.name.size()));
    out.append(field.name);
    PutU8(&out, static_cast<uint8_t>(field.type));
    PutU8(&out, static_cast<uint8_t>(field.role));

    const Column& col = *table.column(c);
    const bool has_nulls = col.null_count() > 0;
    PutU8(&out, has_nulls ? 1 : 0);
    if (has_nulls) {
      for (size_t r = 0; r < rows; ++r) {
        PutU8(&out, col.IsNull(r) ? 1 : 0);
      }
    }

    switch (field.type) {
      case DataType::kInt64: {
        const auto& typed = static_cast<const Int64Column&>(col);
        PutBytes(&out, typed.data().data(), rows * sizeof(int64_t));
        break;
      }
      case DataType::kDouble: {
        const auto& typed = static_cast<const DoubleColumn&>(col);
        PutBytes(&out, typed.data().data(), rows * sizeof(double));
        break;
      }
      case DataType::kString: {
        const auto& typed = static_cast<const CategoricalColumn&>(col);
        PutU32(&out, static_cast<uint32_t>(typed.dictionary().size()));
        for (const std::string& label : typed.dictionary()) {
          PutU32(&out, static_cast<uint32_t>(label.size()));
          out.append(label);
        }
        PutBytes(&out, typed.codes().data(), rows * sizeof(int32_t));
        break;
      }
      default:
        return vs::Status::NotSupported("cannot serialize column type " +
                                        DataTypeName(field.type));
    }
  }
  return out;
}

vs::Result<Table> DeserializeTable(const std::string& bytes) {
  Reader reader(bytes);
  VS_ASSIGN_OR_RETURN(std::string magic, reader.GetString(4));
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    return vs::Status::InvalidArgument("bad table magic");
  }
  VS_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kVersion) {
    return vs::Status::NotSupported(
        vs::StrFormat("unsupported table format version %u", version));
  }
  VS_ASSIGN_OR_RETURN(uint64_t rows64, reader.GetU64());
  VS_ASSIGN_OR_RETURN(uint32_t num_columns, reader.GetU32());
  const size_t rows = static_cast<size_t>(rows64);

  std::vector<Field> fields;
  std::vector<ColumnPtr> columns;
  fields.reserve(num_columns);
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    VS_ASSIGN_OR_RETURN(uint32_t name_len, reader.GetU32());
    VS_ASSIGN_OR_RETURN(std::string name, reader.GetString(name_len));
    VS_ASSIGN_OR_RETURN(uint8_t type_byte, reader.GetU8());
    VS_ASSIGN_OR_RETURN(uint8_t role_byte, reader.GetU8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return vs::Status::InvalidArgument("bad column type byte");
    }
    if (role_byte > static_cast<uint8_t>(FieldRole::kOther)) {
      return vs::Status::InvalidArgument("bad column role byte");
    }
    const auto type = static_cast<DataType>(type_byte);
    const auto role = static_cast<FieldRole>(role_byte);
    fields.emplace_back(std::move(name), type, role);

    VS_ASSIGN_OR_RETURN(uint8_t has_nulls, reader.GetU8());
    std::vector<uint8_t> nulls;
    if (has_nulls != 0) {
      nulls.resize(rows);
      VS_RETURN_IF_ERROR(reader.GetBytes(nulls.data(), rows));
    }

    switch (type) {
      case DataType::kInt64: {
        std::vector<int64_t> values(rows);
        VS_RETURN_IF_ERROR(
            reader.GetBytes(values.data(), rows * sizeof(int64_t)));
        auto col = std::make_shared<Int64Column>();
        col->Reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          if (!nulls.empty() && nulls[r] != 0) {
            col->AppendNull();
          } else {
            col->Append(values[r]);
          }
        }
        columns.push_back(std::move(col));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> values(rows);
        VS_RETURN_IF_ERROR(
            reader.GetBytes(values.data(), rows * sizeof(double)));
        auto col = std::make_shared<DoubleColumn>();
        col->Reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          if (!nulls.empty() && nulls[r] != 0) {
            col->AppendNull();
          } else {
            col->Append(values[r]);
          }
        }
        columns.push_back(std::move(col));
        break;
      }
      case DataType::kString: {
        VS_ASSIGN_OR_RETURN(uint32_t dict_size, reader.GetU32());
        auto col = std::make_shared<CategoricalColumn>();
        col->Reserve(rows);
        for (uint32_t d = 0; d < dict_size; ++d) {
          VS_ASSIGN_OR_RETURN(uint32_t len, reader.GetU32());
          VS_ASSIGN_OR_RETURN(std::string label, reader.GetString(len));
          const int32_t code = col->InternLabel(label);
          if (code != static_cast<int32_t>(d)) {
            return vs::Status::InvalidArgument(
                "duplicate dictionary entry: " + label);
          }
        }
        std::vector<int32_t> codes(rows);
        VS_RETURN_IF_ERROR(
            reader.GetBytes(codes.data(), rows * sizeof(int32_t)));
        for (size_t r = 0; r < rows; ++r) {
          const int32_t code = codes[r];
          if (code == CategoricalColumn::kNullCode) {
            col->AppendNull();
          } else if (code >= 0 && code < col->cardinality()) {
            col->AppendCode(code);
          } else {
            return vs::Status::InvalidArgument(vs::StrFormat(
                "dictionary code %d out of range at row %zu", code, r));
          }
        }
        columns.push_back(std::move(col));
        break;
      }
      default:
        return vs::Status::InvalidArgument("null-typed column in file");
    }
  }
  if (!reader.AtEnd()) {
    return vs::Status::InvalidArgument("trailing bytes after table data");
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  return Table::Make(std::move(schema), std::move(columns));
}

vs::Status WriteTableFile(const Table& table, const std::string& path) {
  VS_ASSIGN_OR_RETURN(std::string bytes, SerializeTable(table));
  std::ofstream out(path, std::ios::binary);
  if (!out) return vs::Status::IOError("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return vs::Status::IOError("write failed: " + path);
  return vs::Status::OK();
}

vs::Result<Table> ReadTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return vs::Status::IOError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeTable(buffer.str());
}

// ---- TableStreamWriter ---------------------------------------------------

TableStreamWriter::TableStreamWriter(std::FILE* file, Schema schema,
                                     uint64_t num_rows)
    : file_(file), schema_(std::move(schema)), num_rows_(num_rows) {}

TableStreamWriter::~TableStreamWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

vs::Result<std::unique_ptr<TableStreamWriter>> TableStreamWriter::Open(
    const std::string& path, const Schema& schema, uint64_t num_rows) {
  if (schema.num_fields() == 0) {
    return vs::Status::InvalidArgument("cannot stream an empty schema");
  }
  for (const Field& field : schema.fields()) {
    if (field.type != DataType::kInt64 && field.type != DataType::kDouble &&
        field.type != DataType::kString) {
      return vs::Status::NotSupported("cannot stream column type " +
                                      DataTypeName(field.type));
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return vs::Status::IOError("cannot open for writing: " + path);
  }
  auto writer = std::unique_ptr<TableStreamWriter>(
      new TableStreamWriter(file, schema, num_rows));
  std::string header;
  header.append(kMagic, 4);
  PutU32(&header, kVersion);
  PutU64(&header, num_rows);
  PutU32(&header, static_cast<uint32_t>(schema.num_fields()));
  VS_RETURN_IF_ERROR(writer->WriteRaw(header.data(), header.size()));
  return writer;
}

vs::Status TableStreamWriter::WriteRaw(const void* data, size_t n) {
  if (std::fwrite(data, 1, n, file_) != n) {
    return vs::Status::IOError("stream write failed");
  }
  return vs::Status::OK();
}

vs::Status TableStreamWriter::BeginColumn(
    size_t index, const std::vector<std::string>* dictionary) {
  if (finished_) return vs::Status::FailedPrecondition("writer finished");
  if (index != current_column_) {
    return vs::Status::InvalidArgument(vs::StrFormat(
        "columns must be streamed in order: got %zu, expected %zu", index,
        current_column_));
  }
  if (index > 0 && column_rows_ != num_rows_) {
    return vs::Status::FailedPrecondition(vs::StrFormat(
        "column %zu incomplete: %llu of %llu rows", index - 1,
        static_cast<unsigned long long>(column_rows_),
        static_cast<unsigned long long>(num_rows_)));
  }
  const Field& field = schema_.field(index);
  if ((field.type == DataType::kString) != (dictionary != nullptr)) {
    return vs::Status::InvalidArgument(
        "dictionary must be given for string columns and only for them");
  }
  std::string meta;
  PutU32(&meta, static_cast<uint32_t>(field.name.size()));
  meta.append(field.name);
  PutU8(&meta, static_cast<uint8_t>(field.type));
  PutU8(&meta, static_cast<uint8_t>(field.role));
  PutU8(&meta, 0);  // has_nulls: streamed tables are null-free
  if (dictionary != nullptr) {
    PutU32(&meta, static_cast<uint32_t>(dictionary->size()));
    for (const std::string& label : *dictionary) {
      PutU32(&meta, static_cast<uint32_t>(label.size()));
      meta.append(label);
    }
    dictionary_size_ = static_cast<int32_t>(dictionary->size());
  }
  VS_RETURN_IF_ERROR(WriteRaw(meta.data(), meta.size()));
  ++current_column_;
  column_rows_ = 0;
  return vs::Status::OK();
}

vs::Status TableStreamWriter::CheckAppend(DataType expected, size_t n) {
  if (finished_) return vs::Status::FailedPrecondition("writer finished");
  if (current_column_ == 0) {
    return vs::Status::FailedPrecondition("BeginColumn not called");
  }
  const Field& field = schema_.field(current_column_ - 1);
  if (field.type != expected) {
    return vs::Status::InvalidArgument(
        vs::StrFormat("append type mismatch for column %s",
                      field.name.c_str()));
  }
  if (column_rows_ + n > num_rows_) {
    return vs::Status::InvalidArgument(vs::StrFormat(
        "column %s overflows %llu rows", field.name.c_str(),
        static_cast<unsigned long long>(num_rows_)));
  }
  return vs::Status::OK();
}

vs::Status TableStreamWriter::AppendDoubles(const double* values, size_t n) {
  VS_RETURN_IF_ERROR(CheckAppend(DataType::kDouble, n));
  VS_RETURN_IF_ERROR(WriteRaw(values, n * sizeof(double)));
  column_rows_ += n;
  return vs::Status::OK();
}

vs::Status TableStreamWriter::AppendInt64s(const int64_t* values, size_t n) {
  VS_RETURN_IF_ERROR(CheckAppend(DataType::kInt64, n));
  VS_RETURN_IF_ERROR(WriteRaw(values, n * sizeof(int64_t)));
  column_rows_ += n;
  return vs::Status::OK();
}

vs::Status TableStreamWriter::AppendCodes(const int32_t* codes, size_t n) {
  VS_RETURN_IF_ERROR(CheckAppend(DataType::kString, n));
  for (size_t i = 0; i < n; ++i) {
    if (codes[i] < 0 || codes[i] >= dictionary_size_) {
      return vs::Status::InvalidArgument(vs::StrFormat(
          "code %d outside dictionary of %d", codes[i], dictionary_size_));
    }
  }
  VS_RETURN_IF_ERROR(WriteRaw(codes, n * sizeof(int32_t)));
  column_rows_ += n;
  return vs::Status::OK();
}

vs::Status TableStreamWriter::Finish() {
  if (finished_) return vs::Status::FailedPrecondition("already finished");
  if (current_column_ != schema_.num_fields() ||
      column_rows_ != num_rows_) {
    return vs::Status::FailedPrecondition(
        vs::StrFormat("table incomplete: %zu of %zu columns, last has %llu "
                      "of %llu rows",
                      current_column_, schema_.num_fields(),
                      static_cast<unsigned long long>(column_rows_),
                      static_cast<unsigned long long>(num_rows_)));
  }
  finished_ = true;
  const int flush_failed = std::fflush(file_);
  const int close_failed = std::fclose(file_);
  file_ = nullptr;
  if (flush_failed != 0 || close_failed != 0) {
    return vs::Status::IOError("stream flush/close failed");
  }
  return vs::Status::OK();
}

}  // namespace vs::data
