#ifndef VS_DATA_SAMPLER_H_
#define VS_DATA_SAMPLER_H_

/// \file sampler.h
/// \brief Uniform row sampling — the substrate of the paper's α%-sample
/// optimization (§3.3): rough utility features are computed on an α percent
/// uniform sample and later refined on the full data.

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "data/table.h"

namespace vs::data {

/// Bernoulli sample: keeps each of the \p n rows independently with
/// probability \p rate (clamped to [0, 1]).  Result is sorted.
SelectionVector BernoulliSample(size_t n, double rate, vs::Rng* rng);

/// Bernoulli sample of an existing selection (keeps each selected row with
/// probability \p rate); preserves order.
SelectionVector BernoulliSample(const SelectionVector& selection, double rate,
                                vs::Rng* rng);

/// Reservoir sample: exactly min(k, n) rows drawn uniformly without
/// replacement from [0, n); result is sorted.
SelectionVector ReservoirSample(size_t n, size_t k, vs::Rng* rng);

/// Reservoir sample of an existing selection; result preserves the
/// selection's (sorted) order.
SelectionVector ReservoirSample(const SelectionVector& selection, size_t k,
                                vs::Rng* rng);

/// Stratified sample: for each stratum code in \p strata (values in
/// [0, num_strata)), keeps ceil(rate * stratum_size) rows uniformly.
/// \p strata must have one code per row in [0, n).  Result is sorted.
/// Used by the ablation bench to contrast uniform vs stratified rough
/// features.
vs::Result<SelectionVector> StratifiedSample(
    const std::vector<int32_t>& strata, int32_t num_strata, double rate,
    vs::Rng* rng);

}  // namespace vs::data

#endif  // VS_DATA_SAMPLER_H_
