#ifndef VS_DATA_GROUPBY_KERNEL_H_
#define VS_DATA_GROUPBY_KERNEL_H_

/// \file groupby_kernel.h
/// \brief Typed, hash-based grouped-aggregation kernel — the fast path
/// behind GroupByExecutor.
///
/// The generic executor path folds rows through a `std::function` bin
/// decoder and a per-row NumericColumnView type branch; at millions of
/// rows those indirect calls dominate the scan.  The kernel instead
/// dispatches *once* on the concrete column types and runs tight typed
/// loops in two stages per block of rows:
///
///   1. decode the dimension into a small bin-index buffer (dictionary
///      codes pass through; numeric values are equi-width binned with the
///      exact same `(v - lo) / width` arithmetic as the scalar path, so
///      bin assignment is bit-identical);
///   2. for each measure, fold the block into structure-of-arrays
///      accumulators (counts / sums / sumsqs / mins / maxs).
///
/// Grouping storage is picked per call:
///   - *dense*: one direct-indexed SoA grid when the bin count is at most
///     GroupByKernelOptions::dense_bins_max — the common case (dictionary
///     dimensions, small equi-width binnings);
///   - *hash*: an FNV-1a open-addressing table mapping bin -> compact slot
///     otherwise, so a high-cardinality dimension scanned through a small
///     selection touches memory proportional to the *distinct* bins seen,
///     not the bin space.
///
/// On the small-bin dense path — once the scan is long enough to amortize
/// the wider grids — the accumulators are replicated into four lanes (row
/// i feeds lane i mod 4, merged in fixed lane order) so that a
/// zipf-popular bin carries four independent floating-point dependency
/// chains instead of serializing on add latency.  With num_threads > 1
/// the row domain is additionally split into contiguous ranges, each
/// aggregated into a private partial (its own grids or hash table), and
/// the partials are merged in range order — deterministic for a fixed
/// thread count regardless of scheduling.
///
/// Equivalence contract vs the scalar oracle: bin assignment, counts,
/// mins and maxs are *exact* (integer adds and min/max are associative);
/// sums and sumsqs are reassociated by lane/partial merging and agree
/// within accumulation tolerance.  The merge step carries the
/// `kernel.partial_merge_fail` fault point (docs/TESTING.md).

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/column.h"
#include "data/table.h"

namespace vs::data {

/// Equi-width binning of a numeric dimension, precomputed by the executor
/// from the full-table range so target and reference selections share
/// aligned bins.
struct KernelBinDef {
  double lo = 0.0;
  double width = 1.0;  ///< per-bin width; > 0
};

/// \brief Structure-of-arrays accumulator grid for one measure: one slot
/// per bin (or per compact hash slot while partials are being built).
///
/// Finalization semantics match AggregateAccumulator: empty bins have
/// count 0, sum/sumsq 0 and +-inf min/max, and finalize to 0 for every
/// aggregate function.
struct KernelGrid {
  std::vector<int64_t> counts;
  std::vector<double> sums;
  std::vector<double> sumsqs;
  std::vector<double> mins;
  std::vector<double> maxs;

  /// Resizes to \p num_bins empty slots.
  void Reset(size_t num_bins);

  /// Appends one empty slot; returns its index.
  size_t AppendSlot();

  /// Folds \p other slot-for-slot into this grid (equal sizes required).
  void MergeFrom(const KernelGrid& other);

  size_t size() const { return counts.size(); }
};

/// \brief Tuning knobs; the defaults are what GroupByExecutor passes.
struct GroupByKernelOptions {
  /// Bin counts at or below this use the dense direct-indexed grid; above
  /// it, the FNV open-addressing table.  Tests lower it to force the hash
  /// path onto small inputs.
  int32_t dense_bins_max = 1 << 14;
  /// Partial-aggregate workers; 0 or 1 runs serially (bit-identical to
  /// the scalar oracle).  More workers split the row domain into
  /// contiguous per-worker partials merged in range order.
  size_t num_threads = 0;
};

/// Runs the typed aggregation kernel: groups the rows of \p selection
/// (nullptr = all \p table_rows rows) by \p dimension and folds every
/// column in \p measures into one KernelGrid per measure, in input order.
///
/// \p dimension must be a CategoricalColumn (with \p numeric_bins
/// nullptr and \p num_bins its cardinality) or an Int64/Double column
/// (with \p numeric_bins set).  Measures must be int64 or double columns.
/// Rows whose dimension is null — and, per measure, rows whose measure is
/// null — do not contribute, matching the scalar path.
vs::Result<std::vector<KernelGrid>> GroupByKernelRun(
    const Column* dimension, const KernelBinDef* numeric_bins,
    int32_t num_bins, const std::vector<const Column*>& measures,
    const SelectionVector* selection, size_t table_rows,
    const GroupByKernelOptions& options);

/// Typed min/max scan over the non-null values of a numeric (int64 or
/// double) column — the kernel-side replacement for the executor's
/// equi-width range discovery.  Returns {+inf, -inf} when every value is
/// null (the caller turns that into its no-non-null-values error).
/// Min/max are associative, so the unrolled scan is bit-identical to the
/// sequential one.
vs::Result<std::pair<double, double>> KernelColumnRange(const Column* column);

}  // namespace vs::data

#endif  // VS_DATA_GROUPBY_KERNEL_H_
