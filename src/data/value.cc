#include "data/value.h"

#include <cstdio>

namespace vs::data {

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (payload_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

bool Value::AsDouble(double* out) const {
  if (is_int64()) {
    *out = static_cast<double>(int64());
    return true;
  }
  if (is_double()) {
    *out = dbl();
    return true;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) return static_cast<int>(b_null) - static_cast<int>(a_null);

  double a_num = 0.0;
  double b_num = 0.0;
  const bool a_is_num = AsDouble(&a_num);
  const bool b_is_num = other.AsDouble(&b_num);
  if (a_is_num && b_is_num) {
    if (a_num < b_num) return -1;
    if (a_num > b_num) return 1;
    return 0;
  }
  if (a_is_num != b_is_num) return a_is_num ? -1 : 1;  // numerics before strings
  return str().compare(other.str()) < 0 ? -1 : (str() == other.str() ? 0 : 1);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return std::to_string(int64());
    case DataType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", dbl());
      return buf;
    }
    case DataType::kString:
      return str();
  }
  return "?";
}

}  // namespace vs::data
