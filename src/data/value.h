#ifndef VS_DATA_VALUE_H_
#define VS_DATA_VALUE_H_

/// \file value.h
/// \brief Dynamically-typed cell value used at the row-oriented edges of the
/// engine (CSV ingestion, TableBuilder, predicate literals).  The columnar
/// core never materializes Values on hot paths.

#include <cstdint>
#include <string>
#include <variant>

namespace vs::data {

/// Physical type of a column or value.
enum class DataType : int {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// Human-readable type name ("int64", "double", ...).
std::string DataTypeName(DataType type);

/// \brief A null, integer, floating-point, or string cell.
class Value {
 public:
  /// Constructs a null value.
  Value() : payload_(std::monostate{}) {}
  /// Constructs an integer value.
  Value(int64_t v) : payload_(v) {}  // NOLINT(runtime/explicit)
  /// Constructs a floating-point value.
  Value(double v) : payload_(v) {}  // NOLINT(runtime/explicit)
  /// Constructs a string value.
  Value(std::string v)  // NOLINT(runtime/explicit)
      : payload_(std::move(v)) {}
  /// Constructs a string value from a C literal.
  Value(const char* v) : payload_(std::string(v)) {}  // NOLINT

  /// The dynamic type of this value.
  DataType type() const;

  /// \name Type predicates.
  /// @{
  bool is_null() const { return type() == DataType::kNull; }
  bool is_int64() const { return type() == DataType::kInt64; }
  bool is_double() const { return type() == DataType::kDouble; }
  bool is_string() const { return type() == DataType::kString; }
  /// @}

  /// \name Checked accessors (assert on type mismatch).
  /// @{
  int64_t int64() const { return std::get<int64_t>(payload_); }
  double dbl() const { return std::get<double>(payload_); }
  const std::string& str() const { return std::get<std::string>(payload_); }
  /// @}

  /// Numeric coercion: int64 and double convert; null/string do not.
  /// Returns true and writes \p *out on success.
  bool AsDouble(double* out) const;

  /// Three-valued compare for same-kind values; numeric kinds compare by
  /// value across int64/double.  Nulls sort first; cross-kind (numeric vs
  /// string) compares by type rank.  Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Renders the value for debugging and CSV output.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> payload_;
};

}  // namespace vs::data

#endif  // VS_DATA_VALUE_H_
