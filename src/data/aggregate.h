#ifndef VS_DATA_AGGREGATE_H_
#define VS_DATA_AGGREGATE_H_

/// \file aggregate.h
/// \brief The engine's aggregation functions F = {COUNT, SUM, AVG, MIN, MAX}
/// (the paper's five, Table 1) as incremental accumulators.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"

namespace vs::data {

/// One of the five SQL aggregation functions.
enum class AggregateFunction : int {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
};

/// Number of aggregation functions (|F| in Eq. 1).
inline constexpr int kNumAggregateFunctions = 5;

/// All functions in enum order.
std::vector<AggregateFunction> AllAggregateFunctions();

/// "COUNT", "SUM", "AVG", "MIN", "MAX".
std::string AggregateFunctionName(AggregateFunction f);

/// Parses a (case-insensitive) function name.
vs::Result<AggregateFunction> ParseAggregateFunction(const std::string& name);

/// \brief Streaming accumulator for one group; supports all five functions
/// so a single pass can finalize any of them.
struct AggregateAccumulator {
  int64_t count = 0;
  double sum = 0.0;
  double sumsq = 0.0;  ///< Σ v² — feeds the SSE-based accuracy metric
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Folds one non-null measure value into the accumulator.
  void Add(double v) {
    ++count;
    sum += v;
    sumsq += v * v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  /// Merges another accumulator (for partitioned execution).
  void Merge(const AggregateAccumulator& other) {
    count += other.count;
    sum += other.sum;
    sumsq += other.sumsq;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  /// Final aggregate value; empty groups yield 0 for every function (the
  /// view pipeline treats empty bins as zero mass).
  double Finalize(AggregateFunction f) const {
    if (count == 0) return 0.0;
    switch (f) {
      case AggregateFunction::kCount:
        return static_cast<double>(count);
      case AggregateFunction::kSum:
        return sum;
      case AggregateFunction::kAvg:
        return sum / static_cast<double>(count);
      case AggregateFunction::kMin:
        return min;
      case AggregateFunction::kMax:
        return max;
    }
    return 0.0;
  }
};

}  // namespace vs::data

#endif  // VS_DATA_AGGREGATE_H_
