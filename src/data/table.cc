#include "data/table.h"

#include <cassert>

#include "common/string_util.h"

namespace vs::data {

vs::Result<Table> Table::Make(Schema schema, std::vector<ColumnPtr> columns) {
  if (schema.num_fields() != columns.size()) {
    return vs::Status::InvalidArgument(vs::StrFormat(
        "schema has %zu fields but %zu columns were provided",
        schema.num_fields(), columns.size()));
  }
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return vs::Status::InvalidArgument("null column at index " +
                                         std::to_string(i));
    }
    if (columns[i]->size() != rows) {
      return vs::Status::InvalidArgument(vs::StrFormat(
          "column '%s' has %zu rows, expected %zu",
          schema.field(i).name.c_str(), columns[i]->size(), rows));
    }
    if (columns[i]->type() != schema.field(i).type) {
      return vs::Status::InvalidArgument(vs::StrFormat(
          "column '%s' has type %s, schema says %s",
          schema.field(i).name.c_str(),
          DataTypeName(columns[i]->type()).c_str(),
          DataTypeName(schema.field(i).type).c_str()));
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  return t;
}

vs::Result<ColumnPtr> Table::ColumnByName(const std::string& name) const {
  VS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return columns_[idx];
}

vs::Result<const Int64Column*> Table::Int64ColumnByName(
    const std::string& name) const {
  VS_ASSIGN_OR_RETURN(ColumnPtr col, ColumnByName(name));
  const auto* typed = dynamic_cast<const Int64Column*>(col.get());
  if (typed == nullptr) {
    return vs::Status::InvalidArgument("column '" + name + "' is not int64");
  }
  return typed;
}

vs::Result<const DoubleColumn*> Table::DoubleColumnByName(
    const std::string& name) const {
  VS_ASSIGN_OR_RETURN(ColumnPtr col, ColumnByName(name));
  const auto* typed = dynamic_cast<const DoubleColumn*>(col.get());
  if (typed == nullptr) {
    return vs::Status::InvalidArgument("column '" + name + "' is not double");
  }
  return typed;
}

vs::Result<const CategoricalColumn*> Table::CategoricalColumnByName(
    const std::string& name) const {
  VS_ASSIGN_OR_RETURN(ColumnPtr col, ColumnByName(name));
  const auto* typed = dynamic_cast<const CategoricalColumn*>(col.get());
  if (typed == nullptr) {
    return vs::Status::InvalidArgument("column '" + name +
                                       "' is not categorical");
  }
  return typed;
}

vs::Result<Table> Table::Take(const SelectionVector& selection) const {
  for (size_t i = 1; i < selection.size(); ++i) {
    if (selection[i] <= selection[i - 1]) {
      return vs::Status::InvalidArgument(
          "selection vector must be strictly increasing");
    }
  }
  if (!selection.empty() && selection.back() >= num_rows_) {
    return vs::Status::OutOfRange("selection row id out of range");
  }
  TableBuilder builder(schema_);
  builder.Reserve(selection.size());
  std::vector<Value> row(num_columns());
  for (uint32_t r : selection) {
    for (size_t c = 0; c < num_columns(); ++c) {
      row[c] = columns_[c]->GetValue(r);
    }
    VS_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  return builder.Build();
}

SelectionVector Table::AllRows() const {
  SelectionVector sel(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    switch (f.type) {
      case DataType::kInt64:
        columns_.push_back(std::make_shared<Int64Column>());
        break;
      case DataType::kDouble:
        columns_.push_back(std::make_shared<DoubleColumn>());
        break;
      case DataType::kString:
        columns_.push_back(std::make_shared<CategoricalColumn>());
        break;
      case DataType::kNull:
        columns_.push_back(nullptr);  // rejected in AppendRow
        break;
    }
  }
}

void TableBuilder::Reserve(size_t rows) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == nullptr) continue;
    switch (schema_.field(i).type) {
      case DataType::kInt64:
        static_cast<Int64Column*>(columns_[i].get())->Reserve(rows);
        break;
      case DataType::kDouble:
        static_cast<DoubleColumn*>(columns_[i].get())->Reserve(rows);
        break;
      case DataType::kString:
        static_cast<CategoricalColumn*>(columns_[i].get())->Reserve(rows);
        break;
      default:
        break;
    }
  }
}

vs::Status TableBuilder::AppendRow(const std::vector<Value>& cells) {
  if (cells.size() != schema_.num_fields()) {
    return vs::Status::InvalidArgument(vs::StrFormat(
        "row has %zu cells, schema has %zu fields", cells.size(),
        schema_.num_fields()));
  }
  // Validate the whole row before mutating any column so a failed append
  // leaves the builder consistent.
  for (size_t i = 0; i < cells.size(); ++i) {
    const Field& f = schema_.field(i);
    const Value& v = cells[i];
    if (columns_[i] == nullptr) {
      return vs::Status::InvalidArgument("field '" + f.name +
                                         "' has unsupported type null");
    }
    if (v.is_null()) continue;
    switch (f.type) {
      case DataType::kInt64:
        if (!v.is_int64()) {
          return vs::Status::InvalidArgument(
              "type mismatch for field '" + f.name + "': expected int64, got " +
              DataTypeName(v.type()));
        }
        break;
      case DataType::kDouble:
        if (!v.is_double() && !v.is_int64()) {
          return vs::Status::InvalidArgument(
              "type mismatch for field '" + f.name +
              "': expected double, got " + DataTypeName(v.type()));
        }
        break;
      case DataType::kString:
        if (!v.is_string()) {
          return vs::Status::InvalidArgument(
              "type mismatch for field '" + f.name +
              "': expected string, got " + DataTypeName(v.type()));
        }
        break;
      default:
        return vs::Status::Internal("unreachable field type");
    }
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    const Field& f = schema_.field(i);
    const Value& v = cells[i];
    switch (f.type) {
      case DataType::kInt64: {
        auto* col = static_cast<Int64Column*>(columns_[i].get());
        if (v.is_null()) {
          col->AppendNull();
        } else {
          col->Append(v.int64());
        }
        break;
      }
      case DataType::kDouble: {
        auto* col = static_cast<DoubleColumn*>(columns_[i].get());
        if (v.is_null()) {
          col->AppendNull();
        } else {
          double d = 0.0;
          v.AsDouble(&d);
          col->Append(d);
        }
        break;
      }
      case DataType::kString: {
        auto* col = static_cast<CategoricalColumn*>(columns_[i].get());
        if (v.is_null()) {
          col->AppendNull();
        } else {
          col->Append(v.str());
        }
        break;
      }
      default:
        break;
    }
  }
  ++num_rows_;
  return vs::Status::OK();
}

vs::Result<Table> TableBuilder::Build() {
  std::vector<ColumnPtr> frozen;
  frozen.reserve(columns_.size());
  for (auto& c : columns_) frozen.push_back(std::move(c));
  Schema schema = schema_;
  num_rows_ = 0;
  columns_.clear();
  return Table::Make(std::move(schema), std::move(frozen));
}

vs::Result<NumericColumnView> NumericColumnView::Wrap(const Column* column) {
  NumericColumnView view;
  if (const auto* i = dynamic_cast<const Int64Column*>(column)) {
    view.ints_ = i;
    return view;
  }
  if (const auto* d = dynamic_cast<const DoubleColumn*>(column)) {
    view.dbls_ = d;
    return view;
  }
  return vs::Status::InvalidArgument("column is not numeric");
}

}  // namespace vs::data
