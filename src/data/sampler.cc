#include "data/sampler.h"

#include <algorithm>
#include <cmath>

namespace vs::data {

SelectionVector BernoulliSample(size_t n, double rate, vs::Rng* rng) {
  SelectionVector out;
  if (rate >= 1.0) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint32_t>(i);
    return out;
  }
  if (rate <= 0.0) return out;
  out.reserve(static_cast<size_t>(rate * n * 1.1) + 16);
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextDouble() < rate) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

SelectionVector BernoulliSample(const SelectionVector& selection, double rate,
                                vs::Rng* rng) {
  SelectionVector out;
  if (rate >= 1.0) return selection;
  if (rate <= 0.0) return out;
  out.reserve(static_cast<size_t>(rate * selection.size() * 1.1) + 16);
  for (uint32_t r : selection) {
    if (rng->NextDouble() < rate) out.push_back(r);
  }
  return out;
}

SelectionVector ReservoirSample(size_t n, size_t k, vs::Rng* rng) {
  SelectionVector reservoir;
  const size_t take = std::min(n, k);
  reservoir.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    reservoir.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = take; i < n; ++i) {
    const uint64_t j = rng->NextBounded(i + 1);
    if (j < take) reservoir[j] = static_cast<uint32_t>(i);
  }
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

SelectionVector ReservoirSample(const SelectionVector& selection, size_t k,
                                vs::Rng* rng) {
  SelectionVector positions = ReservoirSample(selection.size(), k, rng);
  SelectionVector out;
  out.reserve(positions.size());
  for (uint32_t p : positions) out.push_back(selection[p]);
  return out;
}

vs::Result<SelectionVector> StratifiedSample(
    const std::vector<int32_t>& strata, int32_t num_strata, double rate,
    vs::Rng* rng) {
  if (num_strata <= 0) {
    return vs::Status::InvalidArgument("num_strata must be positive");
  }
  // Count stratum sizes and derive per-stratum quotas.
  std::vector<size_t> sizes(static_cast<size_t>(num_strata), 0);
  for (size_t i = 0; i < strata.size(); ++i) {
    const int32_t s = strata[i];
    if (s < 0 || s >= num_strata) {
      return vs::Status::OutOfRange("stratum code out of range at row " +
                                    std::to_string(i));
    }
    ++sizes[static_cast<size_t>(s)];
  }
  const double clamped = std::clamp(rate, 0.0, 1.0);
  std::vector<size_t> quota(sizes.size());
  for (size_t s = 0; s < sizes.size(); ++s) {
    quota[s] = static_cast<size_t>(
        std::ceil(clamped * static_cast<double>(sizes[s])));
  }
  // Per-stratum reservoir over a single pass.
  std::vector<SelectionVector> reservoirs(sizes.size());
  std::vector<size_t> seen(sizes.size(), 0);
  for (size_t i = 0; i < strata.size(); ++i) {
    const size_t s = static_cast<size_t>(strata[i]);
    const size_t k = quota[s];
    if (k == 0) continue;
    if (reservoirs[s].size() < k) {
      reservoirs[s].push_back(static_cast<uint32_t>(i));
    } else {
      const uint64_t j = rng->NextBounded(seen[s] + 1);
      if (j < k) reservoirs[s][j] = static_cast<uint32_t>(i);
    }
    ++seen[s];
  }
  SelectionVector out;
  for (const SelectionVector& r : reservoirs) {
    out.insert(out.end(), r.begin(), r.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vs::data
