#ifndef VS_DATA_GENERATOR_H_
#define VS_DATA_GENERATOR_H_

/// \file generator.h
/// \brief Deterministic dataset generators reproducing the paper's testbed
/// (Table 1).
///
/// SYN is generated exactly as described: numeric records whose attribute
/// values are uniformly distributed, 5 dimension and 5 measure attributes.
///
/// DIAB substitutes for the UCI diabetic-patients dataset the paper uses
/// (not redistributable here): a synthetic clinical-shaped dataset matching
/// the published shape — 100k records, 7 categorical dimension attributes
/// with variable cardinalities, 8 non-negative measure attributes — with
/// dimension-dependent multiplicative effects on the measures so that query
/// subsets genuinely deviate from the full data (the property every utility
/// feature exercises).  See DESIGN.md §2 for the substitution rationale.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace vs::data {

/// \brief Options for the SYN dataset (paper defaults).
struct SyntheticOptions {
  size_t num_rows = 1'000'000;
  int num_dimensions = 5;  ///< numeric, uniform in [0, 1)
  int num_measures = 5;    ///< numeric, uniform in [0, 1)
  uint64_t seed = 42;
  /// Blend factor in [0, 1]: 0 reproduces the paper's fully uniform SYN;
  /// > 0 mixes in a dimension-driven component so deviation features have
  /// structure (used by examples, never by the figure benches).
  double correlation = 0.0;
};

/// Generates the SYN table: dimensions d0..d{A-1}, measures m0..m{M-1}.
vs::Result<Table> GenerateSynthetic(const SyntheticOptions& options);

/// \brief Options for the DIAB-shaped dataset (paper defaults).
struct DiabetesOptions {
  size_t num_rows = 100'000;
  uint64_t seed = 7;
  /// Strength of the per-(dimension level, measure) multiplicative effects;
  /// 0 removes all structure, larger values deepen subset deviations.
  double effect_sigma = 0.35;
};

/// Generates the DIAB-shaped table: 7 categorical dimensions
/// (gender, age_group, race, admission_type, insulin, diag_group,
/// medical_specialty) and 8 measures (time_in_hospital,
/// num_lab_procedures, num_procedures, num_medications, number_outpatient,
/// number_emergency, number_inpatient, number_diagnoses).
vs::Result<Table> GenerateDiabetes(const DiabetesOptions& options);

/// Cardinalities of the 7 DIAB dimensions, in schema order.
std::vector<int32_t> DiabetesDimensionCardinalities();

/// \brief Options for the large-scale testbed (10–100M rows): the dataset
/// the workload harness (src/workload/) drives production-shaped traffic
/// against.  High-cardinality zipf-popular categorical dimensions, uniform
/// numeric dimensions, and lognormal-skewed measures with per-(dimension
/// level, measure) multiplicative effects so query subsets genuinely
/// deviate from the reference distribution.
///
/// Every cell is a pure function of (seed, column, row) — counter-based
/// generation rather than a sequential PRNG stream — so the output is
/// byte-identical regardless of chunking, and the streaming writer can
/// materialize column-major in O(chunk_rows) memory.
struct LargeScaleOptions {
  uint64_t num_rows = 10'000'000;
  /// Cardinality of categorical dimension g<i> (zipf-popular levels).
  std::vector<int32_t> cardinalities = {12, 96, 1024};
  int num_numeric_dims = 2;  ///< d0..: numeric dimensions, uniform [0, 1)
  int num_measures = 4;      ///< m0..: lognormal-skewed measures
  double zipf_s = 1.1;       ///< level-popularity exponent (0 = uniform)
  double measure_sigma = 0.6;  ///< per-row lognormal noise sigma
  double effect_sigma = 0.25;  ///< per-(level, measure) effect sigma
  uint64_t seed = 99;
  /// Rows materialized at a time by GenerateLargeScaleToFile; bounds
  /// memory, never changes the generated values.
  size_t chunk_rows = 1 << 20;
};

/// Generates the large-scale table in memory (tests and small scales; at
/// 10M+ rows prefer the streaming writer below).
vs::Result<Table> GenerateLargeScale(const LargeScaleOptions& options);

/// Streams the large-scale table straight into the .vst format at \p path
/// using O(chunk_rows) memory; the file is byte-identical to
/// WriteTableFile(GenerateLargeScale(options)).
vs::Status GenerateLargeScaleToFile(const LargeScaleOptions& options,
                                    const std::string& path);

/// Exact .vst file size GenerateLargeScaleToFile will produce — lets
/// callers check disk headroom before a 100M-row write and lets tests
/// verify a streamed file without loading it.
vs::Result<uint64_t> LargeScaleFileBytes(const LargeScaleOptions& options);

}  // namespace vs::data

#endif  // VS_DATA_GENERATOR_H_
