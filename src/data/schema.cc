#include "data/schema.h"

namespace vs::data {

std::string FieldRoleName(FieldRole role) {
  switch (role) {
    case FieldRole::kDimension:
      return "dimension";
    case FieldRole::kMeasure:
      return "measure";
    case FieldRole::kOther:
      return "other";
  }
  return "unknown";
}

vs::Result<Schema> Schema::Make(std::vector<Field> fields) {
  Schema schema;
  schema.fields_ = std::move(fields);
  for (size_t i = 0; i < schema.fields_.size(); ++i) {
    const Field& f = schema.fields_[i];
    if (f.name.empty()) {
      return vs::Status::InvalidArgument("field with empty name at index " +
                                         std::to_string(i));
    }
    auto [it, inserted] = schema.index_.emplace(f.name, i);
    (void)it;
    if (!inserted) {
      return vs::Status::AlreadyExists("duplicate field name: " + f.name);
    }
  }
  return schema;
}

vs::Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return vs::Status::NotFound("no field named '" + name + "'");
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.count(name) != 0;
}

std::vector<size_t> Schema::FieldsWithRole(FieldRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].role == role) out.push_back(i);
  }
  return out;
}

std::vector<std::string> Schema::NamesWithRole(FieldRole role) const {
  std::vector<std::string> out;
  for (const Field& f : fields_) {
    if (f.role == role) out.push_back(f.name);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (const Field& f : fields_) {
    if (!out.empty()) out += ", ";
    out += f.name + ":" + DataTypeName(f.type) + ":" + FieldRoleName(f.role);
  }
  return out;
}

}  // namespace vs::data
