#include "data/groupby.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/string_util.h"
#include "data/groupby_kernel.h"
#include "data/predicate.h"

namespace vs::data {

namespace {

/// Finalizes one SoA kernel slot with AggregateAccumulator semantics
/// (empty bins yield 0 for every function).
double FinalizeKernelSlot(const KernelGrid& grid, size_t b,
                          AggregateFunction f) {
  if (grid.counts[b] == 0) return 0.0;
  switch (f) {
    case AggregateFunction::kCount:
      return static_cast<double>(grid.counts[b]);
    case AggregateFunction::kSum:
      return grid.sums[b];
    case AggregateFunction::kAvg:
      return grid.sums[b] / static_cast<double>(grid.counts[b]);
    case AggregateFunction::kMin:
      return grid.mins[b];
    case AggregateFunction::kMax:
      return grid.maxs[b];
  }
  return 0.0;
}

}  // namespace

std::string GroupBySpec::ToString() const {
  std::string out = AggregateFunctionName(func) + "(" + measure +
                    ") GROUP BY " + dimension;
  if (num_bins > 0) out += vs::StrFormat(" [%d bins]", num_bins);
  return out;
}

GroupByExecutor::GroupByExecutor(const Table* table,
                                 const GroupByExecutorOptions& options)
    : table_(table), options_(options) {}

vs::Result<GroupByExecutor::NumericBinDef> GroupByExecutor::NumericBins(
    const std::string& dimension, int32_t num_bins) const {
  if (num_bins <= 0) {
    return vs::Status::InvalidArgument("numeric dimension '" + dimension +
                                       "' requires num_bins > 0");
  }
  auto it = range_cache_.find(dimension);
  if (it == range_cache_.end()) {
    VS_ASSIGN_OR_RETURN(ColumnPtr col, table_->ColumnByName(dimension));
    VS_ASSIGN_OR_RETURN(NumericColumnView view,
                        NumericColumnView::Wrap(col.get()));
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    if (options_.use_kernel) {
      // Typed unrolled scan; min/max are associative, so lo/hi — and
      // therefore every bin boundary — are bit-identical to the scalar
      // loop below.
      VS_ASSIGN_OR_RETURN(auto range, KernelColumnRange(col.get()));
      lo = range.first;
      hi = range.second;
    } else {
      for (size_t r = 0; r < view.size(); ++r) {
        if (view.IsNull(r)) continue;
        const double v = view.at(r);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!(lo <= hi)) {
      return vs::Status::FailedPrecondition(
          "numeric dimension '" + dimension + "' has no non-null values");
    }
    it = range_cache_.emplace(dimension, std::make_pair(lo, hi)).first;
  }
  const auto [lo, hi] = it->second;
  NumericBinDef def;
  def.lo = lo;
  const double span = hi - lo;
  def.width = span > 0.0 ? span / num_bins : 1.0;
  return def;
}

vs::Result<int32_t> GroupByExecutor::NumBins(const GroupBySpec& spec) const {
  VS_ASSIGN_OR_RETURN(ColumnPtr dim_col,
                      table_->ColumnByName(spec.dimension));
  if (const auto* cat =
          dynamic_cast<const CategoricalColumn*>(dim_col.get())) {
    if (spec.num_bins > 0) {
      return vs::Status::InvalidArgument(
          "categorical dimension '" + spec.dimension +
          "' must use num_bins = 0");
    }
    return cat->cardinality();
  }
  if (spec.num_bins <= 0) {
    return vs::Status::InvalidArgument("numeric dimension '" +
                                       spec.dimension +
                                       "' requires num_bins > 0");
  }
  return spec.num_bins;
}

vs::Status GroupByExecutor::Prewarm(const GroupBySpec& spec) const {
  VS_ASSIGN_OR_RETURN(ColumnPtr dim_col,
                      table_->ColumnByName(spec.dimension));
  if (dynamic_cast<const CategoricalColumn*>(dim_col.get()) != nullptr) {
    return vs::Status::OK();
  }
  return NumericBins(spec.dimension, spec.num_bins).status();
}

vs::Result<GroupByResult> GroupByExecutor::Execute(
    const GroupBySpec& spec, const SelectionVector* selection) const {
  if (options_.use_kernel) {
    VS_ASSIGN_OR_RETURN(std::vector<GroupByResult> results,
                        ExecuteBatchKernel({spec}, selection));
    return std::move(results[0]);
  }
  VS_ASSIGN_OR_RETURN(ColumnPtr dim_col,
                      table_->ColumnByName(spec.dimension));
  VS_ASSIGN_OR_RETURN(ColumnPtr measure_col,
                      table_->ColumnByName(spec.measure));
  VS_ASSIGN_OR_RETURN(NumericColumnView measure,
                      NumericColumnView::Wrap(measure_col.get()));

  const auto* cat = dynamic_cast<const CategoricalColumn*>(dim_col.get());
  GroupByResult result;
  std::vector<AggregateAccumulator> groups;

  auto for_each_row = [&](auto&& fn) -> vs::Status {
    if (selection != nullptr) {
      for (uint32_t r : *selection) {
        if (r >= table_->num_rows()) {
          return vs::Status::OutOfRange("selection row id out of range");
        }
        fn(r);
      }
      result.rows_seen = static_cast<int64_t>(selection->size());
    } else {
      const size_t n = table_->num_rows();
      for (size_t r = 0; r < n; ++r) fn(static_cast<uint32_t>(r));
      result.rows_seen = static_cast<int64_t>(n);
    }
    return vs::Status::OK();
  };

  if (cat != nullptr) {
    if (spec.num_bins > 0) {
      return vs::Status::InvalidArgument(
          "categorical dimension '" + spec.dimension +
          "' must use num_bins = 0");
    }
    const int32_t card = cat->cardinality();
    groups.assign(static_cast<size_t>(card), AggregateAccumulator{});
    VS_RETURN_IF_ERROR(for_each_row([&](uint32_t r) {
      const int32_t code = cat->code(r);
      if (code == CategoricalColumn::kNullCode || measure.IsNull(r)) return;
      groups[static_cast<size_t>(code)].Add(measure.at(r));
    }));
    result.bin_labels.reserve(card);
    for (int32_t c = 0; c < card; ++c) {
      result.bin_labels.push_back(cat->label(c));
    }
  } else {
    VS_ASSIGN_OR_RETURN(NumericColumnView dim,
                        NumericColumnView::Wrap(dim_col.get()));
    VS_ASSIGN_OR_RETURN(NumericBinDef bins,
                        NumericBins(spec.dimension, spec.num_bins));
    const int32_t nb = spec.num_bins;
    groups.assign(static_cast<size_t>(nb), AggregateAccumulator{});
    VS_RETURN_IF_ERROR(for_each_row([&](uint32_t r) {
      if (dim.IsNull(r) || measure.IsNull(r)) return;
      const double v = dim.at(r);
      int32_t b = static_cast<int32_t>((v - bins.lo) / bins.width);
      if (b < 0) b = 0;
      if (b >= nb) b = nb - 1;  // max value lands in the last bin
      groups[static_cast<size_t>(b)].Add(measure.at(r));
    }));
    result.bin_labels.reserve(nb);
    for (int32_t b = 0; b < nb; ++b) {
      result.bin_labels.push_back(vs::StrFormat(
          "[%g, %g)", bins.lo + b * bins.width, bins.lo + (b + 1) * bins.width));
    }
  }

  result.values.reserve(groups.size());
  result.counts.reserve(groups.size());
  result.sums.reserve(groups.size());
  result.sumsqs.reserve(groups.size());
  for (const AggregateAccumulator& acc : groups) {
    result.values.push_back(acc.Finalize(spec.func));
    result.counts.push_back(acc.count);
    result.sums.push_back(acc.sum);
    result.sumsqs.push_back(acc.sumsq);
  }
  return result;
}

vs::Result<std::vector<GroupByResult>> GroupByExecutor::ExecuteBatch(
    const std::vector<GroupBySpec>& specs,
    const SelectionVector* selection) const {
  if (specs.empty()) {
    return vs::Status::InvalidArgument("batch of specs must be non-empty");
  }
  for (const GroupBySpec& spec : specs) {
    if (spec.dimension != specs[0].dimension ||
        spec.num_bins != specs[0].num_bins) {
      return vs::Status::InvalidArgument(
          "all specs in a batch must share dimension and bin count");
    }
  }
  if (options_.use_kernel) return ExecuteBatchKernel(specs, selection);

  // Distinct measures, decoded once per row.
  std::vector<std::string> measures;
  std::vector<size_t> measure_of_spec(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    size_t index = measures.size();
    for (size_t m = 0; m < measures.size(); ++m) {
      if (measures[m] == specs[s].measure) {
        index = m;
        break;
      }
    }
    if (index == measures.size()) measures.push_back(specs[s].measure);
    measure_of_spec[s] = index;
  }
  std::vector<NumericColumnView> measure_views;
  measure_views.reserve(measures.size());
  for (const std::string& measure : measures) {
    VS_ASSIGN_OR_RETURN(ColumnPtr col, table_->ColumnByName(measure));
    VS_ASSIGN_OR_RETURN(NumericColumnView view,
                        NumericColumnView::Wrap(col.get()));
    measure_views.push_back(view);
  }

  // Dimension decode, shared by every spec.
  VS_ASSIGN_OR_RETURN(ColumnPtr dim_col,
                      table_->ColumnByName(specs[0].dimension));
  const auto* cat = dynamic_cast<const CategoricalColumn*>(dim_col.get());
  int32_t num_bins = 0;
  std::vector<std::string> bin_labels;
  std::function<int32_t(uint32_t)> bin_of;
  if (cat != nullptr) {
    if (specs[0].num_bins > 0) {
      return vs::Status::InvalidArgument(
          "categorical dimension '" + specs[0].dimension +
          "' must use num_bins = 0");
    }
    num_bins = cat->cardinality();
    bin_labels = cat->dictionary();
    bin_of = [cat](uint32_t r) { return cat->code(r); };
  } else {
    VS_ASSIGN_OR_RETURN(NumericColumnView dim,
                        NumericColumnView::Wrap(dim_col.get()));
    VS_ASSIGN_OR_RETURN(
        NumericBinDef bins,
        NumericBins(specs[0].dimension, specs[0].num_bins));
    num_bins = specs[0].num_bins;
    for (int32_t b = 0; b < num_bins; ++b) {
      bin_labels.push_back(vs::StrFormat("[%g, %g)",
                                         bins.lo + b * bins.width,
                                         bins.lo + (b + 1) * bins.width));
    }
    const int32_t nb = num_bins;
    bin_of = [dim, bins, nb](uint32_t r) -> int32_t {
      if (dim.IsNull(r)) return -1;
      int32_t b = static_cast<int32_t>((dim.at(r) - bins.lo) / bins.width);
      if (b < 0) b = 0;
      if (b >= nb) b = nb - 1;
      return b;
    };
  }

  // One accumulator grid per distinct measure; the single scan.
  std::vector<std::vector<AggregateAccumulator>> grids(
      measures.size(),
      std::vector<AggregateAccumulator>(static_cast<size_t>(num_bins)));
  int64_t rows_seen = 0;
  auto fold = [&](uint32_t r) {
    const int32_t bin = bin_of(r);
    if (bin < 0) return;
    for (size_t m = 0; m < measure_views.size(); ++m) {
      if (measure_views[m].IsNull(r)) continue;
      grids[m][static_cast<size_t>(bin)].Add(measure_views[m].at(r));
    }
  };
  if (selection != nullptr) {
    for (uint32_t r : *selection) {
      if (r >= table_->num_rows()) {
        return vs::Status::OutOfRange("selection row id out of range");
      }
      fold(r);
    }
    rows_seen = static_cast<int64_t>(selection->size());
  } else {
    for (uint32_t r = 0; r < table_->num_rows(); ++r) fold(r);
    rows_seen = static_cast<int64_t>(table_->num_rows());
  }

  // Finalize per spec from its measure's grid.
  std::vector<GroupByResult> results;
  results.reserve(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    GroupByResult result;
    result.bin_labels = bin_labels;
    result.rows_seen = rows_seen;
    const auto& grid = grids[measure_of_spec[s]];
    result.values.reserve(grid.size());
    result.counts.reserve(grid.size());
    result.sums.reserve(grid.size());
    result.sumsqs.reserve(grid.size());
    for (const AggregateAccumulator& acc : grid) {
      result.values.push_back(acc.Finalize(specs[s].func));
      result.counts.push_back(acc.count);
      result.sums.push_back(acc.sum);
      result.sumsqs.push_back(acc.sumsq);
    }
    results.push_back(std::move(result));
  }
  return results;
}

vs::Result<std::vector<GroupByResult>> GroupByExecutor::ExecuteBatchKernel(
    const std::vector<GroupBySpec>& specs,
    const SelectionVector* selection) const {
  // Distinct measures, resolved and type-checked once (same validation
  // and messages as the scalar path).
  std::vector<std::string> measures;
  std::vector<size_t> measure_of_spec(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    size_t index = measures.size();
    for (size_t m = 0; m < measures.size(); ++m) {
      if (measures[m] == specs[s].measure) {
        index = m;
        break;
      }
    }
    if (index == measures.size()) measures.push_back(specs[s].measure);
    measure_of_spec[s] = index;
  }
  std::vector<ColumnPtr> measure_owners;  // keep shared_ptrs alive
  std::vector<const Column*> measure_cols;
  measure_owners.reserve(measures.size());
  measure_cols.reserve(measures.size());
  for (const std::string& measure : measures) {
    VS_ASSIGN_OR_RETURN(ColumnPtr col, table_->ColumnByName(measure));
    VS_RETURN_IF_ERROR(NumericColumnView::Wrap(col.get()).status());
    measure_cols.push_back(col.get());
    measure_owners.push_back(std::move(col));
  }

  VS_ASSIGN_OR_RETURN(ColumnPtr dim_col,
                      table_->ColumnByName(specs[0].dimension));
  const auto* cat = dynamic_cast<const CategoricalColumn*>(dim_col.get());
  int32_t num_bins = 0;
  std::vector<std::string> bin_labels;
  KernelBinDef kernel_bins;
  const KernelBinDef* kernel_bins_ptr = nullptr;
  if (cat != nullptr) {
    if (specs[0].num_bins > 0) {
      return vs::Status::InvalidArgument(
          "categorical dimension '" + specs[0].dimension +
          "' must use num_bins = 0");
    }
    num_bins = cat->cardinality();
    bin_labels = cat->dictionary();
  } else {
    VS_RETURN_IF_ERROR(NumericColumnView::Wrap(dim_col.get()).status());
    VS_ASSIGN_OR_RETURN(
        NumericBinDef bins,
        NumericBins(specs[0].dimension, specs[0].num_bins));
    num_bins = specs[0].num_bins;
    bin_labels.reserve(static_cast<size_t>(num_bins));
    for (int32_t b = 0; b < num_bins; ++b) {
      bin_labels.push_back(vs::StrFormat("[%g, %g)",
                                         bins.lo + b * bins.width,
                                         bins.lo + (b + 1) * bins.width));
    }
    kernel_bins.lo = bins.lo;
    kernel_bins.width = bins.width;
    kernel_bins_ptr = &kernel_bins;
  }

  GroupByKernelOptions kernel_options;
  kernel_options.dense_bins_max = options_.dense_bins_max;
  kernel_options.num_threads = options_.kernel_threads;
  VS_ASSIGN_OR_RETURN(
      std::vector<KernelGrid> grids,
      GroupByKernelRun(dim_col.get(), kernel_bins_ptr, num_bins,
                       measure_cols, selection, table_->num_rows(),
                       kernel_options));
  const auto rows_seen = static_cast<int64_t>(
      selection != nullptr ? selection->size() : table_->num_rows());

  std::vector<GroupByResult> results;
  results.reserve(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    GroupByResult result;
    result.bin_labels = bin_labels;
    result.rows_seen = rows_seen;
    const KernelGrid& grid = grids[measure_of_spec[s]];
    const size_t nb = grid.size();
    result.values.reserve(nb);
    result.counts = grid.counts;
    result.sums = grid.sums;
    result.sumsqs = grid.sumsqs;
    for (size_t b = 0; b < nb; ++b) {
      result.values.push_back(FinalizeKernelSlot(grid, b, specs[s].func));
    }
    results.push_back(std::move(result));
  }
  return results;
}

vs::Result<GroupByResult> ExecuteQuery(const Table& table,
                                       const AggregateQuery& query) {
  GroupByExecutor executor(&table);
  if (query.filter == nullptr) {
    return executor.Execute(query.spec, nullptr);
  }
  VS_ASSIGN_OR_RETURN(SelectionVector sel,
                      SelectRows(table, query.filter.get()));
  return executor.Execute(query.spec, &sel);
}

}  // namespace vs::data
