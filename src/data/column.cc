#include "data/column.h"

#include <cassert>

namespace vs::data {

namespace internal {

void NullMask::Append(bool is_null, size_t row) {
  if (is_null) {
    if (mask_.empty()) mask_.assign(row, 0);  // backfill valid prefix
    mask_.push_back(1);
    ++null_count_;
  } else if (!mask_.empty()) {
    mask_.push_back(0);
  }
}

}  // namespace internal

void CategoricalColumn::Append(const std::string& label) {
  codes_.push_back(InternLabel(label));
}

void CategoricalColumn::AppendCode(int32_t code) {
  assert(code >= 0 && code < cardinality());
  codes_.push_back(code);
}

int32_t CategoricalColumn::InternLabel(const std::string& label) {
  auto it = lookup_.find(label);
  if (it != lookup_.end()) return it->second;
  int32_t code = cardinality();
  dictionary_.push_back(label);
  lookup_.emplace(label, code);
  return code;
}

vs::Result<int32_t> CategoricalColumn::CodeFor(
    const std::string& label) const {
  auto it = lookup_.find(label);
  if (it == lookup_.end()) {
    return vs::Status::NotFound("label not in dictionary: " + label);
  }
  return it->second;
}

}  // namespace vs::data
