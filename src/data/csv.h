#ifndef VS_DATA_CSV_H_
#define VS_DATA_CSV_H_

/// \file csv.h
/// \brief CSV ingestion and export, so real datasets (e.g. the UCI diabetic
/// patients file the paper uses) can be loaded when available.
///
/// Dialect: comma separator, double-quote quoting with "" escapes, optional
/// header row, \n or \r\n line endings.  Type inference per column: int64 if
/// every non-empty cell parses as an integer, else double if every non-empty
/// cell parses as a number, else string (dictionary-encoded).  Empty cells
/// are nulls.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "data/table.h"

namespace vs::data {

/// \brief Options controlling CSV reading.
struct CsvReadOptions {
  bool has_header = true;
  char delimiter = ',';
  /// Field roles to assign by name; unlisted fields get kOther.  When both
  /// lists are empty every string column becomes a dimension and every
  /// numeric column a measure (a convenient exploratory default).
  std::vector<std::string> dimension_columns;
  std::vector<std::string> measure_columns;
  /// Maximum rows to read (0 = unlimited).
  size_t max_rows = 0;
};

/// Parses CSV text into a Table.
vs::Result<Table> ReadCsv(const std::string& text,
                          const CsvReadOptions& options);

/// Reads a CSV file from disk into a Table.
vs::Result<Table> ReadCsvFile(const std::string& path,
                              const CsvReadOptions& options);

/// Serializes \p table to CSV (header + rows; nulls as empty fields).
std::string WriteCsv(const Table& table);

/// Writes \p table to a CSV file.
vs::Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace vs::data

#endif  // VS_DATA_CSV_H_
