#include "data/groupby2d.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace vs::data {

std::string GroupBy2DSpec::ToString() const {
  std::string out = AggregateFunctionName(func) + "(" + measure +
                    ") GROUP BY " + row_dimension + " x " + col_dimension;
  if (row_bins > 0 || col_bins > 0) {
    out += vs::StrFormat(" [%d x %d bins]", row_bins, col_bins);
  }
  return out;
}

namespace {

/// Maps rows of one dimension column to dense bin codes with labels;
/// bin definitions are always derived from the full table.
struct DimensionBinner {
  int32_t num_bins = 0;
  std::vector<std::string> labels;
  /// Returns the bin for a row, or -1 for null.
  std::function<int32_t(uint32_t)> bin_of;
};

vs::Result<DimensionBinner> MakeBinner(const Table& table,
                                       const std::string& dimension,
                                       int32_t requested_bins) {
  VS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(dimension));
  DimensionBinner binner;
  if (const auto* cat = dynamic_cast<const CategoricalColumn*>(col.get())) {
    if (requested_bins > 0) {
      return vs::Status::InvalidArgument(
          "categorical dimension '" + dimension + "' must use 0 bins");
    }
    binner.num_bins = cat->cardinality();
    binner.labels = cat->dictionary();
    binner.bin_of = [cat](uint32_t r) { return cat->code(r); };
    return binner;
  }
  if (requested_bins <= 0) {
    return vs::Status::InvalidArgument("numeric dimension '" + dimension +
                                       "' requires a positive bin count");
  }
  VS_ASSIGN_OR_RETURN(NumericColumnView view,
                      NumericColumnView::Wrap(col.get()));
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < view.size(); ++r) {
    if (view.IsNull(r)) continue;
    lo = std::min(lo, view.at(r));
    hi = std::max(hi, view.at(r));
  }
  if (!(lo <= hi)) {
    return vs::Status::FailedPrecondition(
        "numeric dimension '" + dimension + "' has no non-null values");
  }
  const double span = hi - lo;
  const double width = span > 0.0 ? span / requested_bins : 1.0;
  binner.num_bins = requested_bins;
  for (int32_t b = 0; b < requested_bins; ++b) {
    binner.labels.push_back(
        vs::StrFormat("[%g, %g)", lo + b * width, lo + (b + 1) * width));
  }
  const int32_t nb = requested_bins;
  binner.bin_of = [view, lo, width, nb](uint32_t r) -> int32_t {
    if (view.IsNull(r)) return -1;
    int32_t b = static_cast<int32_t>((view.at(r) - lo) / width);
    if (b < 0) b = 0;
    if (b >= nb) b = nb - 1;
    return b;
  };
  return binner;
}

}  // namespace

vs::Result<GroupBy2DResult> ExecuteGroupBy2D(
    const Table& table, const GroupBy2DSpec& spec,
    const SelectionVector* selection) {
  if (spec.row_dimension == spec.col_dimension) {
    return vs::Status::InvalidArgument(
        "2-D group-by requires two distinct dimensions");
  }
  VS_ASSIGN_OR_RETURN(DimensionBinner rows,
                      MakeBinner(table, spec.row_dimension, spec.row_bins));
  VS_ASSIGN_OR_RETURN(DimensionBinner cols,
                      MakeBinner(table, spec.col_dimension, spec.col_bins));
  VS_ASSIGN_OR_RETURN(ColumnPtr measure_col,
                      table.ColumnByName(spec.measure));
  VS_ASSIGN_OR_RETURN(NumericColumnView measure,
                      NumericColumnView::Wrap(measure_col.get()));

  const size_t cells = static_cast<size_t>(rows.num_bins) *
                       static_cast<size_t>(cols.num_bins);
  std::vector<AggregateAccumulator> grid(cells);

  GroupBy2DResult result;
  auto fold = [&](uint32_t r) {
    const int32_t rb = rows.bin_of(r);
    const int32_t cb = cols.bin_of(r);
    if (rb < 0 || cb < 0 || measure.IsNull(r)) return;
    grid[static_cast<size_t>(rb) * cols.num_bins + cb].Add(measure.at(r));
  };
  if (selection != nullptr) {
    for (uint32_t r : *selection) {
      if (r >= table.num_rows()) {
        return vs::Status::OutOfRange("selection row id out of range");
      }
      fold(r);
    }
    result.rows_seen = static_cast<int64_t>(selection->size());
  } else {
    for (uint32_t r = 0; r < table.num_rows(); ++r) fold(r);
    result.rows_seen = static_cast<int64_t>(table.num_rows());
  }

  result.row_labels = std::move(rows.labels);
  result.col_labels = std::move(cols.labels);
  result.values.reserve(cells);
  result.counts.reserve(cells);
  for (const AggregateAccumulator& acc : grid) {
    result.values.push_back(acc.Finalize(spec.func));
    result.counts.push_back(acc.count);
  }
  return result;
}

}  // namespace vs::data
