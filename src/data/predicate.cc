#include "data/predicate.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace vs::data {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

class ComparePredicate final : public Predicate {
 public:
  ComparePredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  vs::Status Evaluate(const Table& table,
                      std::vector<uint8_t>* mask) const override {
    mask->assign(table.num_rows(), 0);
    VS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(column_));
    if (literal_.is_null()) {
      return vs::Status::InvalidArgument(
          "comparison against null literal never matches; use an explicit "
          "null filter instead");
    }

    // Categorical fast path.
    if (const auto* cat = dynamic_cast<const CategoricalColumn*>(col.get())) {
      if (!literal_.is_string()) {
        return vs::Status::InvalidArgument(
            "categorical column '" + column_ + "' compared to non-string");
      }
      if (op_ == CompareOp::kEq || op_ == CompareOp::kNe) {
        auto code_result = cat->CodeFor(literal_.str());
        const int32_t code =
            code_result.ok() ? *code_result : CategoricalColumn::kNullCode - 1;
        for (size_t r = 0; r < cat->size(); ++r) {
          int32_t c = cat->code(r);
          if (c == CategoricalColumn::kNullCode) continue;
          const bool eq = (c == code);
          (*mask)[r] = (op_ == CompareOp::kEq) ? eq : !eq;
        }
        return vs::Status::OK();
      }
      // Ordering ops: precompute per-code verdicts against the label.
      std::vector<uint8_t> verdict(cat->cardinality());
      for (int32_t c = 0; c < cat->cardinality(); ++c) {
        int cmp = cat->label(c).compare(literal_.str());
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
        verdict[c] = ApplyOp(op_, cmp);
      }
      for (size_t r = 0; r < cat->size(); ++r) {
        int32_t c = cat->code(r);
        if (c != CategoricalColumn::kNullCode) (*mask)[r] = verdict[c];
      }
      return vs::Status::OK();
    }

    // Numeric path.
    double lit = 0.0;
    if (!literal_.AsDouble(&lit)) {
      return vs::Status::InvalidArgument(
          "numeric column '" + column_ + "' compared to non-numeric literal");
    }
    VS_ASSIGN_OR_RETURN(NumericColumnView view,
                        NumericColumnView::Wrap(col.get()));
    for (size_t r = 0; r < view.size(); ++r) {
      if (view.IsNull(r)) continue;
      const double v = view.at(r);
      const int cmp = v < lit ? -1 : (v > lit ? 1 : 0);
      (*mask)[r] = ApplyOp(op_, cmp);
    }
    return vs::Status::OK();
  }

  std::string ToString() const override {
    return column_ + " " + CompareOpName(op_) + " " + literal_.ToString();
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
};

class InSetPredicate final : public Predicate {
 public:
  InSetPredicate(std::string column, std::vector<Value> values)
      : column_(std::move(column)), values_(std::move(values)) {}

  vs::Status Evaluate(const Table& table,
                      std::vector<uint8_t>* mask) const override {
    mask->assign(table.num_rows(), 0);
    VS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(column_));

    if (const auto* cat = dynamic_cast<const CategoricalColumn*>(col.get())) {
      std::unordered_set<int32_t> codes;
      for (const Value& v : values_) {
        if (!v.is_string()) {
          return vs::Status::InvalidArgument(
              "IN-set for categorical column '" + column_ +
              "' contains non-string value");
        }
        auto code = cat->CodeFor(v.str());
        if (code.ok()) codes.insert(*code);
      }
      for (size_t r = 0; r < cat->size(); ++r) {
        int32_t c = cat->code(r);
        if (c != CategoricalColumn::kNullCode && codes.count(c) != 0) {
          (*mask)[r] = 1;
        }
      }
      return vs::Status::OK();
    }

    std::vector<double> numeric;
    numeric.reserve(values_.size());
    for (const Value& v : values_) {
      double d = 0.0;
      if (!v.AsDouble(&d)) {
        return vs::Status::InvalidArgument(
            "IN-set for numeric column '" + column_ +
            "' contains non-numeric value");
      }
      numeric.push_back(d);
    }
    VS_ASSIGN_OR_RETURN(NumericColumnView view,
                        NumericColumnView::Wrap(col.get()));
    for (size_t r = 0; r < view.size(); ++r) {
      if (view.IsNull(r)) continue;
      const double v = view.at(r);
      for (double d : numeric) {
        if (v == d) {
          (*mask)[r] = 1;
          break;
        }
      }
    }
    return vs::Status::OK();
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(values_.size());
    for (const Value& v : values_) parts.push_back(v.ToString());
    return column_ + " IN (" + vs::Join(parts, ", ") + ")";
  }

 private:
  std::string column_;
  std::vector<Value> values_;
};

class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, double lo, double hi)
      : column_(std::move(column)), lo_(lo), hi_(hi) {}

  vs::Status Evaluate(const Table& table,
                      std::vector<uint8_t>* mask) const override {
    mask->assign(table.num_rows(), 0);
    VS_ASSIGN_OR_RETURN(ColumnPtr col, table.ColumnByName(column_));
    VS_ASSIGN_OR_RETURN(NumericColumnView view,
                        NumericColumnView::Wrap(col.get()));
    for (size_t r = 0; r < view.size(); ++r) {
      if (view.IsNull(r)) continue;
      const double v = view.at(r);
      (*mask)[r] = (v >= lo_ && v < hi_);
    }
    return vs::Status::OK();
  }

  std::string ToString() const override {
    return vs::StrFormat("%s in [%g, %g)", column_.c_str(), lo_, hi_);
  }

 private:
  std::string column_;
  double lo_;
  double hi_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  vs::Status Evaluate(const Table& table,
                      std::vector<uint8_t>* mask) const override {
    mask->assign(table.num_rows(), 1);
    std::vector<uint8_t> child_mask;
    for (const PredicatePtr& child : children_) {
      VS_RETURN_IF_ERROR(child->Evaluate(table, &child_mask));
      for (size_t r = 0; r < mask->size(); ++r) (*mask)[r] &= child_mask[r];
    }
    return vs::Status::OK();
  }

  std::string ToString() const override {
    if (children_.empty()) return "TRUE";
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back(c->ToString());
    return "(" + vs::Join(parts, " AND ") + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  vs::Status Evaluate(const Table& table,
                      std::vector<uint8_t>* mask) const override {
    mask->assign(table.num_rows(), 0);
    std::vector<uint8_t> child_mask;
    for (const PredicatePtr& child : children_) {
      VS_RETURN_IF_ERROR(child->Evaluate(table, &child_mask));
      for (size_t r = 0; r < mask->size(); ++r) (*mask)[r] |= child_mask[r];
    }
    return vs::Status::OK();
  }

  std::string ToString() const override {
    if (children_.empty()) return "FALSE";
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back(c->ToString());
    return "(" + vs::Join(parts, " OR ") + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  vs::Status Evaluate(const Table& table,
                      std::vector<uint8_t>* mask) const override {
    VS_RETURN_IF_ERROR(child_->Evaluate(table, mask));
    for (auto& m : *mask) m = !m;
    return vs::Status::OK();
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

}  // namespace

PredicatePtr Compare(std::string column, CompareOp op, Value literal) {
  return std::make_shared<ComparePredicate>(std::move(column), op,
                                            std::move(literal));
}

PredicatePtr InSet(std::string column, std::vector<Value> values) {
  return std::make_shared<InSetPredicate>(std::move(column),
                                          std::move(values));
}

PredicatePtr Between(std::string column, double lo, double hi) {
  return std::make_shared<BetweenPredicate>(std::move(column), lo, hi);
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_shared<AndPredicate>(std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_shared<OrPredicate>(std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

PredicatePtr True() { return And({}); }

vs::Result<SelectionVector> SelectRows(const Table& table,
                                       const Predicate* predicate) {
  if (predicate == nullptr) return table.AllRows();
  std::vector<uint8_t> mask;
  VS_RETURN_IF_ERROR(predicate->Evaluate(table, &mask));
  SelectionVector sel;
  for (size_t r = 0; r < mask.size(); ++r) {
    if (mask[r]) sel.push_back(static_cast<uint32_t>(r));
  }
  return sel;
}

}  // namespace vs::data
