#ifndef VS_DATA_TABLE_H_
#define VS_DATA_TABLE_H_

/// \file table.h
/// \brief Immutable column bundle (Table) plus the row-oriented
/// TableBuilder used by ingestion paths.
///
/// Query operators never copy table data; subsets are expressed as
/// *selection vectors* (sorted row-id arrays, see predicate.h / sampler.h)
/// over a shared Table.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/column.h"
#include "data/schema.h"
#include "data/value.h"

namespace vs::data {

/// Sorted array of selected row ids; the engine's subset representation.
using SelectionVector = std::vector<uint32_t>;

/// \brief An immutable, schema-tagged set of equal-length columns.
class Table {
 public:
  Table() = default;

  /// Builds a table; fails when column count/length/type disagree with the
  /// schema.
  static vs::Result<Table> Make(Schema schema,
                                std::vector<ColumnPtr> columns);

  /// Number of rows (0 for the empty table).
  size_t num_rows() const { return num_rows_; }

  /// Number of columns.
  size_t num_columns() const { return columns_.size(); }

  /// The schema.
  const Schema& schema() const { return schema_; }

  /// Column at schema position \p index.
  const ColumnPtr& column(size_t index) const { return columns_[index]; }

  /// Column by field name, or NotFound.
  vs::Result<ColumnPtr> ColumnByName(const std::string& name) const;

  /// \name Typed column access (NotFound / InvalidArgument on mismatch).
  /// @{
  vs::Result<const Int64Column*> Int64ColumnByName(
      const std::string& name) const;
  vs::Result<const DoubleColumn*> DoubleColumnByName(
      const std::string& name) const;
  vs::Result<const CategoricalColumn*> CategoricalColumnByName(
      const std::string& name) const;
  /// @}

  /// Boxed cell accessor (slow path, for tests/CSV).
  Value GetValue(size_t row, size_t col) const {
    return columns_[col]->GetValue(row);
  }

  /// Materializes a new table containing only the rows in \p selection
  /// (which must be sorted and in range).  Used by tests and by callers
  /// that want a standalone subset; query operators prefer passing the
  /// selection vector through instead.
  vs::Result<Table> Take(const SelectionVector& selection) const;

  /// Selection vector covering every row.
  SelectionVector AllRows() const;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_ = 0;
};

/// \brief Row-at-a-time table construction with type checking.
///
/// int64 values are accepted into double fields (widening); everything else
/// must match the schema exactly, except nulls which are accepted anywhere.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Pre-allocates row capacity.
  void Reserve(size_t rows);

  /// Appends one row; \p cells must have one Value per schema field.
  vs::Status AppendRow(const std::vector<Value>& cells);

  /// Number of rows appended so far.
  size_t num_rows() const { return num_rows_; }

  /// Finalizes into an immutable Table; the builder is left empty.
  vs::Result<Table> Build();

 private:
  Schema schema_;
  std::vector<std::shared_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

/// \brief Non-owning view of a numeric (int64 or double) column exposing a
/// uniform double accessor; the group-by engine's measure input.
class NumericColumnView {
 public:
  /// Wraps \p column, which must be int64 or double typed.
  static vs::Result<NumericColumnView> Wrap(const Column* column);

  /// Cell as double (undefined for null cells; check IsNull first).
  double at(size_t row) const {
    return ints_ != nullptr ? static_cast<double>(ints_->at(row))
                            : dbls_->at(row);
  }

  /// True iff the cell is null.
  bool IsNull(size_t row) const {
    return ints_ != nullptr ? ints_->IsNull(row) : dbls_->IsNull(row);
  }

  /// Number of rows.
  size_t size() const {
    return ints_ != nullptr ? ints_->size() : dbls_->size();
  }

 private:
  const Int64Column* ints_ = nullptr;
  const DoubleColumn* dbls_ = nullptr;
};

}  // namespace vs::data

#endif  // VS_DATA_TABLE_H_
