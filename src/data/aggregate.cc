#include "data/aggregate.h"

#include "common/string_util.h"

namespace vs::data {

std::vector<AggregateFunction> AllAggregateFunctions() {
  return {AggregateFunction::kCount, AggregateFunction::kSum,
          AggregateFunction::kAvg, AggregateFunction::kMin,
          AggregateFunction::kMax};
}

std::string AggregateFunctionName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
  }
  return "?";
}

vs::Result<AggregateFunction> ParseAggregateFunction(
    const std::string& name) {
  const std::string lower = vs::ToLower(name);
  if (lower == "count") return AggregateFunction::kCount;
  if (lower == "sum") return AggregateFunction::kSum;
  if (lower == "avg" || lower == "mean") return AggregateFunction::kAvg;
  if (lower == "min") return AggregateFunction::kMin;
  if (lower == "max") return AggregateFunction::kMax;
  return vs::Status::InvalidArgument("unknown aggregate function: " + name);
}

}  // namespace vs::data
