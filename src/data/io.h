#ifndef VS_DATA_IO_H_
#define VS_DATA_IO_H_

/// \file io.h
/// \brief Binary columnar table persistence (the ".vst" format).
///
/// A compact, versioned, little-endian format so generated testbeds and
/// user datasets can be saved once and reloaded instantly (CSV parse of
/// the 1M-row SYN table costs seconds; the binary load is a few memcpys).
///
/// Layout:
///   magic "VSTB" | u32 version | u64 num_rows | u32 num_columns
///   per column:
///     u32 name_len | name bytes | u8 type | u8 role
///     u8 has_nulls | [num_rows null bytes]
///     payload:
///       int64/double: num_rows * 8 raw bytes
///       string:       u32 dict_size | per entry (u32 len | bytes)
///                     | num_rows * 4 code bytes
///
/// The format stores the dictionary, so categorical group-by performance
/// survives the round trip.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace vs::data {

/// Serializes \p table into the binary format.
vs::Result<std::string> SerializeTable(const Table& table);

/// Parses a table serialized by SerializeTable; validates magic, version,
/// and structural consistency.
vs::Result<Table> DeserializeTable(const std::string& bytes);

/// Writes \p table to \p path.
vs::Status WriteTableFile(const Table& table, const std::string& path);

/// Reads a table from \p path.
vs::Result<Table> ReadTableFile(const std::string& path);

/// \brief Streaming column-major .vst writer for null-free tables whose
/// shape (schema + row count) is known up-front — the path the 10–100M-row
/// generator takes so a file far larger than RAM budgets O(chunk) memory.
///
/// Usage: Open(), then per column in schema order BeginColumn() followed by
/// Append*() calls totalling exactly num_rows values, then Finish().  The
/// resulting file is byte-identical to WriteTableFile() of the equivalent
/// in-memory table (all payloads are fixed-width, so column sizes are known
/// without buffering).  Every step is validated; errors leave the partial
/// file behind for the caller to unlink.
class TableStreamWriter {
 public:
  /// Creates \p path (truncating) and writes the header for \p num_rows
  /// rows of \p schema.  String columns must later provide their complete
  /// dictionary to BeginColumn.
  static vs::Result<std::unique_ptr<TableStreamWriter>> Open(
      const std::string& path, const Schema& schema, uint64_t num_rows);

  ~TableStreamWriter();

  TableStreamWriter(const TableStreamWriter&) = delete;
  TableStreamWriter& operator=(const TableStreamWriter&) = delete;

  /// Starts column \p index (must advance 0, 1, ... in schema order, each
  /// previous column complete).  \p dictionary is required for kString
  /// columns (codes appended later must index into it) and must be null
  /// for numeric columns.
  vs::Status BeginColumn(size_t index,
                         const std::vector<std::string>* dictionary);

  /// \name Payload appends for the current column (type-checked).
  /// @{
  vs::Status AppendDoubles(const double* values, size_t n);
  vs::Status AppendInt64s(const int64_t* values, size_t n);
  vs::Status AppendCodes(const int32_t* codes, size_t n);
  /// @}

  /// Validates that every column received exactly num_rows values and
  /// flushes + closes the file.
  vs::Status Finish();

 private:
  TableStreamWriter(std::FILE* file, Schema schema, uint64_t num_rows);

  vs::Status WriteRaw(const void* data, size_t n);
  vs::Status CheckAppend(DataType expected, size_t n);

  std::FILE* file_;
  const Schema schema_;
  const uint64_t num_rows_;
  size_t current_column_ = 0;   ///< columns fully *begun* so far
  uint64_t column_rows_ = 0;    ///< values appended to the current column
  int32_t dictionary_size_ = 0;
  bool finished_ = false;
};

}  // namespace vs::data

#endif  // VS_DATA_IO_H_
