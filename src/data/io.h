#ifndef VS_DATA_IO_H_
#define VS_DATA_IO_H_

/// \file io.h
/// \brief Binary columnar table persistence (the ".vst" format).
///
/// A compact, versioned, little-endian format so generated testbeds and
/// user datasets can be saved once and reloaded instantly (CSV parse of
/// the 1M-row SYN table costs seconds; the binary load is a few memcpys).
///
/// Layout:
///   magic "VSTB" | u32 version | u64 num_rows | u32 num_columns
///   per column:
///     u32 name_len | name bytes | u8 type | u8 role
///     u8 has_nulls | [num_rows null bytes]
///     payload:
///       int64/double: num_rows * 8 raw bytes
///       string:       u32 dict_size | per entry (u32 len | bytes)
///                     | num_rows * 4 code bytes
///
/// The format stores the dictionary, so categorical group-by performance
/// survives the round trip.

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace vs::data {

/// Serializes \p table into the binary format.
vs::Result<std::string> SerializeTable(const Table& table);

/// Parses a table serialized by SerializeTable; validates magic, version,
/// and structural consistency.
vs::Result<Table> DeserializeTable(const std::string& bytes);

/// Writes \p table to \p path.
vs::Status WriteTableFile(const Table& table, const std::string& path);

/// Reads a table from \p path.
vs::Result<Table> ReadTableFile(const std::string& path);

}  // namespace vs::data

#endif  // VS_DATA_IO_H_
