#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vs::data {

namespace {

/// Splits CSV text into records of raw fields, honouring quotes.
vs::Result<std::vector<std::vector<std::string>>> SplitRecords(
    const std::string& text, char delimiter) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == delimiter) {
      end_field();
      ++i;
    } else if (c == '\n') {
      end_record();
      ++i;
    } else if (c == '\r') {
      if (i + 1 < n && text[i + 1] == '\n') {
        end_record();
        i += 2;
      } else {
        end_record();
        ++i;
      }
    } else {
      field += c;
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return vs::Status::InvalidArgument("unterminated quoted field");
  }
  // Flush a final record without trailing newline, unless it is empty.
  if (!field.empty() || !current.empty() || field_started) {
    end_record();
  }
  return records;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

vs::Result<Table> ReadCsv(const std::string& text,
                          const CsvReadOptions& options) {
  VS_ASSIGN_OR_RETURN(auto records, SplitRecords(text, options.delimiter));
  if (records.empty()) {
    return vs::Status::InvalidArgument("empty CSV input");
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    for (const std::string& h : records[0]) {
      names.emplace_back(vs::Trim(h));
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back("col" + std::to_string(c));
    }
  }
  const size_t num_cols = names.size();

  size_t last_row = records.size();
  if (options.max_rows > 0) {
    last_row = std::min(last_row, first_data_row + options.max_rows);
  }

  // Pass 1: infer per-column type.
  std::vector<bool> can_int(num_cols, true);
  std::vector<bool> can_double(num_cols, true);
  for (size_t r = first_data_row; r < last_row; ++r) {
    if (records[r].size() != num_cols) {
      return vs::Status::InvalidArgument(vs::StrFormat(
          "row %zu has %zu fields, expected %zu", r, records[r].size(),
          num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = records[r][c];
      if (cell.empty()) continue;  // null
      if (can_int[c] && !vs::ParseInt64(cell).ok()) can_int[c] = false;
      if (can_double[c] && !vs::ParseDouble(cell).ok()) can_double[c] = false;
    }
  }

  auto role_of = [&](const std::string& name, DataType type) {
    const bool explicit_roles = !options.dimension_columns.empty() ||
                                !options.measure_columns.empty();
    if (explicit_roles) {
      for (const auto& d : options.dimension_columns) {
        if (d == name) return FieldRole::kDimension;
      }
      for (const auto& m : options.measure_columns) {
        if (m == name) return FieldRole::kMeasure;
      }
      return FieldRole::kOther;
    }
    return type == DataType::kString ? FieldRole::kDimension
                                     : FieldRole::kMeasure;
  };

  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    DataType type = can_int[c]
                        ? DataType::kInt64
                        : (can_double[c] ? DataType::kDouble
                                         : DataType::kString);
    fields.emplace_back(names[c], type, role_of(names[c], type));
  }
  VS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));

  // Pass 2: build.
  TableBuilder builder(schema);
  builder.Reserve(last_row - first_data_row);
  std::vector<Value> row(num_cols);
  for (size_t r = first_data_row; r < last_row; ++r) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = records[r][c];
      if (cell.empty()) {
        row[c] = Value();
      } else {
        switch (schema.field(c).type) {
          case DataType::kInt64:
            row[c] = Value(*vs::ParseInt64(cell));
            break;
          case DataType::kDouble:
            row[c] = Value(*vs::ParseDouble(cell));
            break;
          default:
            row[c] = Value(cell);
            break;
        }
      }
    }
    VS_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  return builder.Build();
}

vs::Result<Table> ReadCsvFile(const std::string& path,
                              const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return vs::Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsv(buffer.str(), options);
}

std::string WriteCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.field(c).name);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      Value v = table.GetValue(r, c);
      if (!v.is_null()) out += QuoteField(v.ToString());
    }
    out += '\n';
  }
  return out;
}

vs::Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return vs::Status::IOError("cannot open file for writing: " + path);
  }
  out << WriteCsv(table);
  if (!out) {
    return vs::Status::IOError("write failed: " + path);
  }
  return vs::Status::OK();
}

}  // namespace vs::data
