#ifndef VS_DATA_PREDICATE_H_
#define VS_DATA_PREDICATE_H_

/// \file predicate.h
/// \brief Vectorized predicate trees — the WHERE clause of the engine.
///
/// A Predicate evaluates over a whole Table into a boolean mask; SelectRows
/// converts the mask into a SelectionVector.  Semantics are two-valued:
/// null cells compare false under every comparison, and Not() is a pure
/// complement (this deviates from SQL's three-valued logic; the deviation
/// is intentional and covered by tests).

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "data/value.h"

namespace vs::data {

/// Comparison operator of a leaf predicate.
enum class CompareOp : int { kEq, kNe, kLt, kLe, kGt, kGe };

/// Symbolic name ("==", "!=", "<", "<=", ">", ">=").
std::string CompareOpName(CompareOp op);

/// \brief Abstract predicate node.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates over \p table into \p mask (resized to num_rows; 1 = match).
  virtual vs::Status Evaluate(const Table& table,
                              std::vector<uint8_t>* mask) const = 0;

  /// Debug rendering, e.g. "(age >= 30 AND state == CA)".
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// \name Factory functions.
/// @{

/// column <op> literal.  Numeric literals apply to numeric columns; string
/// literals apply to categorical columns (ordering ops compare labels
/// lexicographically).
PredicatePtr Compare(std::string column, CompareOp op, Value literal);

/// column IN (values); values must be homogeneous with the column type.
PredicatePtr InSet(std::string column, std::vector<Value> values);

/// Numeric half-open range lo <= column < hi.
PredicatePtr Between(std::string column, double lo, double hi);

/// Conjunction (empty = TRUE).
PredicatePtr And(std::vector<PredicatePtr> children);

/// Disjunction (empty = FALSE).
PredicatePtr Or(std::vector<PredicatePtr> children);

/// Complement.
PredicatePtr Not(PredicatePtr child);

/// Constant TRUE.
PredicatePtr True();

/// @}

/// Evaluates \p predicate (nullptr = TRUE) over \p table and returns the
/// sorted row ids of matches.
vs::Result<SelectionVector> SelectRows(const Table& table,
                                       const Predicate* predicate);

/// Convenience overload for shared pointers.
inline vs::Result<SelectionVector> SelectRows(const Table& table,
                                              const PredicatePtr& predicate) {
  return SelectRows(table, predicate.get());
}

}  // namespace vs::data

#endif  // VS_DATA_PREDICATE_H_
