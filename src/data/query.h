#ifndef VS_DATA_QUERY_H_
#define VS_DATA_QUERY_H_

/// \file query.h
/// \brief A minimal SQL-subset front end for the analytical engine.
///
/// Grammar (case-insensitive keywords):
///
///   SELECT <FUNC>(<measure>) FROM <table>
///     [WHERE <cond> [AND <cond>]...]
///     GROUP BY <dimension> [BINS <n>]
///
///   <cond> := <column> <op> <literal>
///           | <column> BETWEEN <num> AND <num>       -- inclusive low,
///                                                       exclusive high
///           | <column> IN ( <literal> [, <literal>]... )
///   <op>   := = | == | != | <> | < | <= | > | >=
///   <literal> := number | 'single-quoted string'
///
/// This is the glue that lets examples and the interactive CLI specify the
/// query subset D_Q the way the paper does ("an SQL query with a group-by
/// clause over a database D").

#include <string>

#include "common/result.h"
#include "data/groupby.h"
#include "data/predicate.h"

namespace vs::data {

/// \brief Parsed form of the SQL subset.
struct ParsedQuery {
  std::string table_name;  ///< identifier after FROM (informational)
  AggregateQuery query;    ///< executable filter + group-by spec
};

/// Parses \p sql; returns InvalidArgument with a position-annotated message
/// on syntax errors.  Column/type validity is checked at execution time.
vs::Result<ParsedQuery> ParseQuery(const std::string& sql);

/// Parses a standalone WHERE-style condition conjunction (the `<cond>
/// [AND <cond>]...` sub-grammar), e.g. "age >= 30 AND city = 'NYC'".
/// Useful for tools that take a row filter without a full query.
vs::Result<PredicatePtr> ParseFilter(const std::string& conditions);

/// Parses and executes \p sql against \p table in one step.
vs::Result<GroupByResult> RunSql(const Table& table, const std::string& sql);

}  // namespace vs::data

#endif  // VS_DATA_QUERY_H_
