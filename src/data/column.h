#ifndef VS_DATA_COLUMN_H_
#define VS_DATA_COLUMN_H_

/// \file column.h
/// \brief Columnar storage: typed, contiguous arrays with optional null
/// masks.  Dimension attributes of string type are dictionary-encoded
/// (CategoricalColumn) so group-by can run over dense int32 codes.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/value.h"

namespace vs::data {

/// \brief Abstract base of all column types.
///
/// Hot paths downcast to the concrete column (see As* helpers on Table) and
/// operate on the raw arrays; Value-returning accessors exist for the
/// row-oriented edges only.
class Column {
 public:
  virtual ~Column() = default;

  /// Physical type of the column's cells.
  virtual DataType type() const = 0;

  /// Number of rows.
  virtual size_t size() const = 0;

  /// True iff the cell at \p row is null.
  virtual bool IsNull(size_t row) const = 0;

  /// Boxed cell accessor (slow path).
  virtual Value GetValue(size_t row) const = 0;

  /// Number of null cells.
  virtual size_t null_count() const = 0;
};

namespace internal {

/// Shared null-mask plumbing for the numeric columns.
class NullMask {
 public:
  /// Marks row \p row (must be appended in order) as null/valid.
  void Append(bool is_null, size_t row);
  bool IsNull(size_t row) const {
    return !mask_.empty() && mask_[row] != 0;
  }
  size_t null_count() const { return null_count_; }

 private:
  std::vector<uint8_t> mask_;  // empty means "no nulls so far"
  size_t null_count_ = 0;
};

}  // namespace internal

/// \brief Contiguous int64 column with optional nulls.
class Int64Column final : public Column {
 public:
  Int64Column() = default;

  /// Constructs from a dense, null-free vector.
  explicit Int64Column(std::vector<int64_t> values)
      : data_(std::move(values)) {}

  void Reserve(size_t n) { data_.reserve(n); }
  /// Appends a valid cell.
  void Append(int64_t v) {
    nulls_.Append(false, data_.size());
    data_.push_back(v);
  }
  /// Appends a null cell (stored as 0).
  void AppendNull() {
    nulls_.Append(true, data_.size());
    data_.push_back(0);
  }

  DataType type() const override { return DataType::kInt64; }
  size_t size() const override { return data_.size(); }
  bool IsNull(size_t row) const override { return nulls_.IsNull(row); }
  Value GetValue(size_t row) const override {
    return IsNull(row) ? Value() : Value(data_[row]);
  }
  size_t null_count() const override { return nulls_.null_count(); }

  /// Raw cell (undefined content for null cells).
  int64_t at(size_t row) const { return data_[row]; }
  /// The backing array.
  const std::vector<int64_t>& data() const { return data_; }

 private:
  std::vector<int64_t> data_;
  internal::NullMask nulls_;
};

/// \brief Contiguous double column with optional nulls.
class DoubleColumn final : public Column {
 public:
  DoubleColumn() = default;

  /// Constructs from a dense, null-free vector.
  explicit DoubleColumn(std::vector<double> values)
      : data_(std::move(values)) {}

  void Reserve(size_t n) { data_.reserve(n); }
  /// Appends a valid cell.
  void Append(double v) {
    nulls_.Append(false, data_.size());
    data_.push_back(v);
  }
  /// Appends a null cell (stored as 0.0).
  void AppendNull() {
    nulls_.Append(true, data_.size());
    data_.push_back(0.0);
  }

  DataType type() const override { return DataType::kDouble; }
  size_t size() const override { return data_.size(); }
  bool IsNull(size_t row) const override { return nulls_.IsNull(row); }
  Value GetValue(size_t row) const override {
    return IsNull(row) ? Value() : Value(data_[row]);
  }
  size_t null_count() const override { return nulls_.null_count(); }

  /// Raw cell (undefined content for null cells).
  double at(size_t row) const { return data_[row]; }
  /// The backing array.
  const std::vector<double>& data() const { return data_; }

 private:
  std::vector<double> data_;
  internal::NullMask nulls_;
};

/// \brief Dictionary-encoded string column.
///
/// Cells are stored as int32 codes into an append-only dictionary; null is
/// code kNullCode.  Group-by over a categorical dimension reduces to a
/// dense counting pass over the codes.
class CategoricalColumn final : public Column {
 public:
  /// Sentinel code for null cells.
  static constexpr int32_t kNullCode = -1;

  CategoricalColumn() = default;

  void Reserve(size_t n) { codes_.reserve(n); }

  /// Appends \p label, interning it into the dictionary.
  void Append(const std::string& label);

  /// Appends a cell by existing dictionary code (must be < cardinality).
  void AppendCode(int32_t code);

  /// Appends a null cell.
  void AppendNull() { codes_.push_back(kNullCode); ++null_count_; }

  /// Interns \p label without appending a cell; returns its code.
  int32_t InternLabel(const std::string& label);

  DataType type() const override { return DataType::kString; }
  size_t size() const override { return codes_.size(); }
  bool IsNull(size_t row) const override { return codes_[row] == kNullCode; }
  Value GetValue(size_t row) const override {
    return IsNull(row) ? Value() : Value(dictionary_[codes_[row]]);
  }
  size_t null_count() const override { return null_count_; }

  /// Dictionary code of the cell at \p row (kNullCode for nulls).
  int32_t code(size_t row) const { return codes_[row]; }
  /// All codes.
  const std::vector<int32_t>& codes() const { return codes_; }
  /// Number of distinct labels.
  int32_t cardinality() const {
    return static_cast<int32_t>(dictionary_.size());
  }
  /// The dictionary, indexed by code.
  const std::vector<std::string>& dictionary() const { return dictionary_; }
  /// Label for \p code.
  const std::string& label(int32_t code) const { return dictionary_[code]; }
  /// Code for \p label, or NotFound.
  vs::Result<int32_t> CodeFor(const std::string& label) const;

 private:
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> lookup_;
  size_t null_count_ = 0;
};

using ColumnPtr = std::shared_ptr<const Column>;

}  // namespace vs::data

#endif  // VS_DATA_COLUMN_H_
