#ifndef VS_OBS_METRICS_H_
#define VS_OBS_METRICS_H_

/// \file metrics.h
/// \brief Process-wide runtime metrics: lock-free-on-the-hot-path Counter,
/// Gauge and fixed-bucket Histogram instruments behind a MetricsRegistry.
///
/// Design rules:
///  * Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
///    meant to be amortized — call sites cache the returned handle (a
///    function-local static is the usual idiom).  Handles are stable for
///    the registry's lifetime.
///  * Updates (Increment/Set/Observe) are atomics only; no locks.
///  * A *disabled* registry costs exactly one relaxed atomic load per
///    update call — instrumented hot paths are safe to leave in Release
///    builds unconditionally.
///  * SnapshotAll() is deterministic: instruments sorted by name.
///
/// Metric names use dot-separated lowercase ("seeker.iteration_seconds");
/// the Prometheus exporter rewrites dots to underscores to satisfy its
/// name grammar.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vs::obs {

namespace internal {

/// Atomic add for doubles (no std::atomic<double>::fetch_add portability
/// assumptions): compare-exchange loop, relaxed ordering.
inline void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help,
          const std::atomic<bool>* enabled)
      : name_(std::move(name)), help_(std::move(help)), enabled_(enabled) {}

  std::string name_;
  std::string help_;
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// \brief A value that can go up and down (queue depths, utilizations).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void Add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    internal::AtomicAdd(&value_, delta);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help, const std::atomic<bool>* enabled)
      : name_(std::move(name)), help_(std::move(help)), enabled_(enabled) {}

  std::string name_;
  std::string help_;
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram: cumulative-on-export bucket counts plus a
/// running sum, Prometheus-style.  Bucket bounds are upper bounds; an
/// implicit +Inf bucket catches the overflow.
class Histogram {
 public:
  void Observe(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAdd(&sum_, v);
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }

  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help, std::vector<double> bounds,
            const std::atomic<bool>* enabled)
      : name_(std::move(name)),
        help_(std::move(help)),
        bounds_(std::move(bounds)),
        enabled_(enabled),
        buckets_(bounds_.size() + 1) {}

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  const std::atomic<bool>* enabled_;
  /// One per bound plus the +Inf overflow bucket (non-cumulative; the
  /// exporters accumulate).
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Exponentially spaced upper bounds: start, start*factor, ... (count of
/// them).  The default latency buckets cover 1 µs .. ~100 s.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
std::vector<double> DefaultLatencyBuckets();
/// Linearly spaced bounds for naturally bounded values (counts, ratios).
std::vector<double> LinearBuckets(double start, double width, int count);

/// \name Snapshot types (plain data; safe to hold across registry updates).
/// @{
struct CounterSnapshot {
  std::string name;
  std::string help;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<double> bounds;   ///< bucket upper bounds (no +Inf)
  std::vector<uint64_t> counts; ///< per-bucket counts incl. trailing +Inf
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};
/// @}

/// \brief Owns all instruments; lookups are name-keyed and idempotent
/// (same name returns the same handle; mismatched re-registration of a
/// name as a different type returns the existing instrument of the right
/// map, never aliases).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the engine's built-in
  /// instrumentation.  Never destroyed (handles stay valid at exit).
  static MetricsRegistry& Default();

  /// Registers (or looks up) an instrument.  Thread-safe; the returned
  /// pointer is stable for the registry's lifetime.  \p help is recorded
  /// on first registration only.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// \p bounds must be strictly increasing; recorded on first
  /// registration only.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds,
                          const std::string& help = "");

  /// Disabled registries turn every update into a single relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Consistent-enough point-in-time view of every instrument, sorted by
  /// name (deterministic given deterministic updates).
  MetricsSnapshot SnapshotAll() const;

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (dots in names become underscores).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Minimal JSON string escaping shared by the obs exporters.
std::string JsonEscape(std::string_view s);

}  // namespace vs::obs

#endif  // VS_OBS_METRICS_H_
