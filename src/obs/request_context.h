#ifndef VS_OBS_REQUEST_CONTEXT_H_
#define VS_OBS_REQUEST_CONTEXT_H_

/// \file request_context.h
/// \brief Request-scoped observability: a RequestContext carries one
/// request's id and per-stage timing breakdown from the transport down
/// through every subsystem the request touches, without threading a
/// parameter through each signature.
///
/// Propagation model: the serving layer creates a RequestContext per
/// request (generating an id or accepting the client's `X-Request-Id`),
/// installs it in a thread-local slot with ScopedRequestContext, and
/// handles the request synchronously on that worker thread.  Instrumented
/// code anywhere below (SessionManager, FeatureMatrixCache, durability)
/// opens a StageTimer("session_manager.label"); on destruction the timer
/// appends a StageRecord to the current context — or does nothing at all
/// when no context is installed.
///
/// Cost discipline (matches metrics.h / trace.h): with no context
/// installed a StageTimer costs one thread-local load at construction and
/// one branch at destruction — no clock reads, no allocation.  Stage
/// records are only taken on request-serving threads; background threads
/// (the TTL reaper, the trace ring) have no context and pay nothing.
///
/// Cross-thread reads: the in-flight table (/statusz) snapshots live
/// contexts from other threads.  RequestContext therefore guards its
/// mutable fields with a mutex and publishes the *current* stage as an
/// atomic pointer to a string literal, so a stalled request can be seen
/// mid-stage.
///
/// Stage taxonomy (docs/ARCHITECTURE.md "Request lifecycle &
/// observability"): dot-separated, subsystem-prefixed —
///   http.dispatch, session_manager.{create,label,next,topk,restore,
///   evict}, fmcache.{lookup,build,wait}, durability.{wal_append,
///   snapshot}.
/// Stage spans nest (a label span contains its wal append); records keep
/// inclusive durations and emission order.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace vs::obs {

/// \brief One completed stage within a request (inclusive duration).
struct StageRecord {
  const char* stage = nullptr;  ///< static string (StageTimer contract)
  int64_t start_us = 0;         ///< since the request began
  int64_t duration_us = 0;
};

/// \brief Everything observability knows about one in-flight request.
class RequestContext {
 public:
  RequestContext(std::string id, std::string method, std::string path);

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  const std::string& id() const { return id_; }
  const std::string& method() const { return method_; }
  const std::string& path() const { return path_; }

  /// Route name, known only after dispatch ("label", "create_session").
  void set_endpoint(const std::string& endpoint);
  std::string endpoint() const;

  /// Microseconds since construction (the request's private epoch).
  int64_t ElapsedMicros() const { return epoch_.ElapsedMicros(); }

  /// \name Request deadline — an absolute point relative to the request's
  /// private epoch, set once by the transport when the client supplied
  /// `X-Deadline-Ms`.  Subsystems below (admission, session manager,
  /// refinement) read the *remaining* budget; no deadline means infinite.
  /// @{
  void set_deadline_ms(double ms) {
    deadline_us_.store(static_cast<int64_t>(ms * 1000.0),
                       std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_us_.load(std::memory_order_relaxed) > 0;
  }
  /// Seconds left before the deadline; clamped at 0, +inf with none set.
  double remaining_seconds() const;
  bool deadline_expired() const {
    const int64_t d = deadline_us_.load(std::memory_order_relaxed);
    return d > 0 && ElapsedMicros() >= d;
  }
  /// @}

  /// \name Brownout hint — set by the admission layer when the server is
  /// saturated (or the remaining deadline is short), read by the engine
  /// to prefer a degraded α-sample / partially-refined answer over
  /// shedding the request.
  /// @{
  void set_brownout(bool on) {
    brownout_.store(on, std::memory_order_relaxed);
  }
  bool brownout() const { return brownout_.load(std::memory_order_relaxed); }
  /// @}

  /// \name Degraded marker — set by the engine when the answer it served
  /// came from a rough or partially-refined matrix; the transport stamps
  /// `X-Quality: degraded` from it.  refined_fraction is the share of
  /// exact feature rows backing the answer (1.0 = full quality).
  /// @{
  void MarkDegraded(double refined_fraction) {
    degraded_.store(true, std::memory_order_relaxed);
    refined_fraction_.store(refined_fraction, std::memory_order_relaxed);
  }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  double refined_fraction() const {
    return refined_fraction_.load(std::memory_order_relaxed);
  }
  /// @}

  /// Appends one completed stage (called by StageTimer).
  void AddStage(const char* stage, int64_t start_us, int64_t duration_us);

  /// Stage records so far, in completion order.
  std::vector<StageRecord> stages() const;

  /// \name Current stage — written by StageTimer on the serving thread,
  /// read by /statusz from any thread.  nullptr = between stages.
  /// @{
  const char* current_stage() const {
    return current_stage_.load(std::memory_order_relaxed);
  }
  void set_current_stage(const char* stage) {
    current_stage_.store(stage, std::memory_order_relaxed);
  }
  /// @}

 private:
  const std::string id_;
  const std::string method_;
  const std::string path_;
  Stopwatch epoch_;
  std::atomic<const char*> current_stage_{nullptr};
  std::atomic<int64_t> deadline_us_{0};  ///< relative to epoch; <=0 = none
  std::atomic<bool> brownout_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<double> refined_fraction_{1.0};

  mutable std::mutex mu_;
  std::string endpoint_;
  std::vector<StageRecord> stages_;
};

/// The context installed on this thread, or nullptr.
RequestContext* CurrentRequestContext();

/// \brief RAII install/uninstall of the thread-local context.  Restores
/// the previous context on destruction, so nested installs compose.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext* context);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext* previous_;
};

/// \brief RAII stage span: on destruction, records (stage, start,
/// duration) into the current request context and observes the stage's
/// process-wide `serve.stage_seconds.<stage>` histogram.  \p stage must
/// be a string literal (stored by pointer, used as a registry key).
///
/// Inert (no clock read, no allocation) when no context is installed.
class StageTimer {
 public:
  explicit StageTimer(const char* stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  RequestContext* context_;       ///< nullptr = inert
  const char* stage_;
  const char* parent_stage_;      ///< restored on destruction
  int64_t start_us_ = 0;
};

/// \brief One row of the in-flight request table (/statusz).
struct InflightRequest {
  std::string id;
  std::string endpoint;   ///< route name, or "-" before dispatch
  std::string method;
  std::string path;
  double age_seconds = 0.0;
  const char* stage = nullptr;  ///< current stage, nullptr between stages
};

/// \brief Registry of requests currently being served, snapshottable from
/// any thread.  The serving layer registers a shared RequestContext at
/// entry and unregisters at exit; /statusz renders Snapshot().
class InflightRegistry {
 public:
  void Register(const std::shared_ptr<RequestContext>& context);
  void Unregister(const RequestContext* context);

  std::vector<InflightRequest> Snapshot() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<RequestContext>> inflight_;
};

}  // namespace vs::obs

#endif  // VS_OBS_REQUEST_CONTEXT_H_
