#ifndef VS_OBS_EVENTS_H_
#define VS_OBS_EVENTS_H_

/// \file events.h
/// \brief The session event journal: engine components emit structured
/// Events (a typed name plus ordered key/value fields) to a pluggable
/// EventSink.  The JSONL file sink gives every interactive session a
/// replayable audit trail — label events carry enough to rebuild the
/// session, refit events carry the estimator coefficients so the final
/// top-k can be recomputed offline.
///
/// Events serialize to one JSON object per line.  Field order is emission
/// order (deterministic), so journals from seeded runs are byte-stable
/// except for the sink-stamped "t_us" wall-clock field.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"

namespace vs::obs {

/// \brief One structured event, built field-by-field.
class Event {
 public:
  explicit Event(std::string_view type);

  /// \name Field setters (chainable; insertion order is serialized order).
  /// @{
  Event& SetStr(std::string_view key, std::string_view value);
  Event& SetNum(std::string_view key, double value);
  Event& SetInt(std::string_view key, int64_t value);
  Event& SetBool(std::string_view key, bool value);
  Event& SetNumList(std::string_view key, const std::vector<double>& values);
  Event& SetIntList(std::string_view key, const std::vector<size_t>& values);
  /// @}

  const std::string& type() const { return type_; }

  /// The fields as a brace-less JSON fragment: `"type":"x","view":3`.
  /// Sinks wrap it (optionally prepending bookkeeping like seq/t_us).
  const std::string& fields_json() const { return json_; }

  /// The complete JSON object: `{"type":"x","view":3}`.
  std::string ToJson() const { return "{" + json_ + "}"; }

 private:
  std::string type_;
  std::string json_;
};

/// \brief Receives emitted events.  Implementations must be thread-safe;
/// emitters hold a borrowed pointer and never take ownership.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Emit(const Event& event) = 0;
};

/// \brief Appends events to a JSONL file, one object per line:
/// `{"seq":3,"t_us":1204,"type":"label_received",...}`.  seq is a
/// monotonic per-sink counter; t_us is microseconds since the sink was
/// opened.
class JsonlFileSink : public EventSink {
 public:
  static vs::Result<std::unique_ptr<JsonlFileSink>> Open(
      const std::string& path);
  ~JsonlFileSink() override;

  void Emit(const Event& event) override;
  void Flush();

 private:
  explicit JsonlFileSink(std::FILE* file) : file_(file) {}

  std::mutex mu_;
  std::FILE* file_;
  int64_t seq_ = 0;
  Stopwatch clock_;
};

/// \brief In-memory sink for tests and programmatic inspection.
class VectorEventSink : public EventSink {
 public:
  void Emit(const Event& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace vs::obs

#endif  // VS_OBS_EVENTS_H_
