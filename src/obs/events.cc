#include "obs/events.h"

#include "common/string_util.h"
#include "obs/metrics.h"  // JsonEscape

namespace vs::obs {

namespace {

std::string FmtDouble(double v) {
  const std::string short_form = StrFormat("%g", v);
  if (ParseDouble(short_form).ValueOr(v + 1.0) == v) return short_form;
  return StrFormat("%.17g", v);
}

}  // namespace

Event::Event(std::string_view type) : type_(type) {
  json_ = "\"type\":\"" + JsonEscape(type) + "\"";
}

Event& Event::SetStr(std::string_view key, std::string_view value) {
  json_ += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  return *this;
}

Event& Event::SetNum(std::string_view key, double value) {
  json_ += ",\"" + JsonEscape(key) + "\":" + FmtDouble(value);
  return *this;
}

Event& Event::SetInt(std::string_view key, int64_t value) {
  json_ += ",\"" + JsonEscape(key) +
           "\":" + StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

Event& Event::SetBool(std::string_view key, bool value) {
  json_ += ",\"" + JsonEscape(key) + "\":" + (value ? "true" : "false");
  return *this;
}

Event& Event::SetNumList(std::string_view key,
                         const std::vector<double>& values) {
  json_ += ",\"" + JsonEscape(key) + "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) json_ += ',';
    json_ += FmtDouble(values[i]);
  }
  json_ += ']';
  return *this;
}

Event& Event::SetIntList(std::string_view key,
                         const std::vector<size_t>& values) {
  json_ += ",\"" + JsonEscape(key) + "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) json_ += ',';
    json_ += StrFormat("%llu", static_cast<unsigned long long>(values[i]));
  }
  json_ += ']';
  return *this;
}

vs::Result<std::unique_ptr<JsonlFileSink>> JsonlFileSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return vs::Status::IOError("cannot open event journal '" + path + "'");
  }
  return std::unique_ptr<JsonlFileSink>(new JsonlFileSink(file));
}

JsonlFileSink::~JsonlFileSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  // One formatted line, one write: no interleaving even with concurrent
  // emitters sharing the underlying descriptor.
  const std::string line =
      StrFormat("{\"seq\":%lld,\"t_us\":%lld,",
                static_cast<long long>(seq_++),
                static_cast<long long>(clock_.ElapsedMicros())) +
      event.fields_json() + "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
}

void JsonlFileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace vs::obs
